"""Capacity planning: how much cache does a hybrid deployment need?

Sweeps the cache budget for a fixed workload and reports each policy's
token hit rate plus Marconi's win over LRU eviction — the operator-facing
version of the paper's Fig. 11: the FLOP-aware policy buys the most
capacity-efficiency at moderate contention, i.e. it lets you provision a
smaller cache for the same hit rate.

Run:  python examples/capacity_planning.py
"""

from _common import FAST
from repro import (
    WorkloadParams,
    generate_swebench_trace,
    hybrid_7b,
    make_cache,
    simulate_trace,
)
from repro.metrics.reporting import ascii_table

GB = 1e9
CACHE_GRID_GB = (15, 35, 60) if FAST else (15, 25, 35, 45, 60)


def main() -> None:
    model = hybrid_7b()
    trace = generate_swebench_trace(
        WorkloadParams(
            n_sessions=24 if FAST else 160,
            session_rate=2.0, mean_think_s=7.5, seed=11,
        )
    )
    print(
        f"workload: {trace.n_requests} requests, "
        f"{trace.total_input_tokens / 1e6:.1f}M input tokens\n"
    )
    rows = []
    for cache_gb in CACHE_GRID_GB:
        hit = {}
        for policy in ("vllm+", "sglang+", "marconi"):
            cache = make_cache(policy, model, int(cache_gb * GB))
            result = simulate_trace(model, cache, trace, policy_name=policy)
            hit[policy] = result.token_hit_rate
        win = hit["marconi"] / max(hit["sglang+"], 1e-4) - 1
        rows.append(
            [
                f"{cache_gb} GB",
                f"{100 * hit['vllm+']:.1f}%",
                f"{100 * hit['sglang+']:.1f}%",
                f"{100 * hit['marconi']:.1f}%",
                f"{100 * win:+.1f}%",
            ]
        )
    print(ascii_table(
        ["cache", "vllm+", "sglang+ (LRU)", "marconi", "marconi vs LRU"], rows
    ))
    print(
        "\nReading: the marconi-vs-LRU column peaks at moderate contention "
        "(paper Fig. 11); at the far ends eviction policy barely matters."
    )

    # Target-driven sizing: the smallest budget hitting 30% token hit rate.
    from repro.analysis import recommend_capacity

    rec = recommend_capacity(
        model, trace, target_hit_rate=0.30,
        low_bytes=int(5 * GB), high_bytes=int(80 * GB),
    )
    print(
        f"\nplanner: {'' if rec.attainable else 'UN'}attainable target 30% -> "
        f"provision {rec.capacity_bytes / GB:.1f} GB "
        f"(measured {100 * rec.token_hit_rate:.1f}% at that budget)"
    )


if __name__ == "__main__":
    main()
