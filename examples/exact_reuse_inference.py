"""Exact-reuse inference with a real (NumPy) hybrid model.

Runs an actual hybrid LLM — Mamba-style selective-SSM layers, causal
attention, MLPs — behind the Marconi cache with real model states stored as
payloads, and verifies the paper's correctness premise live: outputs served
from cached checkpoints are bit-identical to a cache-less model, whether
checkpoints come from two-pass prefill or chunked state passing.

Run:  python examples/exact_reuse_inference.py
"""

import numpy as np

from repro.models import tiny_test_model
from repro.nn import HybridModel
from repro.serving import ExactReuseServer

rng = np.random.default_rng(42)


def main() -> None:
    config = tiny_test_model()
    reference = HybridModel(config, seed=0)  # no cache: ground truth

    for mode in ("exact", "chunked"):
        print(f"== prefill checkpointing mode: {mode} ==")
        server = ExactReuseServer(
            config, capacity_bytes=int(1e9), seed=0, prefill_mode=mode, chunk_size=16
        )
        system_prompt = rng.integers(0, config.vocab_size, 48, dtype=np.int32)
        for i in range(3):
            question = rng.integers(0, config.vocab_size, 16, dtype=np.int32)
            query = np.concatenate([system_prompt, question])
            served = server.serve(query, n_output=6)
            expected, _ = reference.generate(query, 6)
            exact = np.array_equal(served.output_tokens, expected)
            print(
                f"  request {i}: hit {served.hit_tokens:3d}/{len(query)} tokens, "
                f"prefilled {served.prefilled_tokens:3d}, "
                f"output exact match: {exact}"
            )
            assert exact, "cached serving diverged from the reference model!"

        # Conversation continuation: resume from the last decoded token.
        context = served.full_sequence
        followup = np.concatenate(
            [context, rng.integers(0, config.vocab_size, 12, dtype=np.int32)]
        )
        served = server.serve(followup, n_output=6)
        expected, _ = reference.generate(followup, 6)
        print(
            f"  follow-up : hit {served.hit_tokens:3d}/{len(followup)} tokens "
            f"(resumed from the previous round), exact match: "
            f"{np.array_equal(served.output_tokens, expected)}\n"
        )


if __name__ == "__main__":
    main()
