"""Fleet-scale steering: a sharded prefix directory with bounded staleness.

One multi-turn chat trace is served by a two-rack fleet under three
steering configurations.  Flat prefix affinity with the synchronous
directory oracle is the reference.  Swapping in a ``ShardedPrefixDirectory``
at zero propagation delay changes *nothing* — the sharded index is
lookup-identical to the oracle, so every routing decision (and therefore
the hit rate) matches exactly; that identity is what
``tests/test_sharded_directory.py`` locks down.  The third run is the
fleet-scale configuration: a ``HierarchicalRouter`` keeps sessions
rack-local on top of a sharded directory whose updates gossip with a
propagation delay, trading a bounded amount of staleness for the batched,
budgeted update flow a real deployment needs.  The staleness telemetry
printed at the end is the knob-setting evidence: how many updates were
batched, how stale the oldest applied entry was, and what it cost in hits.

Run:  python examples/sharded_fleet.py
"""

from _common import FAST
from repro import MarconiCache, hybrid_7b, simulate_cluster
from repro.cluster import (
    HierarchicalRouter,
    PrefixAffinityRouter,
    ShardedPrefixDirectory,
)
from repro.metrics import ascii_table
from repro.metrics.export import directory_staleness_summary
from repro.models.memory import node_state_bytes
from repro.workloads import generate_lmsys_trace

N_REPLICAS = 12 if FAST else 24
RACK_SIZE = 4
SESSIONS = 16 if FAST else 64
N_SHARDS = 4
REGION_TOKENS = 32
DELAY = 0.2


def sharded(delay: float = 0.0):
    kwargs = {"n_shards": N_SHARDS, "region_tokens": REGION_TOKENS}
    if delay:
        kwargs.update(propagation_delay=delay, gossip_interval=delay / 2)
    return ShardedPrefixDirectory(**kwargs)


def main() -> None:
    model = hybrid_7b()
    trace = generate_lmsys_trace(n_sessions=SESSIONS, seed=13, session_rate=2.0)
    per_cache = 6 * node_state_bytes(model, 2000, True)

    configs = [
        ("flat affinity, oracle directory", PrefixAffinityRouter()),
        (
            "flat affinity, sharded (sync)",
            PrefixAffinityRouter(directory_factory=sharded),
        ),
        (
            f"hierarchical, sharded (stale {DELAY:.1f}s)",
            HierarchicalRouter(
                rack_size=RACK_SIZE,
                directory_factory=lambda: sharded(DELAY),
            ),
        ),
    ]
    rows, results = [], []
    for label, router in configs:
        caches = [MarconiCache(model, per_cache, alpha=1.0) for _ in range(N_REPLICAS)]
        result = simulate_cluster(model, caches, router, trace)
        results.append((label, result))
        rows.append(
            [
                label,
                f"{100 * result.token_hit_rate:.1f}%",
                f"{result.ttft_percentile(95) * 1e3:.0f} ms",
                f"{result.load_fairness:.3f}",
            ]
        )
        assert all(cache.open_sessions == 0 for cache in caches)

    # Zero-delay conformance: the sharded backend must be decision-
    # identical to the oracle, so the end-to-end numbers agree exactly.
    assert results[0][1].token_hit_rate == results[1][1].token_hit_rate

    print(
        f"{N_REPLICAS} replicas in racks of {RACK_SIZE}, "
        f"{trace.n_requests} requests ({SESSIONS} chat sessions); "
        f"{N_SHARDS} directory shards, {REGION_TOKENS}-token regions\n"
    )
    print(ascii_table(["configuration", "hit rate", "P95 TTFT", "fairness"], rows))

    decisions = configs[2][1].decision_stats
    print(
        "\nhierarchical steering:",
        f"rack-local {decisions.get('rack_affinity', 0)},",
        f"spilled in-rack {decisions.get('rack_spilled', 0)},",
        f"cold {decisions.get('cold', 0)}",
    )
    staleness = directory_staleness_summary(results[2][1])
    print(
        "bounded staleness:",
        f"{staleness['events']} tree events batched into "
        f"{staleness['updates_applied']} applied shard updates,",
        f"max lookup age {staleness['lookup_age_max']:.2f}s "
        f"(bound: {DELAY:.1f}s delay + gossip interval)",
    )
    print(
        "\nThe sync sharded run matches the oracle row exactly — sharding\n"
        "changes where the index lives, not what it answers.  The stale run\n"
        "pays a small hit-rate tax for batched gossip: each replica's tree\n"
        "events coalesce into per-shard update batches that land within the\n"
        "propagation bound, so a just-served prefix is briefly invisible to\n"
        "the router but never wrongly attributed."
    )


if __name__ == "__main__":
    main()
