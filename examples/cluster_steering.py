"""Cluster steering: surviving failures and rebalancing with state transfers.

Four tiered-cache replicas serve a multi-turn chat trace while the cluster
changes under them: one replica *fails* mid-trace (its in-flight sessions
abort transactionally and re-route), another *drains* for maintenance, and
a fresh replica *joins* to absorb the load.  A ``DirectoryRouter`` steers
throughout: its prefix directory — maintained incrementally from every
replica's tree events — answers "who holds this prefix?" in one walk, and
its compute-or-load-or-both rule decides per request whether to copy hot
state across the interconnect (landing in the target's second tier),
recompute it, or *split* — ship the prefix head while the tail recomputes
in parallel.  Compare against the legacy all-or-nothing rule and against
plain prefix affinity without transfers: same failures, same re-routing,
but every displaced session pays full recompute on its new replica.

Run:  python examples/cluster_steering.py
"""

from _common import FAST
from repro import hybrid_7b
from repro.cluster import (
    DirectoryRouter,
    PrefixAffinityRouter,
    ScenarioEvent,
    simulate_cluster,
)
from repro.engine.latency import LatencyModel
from repro.metrics import ascii_table, format_bytes
from repro.models.memory import node_state_bytes
from repro.tiering import TieredMarconiCache
from repro.workloads import generate_lmsys_trace

N_REPLICAS = 4
SESSIONS = 16 if FAST else 48
FAIL_AT, DRAIN_AT, JOIN_AT = 3.0, 5.0, 6.0
# A PCIe-ish 3 GB/s interconnect: the mid-regime where neither endpoint
# of the compute-or-load rule dominates, so split plans actually fire.
TRANSFER_BW = 3e9


def make_cache(model, fleet=None):
    per_cache = 8 * node_state_bytes(model, 2000, True)
    cache = TieredMarconiCache(
        model, per_cache, secondary_bytes=per_cache, alpha=1.0
    )
    if fleet is not None:
        fleet.append(cache)
    return cache


def scenario(model, fleet):
    return [
        ScenarioEvent(FAIL_AT, "fail", replica=1),
        ScenarioEvent(DRAIN_AT, "drain", replica=0),
        ScenarioEvent(JOIN_AT, "join", cache_factory=lambda: make_cache(model, fleet)),
    ]


def main() -> None:
    model = hybrid_7b()
    trace = generate_lmsys_trace(n_sessions=SESSIONS, seed=11, session_rate=2.0)

    routers = [
        ("directory + split transfers", DirectoryRouter(transfer_min_tokens=32)),
        (
            "directory, all-or-nothing",
            DirectoryRouter(split=False, transfer_min_tokens=32),
        ),
        ("prefix affinity (no transfers)", PrefixAffinityRouter()),
    ]
    rows, results = [], []
    for label, router in routers:
        # `caches` also collects the replica joined mid-trace, so the
        # leak assertions below cover the whole final fleet.
        caches = [make_cache(model) for _ in range(N_REPLICAS)]
        result = simulate_cluster(
            model,
            caches,
            router,
            trace,
            scenario=scenario(model, fleet=caches),
            latency=LatencyModel(transfer_bandwidth_bytes_per_s=TRANSFER_BW),
        )
        results.append((label, result))
        rows.append(
            [
                label,
                f"{100 * result.token_hit_rate:.1f}%",
                f"{result.ttft_percentile(95) * 1e3:.0f} ms",
                str(result.steering_counter("reroutes")),
                str(result.steering_counter("transfers_completed")),
                str(result.steering_counter("transfers_split")),
                format_bytes(result.total_transfer_bytes),
                f"{result.overlap_seconds_saved * 1e3:.1f} ms",
            ]
        )
        # The failover contract: nothing leaks, everything gets served.
        assert all(cache.open_sessions == 0 for cache in caches)
        assert all(
            node.pin_count == 0
            for cache in caches
            for node in cache.tree.iter_nodes()
        )

    steering = results[0][1]
    print(
        f"{N_REPLICAS} replicas, {trace.n_requests} requests "
        f"({SESSIONS} chat sessions); replica 1 fails at t={FAIL_AT:.0f}s, "
        f"replica 0 drains at t={DRAIN_AT:.0f}s, a spare joins at t={JOIN_AT:.0f}s\n"
    )
    print(ascii_table(
        [
            "router",
            "hit rate",
            "P95 TTFT",
            "reroutes",
            "transfers",
            "splits",
            "moved",
            "overlap saved",
        ],
        rows,
    ))
    print(
        "\nper-replica admissions:",
        "/".join(str(c) for c in steering.routed_counts),
        f"(replica {steering.n_replicas - 1} joined mid-trace)",
    )
    print(
        "\nWhen a session is displaced — by the failure, the drain, or load\n"
        "spill — the steering router copies its checkpointed prefix to the\n"
        "new replica if the modeled transfer beats recompute, and with\n"
        "split=True (the default) it may ship only the prefix *head* while\n"
        "the tail recomputes in parallel, hiding the shorter leg ('overlap\n"
        "saved').  The all-or-nothing row is the legacy PR-4 rule; the\n"
        "plain router re-derives everything from scratch.  All keep every\n"
        "session alive: orphans abort through the transactional session\n"
        "path and re-route with zero leaked pins."
    )


if __name__ == "__main__":
    main()
