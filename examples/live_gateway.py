"""Live serving gateway: concurrent clients over one model, end to end.

Spins up the asyncio :class:`~repro.serving.gateway.Gateway` over an
:class:`~repro.serving.engine.ExactReuseServer` (real NumPy hybrid model
+ Marconi prefix cache) and walks through the front-door features:

* many concurrent clients sharing a system prompt — every output
  verified bit-identical to a cache-less reference model;
* SLO tiers — interactive traffic outranks a batch backlog;
* cancellation mid-decode — the request's session aborts and leaves
  zero pinned cache nodes behind;
* the response cache — a deterministic repeat is answered from memory
  without touching the model;
* the TCP line-protocol front-end — one connection, multiplexed
  requests.

Run:  python examples/live_gateway.py
"""

import asyncio
import json

import numpy as np

from _common import FAST
from repro.metrics import gateway_summary_dict
from repro.models import tiny_test_model
from repro.nn import HybridModel
from repro.serving import (
    ExactReuseServer,
    Gateway,
    GatewayClient,
    GatewayConfig,
    GatewayServer,
)

rng = np.random.default_rng(42)

N_CLIENTS = 4 if FAST else 16
N_BATCH = 2 if FAST else 6
N_OUTPUT = 4 if FAST else 8


async def main() -> None:
    config = tiny_test_model()
    reference = HybridModel(config, seed=0)  # no cache: ground truth
    server = ExactReuseServer(config, capacity_bytes=int(1e9), seed=0)

    system_prompt = rng.integers(0, config.vocab_size, 48, dtype=np.int32)
    queries = [
        np.concatenate(
            [system_prompt, rng.integers(0, config.vocab_size, 16, dtype=np.int32)]
        )
        for _ in range(N_CLIENTS)
    ]

    async with Gateway(server, GatewayConfig(n_workers=4)) as gw:
        # -- concurrent interactive clients + a batch backlog ------------
        interactive = [gw.submit(q, N_OUTPUT) for q in queries]
        batch = [
            gw.submit(
                rng.integers(0, config.vocab_size, 32, dtype=np.int32),
                N_OUTPUT,
                tier="batch",
            )
            for _ in range(N_BATCH)
        ]
        results = await asyncio.gather(*interactive, *batch)
        exact = all(
            np.array_equal(r.output_tokens, reference.generate(q, N_OUTPUT)[0])
            for q, r in zip(queries, results[:N_CLIENTS])
        )
        print(
            f"served {len(results)} concurrent requests "
            f"({N_CLIENTS} interactive + {N_BATCH} batch); "
            f"interactive outputs exact match: {exact}"
        )
        assert exact, "gateway serving diverged from the reference model!"

        # -- cancellation mid-decode aborts cleanly ----------------------
        doomed = asyncio.create_task(
            gw.submit(rng.integers(0, config.vocab_size, 40, dtype=np.int32), 64)
        )
        await asyncio.sleep(0.01)
        doomed.cancel()
        try:
            await doomed
        except asyncio.CancelledError:
            pass
        await gw.drain()
        pins = sum(n.pin_count for n in server.cache.tree.iter_nodes())
        print(
            f"cancelled one request mid-decode: open sessions "
            f"{server.cache.open_sessions}, pinned nodes {pins}"
        )

        # -- response cache: deterministic repeats skip the model --------
        repeat = await gw.submit(queries[0], N_OUTPUT)
        print(
            f"repeated request answered from response cache: "
            f"{repeat.from_response_cache} (byte-identical: "
            f"{np.array_equal(repeat.output_tokens, results[0].output_tokens)})"
        )

        # -- TCP front-end: one connection, multiplexed requests ---------
        async with GatewayServer(gw) as net:
            async with await GatewayClient.connect(net.host, net.port) as client:
                replies = await asyncio.gather(
                    *[client.request(q, N_OUTPUT) for q in queries[:3]]
                )
        net_exact = all(
            np.array_equal(reply["output"], reference.generate(q, N_OUTPUT)[0])
            for q, reply in zip(queries[:3], replies)
        )
        print(f"TCP round trip over {net.host}:{net.port} exact match: {net_exact}")
        assert net_exact, "network serving diverged from the reference model!"

        print("\ngateway summary:")
        print(json.dumps(gateway_summary_dict(gw), indent=2, sort_keys=True))


if __name__ == "__main__":
    asyncio.run(main())
