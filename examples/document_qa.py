"""Long-document QA: purely-input reuse at its most extreme.

Every request repeats a ~16K-token document and appends a short question
(the LooGLE-style scenario from the paper's taxonomy).  The example first
*measures* the reuse opportunity with the taxonomy analyzer, then compares
how much of it each policy banks — including the clairvoyant replay, the
offline upper bound any eviction order could reach.

Run:  python examples/document_qa.py
"""

from _common import FAST
from repro import MarconiCache, clairvoyant_replay, classify_trace, hybrid_7b
from repro.baselines import make_cache
from repro.metrics import ascii_table
from repro.workloads import generate_docqa_trace

CACHE_GB = 20


def replay(cache, trace):
    for now, _, _, inp, full in trace.iter_requests_nominal():
        with cache.begin(inp, now) as session:
            session.commit(full, now)
    return cache.stats.token_hit_rate


def main() -> None:
    model = hybrid_7b()
    trace = generate_docqa_trace(
        n_sessions=12 if FAST else 60, seed=11, session_rate=0.5
    )
    capacity = int(CACHE_GB * 1e9)

    report = classify_trace(trace)
    print(f"workload: {trace.n_requests} questions over "
          f"{trace.metadata['n_sessions']} sessions, 6 shared documents")
    print(report.summary_table())
    print(f"reuse opportunity (any cache's ceiling): "
          f"{100 * report.reusable_token_share:.1f}%\n")

    rows = []
    for name in ("vllm+", "sglang+", "marconi"):
        cache = make_cache(name, model, capacity)
        rows.append([name, f"{100 * replay(cache, trace):.1f}%"])
    oracle = clairvoyant_replay(model, trace, capacity)
    rows.append(["clairvoyant (offline bound)", f"{100 * oracle.token_hit_rate:.1f}%"])

    print(ascii_table(["policy", "token hit rate"], rows))
    print(
        "\nWith 16K-token documents, one fine-grained (vLLM+) request floods\n"
        f"the {CACHE_GB} GB cache with block checkpoints; Marconi stores two\n"
        "states per document and banks nearly the whole opportunity."
    )


if __name__ == "__main__":
    main()
