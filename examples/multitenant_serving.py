"""Multi-tenant serving: one cache, two traffic classes, who gets evicted?

A bursty chat tenant (ShareGPT-like: many short sessions) shares a Marconi
cache with an agentic tenant (SWE-Bench-like: few sessions, enormous
contexts, slow rounds).  Under LRU, every chat burst washes the agent's
checkpoints out of the cache before its next round returns.  FLOP-aware
eviction recognizes that one agent prefix is worth hundreds of chat
prefixes per byte and holds it — the paper's short-for-long trade, shown
per tenant.

Run:  python examples/multitenant_serving.py
"""

from collections import defaultdict

from _common import FAST

from repro import MarconiCache, hybrid_7b, simulate_trace
from repro.metrics import ascii_table
from repro.workloads import (
    component_of,
    generate_sharegpt_trace,
    generate_swebench_trace,
    mix_traces,
)

CACHE_GB = 12


def per_tenant(result, trace):
    tokens, hits = defaultdict(int), defaultdict(int)
    for record in result.records:
        tenant = component_of(trace, record.session_id)
        tokens[tenant] += record.input_len
        hits[tenant] += record.hit_tokens
    return {tenant: hits[tenant] / tokens[tenant] for tenant in tokens}


def main() -> None:
    model = hybrid_7b()
    chat = generate_sharegpt_trace(n_sessions=24 if FAST else 120, seed=1, session_rate=3.0,
                                   mean_think_s=3.0)
    agent = generate_swebench_trace(n_sessions=4 if FAST else 12, seed=2, session_rate=0.2,
                                    mean_think_s=10.0)
    mixed = mix_traces([chat, agent])
    print(
        f"tenants: chat={chat.n_requests} requests (bursty), "
        f"agent={agent.n_requests} requests (long contexts); "
        f"shared cache {CACHE_GB} GB\n"
    )

    rows = []
    for name, kwargs in {
        "lru": dict(eviction="lru"),
        "flop_aware": dict(eviction="flop_aware", alpha=1.0),
    }.items():
        cache = MarconiCache(model, int(CACHE_GB * 1e9), **kwargs)
        result = simulate_trace(model, cache, mixed, policy_name=name)
        tenants = per_tenant(result, mixed)
        rows.append(
            [
                name,
                f"{100 * result.token_hit_rate:.1f}%",
                f"{100 * tenants['sharegpt']:.1f}%",
                f"{100 * tenants['swebench']:.1f}%",
                f"{result.total_flops_saved:.3g}",
            ]
        )

    print(ascii_table(
        ["eviction", "overall hit", "chat tenant", "agent tenant", "FLOPs saved"],
        rows,
    ))
    print(
        "\nFLOP-aware eviction gives back a little of the chat tenant's hit\n"
        "rate to protect the agent's far more compute-dense prefixes — and\n"
        "comes out ahead on both overall hit rate and FLOPs saved."
    )


if __name__ == "__main__":
    main()
