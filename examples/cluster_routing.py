"""Cluster serving: how routing policy decides whether caches help at all.

Four replicas, each with its own Marconi cache, serve one multi-turn chat
trace under four routers.  Round-robin scatters a session's rounds across
replicas — every round misses because the conversation's states live
elsewhere.  Prefix-affinity routing (Preble-style) follows the cached
prefix and recovers most of the single-cache hit rate, at a small load-
balance cost that the fairness metrics make visible.

Run:  python examples/cluster_routing.py
"""

from _common import FAST
from repro import MarconiCache, hybrid_7b, simulate_cluster
from repro.cluster import make_router
from repro.cluster.router import ROUTER_NAMES
from repro.metrics import ascii_table
from repro.models.memory import node_state_bytes
from repro.workloads import generate_lmsys_trace

N_REPLICAS = 4
SESSIONS = 12 if FAST else 40


def main() -> None:
    model = hybrid_7b()
    trace = generate_lmsys_trace(n_sessions=SESSIONS, seed=7, session_rate=1.0)
    per_cache = 6 * node_state_bytes(model, 2000, True)

    rows = []
    for name in ROUTER_NAMES:
        caches = [MarconiCache(model, per_cache, alpha=1.0) for _ in range(N_REPLICAS)]
        result = simulate_cluster(model, caches, make_router(name), trace)
        rows.append(
            [
                name,
                f"{100 * result.token_hit_rate:.1f}%",
                f"{result.ttft_percentile(95) * 1e3:.0f} ms",
                f"{result.load_fairness:.3f}",
                "/".join(str(c) for c in result.routed_counts),
            ]
        )

    print(f"{N_REPLICAS} replicas x {per_cache / 1e9:.0f} GB caches, "
          f"{trace.n_requests} requests ({SESSIONS} chat sessions)\n")
    print(ascii_table(
        ["router", "token hit rate", "P95 TTFT", "jain fairness", "requests/replica"],
        rows,
    ))
    print(
        "\nPrefix affinity keeps each conversation on the replica that holds\n"
        "its states; content-blind balancing turns the cluster's caches into\n"
        "dead weight (hybrid states are all-or-nothing, so a mis-route loses\n"
        "the whole hit, not just part of it)."
    )


if __name__ == "__main__":
    main()
