"""Two-tier caching: a slower second tier rescues evicted checkpoints.

A contended primary tier (too small for the working set) is paired with a
larger second-tier store.  Checkpoints that the primary evicts are demoted
instead of discarded; conversations that return after a long pause are
served by promoting their states back, paying the secondary fetch
bandwidth instead of a full re-prefill.

Run:  python examples/tiered_serving.py
"""

from _common import FAST
from repro import LatencyModel, MarconiCache, TieredMarconiCache, hybrid_7b, simulate_trace
from repro.metrics import ascii_table
from repro.models.memory import node_state_bytes
from repro.workloads import generate_lmsys_trace


def main() -> None:
    model = hybrid_7b()
    trace = generate_lmsys_trace(n_sessions=12 if FAST else 40, seed=3, mean_think_s=8.0)
    primary = 5 * node_state_bytes(model, 2000, True)
    latency = LatencyModel()  # 25 GB/s primary fetch, 8 GB/s secondary

    variants = {
        "single-tier": MarconiCache(model, primary, alpha=1.0),
        "tiered (+200 GB)": TieredMarconiCache(
            model, primary, int(200e9), alpha=1.0, secondary_policy="flop_aware"
        ),
    }

    rows = []
    for name, cache in variants.items():
        result = simulate_trace(model, cache, trace, latency, policy_name=name)
        extra = cache.stats.extra
        rows.append(
            [
                name,
                f"{100 * result.token_hit_rate:.1f}%",
                f"{result.ttft_percentile(95) * 1e3:.0f} ms",
                str(extra.get("demotions", 0)),
                str(extra.get("promotions", 0)),
            ]
        )

    print(
        f"primary tier: {primary / 1e9:.0f} GB | trace: {trace.n_requests} requests, "
        f"long think times force churn\n"
    )
    print(ascii_table(
        ["cache", "token hit rate", "P95 TTFT", "demotions", "promotions"], rows,
    ))
    print(
        "\nDemoted entries are self-contained (checkpoint + the prefix's KVs),\n"
        "so the second tier trades bytes for the ability to survive primary\n"
        "evictions; promotions pay the slower fetch but skip the prefill."
    )


if __name__ == "__main__":
    main()
