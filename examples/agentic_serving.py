"""Agentic serving: FLOP-aware eviction on a SWE-Bench-like workload.

The agentic workload has the paper's widest input-length distribution
(trajectories grow from hundreds of tokens to tens of thousands), which is
exactly where FLOP-aware eviction pays: under cache contention it trades
hit rate on short trajectories for hit rate on long ones (paper Fig. 10).
This example reproduces that fine-grained view: per-length-bin hit-rate
difference between Marconi and SGLang+ (LRU).

Run:  python examples/agentic_serving.py [cache_gb]
"""

import sys

import numpy as np

from repro import (
    WorkloadParams,
    generate_swebench_trace,
    hybrid_7b,
    make_cache,
    simulate_trace,
)
from repro.metrics.hit_rate import mean_hit_rate_by_length_bin
from repro.metrics.reporting import ascii_table

from _common import FAST

GB = 1e9


def main() -> None:
    cache_gb = float(sys.argv[1]) if len(sys.argv) > 1 else 35.0
    model = hybrid_7b()
    trace = generate_swebench_trace(
        WorkloadParams(
            n_sessions=24 if FAST else 160,
            session_rate=2.0, mean_think_s=7.5, seed=7,
        )
    )
    print(
        f"workload: {trace.n_requests} agent steps over {trace.n_sessions} "
        f"trajectories; inputs up to {trace.input_lengths().max():,} tokens\n"
    )
    results = {}
    for policy in ("sglang+", "marconi"):
        cache = make_cache(policy, model, int(cache_gb * GB))
        results[policy] = simulate_trace(model, cache, trace, policy_name=policy)

    edges = np.arange(0, trace.input_lengths().max() + 5000, 5000)
    marconi_rates, counts = mean_hit_rate_by_length_bin(results["marconi"].records, edges)
    sglang_rates, _ = mean_hit_rate_by_length_bin(results["sglang+"].records, edges)
    rows = []
    for i in range(len(edges) - 1):
        if counts[i] == 0:
            continue
        rows.append(
            [
                f"{edges[i] // 1000}-{edges[i + 1] // 1000}K",
                int(counts[i]),
                f"{100 * sglang_rates[i]:.1f}%",
                f"{100 * marconi_rates[i]:.1f}%",
                f"{100 * (marconi_rates[i] - sglang_rates[i]):+.1f}%",
            ]
        )
    print(ascii_table(["input length", "requests", "sglang+ (LRU)", "marconi", "diff"], rows))
    win = results["marconi"].token_hit_rate / max(results["sglang+"].token_hit_rate, 1e-4) - 1
    print(
        f"\noverall: marconi {100 * results['marconi'].token_hit_rate:.1f}% vs "
        f"sglang+ {100 * results['sglang+'].token_hit_rate:.1f}% "
        f"({100 * win:+.1f}%) — expect losses on short bins, wins on long ones"
    )


if __name__ == "__main__":
    main()
