"""Warm restarts: snapshot the cache bookkeeping across a server restart.

Serves the first half of a chat workload, snapshots the cache to disk,
"restarts" into a fresh process state, restores, and serves the second
half.  The windowed hit-rate timeline shows the cold restart's warmup dip
— and the warm restart avoiding it entirely.

Run:  python examples/warm_restart.py
"""

from _common import FAST
from repro import MarconiCache, hybrid_7b
from repro.analysis import windowed_hit_rate
from repro.core.persistence import load_cache, save_cache
from repro.engine.results import RequestRecord
from repro.metrics import ascii_table
from repro.models.memory import node_state_bytes
from repro.workloads import generate_lmsys_trace

SNAPSHOT = "/tmp/marconi_cache_snapshot.npz"


def replay(cache, requests, records):
    for now, sid, k, inp, full in requests:
        with cache.begin(inp, now) as session:
            records.append(
                RequestRecord(
                    session_id=sid, round_index=k, arrival_time=now, service_start=now,
                    prefill_seconds=0.0, ttft=0.0, input_len=len(inp),
                    hit_tokens=session.hit_tokens, output_len=len(full) - len(inp),
                    reused_bytes=session.reused_bytes, flops_saved=0.0,
                )
            )
            session.commit(full, now)


def main() -> None:
    model = hybrid_7b()
    capacity = 40 * node_state_bytes(model, 3000, True)
    trace = generate_lmsys_trace(n_sessions=12 if FAST else 40, seed=13)
    requests = list(trace.iter_requests_nominal())
    half = len(requests) // 2

    # First shift, then snapshot.
    cache = MarconiCache(model, capacity, alpha=1.0)
    first_half: list[RequestRecord] = []
    replay(cache, requests[:half], first_half)
    save_cache(cache, SNAPSHOT)
    print(
        f"snapshot after {half} requests: {cache.tree.n_nodes} nodes, "
        f"{cache.used_bytes / 1e9:.2f} GB of state bookkeeping\n"
    )

    # Second shift, twice: cold restart vs warm restore.
    variants = {
        "cold restart": MarconiCache(model, capacity, alpha=1.0),
        "warm restore": load_cache(model, capacity, SNAPSHOT, alpha=1.0),
    }
    rows = []
    for name, restarted in variants.items():
        records: list[RequestRecord] = []
        replay(restarted, requests[half:], records)
        windows = windowed_hit_rate(records, window=25)
        rows.append(
            [
                name,
                f"{100 * windows[0].token_hit_rate:.1f}%",
                f"{100 * windows[-1].token_hit_rate:.1f}%",
                f"{100 * sum(r.hit_tokens for r in records) / sum(r.input_len for r in records):.1f}%",
            ]
        )

    print(ascii_table(
        ["second shift", "first window", "last window", "overall"], rows,
    ))
    print(
        "\nThe cold cache spends its first windows missing on every returning\n"
        "conversation; the restored tree serves them immediately."
    )


if __name__ == "__main__":
    main()
