"""Chatbot serving: compare all four policies on an LMSys-like workload.

Generates a multi-turn chat trace (Poisson session arrivals, lognormal
lengths, shared system prompts), replays it through the discrete-event
serving simulator under each caching policy, and prints the paper's
headline metrics: token hit rate and P50/P95 TTFT.

Run:  python examples/chatbot_serving.py [cache_gb]
"""

import sys

from _common import FAST
from repro import (
    LatencyModel,
    WorkloadParams,
    generate_lmsys_trace,
    hybrid_7b,
    make_cache,
    simulate_trace,
)
from repro.metrics.reporting import ascii_table

GB = 1e9
POLICIES = ("vanilla", "vllm+", "sglang+", "marconi")


def main() -> None:
    cache_gb = float(sys.argv[1]) if len(sys.argv) > 1 else 8.0
    model = hybrid_7b()
    latency = LatencyModel()
    trace = generate_lmsys_trace(
        WorkloadParams(
            n_sessions=24 if FAST else 120,
            session_rate=2.0, mean_think_s=5.0, seed=7,
        )
    )
    print(
        f"workload: {trace.n_requests} requests over {trace.n_sessions} sessions, "
        f"{trace.total_input_tokens:,} input tokens; cache {cache_gb:g} GB\n"
    )
    rows = []
    for policy in POLICIES:
        cache = make_cache(policy, model, int(cache_gb * GB))
        result = simulate_trace(model, cache, trace, latency, policy_name=policy)
        rows.append(
            [
                policy,
                f"{100 * result.token_hit_rate:.1f}%",
                f"{1000 * result.ttft_percentile(50):.0f} ms",
                f"{1000 * result.ttft_percentile(95):.0f} ms",
                f"{result.total_flops_saved:.3g}",
                f"{result.cache_stats.get('evictions', 0)}",
            ]
        )
    print(
        ascii_table(
            ["policy", "token hit rate", "P50 TTFT", "P95 TTFT", "FLOPs saved", "evictions"],
            rows,
        )
    )
    print(
        "\nExpected shape (paper Figs. 7-9): marconi >= sglang+ >> vllm+ on hit"
        " rate, with matching TTFT ordering; vanilla defines the TTFT ceiling."
    )


if __name__ == "__main__":
    main()
