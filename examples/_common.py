"""Shared knobs for the runnable examples.

CI's examples smoke lane sets ``REPRO_EXAMPLES_FAST=1`` to shrink every
example's workload to a fast pass; each example imports :data:`FAST` from
here so the idiom lives in one place.  (Examples run as scripts, so plain
``from _common import FAST`` resolves against the script's directory.)
"""

import os

FAST = os.environ.get("REPRO_EXAMPLES_FAST") == "1"
