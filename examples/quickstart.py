"""Quickstart: Marconi's prefix cache in fifty lines.

Demonstrates the two reuse classes from the paper's admission taxonomy:

* input + output reuse — a chat session whose every round extends the
  previous round's full sequence (hits immediately from round 2);
* purely-input reuse — distinct requests sharing a system prompt (the
  second occurrence checkpoints the branch, the third gets the hit).

This file drives the cache directly with a hand-rolled clock.  For
whole-trace replays under the analytic latency model, use the
kernel-backed engine constructors instead — ``ServingSimulator`` /
``simulate_trace`` (FCFS, ``n_executors`` concurrent prefill slots),
``IterationSimulator`` / ``simulate_trace_iteration`` (chunked-prefill
iteration batching, TBT tails), and ``ClusterSimulator`` /
``simulate_cluster`` (N routed replicas) — all thin configurations of
``repro.engine.kernel.SimulationKernel``; see ``examples/chatbot_serving.py``
and ``examples/cluster_routing.py``.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MarconiCache, hybrid_7b

GB = 1e9
rng = np.random.default_rng(0)


def fresh(n: int) -> np.ndarray:
    return rng.integers(0, 32000, size=n, dtype=np.int32)


def main() -> None:
    model = hybrid_7b()  # the paper's 7B hybrid: 4 Attn / 24 SSM / 28 MLP
    cache = MarconiCache(model, capacity_bytes=int(20 * GB), alpha=1.0)
    clock = 0.0

    def serve(input_tokens: np.ndarray, n_output: int) -> np.ndarray:
        nonlocal clock
        clock += 1.0
        with cache.begin(input_tokens, clock) as session:
            print(
                f"  request of {len(input_tokens):5d} tokens: "
                f"hit {session.hit_tokens:5d} tokens "
                f"({100 * session.hit_rate:5.1f}%), "
                f"branch checkpoints at {session.checkpoint_positions or '—'}"
            )
            full = np.concatenate([input_tokens, fresh(n_output)])
            session.commit(full, clock + 0.5)
        return full

    print("== Conversation (input + output reuse) ==")
    context = fresh(300)
    for _ in range(3):
        full = serve(context, n_output=150)
        context = np.concatenate([full, fresh(60)])  # next user turn

    print("\n== Shared system prompt (purely-input reuse) ==")
    system_prompt = fresh(500)
    for i in range(3):
        serve(np.concatenate([system_prompt, fresh(80)]), n_output=40)

    stats = cache.stats
    print(
        f"\ntoken hit rate: {100 * stats.token_hit_rate:.1f}%  |  "
        f"cache used: {cache.used_bytes / GB:.2f} / {cache.capacity_bytes / GB:.0f} GB  |  "
        f"FLOPs saved: {stats.flops_saved:.3g}"
    )


if __name__ == "__main__":
    main()
