"""Tests for multi-executor serving and the throughput/export metrics."""

import numpy as np
import pytest

from repro.core.cache import MarconiCache
from repro.engine.results import EngineResult, RequestRecord
from repro.engine.server import ServingSimulator, simulate_trace
from repro.metrics.export import (
    records_from_csv,
    records_to_csv,
    summary_dict,
    summary_from_json,
    summary_to_json,
)
from repro.metrics.throughput import (
    computed_prefill_throughput_tokens_per_s,
    executor_utilization,
    makespan_seconds,
    prefill_throughput_tokens_per_s,
)
from repro.models.memory import node_state_bytes
from repro.workloads.lmsys import generate_lmsys_trace
from repro.workloads.selfconsistency import generate_selfconsistency_trace


def _cache(hybrid, seqs=50):
    return MarconiCache(hybrid, seqs * node_state_bytes(hybrid, 2000, True), alpha=1.0)


class TestMultiExecutor:
    def test_rejects_zero_executors(self, hybrid):
        with pytest.raises(ValueError):
            ServingSimulator(hybrid, _cache(hybrid), n_executors=0)

    def test_serves_all_requests(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=10, seed=31)
        result = simulate_trace(hybrid, _cache(hybrid), trace, n_executors=4)
        assert result.n_requests == trace.n_requests

    def test_more_executors_cut_queueing(self, hybrid):
        """Bursty identical arrivals (self-consistency) queue on one
        executor and overlap on many."""
        trace = generate_selfconsistency_trace(n_sessions=6, seed=32, session_rate=2.0)
        serial = simulate_trace(hybrid, _cache(hybrid), trace, n_executors=1)
        parallel = simulate_trace(hybrid, _cache(hybrid), trace, n_executors=8)
        assert parallel.ttft_percentile(95) < serial.ttft_percentile(95)
        assert parallel.mean_queue_delay() <= serial.mean_queue_delay()

    def test_single_executor_unchanged_by_default(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=6, seed=33)
        a = simulate_trace(hybrid, _cache(hybrid), trace)
        b = simulate_trace(hybrid, _cache(hybrid), trace, n_executors=1)
        assert a.token_hit_rate == b.token_hit_rate
        assert np.allclose(a.ttfts(), b.ttfts())

    def test_concurrent_prefills_overlap_in_time(self, hybrid):
        trace = generate_selfconsistency_trace(n_sessions=3, seed=34, session_rate=5.0)
        result = simulate_trace(hybrid, _cache(hybrid), trace, n_executors=4)
        intervals = sorted(
            (r.service_start, r.service_start + r.prefill_seconds)
            for r in result.records
        )
        overlaps = sum(
            1
            for (s1, e1), (s2, _) in zip(intervals, intervals[1:])
            if s2 < e1
        )
        assert overlaps > 0


def _toy_result():
    records = [
        RequestRecord(
            session_id=0, round_index=0, arrival_time=0.0, service_start=0.0,
            prefill_seconds=1.0, ttft=1.0, input_len=1000, hit_tokens=0,
            output_len=10, reused_bytes=0, flops_saved=0.0,
        ),
        RequestRecord(
            session_id=0, round_index=1, arrival_time=2.0, service_start=2.0,
            prefill_seconds=1.0, ttft=1.0, input_len=1000, hit_tokens=600,
            output_len=10, reused_bytes=100, flops_saved=1e9,
        ),
    ]
    return EngineResult(policy="toy", records=records)


class TestThroughput:
    def test_makespan(self):
        assert makespan_seconds(_toy_result()) == pytest.approx(3.0)
        assert makespan_seconds(EngineResult(policy="empty")) == 0.0

    def test_prefill_throughput_counts_hits(self):
        assert prefill_throughput_tokens_per_s(_toy_result()) == pytest.approx(2000 / 3)

    def test_computed_throughput_excludes_hits(self):
        assert computed_prefill_throughput_tokens_per_s(_toy_result()) == pytest.approx(
            1400 / 3
        )

    def test_utilization(self):
        result = _toy_result()
        assert executor_utilization(result) == pytest.approx(2.0 / 3.0)
        assert executor_utilization(result, n_executors=2) == pytest.approx(1.0 / 3.0)
        with pytest.raises(ValueError):
            executor_utilization(result, n_executors=0)

    def test_empty_result_is_zero(self):
        empty = EngineResult(policy="empty")
        assert prefill_throughput_tokens_per_s(empty) == 0.0
        assert executor_utilization(empty) == 0.0


class TestExport:
    def test_csv_roundtrip(self, tmp_path):
        result = _toy_result()
        path = tmp_path / "records.csv"
        records_to_csv(result, path)
        rows = records_from_csv(path)
        assert len(rows) == 2
        assert rows[1]["hit_tokens"] == 600
        assert rows[1]["flops_saved"] == pytest.approx(1e9)

    def test_summary_fields(self):
        summary = summary_dict(_toy_result())
        assert summary["policy"] == "toy"
        assert summary["n_requests"] == 2
        assert summary["token_hit_rate"] == pytest.approx(600 / 2000)
        assert "ttft_p95" in summary

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "summary.json"
        summary_to_json(_toy_result(), path)
        loaded = summary_from_json(path)
        assert loaded["policy"] == "toy"
        assert loaded["token_hit_rate"] == pytest.approx(0.3)

    def test_real_run_exports(self, hybrid, tmp_path):
        trace = generate_lmsys_trace(n_sessions=5, seed=35)
        result = simulate_trace(hybrid, _cache(hybrid), trace, policy_name="marconi")
        records_to_csv(result, tmp_path / "r.csv")
        summary_to_json(result, tmp_path / "s.json")
        assert len(records_from_csv(tmp_path / "r.csv")) == result.n_requests
        assert summary_from_json(tmp_path / "s.json")["policy"] == "marconi"
