"""Tests for the assembled hybrid model and its checkpointing prefill."""

import numpy as np
import pytest

from repro.models.config import LayerType, ModelConfig
from repro.models.presets import tiny_test_model
from repro.nn.hybrid import HybridModel, layer_sequence
from repro.nn.states import KVState, RecurrentState


def states_close(a, b, rtol=1e-9, atol=1e-12) -> bool:
    for sa, sb in zip(a.layers, b.layers):
        if sa is None and sb is None:
            continue
        if isinstance(sa, KVState):
            if not (np.allclose(sa.k, sb.k, rtol=rtol, atol=atol)
                    and np.allclose(sa.v, sb.v, rtol=rtol, atol=atol)):
                return False
        elif isinstance(sa, RecurrentState):
            if not (np.allclose(sa.ssm, sb.ssm, rtol=rtol, atol=atol)
                    and np.allclose(sa.conv, sb.conv, rtol=rtol, atol=atol)):
                return False
    return a.seq_len == b.seq_len


class TestLayerSequence:
    def test_counts_exact(self, tiny, hybrid):
        for config in (tiny, hybrid):
            seq = layer_sequence(config)
            assert seq.count(LayerType.ATTENTION) == config.n_attention
            assert seq.count(LayerType.SSM) == config.n_ssm
            assert seq.count(LayerType.MLP) == config.n_mlp

    def test_attention_spread_out(self, hybrid):
        """Attention layers are interleaved, not clumped at one end."""
        seq = [t for t in layer_sequence(hybrid) if t is not LayerType.MLP]
        positions = [i for i, t in enumerate(seq) if t is LayerType.ATTENTION]
        gaps = np.diff(positions)
        assert len(positions) == 4
        assert all(g >= 3 for g in gaps)

    def test_pure_models(self):
        mamba_like = ModelConfig("m", 32, 8, 0, 4, 0, n_heads=4)
        assert set(layer_sequence(mamba_like)) == {LayerType.SSM}
        transformer_like = ModelConfig("t", 32, 0, 3, 0, 3, n_heads=4)
        counted = layer_sequence(transformer_like)
        assert counted.count(LayerType.ATTENTION) == 3


class TestForward:
    def test_logit_shapes(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        toks = tokens(10, seed=1) % tiny.vocab_size
        logits, state = model.forward(toks, model.init_state())
        assert logits.shape == (10, tiny.vocab_size)
        assert state.seq_len == 10

    def test_incremental_equals_full(self, tiny, tokens):
        """Full forward == forward in two segments (all layer types)."""
        model = HybridModel(tiny, seed=0)
        toks = tokens(24, seed=2) % tiny.vocab_size
        full_logits, full_state = model.forward(toks, model.init_state())
        l1, s1 = model.forward(toks[:11], model.init_state())
        l2, s2 = model.forward(toks[11:], s1)
        assert np.allclose(full_logits, np.concatenate([l1, l2]), rtol=1e-9, atol=1e-12)
        assert states_close(full_state, s2)

    def test_rejects_empty(self, tiny):
        model = HybridModel(tiny, seed=0)
        with pytest.raises(ValueError):
            model.forward(np.asarray([], dtype=np.int32), model.init_state())

    def test_deterministic_in_seed(self, tiny, tokens):
        toks = tokens(8, seed=3) % tiny.vocab_size
        a, _ = HybridModel(tiny, seed=5).forward(toks, HybridModel(tiny, seed=5).init_state())
        m = HybridModel(tiny, seed=5)
        b, _ = m.forward(toks, m.init_state())
        assert np.allclose(a, b)


class TestCheckpointingPrefill:
    def test_exact_checkpoints_match_prefix_states(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        toks = tokens(50, seed=4) % tiny.vocab_size
        result = model.prefill(toks, checkpoint_positions=(20, 35), mode="exact")
        assert set(result.checkpoints) == {20, 35}
        for pos, checkpoint in result.checkpoints.items():
            reference = model.prefill(toks[:pos])
            assert states_close(checkpoint, reference.state)

    def test_exact_split_does_not_change_logits(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        toks = tokens(40, seed=5) % tiny.vocab_size
        plain = model.prefill(toks)
        split = model.prefill(toks, checkpoint_positions=(13, 27), mode="exact")
        assert np.allclose(plain.logits, split.logits, rtol=1e-9, atol=1e-12)

    def test_chunked_snaps_to_boundaries(self, tiny, tokens):
        """Chunked state passing checkpoints at the chunk boundary at or
        before the requested position (section 4.1's example: want 80,
        chunk 32 -> checkpoint at 64)."""
        model = HybridModel(tiny, seed=0)
        toks = tokens(100, seed=6) % tiny.vocab_size
        result = model.prefill(toks, checkpoint_positions=(80,), mode="chunked", chunk_size=32)
        assert set(result.checkpoints) == {64}
        reference = model.prefill(toks[:64])
        assert states_close(result.checkpoints[64], reference.state)

    def test_chunked_already_aligned(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        toks = tokens(100, seed=7) % tiny.vocab_size
        result = model.prefill(toks, checkpoint_positions=(64,), mode="chunked", chunk_size=32)
        assert set(result.checkpoints) == {64}

    def test_rollforward_lands_on_exact_positions(self, tiny, tokens):
        """Chunk-snapped states rolled forward match the exact-mode states
        at the requested (unaligned) positions."""
        model = HybridModel(tiny, seed=0)
        toks = tokens(100, seed=61) % tiny.vocab_size
        rolled = model.prefill(
            toks, checkpoint_positions=(23, 80), mode="chunked_rollforward", chunk_size=32
        )
        assert set(rolled.checkpoints) == {23, 80}
        for pos in (23, 80):
            reference = model.prefill(toks[:pos])
            assert states_close(rolled.checkpoints[pos], reference.state)

    def test_rollforward_matches_chunked_on_aligned_positions(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        toks = tokens(96, seed=62) % tiny.vocab_size
        rolled = model.prefill(
            toks, checkpoint_positions=(64,), mode="chunked_rollforward", chunk_size=32
        )
        chunked = model.prefill(
            toks, checkpoint_positions=(64,), mode="chunked", chunk_size=32
        )
        assert set(rolled.checkpoints) == set(chunked.checkpoints) == {64}
        assert states_close(rolled.checkpoints[64], chunked.checkpoints[64])

    def test_rollforward_within_first_chunk(self, tiny, tokens):
        """A position before the first boundary rolls forward from the
        initial state."""
        model = HybridModel(tiny, seed=0)
        toks = tokens(50, seed=63) % tiny.vocab_size
        rolled = model.prefill(
            toks, checkpoint_positions=(5,), mode="chunked_rollforward", chunk_size=32
        )
        reference = model.prefill(toks[:5])
        assert states_close(rolled.checkpoints[5], reference.state)

    def test_rollforward_at_segment_end(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        toks = tokens(40, seed=64) % tiny.vocab_size
        rolled = model.prefill(
            toks, checkpoint_positions=(40,), mode="chunked_rollforward", chunk_size=32
        )
        assert states_close(rolled.checkpoints[40], rolled.state)

    def test_rollforward_logits_unchanged(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        toks = tokens(70, seed=65) % tiny.vocab_size
        plain = model.prefill(toks)
        rolled = model.prefill(
            toks, checkpoint_positions=(17, 41), mode="chunked_rollforward", chunk_size=16
        )
        assert np.allclose(plain.logits, rolled.logits, rtol=1e-9, atol=1e-12)

    def test_rollforward_resume_is_exact(self, tiny, tokens):
        """Serving from a rolled-forward checkpoint reproduces the full
        prefill bit-for-bit — the same premise as exact mode."""
        model = HybridModel(tiny, seed=0)
        toks = tokens(60, seed=66) % tiny.vocab_size
        full = model.prefill(toks)
        ck = model.prefill(
            toks, checkpoint_positions=(37,), mode="chunked_rollforward", chunk_size=16
        ).checkpoints[37]
        resumed = model.prefill(toks[37:], ck)
        assert np.allclose(resumed.logits, full.logits[37:], rtol=1e-9, atol=1e-12)
        assert states_close(resumed.state, full.state)

    def test_two_pass_equals_exact(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        toks = tokens(60, seed=8) % tiny.vocab_size
        exact = model.prefill(toks, checkpoint_positions=(25,), mode="exact")
        two_pass = model.prefill(toks, checkpoint_positions=(25,), mode="two_pass")
        assert np.allclose(exact.logits, two_pass.logits)
        assert states_close(exact.checkpoints[25], two_pass.checkpoints[25])

    def test_resume_from_checkpoint_exact(self, tiny, tokens):
        """The paper's premise: serving from a checkpoint is exact."""
        model = HybridModel(tiny, seed=0)
        toks = tokens(60, seed=9) % tiny.vocab_size
        full = model.prefill(toks)
        ck = model.prefill(toks, checkpoint_positions=(30,)).checkpoints[30]
        resumed = model.prefill(toks[30:], ck)
        assert np.allclose(resumed.logits, full.logits[30:], rtol=1e-9, atol=1e-12)
        assert states_close(resumed.state, full.state)

    def test_prefill_from_nonzero_state_positions_are_global(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        toks = tokens(50, seed=10) % tiny.vocab_size
        first = model.prefill(toks[:20])
        second = model.prefill(toks[20:], first.state, checkpoint_positions=(35,))
        assert set(second.checkpoints) == {35}
        reference = model.prefill(toks[:35])
        assert states_close(second.checkpoints[35], reference.state)

    def test_checkpoint_position_validation(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        toks = tokens(20, seed=11) % tiny.vocab_size
        with pytest.raises(ValueError, match="outside"):
            model.prefill(toks, checkpoint_positions=(25,))
        with pytest.raises(ValueError, match="outside"):
            model.prefill(toks, checkpoint_positions=(0,))
        with pytest.raises(ValueError, match="mode"):
            model.prefill(toks, mode="bogus")

    def test_checkpoint_at_end_is_final_state(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        toks = tokens(30, seed=12) % tiny.vocab_size
        result = model.prefill(toks, checkpoint_positions=(30,))
        assert states_close(result.checkpoints[30], result.state)


class TestGeneration:
    def test_generate_is_deterministic(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        prompt = tokens(15, seed=13) % tiny.vocab_size
        a, _ = model.generate(prompt, 6)
        b, _ = model.generate(prompt, 6)
        np.testing.assert_array_equal(a, b)

    def test_generate_matches_manual_decode(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        prompt = tokens(10, seed=14) % tiny.vocab_size
        generated, _ = model.generate(prompt, 4)
        result = model.prefill(prompt)
        logits, state = result.logits[-1], result.state
        manual = []
        for _ in range(4):
            tok = int(np.argmax(logits))
            manual.append(tok)
            logits, state = model.decode_step(tok, state)
        np.testing.assert_array_equal(generated, manual)

    def test_generate_validation(self, tiny, tokens):
        model = HybridModel(tiny, seed=0)
        with pytest.raises(ValueError):
            model.generate(tokens(5, seed=15) % tiny.vocab_size, 0)
