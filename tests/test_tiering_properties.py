"""Property-based tests: SecondaryStore vs a brute-force dict reference."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.latency import LatencyModel
from repro.models.presets import hybrid_7b
from repro.tiering.secondary import SecondaryStore

# Small alphabet + short lengths force prefix collisions and bucket reuse.
prefix = st.lists(st.integers(0, 2), min_size=1, max_size=8)


@st.composite
def op_stream(draw):
    ops = []
    n = draw(st.integers(1, 25))
    for step in range(n):
        kind = draw(st.sampled_from(["insert", "remove", "match"]))
        ops.append((kind, tuple(draw(prefix)), draw(st.integers(1, 50))))
    return ops


class TestSecondaryStoreProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=op_stream())
    def test_matches_unbounded_reference(self, ops):
        """With unlimited capacity the store is an exact prefix dictionary."""
        store = SecondaryStore(10**9)
        reference: dict[tuple, int] = {}
        clock = 0.0
        for kind, tokens, nbytes in ops:
            clock += 1.0
            arr = np.asarray(tokens, dtype=np.int32)
            if kind == "insert":
                assert store.insert(arr, nbytes, now=clock)
                reference[tokens] = nbytes
            elif kind == "remove":
                removed = store.remove(arr)
                if tokens in reference:
                    assert removed is not None and removed.nbytes == reference.pop(tokens)
                else:
                    assert removed is None
            else:  # match: longest stored proper prefix
                hit = store.longest_match(arr, max_len=len(arr), now=clock)
                expected = max(
                    (len(p) for p in reference if p == tokens[: len(p)]),
                    default=0,
                )
                assert (hit.seq_len if hit else 0) == expected
            assert store.used_bytes == sum(reference.values())
            assert store.n_entries == len(reference)

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(st.tuples(prefix, st.integers(50, 200)), min_size=1, max_size=30),
        capacity=st.integers(100, 800),
        policy=st.sampled_from(["lru", "flop_aware"]),
    )
    def test_capacity_never_exceeded(self, ops, capacity, policy):
        store = SecondaryStore(capacity, policy=policy)
        clock = 0.0
        for tokens, nbytes in ops:
            clock += 1.0
            store.insert(
                np.asarray(tokens, dtype=np.int32), nbytes, now=clock,
                flop_efficiency=float(nbytes % 7),
            )
            assert store.used_bytes <= capacity
            assert store.used_bytes == sum(e.nbytes for e in store.iter_entries())

    @settings(max_examples=40, deadline=None)
    @given(
        seq=st.lists(st.integers(0, 30000), min_size=2, max_size=64),
        cuts=st.sets(st.integers(1, 63), min_size=1, max_size=6),
    )
    def test_longest_match_is_deepest_stored_cut(self, seq, cuts):
        store = SecondaryStore(10**9)
        arr = np.asarray(seq, dtype=np.int32)
        valid_cuts = sorted(c for c in cuts if c < len(arr))
        for cut in valid_cuts:
            store.insert(arr[:cut], 10, now=0.0)
        hit = store.longest_match(arr, max_len=len(arr) - 1, now=1.0)
        if valid_cuts:
            assert hit is not None and hit.seq_len == max(valid_cuts)
        else:
            assert hit is None


class TestLatencyProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        seq_len=st.integers(2, 30000),
        reuse_frac=st.floats(0.0, 1.0),
        reused_bytes=st.integers(0, 10**10),
    )
    def test_reuse_never_slower_without_fetch(self, seq_len, reuse_frac, reused_bytes):
        """More compute reuse (at zero fetch cost) never increases prefill time."""
        model = hybrid_7b()
        latency = LatencyModel()
        reused = int(reuse_frac * (seq_len - 1))
        with_reuse = latency.prefill_seconds(model, seq_len, reused, 0)
        without = latency.prefill_seconds(model, seq_len, 0, 0)
        assert with_reuse <= without + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(
        seq_len=st.integers(2, 30000),
        reused_bytes=st.integers(1, 10**10),
        secondary_frac=st.floats(0.0, 1.0),
    )
    def test_secondary_fetch_monotone(self, seq_len, reused_bytes, secondary_frac):
        """Shifting fetched bytes to the slower tier never speeds things up."""
        model = hybrid_7b()
        latency = LatencyModel()
        secondary = int(secondary_frac * reused_bytes)
        mixed = latency.prefill_seconds(
            model, seq_len, seq_len // 2, reused_bytes, secondary_bytes=secondary
        )
        all_primary = latency.prefill_seconds(
            model, seq_len, seq_len // 2, reused_bytes, secondary_bytes=0
        )
        assert mixed >= all_primary - 1e-12
