"""Cluster steering: state transfers, elastic scenarios, and failover.

Covers the kernel-executed side of the steering subsystem: the
compute-or-load transfer path through the tiering layer's second tier,
replicas failing (transactional aborts, directory invalidation, orphan
re-routing), draining, and joining mid-trace, plus the telemetry and JSON
export surface.
"""

import json

import numpy as np
import pytest

from repro.cluster import (
    ClusterSimulator,
    DirectoryRouter,
    PrefixAffinityRouter,
    RoundRobinRouter,
    ScenarioEvent,
    TransferSpec,
    simulate_cluster,
)
from repro.core.cache import MarconiCache
from repro.engine.latency import LatencyModel
from repro.metrics.export import cluster_summary_from_json, cluster_summary_to_json
from repro.models.memory import node_state_bytes
from repro.tiering import TieredMarconiCache
from repro.workloads.lmsys import generate_lmsys_trace


def toks(n, seed):
    return np.random.default_rng(seed).integers(0, 32000, size=n, dtype=np.int32)


def _caches(model, n, seqs=8):
    per_seq = node_state_bytes(model, 2000, True)
    return [MarconiCache(model, seqs * per_seq, alpha=1.0) for _ in range(n)]


def _tiered(model, seqs=8):
    per_seq = node_state_bytes(model, 2000, True)
    return TieredMarconiCache(
        model, seqs * per_seq, secondary_bytes=seqs * per_seq, alpha=1.0
    )


def _expected_rounds(trace):
    return {
        (session.session_id, r)
        for session in trace.sessions
        for r in range(session.n_rounds)
    }


def _served_rounds(result):
    return {
        (rec.session_id, rec.round_index)
        for replica in result.replica_results
        for rec in replica.records
    }


def _assert_no_leaks(caches):
    for cache in caches:
        assert cache.open_sessions == 0
        assert all(node.pin_count == 0 for node in cache.tree.iter_nodes())
        assert cache.used_bytes == cache.recompute_used_bytes()


class TestScenarioEvents:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioEvent(1.0, "explode", replica=0)
        with pytest.raises(ValueError):
            ScenarioEvent(1.0, "fail")  # needs a replica
        with pytest.raises(ValueError):
            ScenarioEvent(1.0, "join")  # needs a cache_factory
        with pytest.raises(ValueError):
            ScenarioEvent(-1.0, "drain", replica=0)

    def test_to_dict(self):
        def spawn():
            return None

        event = ScenarioEvent(2.0, "join", cache_factory=spawn, name="spare")
        d = event.to_dict()
        assert d["action"] == "join" and d["cache_factory"] == "spawn"
        assert ScenarioEvent(1.0, "fail", replica=2).to_dict()["replica"] == 2

    def test_transfer_spec_validation(self):
        with pytest.raises(ValueError):
            TransferSpec(source=1, target=1, tokens=toks(5, 1), nbytes=10)
        with pytest.raises(ValueError):
            TransferSpec(source=0, target=1, tokens=toks(5, 1), nbytes=0)
        with pytest.raises(ValueError):
            TransferSpec(source=0, target=1, tokens=toks(0, 1), nbytes=10)


class TestFailover:
    def test_replica_death_reroutes_everything(self, hybrid):
        # A burst-heavy trace so the failure catches requests in every
        # phase: queued, mid-prefill (re-routed), and mid-decode (record
        # kept, session continues).
        trace = generate_lmsys_trace(n_sessions=24, seed=31, session_rate=16.0)
        caches = _caches(hybrid, 3)
        scenario = [ScenarioEvent(1.0, "fail", replica=1)]
        result = simulate_cluster(
            hybrid,
            caches,
            PrefixAffinityRouter(),
            trace,
            scenario=scenario,
        )
        # Every round of every session completed, despite the mid-trace death.
        assert _served_rounds(result) == _expected_rounds(trace)
        # ...and exactly once: requests interrupted mid-decode keep their
        # original record instead of being re-served.
        assert result.n_requests == trace.n_requests
        assert result.steering_counter("interrupted_decodes") > 0
        # Orphans were re-routed (each re-admission recounts).
        reroutes = result.steering_counter("reroutes")
        assert reroutes > 0
        assert sum(result.routed_counts) == trace.n_requests + reroutes
        assert result.steering_counter("failures") == 1
        # Zero leaked pins or open sessions anywhere, including the corpse.
        _assert_no_leaks(caches)
        # Nothing arriving after the failure lands on the dead replica.
        assert all(
            rec.arrival_time <= 1.0 for rec in result.replica_results[1].records
        )

    def test_mid_session_abort_path_is_exercised(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=16, seed=32, session_rate=4.0)
        caches = _caches(hybrid, 2)
        result = simulate_cluster(
            hybrid,
            caches,
            PrefixAffinityRouter(),
            trace,
            scenario=[ScenarioEvent(1.5, "fail", replica=0)],
        )
        assert result.steering_counter("aborted_sessions") > 0
        assert _served_rounds(result) == _expected_rounds(trace)
        assert result.n_requests == trace.n_requests
        _assert_no_leaks(caches)

    def test_rerun_after_failure_revives_replica(self, hybrid):
        """A router reused across runs must re-track replicas a previous
        run's scenario killed, and report per-run decision counters."""
        trace = generate_lmsys_trace(n_sessions=10, seed=39, session_rate=2.0)
        caches = _caches(hybrid, 3)
        # Force directory mode: auto would deep-probe a 3-replica fleet.
        router = PrefixAffinityRouter(probe="directory")
        first = ClusterSimulator(
            hybrid,
            caches,
            router,
            scenario=[ScenarioEvent(1.5, "fail", replica=1)],
        ).run(trace)
        assert first.directory_stats["invalidations"] >= 1
        second = ClusterSimulator(hybrid, caches, router).run(trace)
        # The replica a previous run killed is tracked and routable again.
        assert second.routed_counts[1] > 0
        assert second.directory_stats["invalidations"] == 0
        # Decision counters are per-run: one bump per routed request.
        assert sum(second.router_stats.values()) == trace.n_requests

    def test_content_blind_router_gets_overridden(self, hybrid):
        """Round-robin keeps nominating the corpse; the kernel corrects it."""
        trace = generate_lmsys_trace(n_sessions=12, seed=33, session_rate=2.0)
        caches = _caches(hybrid, 2)
        result = simulate_cluster(
            hybrid,
            caches,
            RoundRobinRouter(),
            trace,
            scenario=[ScenarioEvent(1.0, "fail", replica=0)],
        )
        assert result.steering_counter("overrides") > 0
        assert _served_rounds(result) == _expected_rounds(trace)
        assert all(
            rec.arrival_time <= 1.0 for rec in result.replica_results[0].records
        )

    def test_dead_replica_releases_executor_slots(self, hybrid):
        """Telemetry of the corpse drops to zero occupancy at failure
        instead of freezing at its at-failure value."""
        trace = generate_lmsys_trace(n_sessions=24, seed=31, session_rate=16.0)
        result = simulate_cluster(
            hybrid,
            _caches(hybrid, 3),
            PrefixAffinityRouter(),
            trace,
            scenario=[ScenarioEvent(1.0, "fail", replica=1)],
        )
        dead = result.replica_results[1]
        assert dead.running_series[-1][1] == 0
        # Occupancy after the failure instant stays zero.
        assert all(value == 0 for t, value in dead.running_series if t > 1.0)

    def test_interrupted_decode_next_round_waits_for_decode_end(self, hybrid):
        """A failure mid-decode must not let the session 'respond' before
        the decode could have finished: the next round fires off the
        decode's true completion time, not the failure instant."""
        from repro.workloads.trace import Trace, TraceRound, TraceSession

        rng = np.random.default_rng(77)
        rounds = [
            TraceRound(
                rng.integers(0, 32000, 100).astype(np.int32),
                rng.integers(0, 32000, 200).astype(np.int32),  # 2 s decode
            ),
            TraceRound(
                rng.integers(0, 32000, 50).astype(np.int32),
                rng.integers(0, 32000, 10).astype(np.int32),
            ),
        ]
        trace = Trace(
            name="one-session",
            seed=77,
            sessions=[
                TraceSession(
                    session_id=0,
                    arrival_time=0.0,
                    rounds=rounds,
                    think_times=[0.0, 1.0],
                )
            ],
        )
        result = simulate_cluster(
            hybrid,
            _caches(hybrid, 2),
            PrefixAffinityRouter(),
            trace,
            scenario=[ScenarioEvent(1.0, "fail", replica=0)],  # mid-decode
        )
        assert result.steering_counter("interrupted_decodes") == 1
        records = sorted(
            (rec for rep in result.replica_results for rec in rep.records),
            key=lambda rec: rec.round_index,
        )
        assert len(records) == 2
        first, second = records
        decode_end = first.service_start + first.prefill_seconds + 200 * 0.010
        assert decode_end > 1.0  # the failure really interrupted the decode
        assert second.arrival_time == pytest.approx(decode_end + 1.0)

    def test_scenario_replica_out_of_range_raises(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=4, seed=30)
        with pytest.raises(ValueError, match="names replica"):
            simulate_cluster(
                hybrid,
                _caches(hybrid, 2),
                PrefixAffinityRouter(),
                trace,
                scenario=[ScenarioEvent(0.5, "fail", replica=5)],
            )
        with pytest.raises(ValueError):
            ScenarioEvent(0.5, "fail", replica=-1)

    def test_all_replicas_dead_raises(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=4, seed=34)
        with pytest.raises(RuntimeError):
            simulate_cluster(
                hybrid,
                _caches(hybrid, 1),
                RoundRobinRouter(),
                trace,
                scenario=[ScenarioEvent(0.5, "fail", replica=0)],
            )

    def test_directory_invalidated_on_failure(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=10, seed=35, session_rate=2.0)
        caches = _caches(hybrid, 2)
        # Force directory mode: auto would deep-probe a 2-replica fleet.
        router = PrefixAffinityRouter(probe="directory")
        result = simulate_cluster(
            hybrid,
            caches,
            router,
            trace,
            scenario=[ScenarioEvent(2.0, "fail", replica=0)],
        )
        assert result.directory_stats is not None
        assert result.directory_stats["invalidations"] >= 1
        # Run-end teardown: the directory detached from every cache, so
        # standalone use of these caches pays no observer maintenance.
        assert router.directory is None
        for cache in caches:
            assert not cache._external_tree_observers


class TestDrainAndJoin:
    def test_drained_replica_takes_no_new_arrivals(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=14, seed=36, session_rate=2.0)
        caches = _caches(hybrid, 3)
        result = simulate_cluster(
            hybrid,
            caches,
            PrefixAffinityRouter(),
            trace,
            scenario=[ScenarioEvent(2.0, "drain", replica=2)],
        )
        assert result.steering_counter("drains") == 1
        assert _served_rounds(result) == _expected_rounds(trace)
        assert all(
            rec.arrival_time <= 2.0 for rec in result.replica_results[2].records
        )
        _assert_no_leaks(caches)

    def test_join_adds_capacity_mid_trace(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=20, seed=37, session_rate=4.0)
        caches = _caches(hybrid, 2)
        spare = _caches(hybrid, 1)[0]
        result = simulate_cluster(
            hybrid,
            caches,
            PrefixAffinityRouter(),
            trace,
            scenario=[ScenarioEvent(1.0, "join", cache_factory=lambda: spare)],
        )
        assert result.n_replicas == 3
        assert result.steering_counter("joins") == 1
        assert result.routed_counts[2] > 0  # the newcomer pulled traffic
        assert _served_rounds(result) == _expected_rounds(trace)
        _assert_no_leaks(caches + [spare])

    def test_failover_then_join_recovers(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=16, seed=38, session_rate=2.0)
        caches = _caches(hybrid, 2)
        result = simulate_cluster(
            hybrid,
            caches,
            PrefixAffinityRouter(),
            trace,
            scenario=[
                ScenarioEvent(1.5, "fail", replica=0),
                ScenarioEvent(2.5, "join", cache_factory=lambda: _caches(hybrid, 1)[0]),
            ],
        )
        assert result.n_replicas == 3
        assert result.routed_counts[2] > 0
        assert _served_rounds(result) == _expected_rounds(trace)


class TestShardedScenarioEdges:
    """Elastic scenarios against a sharded, delayed directory view: joins
    land while updates are still in flight, drains overlap pending
    invalidations, and the serving path absorbs the staleness."""

    def _backend(self, **kwargs):
        from repro.cluster import ShardedPrefixDirectory

        defaults = dict(
            n_shards=3, region_tokens=8, propagation_delay=0.2, gossip_interval=0.1
        )
        defaults.update(kwargs)
        return ShardedPrefixDirectory(**defaults)

    def test_join_while_updates_in_flight(self, hybrid):
        backend = self._backend()
        trace = generate_lmsys_trace(n_sessions=16, seed=64, session_rate=4.0)
        caches = _caches(hybrid, 2)
        spare = _caches(hybrid, 1)[0]
        result = simulate_cluster(
            hybrid,
            caches,
            PrefixAffinityRouter(directory=backend),
            trace,
            # Joins right as the first arrivals' gossip is still queued.
            scenario=[ScenarioEvent(0.3, "join", cache_factory=lambda: spare)],
        )
        assert result.n_replicas == 3
        assert result.steering_counter("joins") == 1
        assert result.routed_counts[2] > 0
        assert _served_rounds(result) == _expected_rounds(trace)
        _assert_no_leaks(caches + [spare])
        # The joiner is tracked by the shared sharded view.
        assert backend.replicas == (0, 1, 2)
        backend.pump(upto=1e9)
        backend.check_integrity()
        backend.close()

    def test_drain_with_pending_invalidations(self, hybrid):
        """A replica fails (its invalidation gossips slowly) and another
        drains while that invalidation is still pending: every round is
        still served, and the dead replica's entries eventually vanish
        from every shard."""
        backend = self._backend(propagation_delay=0.6, gossip_interval=0.3)
        trace = generate_lmsys_trace(n_sessions=16, seed=65, session_rate=4.0)
        caches = _caches(hybrid, 3)
        result = simulate_cluster(
            hybrid,
            caches,
            PrefixAffinityRouter(directory=backend),
            trace,
            scenario=[
                ScenarioEvent(2.0, "fail", replica=0),
                ScenarioEvent(2.3, "drain", replica=1),  # inside the window
            ],
        )
        assert result.steering_counter("failures") == 1
        assert result.steering_counter("drains") == 1
        assert _served_rounds(result) == _expected_rounds(trace)
        _assert_no_leaks(caches)
        assert result.directory_staleness["invalidations"] >= 1
        backend.pump(upto=1e9)
        for shard in backend.shards:
            for node in shard.directory.iter_nodes():
                assert 0 not in node.cover and 0 not in node.ckpt
        backend.check_integrity()
        backend.close()

    def test_sharded_staleness_exported_with_cluster_result(self, hybrid):
        from repro.metrics.export import directory_staleness_summary

        backend = self._backend()
        trace = generate_lmsys_trace(n_sessions=8, seed=66, session_rate=2.0)
        result = simulate_cluster(
            hybrid, _caches(hybrid, 2), PrefixAffinityRouter(directory=backend), trace
        )
        d = result.to_dict()
        assert d["directory"]["backend"] == "sharded"
        assert len(d["directory"]["per_shard"]) == 3
        json.dumps(d)  # staleness telemetry must be JSON-clean
        summary = directory_staleness_summary(result)
        assert summary["backend"] == "sharded"
        assert summary["n_shards"] == 3
        assert len(summary["shard_applied_updates"]) == 3
        assert "lookup_age_p95" in summary
        backend.close()


class TestTransfers:
    def _prepared_router(self, model, caches, **kwargs):
        router = DirectoryRouter(**kwargs)
        router.prepare(model, caches, LatencyModel())
        return router

    def _warm(self, cache, n_tokens, seed, now=0.0):
        seq = toks(n_tokens, seed)
        with cache.begin(seq, now) as session:
            full = np.concatenate([seq, toks(20, seed + 1)])
            session.commit(full, now + 0.5)
        return full

    def test_compute_or_load_plans_transfer_for_long_span(self, hybrid):
        caches = [_tiered(hybrid), _tiered(hybrid)]
        full = self._warm(caches[0], 1800, 41)
        router = self._prepared_router(hybrid, caches, max_imbalance=2)
        query = np.concatenate([full, toks(30, 43)])
        # Replica 0 owns the prefix but is overloaded: spill to 1 + load.
        decision = router.decide(query, 7, caches, [10, 0], 1.0)
        assert decision.replica == 1
        assert decision.transfer is not None
        assert decision.transfer.source == 0 and decision.transfer.target == 1
        assert len(decision.transfer.tokens) == len(full)
        assert router.decision_stats.get("chose_load", 0) == 1

    def test_short_span_recomputes(self, hybrid):
        caches = [_tiered(hybrid), _tiered(hybrid)]
        full = self._warm(caches[0], 100, 44)
        router = self._prepared_router(
            hybrid, caches, max_imbalance=2, transfer_min_tokens=500
        )
        query = np.concatenate([full, toks(10, 45)])
        decision = router.decide(query, 7, caches, [10, 0], 1.0)
        assert decision.replica == 1 and decision.transfer is None

    def test_slow_link_recomputes(self, hybrid):
        caches = [_tiered(hybrid), _tiered(hybrid)]
        full = self._warm(caches[0], 1800, 46)
        router = DirectoryRouter(max_imbalance=2, transfer_min_tokens=16)
        # A dial-up interconnect: loading can never beat recompute.
        router.prepare(
            hybrid, caches, LatencyModel(transfer_bandwidth_bytes_per_s=1e4)
        )
        query = np.concatenate([full, toks(30, 47)])
        decision = router.decide(query, 7, caches, [10, 0], 1.0)
        assert decision.transfer is None
        assert router.decision_stats.get("chose_recompute", 0) == 1

    def test_plain_cache_target_disables_transfer(self, hybrid):
        caches = _caches(hybrid, 2)  # no second tier to land in
        full = self._warm(caches[0], 1800, 48)
        router = self._prepared_router(hybrid, caches, max_imbalance=2)
        decision = router.decide(
            np.concatenate([full, toks(30, 49)]), 7, caches, [10, 0], 1.0
        )
        assert decision.transfer is None

    def test_drain_triggers_transfers_end_to_end(self, hybrid):
        """Draining a replica migrates its sessions' hot state: later rounds
        land elsewhere, fetch the span over the link, and hit."""
        trace = generate_lmsys_trace(n_sessions=10, seed=51, session_rate=1.0)
        caches = [_tiered(hybrid), _tiered(hybrid)]
        router = DirectoryRouter(transfer_min_tokens=16)
        result = simulate_cluster(
            hybrid,
            caches,
            router,
            trace,
            scenario=[ScenarioEvent(4.0, "drain", replica=0)],
        )
        assert result.steering_counter("transfers_planned") > 0
        assert result.steering_counter("transfers_completed") > 0
        assert result.total_transfer_bytes > 0
        assert result.steering is not None
        assert sum(result.steering.transfers_in) == result.steering_counter(
            "transfers_completed"
        )
        # The copied state was actually promoted and served on arrival.
        promoted = sum(
            cache.stats.extra.get("promotions", 0) for cache in caches
        )
        assert promoted > 0
        assert _served_rounds(result) == _expected_rounds(trace)
        _assert_no_leaks(caches)

    def test_transfer_to_dead_target_is_dropped_and_rerouted(self, hybrid):
        """A transfer in flight when its target dies must not strand the
        parked request."""
        trace = generate_lmsys_trace(n_sessions=10, seed=52, session_rate=1.0)
        caches = [_tiered(hybrid), _tiered(hybrid), _tiered(hybrid)]
        result = simulate_cluster(
            hybrid,
            caches,
            DirectoryRouter(transfer_min_tokens=16),
            trace,
            scenario=[
                ScenarioEvent(4.0, "drain", replica=0),
                ScenarioEvent(4.5, "fail", replica=1),
            ],
        )
        assert _served_rounds(result) == _expected_rounds(trace)
        _assert_no_leaks(caches)

    def test_transfer_free_run_matches_prefix_affinity(self, hybrid):
        """With transfers disabled, the steering router is routing-identical
        to directory-mode prefix affinity."""
        trace = generate_lmsys_trace(n_sessions=12, seed=53)
        a = simulate_cluster(
            hybrid, _caches(hybrid, 3), DirectoryRouter(transfer=False), trace
        )
        b = simulate_cluster(
            hybrid, _caches(hybrid, 3), PrefixAffinityRouter(), trace
        )
        assert a.routed_counts == b.routed_counts
        assert a.token_hit_rate == pytest.approx(b.token_hit_rate)


class TestSplitSteering:
    """Compute-or-load-or-both: interior split points and the overlap of
    head transfer with tail recompute (steering v2)."""

    def _warm_with_interior_checkpoints(self, hybrid):
        """Two chained rounds on replica 0 lay checkpoints at ~1020 and
        ~1840 tokens: the shallower one is the interior split candidate."""
        caches = [_tiered(hybrid, seqs=16), _tiered(hybrid, seqs=16)]
        seq = toks(1000, 71)
        with caches[0].begin(seq, 0.0) as session:
            full = np.concatenate([seq, toks(20, 72)])
            session.commit(full, 0.5)
        ext = np.concatenate([full, toks(800, 73)])
        with caches[0].begin(ext, 1.0) as session:
            full = np.concatenate([ext, toks(20, 74)])
            session.commit(full, 1.5)
        return caches, full

    def test_split_spec_validation(self, hybrid):
        from repro.cluster import SplitSpec

        good = dict(source=0, target=1, tokens=toks(5, 1), nbytes=10)
        SplitSpec(**good, split_depth=5, total_len=8)
        with pytest.raises(ValueError):  # depth must cover the shipped tokens
            SplitSpec(**good, split_depth=4, total_len=8)
        with pytest.raises(ValueError):  # interior means depth < total
            SplitSpec(**good, split_depth=5, total_len=5)

    def test_router_plans_interior_split(self, hybrid):
        """At a mid-range bandwidth the overlapped interior candidate beats
        both endpoints, so the router emits a SplitSpec, not all-or-nothing."""
        from repro.cluster import SplitSpec

        caches, full = self._warm_with_interior_checkpoints(hybrid)
        router = DirectoryRouter(max_imbalance=2, transfer_min_tokens=16)
        router.prepare(
            hybrid, caches, LatencyModel(transfer_bandwidth_bytes_per_s=1e9)
        )
        query = np.concatenate([full, toks(600, 75)])
        decision = router.decide(query, 7, caches, [10, 0], 2.0)
        assert decision.replica == 1
        spec = decision.transfer
        assert isinstance(spec, SplitSpec)
        assert 0 < spec.split_depth < len(query)
        assert spec.total_len == len(query)
        assert len(spec.tokens) == spec.split_depth
        assert spec.tail_flops > 0 and spec.head_flops > 0
        assert router.decision_stats.get("chose_split", 0) == 1
        # Splitting disabled: the same opportunity degenerates to PR-4.
        legacy = DirectoryRouter(split=False, max_imbalance=2, transfer_min_tokens=16)
        legacy.prepare(
            hybrid, caches, LatencyModel(transfer_bandwidth_bytes_per_s=1e9)
        )
        ldec = legacy.decide(query, 7, caches, [10, 0], 2.0)
        assert ldec.transfer is None or not isinstance(ldec.transfer, SplitSpec)

    def test_split_overlap_end_to_end(self, hybrid):
        """A split run must execute the overlap: the request starts its
        tail recompute while the head ships, and telemetry records the
        TTFT seconds the overlap hid."""
        from repro.experiments.steering_sweep import split_probe_trace

        trace = split_probe_trace()
        caches = [
            TieredMarconiCache(hybrid, int(1e12), int(1e12)) for _ in range(2)
        ]
        router = DirectoryRouter(split=True, transfer_min_tokens=16)
        result = simulate_cluster(
            hybrid,
            caches,
            router,
            trace,
            scenario=[ScenarioEvent(10.0, "drain", replica=0)],
            latency=LatencyModel(transfer_bandwidth_bytes_per_s=1e9),
        )
        assert result.steering_counter("transfers_split") >= 1
        assert result.steering_counter("splits_overlapped") >= 1
        assert result.overlap_seconds_saved > 0
        assert router.decision_stats.get("chose_split", 0) >= 1
        assert _served_rounds(result) == _expected_rounds(trace)
        _assert_no_leaks(caches)

    def test_concurrent_transfers_serialize_on_source_link(self, hybrid):
        """N transfers leaving one source must share its link, not each see
        the full bandwidth: waits accumulate and the conservation audit
        (busy time >= bytes out / bandwidth per link) passes."""
        from repro.workloads.trace import Trace, TraceRound, TraceSession

        rng = np.random.default_rng(76)

        def session(sid):
            rounds = [
                TraceRound(
                    rng.integers(0, 32000, 1200).astype(np.int32),
                    rng.integers(0, 32000, 8).astype(np.int32),
                ),
                TraceRound(
                    rng.integers(0, 32000, 30).astype(np.int32),
                    rng.integers(0, 32000, 8).astype(np.int32),
                ),
            ]
            # Staggered arrivals + counter-staggered thinks: every round-2
            # request lands at ~5.19s, slamming the drained source's link.
            return TraceSession(sid, 0.05 * sid, rounds, [0.0, 5.0 - 0.05 * sid])

        trace = Trace(
            name="link-contention",
            seed=76,
            sessions=[session(i) for i in range(12)],
        )
        caches = [
            TieredMarconiCache(hybrid, int(1e12), int(1e12)) for _ in range(2)
        ]
        bandwidth = 2e9
        result = simulate_cluster(
            hybrid,
            caches,
            DirectoryRouter(transfer_min_tokens=16),
            trace,
            scenario=[ScenarioEvent(2.0, "drain", replica=0)],
            latency=LatencyModel(transfer_bandwidth_bytes_per_s=bandwidth),
        )
        steering = result.steering
        assert result.steering_counter("transfers_completed") >= 2
        # Round-2 arrivals land within a few ms of each other while each
        # state blob takes ~56ms on the shared link: most of them queue.
        assert steering.link_wait_seconds > 0
        assert sum(steering.link_busy_seconds) > 0
        steering.check_conservation(bandwidth)  # must not raise
        assert _served_rounds(result) == _expected_rounds(trace)
        _assert_no_leaks(caches)


class TestClusterExport:
    def test_to_dict_shape(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=8, seed=54)
        result = simulate_cluster(
            hybrid,
            [_tiered(hybrid), _tiered(hybrid)],
            DirectoryRouter(),
            trace,
            scenario=[ScenarioEvent(3.0, "drain", replica=0)],
        )
        d = result.to_dict()
        assert d["router"] == "directory"
        assert d["n_replicas"] == 2
        assert len(d["replicas"]) == 2
        assert "steering" in d and "counters" in d["steering"]
        assert "directory" in d
        assert d["scenario"][0]["action"] == "drain"
        json.dumps(d)  # must be JSON-serializable as-is

    def test_json_roundtrip(self, hybrid, tmp_path):
        trace = generate_lmsys_trace(n_sessions=6, seed=55)
        result = simulate_cluster(
            hybrid, _caches(hybrid, 2), PrefixAffinityRouter(), trace
        )
        path = tmp_path / "cluster.json"
        cluster_summary_to_json(result, path)
        loaded = cluster_summary_from_json(path)
        assert loaded["n_requests"] == result.n_requests
        assert loaded["token_hit_rate"] == pytest.approx(result.token_hit_rate)

    def test_scenario_without_router_rejected(self, hybrid):
        from repro.engine.kernel import SimulationKernel

        with pytest.raises(ValueError):
            SimulationKernel(
                hybrid,
                _caches(hybrid, 1),
                scenario=[ScenarioEvent(1.0, "drain", replica=0)],
            )
