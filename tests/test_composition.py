"""Cross-subsystem composition: the extensions must work together.

Each extension (tiering, cluster routing, mixtures, analysis) was built
against the same two-phase cache protocol; these tests exercise the
combinations a deployment would actually run — tiered caches behind a
prefix-affinity router serving a multi-tenant mixture — and check the
global invariants survive the stacking.
"""

import numpy as np
import pytest

from repro.analysis import classify_trace
from repro.baselines import trace_to_replay_requests, tune_static_alpha
from repro.cluster import PrefixAffinityRouter, simulate_cluster
from repro.core.cache import MarconiCache
from repro.models.memory import node_state_bytes
from repro.tiering import TieredMarconiCache
from repro.workloads import (
    generate_lmsys_trace,
    generate_swebench_trace,
    mix_traces,
)


class TestTieredCluster:
    def test_tiered_replicas_behind_prefix_router(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=16, seed=41)
        per_seq = node_state_bytes(hybrid, 2000, True)
        caches = [
            TieredMarconiCache(hybrid, 2 * per_seq, int(50e9), alpha=1.0)
            for _ in range(3)
        ]
        result = simulate_cluster(hybrid, caches, PrefixAffinityRouter(), trace)
        assert result.n_requests == trace.n_requests
        for cache in caches:
            assert cache.used_bytes == cache.recompute_used_bytes()
            assert cache.used_bytes <= cache.capacity_bytes
            assert cache.secondary.used_bytes <= cache.secondary.capacity_bytes
            cache.tree.check_integrity()

    def test_tiered_cluster_beats_plain_cluster(self, hybrid):
        """Stacking a second tier under each replica recovers hit rate."""
        trace = generate_lmsys_trace(n_sessions=24, seed=42, mean_think_s=8.0)
        per_seq = node_state_bytes(hybrid, 2000, True)

        def run(factory):
            caches = [factory() for _ in range(3)]
            return simulate_cluster(
                hybrid, caches, PrefixAffinityRouter(), trace
            ).token_hit_rate

        plain = run(lambda: MarconiCache(hybrid, 2 * per_seq, alpha=1.0))
        tiered = run(
            lambda: TieredMarconiCache(hybrid, 2 * per_seq, int(100e9), alpha=1.0)
        )
        assert tiered >= plain


class TestMixtureComposition:
    def test_mixture_through_cluster(self, hybrid):
        chat = generate_lmsys_trace(n_sessions=8, seed=43)
        agent = generate_swebench_trace(n_sessions=3, seed=44)
        mixed = mix_traces([chat, agent])
        per_seq = node_state_bytes(hybrid, 3000, True)
        caches = [MarconiCache(hybrid, 6 * per_seq, alpha=1.0) for _ in range(2)]
        result = simulate_cluster(hybrid, caches, PrefixAffinityRouter(), mixed)
        assert result.n_requests == mixed.n_requests

    def test_taxonomy_of_mixture_sums_components(self):
        chat = generate_lmsys_trace(n_sessions=8, seed=45)
        agent = generate_swebench_trace(n_sessions=3, seed=46)
        mixed = mix_traces([chat, agent])
        combined = classify_trace(mixed)
        assert combined.input_tokens == (
            chat.total_input_tokens + agent.total_input_tokens
        )
        # Components don't share vocab material, so the mixture's
        # opportunity can't exceed the sum of per-component opportunities.
        separate = classify_trace(chat).reusable_token_share * chat.total_input_tokens
        separate += classify_trace(agent).reusable_token_share * agent.total_input_tokens
        mixed_reusable = combined.reusable_token_share * combined.input_tokens
        assert mixed_reusable <= separate + 1e-6


class TestOracleHelpers:
    def test_trace_to_replay_requests_roundtrip(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=5, seed=47)
        log = trace_to_replay_requests(trace)
        assert len(log) == trace.n_requests
        times = [r.now for r in log]
        assert times == sorted(times)
        for request in log:
            assert len(request.full_tokens) > len(request.input_tokens)
            assert np.array_equal(
                request.full_tokens[: len(request.input_tokens)], request.input_tokens
            )

    def test_oracle_runs_on_flattened_trace(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=8, seed=48)
        capacity = 4 * node_state_bytes(hybrid, 2000, True)
        result = tune_static_alpha(
            hybrid, capacity, trace_to_replay_requests(trace), alpha_grid=(0.0, 1.0)
        )
        assert set(result.hit_rates) == {0.0, 1.0}
        assert result.best_hit_rate == max(result.hit_rates.values())
