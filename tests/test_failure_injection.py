"""Adversarial and edge-case streams aimed at breaking cache mechanics,
plus directory-shard fault injection under full cluster runs."""

import numpy as np
import pytest

from repro.cluster import (
    NoRoutableReplicaError,
    PrefixAffinityRouter,
    ShardedPrefixDirectory,
    simulate_cluster,
)
from repro.engine.steering import pick_least_loaded
from repro.core.cache import MarconiCache
from repro.models.memory import (
    kv_bytes_per_token,
    model_recurrent_bytes,
    node_state_bytes,
)
from repro.tiering import TieredMarconiCache
from repro.workloads.lmsys import generate_lmsys_trace


def toks(n, seed):
    return np.random.default_rng(seed).integers(0, 32000, size=n, dtype=np.int32)


class TestInterleavedInFlight:
    def test_out_of_order_admits(self, hybrid):
        """lookup A, lookup B, admit B, admit A — pins must balance."""
        cache = MarconiCache(hybrid, int(1e12), alpha=0.0)
        a, b = toks(100, 1), toks(100, 2)
        ra = cache.lookup(a, 0.0)
        rb = cache.lookup(b, 0.1)
        cache.admit(np.concatenate([b, toks(10, 3)]), 1.0, handle=rb.handle)
        cache.admit(np.concatenate([a, toks(10, 4)]), 1.1, handle=ra.handle)
        assert all(n.pin_count == 0 for n in cache.tree.iter_nodes())
        assert cache.used_bytes == cache.recompute_used_bytes()

    def test_identical_concurrent_lookups(self, hybrid):
        """Two in-flight requests with byte-identical inputs."""
        cache = MarconiCache(hybrid, int(1e12), alpha=0.0)
        seq = toks(200, 5)
        r1 = cache.lookup(seq, 0.0)
        r2 = cache.lookup(seq, 0.1)
        assert r1.hit_tokens == r2.hit_tokens == 0
        cache.admit(np.concatenate([seq, toks(10, 6)]), 1.0, handle=r1.handle)
        cache.admit(np.concatenate([seq, toks(12, 7)]), 1.1, handle=r2.handle)
        assert all(n.pin_count == 0 for n in cache.tree.iter_nodes())
        assert cache.used_bytes == cache.recompute_used_bytes()
        cache.tree.check_integrity()

    def test_many_concurrent_same_session(self, hybrid):
        """A pile-up of in-flight requests sharing one conversation."""
        cache = MarconiCache(hybrid, int(1e12), alpha=0.0)
        base = toks(100, 8)
        handles = []
        for i in range(8):
            seq = np.concatenate([base, toks(5 + i, 9 + i)])
            handles.append((seq, cache.lookup(seq, float(i)).handle))
        for i, (seq, handle) in enumerate(reversed(handles)):
            cache.admit(np.concatenate([seq, toks(3, 50 + i)]), 10.0 + i, handle=handle)
        assert all(n.pin_count == 0 for n in cache.tree.iter_nodes())
        cache.tree.check_integrity()


class TestAdversarialStreams:
    def test_near_miss_last_token(self, hybrid):
        """Sequences identical except the final token: hits must stop at
        the shared part, never cover the divergent tail."""
        cache = MarconiCache(hybrid, int(1e12), alpha=0.0)
        base = toks(300, 11)
        variant_a = np.concatenate([base, [7]]).astype(np.int32)
        variant_b = np.concatenate([base, [8]]).astype(np.int32)
        ra = cache.lookup(variant_a, 0.0)
        cache.admit(np.concatenate([variant_a, toks(10, 12)]), 0.5, handle=ra.handle)
        rb = cache.lookup(variant_b, 1.0)
        assert rb.hit_tokens == 0  # branch checkpoint at 300 created only now
        cache.admit(np.concatenate([variant_b, toks(10, 13)]), 1.5, handle=rb.handle)
        rc = cache.lookup(np.concatenate([base, [9]]).astype(np.int32), 2.0)
        assert rc.hit_tokens == len(base)  # third occurrence benefits
        cache.admit(
            np.concatenate([base, [9], toks(5, 14)]).astype(np.int32),
            2.5,
            handle=rc.handle,
        )

    def test_all_identical_requests(self, hybrid):
        """The self-consistency pathology: one prompt repeated many times.

        A recurrent checkpoint can only serve a *strictly longer* input
        (the final input token must always be prefilled to produce the
        first decode step's logits), and the branch point of identical
        prompts sits exactly at the input boundary — so hybrid hits stay
        at zero no matter how often the prompt repeats.  This is the "all
        or nothing" property at its sharpest; block-grained checkpointing
        (vLLM+) does serve these, at its usual memory cost.
        """
        cache = MarconiCache(hybrid, int(1e12), alpha=0.0)
        prompt = toks(500, 15)
        hits = []
        for i in range(5):
            r = cache.lookup(prompt, float(i))
            hits.append(r.hit_tokens)
            cache.admit(np.concatenate([prompt, toks(20, 100 + i)]), i + 0.5, handle=r.handle)
        assert all(h == 0 for h in hits)
        # But any *extension* of the prompt hits the conversation-end
        # checkpoints immediately.
        extended = np.concatenate([prompt, toks(20, 100), toks(4, 999)])
        r = cache.lookup(extended, 10.0)
        assert r.hit_tokens == len(prompt) + 20
        cache.admit(np.concatenate([extended, [3]]).astype(np.int32), 10.5, handle=r.handle)
        cache.tree.check_integrity()

    def test_single_token_vocabulary(self, hybrid):
        """All sequences are prefixes of one another (maximal nesting)."""
        cache = MarconiCache(hybrid, int(1e12), alpha=0.0)
        for i in range(1, 12):
            seq = np.ones(i * 7, dtype=np.int32)
            r = cache.lookup(seq, float(i))
            cache.admit(np.ones(i * 7 + 3, dtype=np.int32), i + 0.5, handle=r.handle)
        assert cache.used_bytes == cache.recompute_used_bytes()
        cache.tree.check_integrity()
        # Deep nesting: last lookup should hit a prior checkpoint.
        r = cache.lookup(np.ones(80, dtype=np.int32), 100.0)
        assert r.hit_tokens > 0
        cache.admit(np.ones(81, dtype=np.int32), 100.5, handle=r.handle)

    def test_alternating_long_short(self, hybrid):
        """Length oscillation under contention: eviction must keep making
        progress in both directions."""
        per_seq = node_state_bytes(hybrid, 2000, True)
        cache = MarconiCache(hybrid, 2 * per_seq, alpha=1.0)
        for i in range(12):
            n = 1800 if i % 2 == 0 else 50
            seq = toks(n, 200 + i)
            r = cache.lookup(seq, float(i))
            cache.admit(np.concatenate([seq, toks(10, 300 + i)]), i + 0.5, handle=r.handle)
        assert cache.used_bytes <= cache.capacity_bytes
        assert cache.used_bytes == cache.recompute_used_bytes()


class TestCapacityEdges:
    def test_capacity_of_exactly_one_entry(self, hybrid):
        seq_len, out_len = 400, 50
        exact = (
            (seq_len + out_len) * kv_bytes_per_token(hybrid)
            + model_recurrent_bytes(hybrid)
        )
        cache = MarconiCache(hybrid, exact, alpha=0.0)
        seq = toks(seq_len, 21)
        r = cache.lookup(seq, 0.0)
        full = np.concatenate([seq, toks(out_len, 22)])
        result = cache.admit(full, 0.5, handle=r.handle)
        assert not result.rejected
        assert cache.used_bytes == exact
        # A followup hits the cached conversation end.
        r2 = cache.lookup(np.concatenate([full, toks(5, 23)]), 1.0)
        assert r2.hit_tokens == len(full)
        cache.admit(np.concatenate([full, toks(5, 23), [1]]).astype(np.int32), 1.5, handle=r2.handle)

    def test_one_byte_cache_serves_without_caching(self, hybrid):
        cache = MarconiCache(hybrid, 1, alpha=0.0)
        for i in range(4):
            seq = toks(50, 30 + i)
            r = cache.lookup(seq, float(i))
            assert r.hit_tokens == 0
            cache.admit(np.concatenate([seq, toks(5, 40 + i)]), i + 0.5, handle=r.handle)
        assert cache.used_bytes <= 1
        assert cache.tree.n_nodes == 0

    def test_capacity_below_recurrent_state(self, hybrid):
        """KVs fit but no checkpoint ever can: hybrid hits are impossible,
        and the cache must not thrash or miscount."""
        cache = MarconiCache(hybrid, model_recurrent_bytes(hybrid) - 1, alpha=0.0)
        for i in range(6):
            seq = toks(60, 50 + i)
            r = cache.lookup(seq, float(i))
            assert r.hit_tokens == 0
            cache.admit(np.concatenate([seq, toks(5, 60 + i)]), i + 0.5, handle=r.handle)
            assert cache.used_bytes == cache.recompute_used_bytes()
        assert not any(n.has_ssm_state for n in cache.tree.iter_nodes())

    def test_tiered_with_tiny_secondary(self, hybrid):
        """A secondary tier too small for any entry degrades gracefully."""
        per_seq = node_state_bytes(hybrid, 450, True)
        cache = TieredMarconiCache(hybrid, 2 * per_seq, secondary_bytes=10, alpha=0.0)
        for i in range(6):
            seq = toks(400, 70 + i)
            r = cache.lookup(seq, float(i))
            cache.admit(np.concatenate([seq, toks(50, 80 + i)]), i + 0.5, handle=r.handle)
        assert cache.secondary.n_entries == 0
        assert cache.stats.extra.get("demotions_rejected", 0) > 0
        assert cache.used_bytes == cache.recompute_used_bytes()


def _fleet(model, n, seqs=8):
    per_seq = node_state_bytes(model, 2000, True)
    return [MarconiCache(model, seqs * per_seq, alpha=1.0) for _ in range(n)]


def _expected_rounds(trace):
    return {
        (session.session_id, r)
        for session in trace.sessions
        for r in range(session.n_rounds)
    }


def _served_rounds(result):
    return {
        (rec.session_id, rec.round_index)
        for replica in result.replica_results
        for rec in replica.records
    }


def _assert_no_leaks(caches):
    for cache in caches:
        assert cache.open_sessions == 0
        assert all(node.pin_count == 0 for node in cache.tree.iter_nodes())
        assert cache.used_bytes == cache.recompute_used_bytes()


class _ShardFailingDirectory(ShardedPrefixDirectory):
    """Sharded backend that kills one of its own shards mid-run, by
    scheduling the loss on whatever transport the kernel connects."""

    def __init__(self, *args, fail_at=2.0, fail_index=0, **kwargs):
        super().__init__(*args, **kwargs)
        self._fail_at = fail_at
        self._fail_index = fail_index

    def connect_transport(self, transport):
        super().connect_transport(transport)
        if transport is not None:
            transport.schedule(
                self._fail_at, lambda now: self.fail_shard(self._fail_index)
            )


class TestDirectoryShardFaults:
    """Shard loss and dropped gossip injected into full cluster runs: the
    routing view degrades, the serving path must not."""

    def test_shard_loss_mid_run_serves_every_round(self, hybrid):
        backend = _ShardFailingDirectory(
            n_shards=4,
            region_tokens=8,
            propagation_delay=0.05,
            gossip_interval=0.05,
            fail_at=2.0,
            fail_index=1,
        )
        trace = generate_lmsys_trace(n_sessions=14, seed=61, session_rate=2.0)
        caches = _fleet(hybrid, 3)
        result = simulate_cluster(
            hybrid, caches, PrefixAffinityRouter(directory=backend), trace
        )
        assert _served_rounds(result) == _expected_rounds(trace)
        assert result.n_requests == trace.n_requests
        _assert_no_leaks(caches)
        staleness = result.directory_staleness
        assert staleness["backend"] == "sharded"
        assert staleness["shard_losses"] == 1
        assert staleness["live_shards"] == 3
        backend.pump(upto=1e9)  # drain any tail gossip, then audit
        backend.check_integrity()
        backend.close()

    def test_dropped_gossip_mid_run_serves_every_round(self, hybrid):
        backend = ShardedPrefixDirectory(
            n_shards=3, region_tokens=8, propagation_delay=0.05, gossip_interval=0.05
        )
        backend.drop_gossip(batches=2)  # every shard loses its first flushes
        trace = generate_lmsys_trace(n_sessions=14, seed=62, session_rate=2.0)
        caches = _fleet(hybrid, 3)
        result = simulate_cluster(
            hybrid, caches, PrefixAffinityRouter(directory=backend), trace
        )
        assert _served_rounds(result) == _expected_rounds(trace)
        _assert_no_leaks(caches)
        staleness = result.directory_staleness
        assert staleness["updates_dropped"] > 0
        assert sum(
            entry["dropped_batches"] for entry in staleness["per_shard"]
        ) == 6
        backend.pump(upto=1e9)
        backend.check_integrity()
        backend.close()

    def test_stale_lookups_tolerated_during_replica_failure(self, hybrid):
        """Replica failure with slow gossip: shards answer with the dead
        replica during the staleness window (the kernel's dead-target
        fallback absorbs it), and the invalidation eventually lands."""
        from repro.cluster import ScenarioEvent

        backend = ShardedPrefixDirectory(
            n_shards=2, region_tokens=8, propagation_delay=0.5, gossip_interval=0.25
        )
        trace = generate_lmsys_trace(n_sessions=14, seed=63, session_rate=4.0)
        caches = _fleet(hybrid, 3)
        result = simulate_cluster(
            hybrid,
            caches,
            PrefixAffinityRouter(directory=backend),
            trace,
            scenario=[ScenarioEvent(2.0, "fail", replica=1)],
        )
        assert _served_rounds(result) == _expected_rounds(trace)
        assert result.n_requests == trace.n_requests
        _assert_no_leaks(caches)
        assert result.directory_staleness["invalidations"] >= 1
        # Eventual consistency: once the queues drain, no shard still
        # stores the dead replica.
        backend.pump(upto=1e9)
        probe = np.ones(16, dtype=np.int32)
        assert 1 not in backend.lookup(probe, limit=16).ckpt_depth
        for shard in backend.shards:
            for node in shard.directory.iter_nodes():
                assert 1 not in node.cover and 1 not in node.ckpt
        backend.close()


class TestAllReplicasDown:
    """Exhausting the fleet must fail with a typed, actionable error —
    not a bare ``min()`` ``ValueError`` from an empty candidate list."""

    def test_empty_candidate_set_is_typed(self):
        with pytest.raises(NoRoutableReplicaError, match="empty candidate set"):
            pick_least_loaded([], 0)

    def test_all_replicas_failed_mid_run(self, hybrid):
        from repro.cluster import ScenarioEvent

        trace = generate_lmsys_trace(n_sessions=8, seed=64, session_rate=2.0)
        caches = _fleet(hybrid, 2)
        with pytest.raises(NoRoutableReplicaError) as excinfo:
            simulate_cluster(
                hybrid,
                caches,
                PrefixAffinityRouter(),
                trace,
                scenario=[
                    ScenarioEvent(0.5, "fail", replica=0),
                    ScenarioEvent(0.6, "fail", replica=1),
                ],
            )
        # The message must name the fleet state and a remediation.
        message = str(excinfo.value)
        assert "2 replicas" in message and "2 failed" in message
        assert "join" in message

    def test_last_replica_drained_then_failed(self, hybrid):
        from repro.cluster import ScenarioEvent

        trace = generate_lmsys_trace(n_sessions=8, seed=65, session_rate=2.0)
        with pytest.raises(NoRoutableReplicaError, match="1 failed and 1 draining"):
            simulate_cluster(
                hybrid,
                _fleet(hybrid, 2),
                PrefixAffinityRouter(),
                trace,
                scenario=[
                    ScenarioEvent(0.4, "drain", replica=0),
                    ScenarioEvent(0.6, "fail", replica=1),
                ],
            )


class TestTunerUnderChurn:
    def test_auto_alpha_survives_adversarial_stream(self, hybrid):
        """The bootstrap tuner must complete and adopt some alpha even when
        the stream oscillates between incompatible reuse patterns."""
        per_seq = node_state_bytes(hybrid, 1000, True)
        cache = MarconiCache(hybrid, 3 * per_seq, eviction="flop_aware", alpha=None)
        base = toks(300, 91)
        for i in range(40):
            if i % 3 == 0:
                seq = toks(900, 92 + i)  # fresh long
            elif i % 3 == 1:
                seq = np.concatenate([base, toks(30 + i, 93 + i)])  # shared prefix
            else:
                seq = toks(40, 94 + i)  # fresh short
            r = cache.lookup(seq, float(i))
            cache.admit(np.concatenate([seq, toks(10, 95 + i)]), i + 0.5, handle=r.handle)
        assert cache.used_bytes == cache.recompute_used_bytes()
        assert cache.alpha >= 0.0
        cache.tree.check_integrity()
