"""Tests for the capacity planner and bursty arrival process."""

import numpy as np
import pytest

from repro.analysis import capacity_curve, recommend_capacity
from repro.analysis.capacity import CapacityPoint
from repro.models.memory import node_state_bytes
from repro.workloads.arrivals import MarkovModulatedPoisson, PoissonProcess
from repro.workloads.lmsys import generate_lmsys_trace


@pytest.fixture(scope="module")
def planner_trace():
    return generate_lmsys_trace(n_sessions=14, seed=91)


class TestCapacityCurve:
    def test_curve_is_sorted_and_bounded(self, hybrid, planner_trace):
        unit = node_state_bytes(hybrid, 2000, True)
        points = capacity_curve(
            hybrid, planner_trace, [8 * unit, 2 * unit, 32 * unit], policy="marconi"
        )
        assert [p.capacity_bytes for p in points] == sorted(
            p.capacity_bytes for p in points
        )
        for point in points:
            assert isinstance(point, CapacityPoint)
            assert 0.0 <= point.token_hit_rate <= 1.0

    def test_more_capacity_never_hurts_much(self, hybrid, planner_trace):
        unit = node_state_bytes(hybrid, 2000, True)
        points = capacity_curve(
            hybrid, planner_trace, [2 * unit, 8 * unit, 64 * unit], policy="marconi"
        )
        rates = [p.token_hit_rate for p in points]
        assert rates[-1] >= rates[0]

    def test_validation(self, hybrid, planner_trace):
        with pytest.raises(ValueError):
            capacity_curve(hybrid, planner_trace, [])
        with pytest.raises(ValueError):
            capacity_curve(hybrid, planner_trace, [0])


class TestRecommendCapacity:
    def test_finds_budget_for_attainable_target(self, hybrid, planner_trace):
        unit = node_state_bytes(hybrid, 2000, True)
        big = 128 * unit
        ceiling = capacity_curve(hybrid, planner_trace, [big])[0].token_hit_rate
        target = 0.5 * ceiling
        rec = recommend_capacity(
            hybrid, planner_trace, target, low_bytes=unit, high_bytes=big
        )
        assert rec.attainable and rec.meets_target
        assert unit <= rec.capacity_bytes <= big
        # The recommendation is real: replaying at that budget meets target.
        check = capacity_curve(hybrid, planner_trace, [rec.capacity_bytes])[0]
        assert check.token_hit_rate >= target

    def test_unattainable_target_flagged(self, hybrid, planner_trace):
        unit = node_state_bytes(hybrid, 2000, True)
        rec = recommend_capacity(
            hybrid, planner_trace, 0.99, low_bytes=unit, high_bytes=4 * unit
        )
        assert not rec.attainable
        assert rec.capacity_bytes == 4 * unit
        assert not rec.meets_target

    def test_validation(self, hybrid, planner_trace):
        with pytest.raises(ValueError):
            recommend_capacity(hybrid, planner_trace, 0.0, low_bytes=1, high_bytes=2)
        with pytest.raises(ValueError):
            recommend_capacity(hybrid, planner_trace, 0.5, low_bytes=5, high_bytes=5)
        with pytest.raises(ValueError):
            recommend_capacity(
                hybrid, planner_trace, 0.5, low_bytes=1, high_bytes=2, rel_tol=2.0
            )


class TestMarkovModulatedPoisson:
    def test_arrivals_increase(self):
        process = MarkovModulatedPoisson(base_rate=0.5, burst_rate=10.0)
        times = process.arrival_times(np.random.default_rng(0), 200)
        assert len(times) == 200
        assert np.all(np.diff(times) > 0)

    def test_mean_rate_formula(self):
        process = MarkovModulatedPoisson(
            base_rate=1.0, burst_rate=9.0, mean_on_s=10.0, mean_off_s=30.0
        )
        assert process.mean_rate == pytest.approx((9 * 10 + 1 * 30) / 40)

    def test_long_run_rate_matches_mean(self):
        process = MarkovModulatedPoisson(
            base_rate=1.0, burst_rate=20.0, mean_on_s=5.0, mean_off_s=15.0
        )
        times = process.arrival_times(np.random.default_rng(7), 20_000)
        empirical = len(times) / times[-1]
        assert empirical == pytest.approx(process.mean_rate, rel=0.15)

    def test_burstier_than_poisson(self):
        """MMPP inter-arrival gaps have a higher coefficient of variation
        than the exponential's CV of 1."""
        rng = np.random.default_rng(3)
        mmpp = MarkovModulatedPoisson(base_rate=0.2, burst_rate=20.0)
        gaps = np.diff(mmpp.arrival_times(rng, 5_000))
        cv_mmpp = gaps.std() / gaps.mean()
        poisson_gaps = np.diff(
            PoissonProcess(mmpp.mean_rate).arrival_times(np.random.default_rng(3), 5_000)
        )
        cv_poisson = poisson_gaps.std() / poisson_gaps.mean()
        assert cv_mmpp > 1.3 * cv_poisson

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovModulatedPoisson(base_rate=0.0, burst_rate=1.0)
        with pytest.raises(ValueError):
            MarkovModulatedPoisson(base_rate=2.0, burst_rate=1.0)
        with pytest.raises(ValueError):
            MarkovModulatedPoisson(base_rate=1.0, burst_rate=2.0, mean_on_s=0.0)
        process = MarkovModulatedPoisson(base_rate=1.0, burst_rate=2.0)
        with pytest.raises(ValueError):
            process.arrival_times(np.random.default_rng(0), -1)


class TestBurstyWorkloads:
    def test_params_validate_process_name(self):
        from repro.workloads import WorkloadParams

        with pytest.raises(ValueError):
            WorkloadParams(arrival_process="uniform")

    def test_bursty_traces_cluster_arrivals(self):
        from repro.workloads import WorkloadParams, generate_lmsys_trace

        smooth = generate_lmsys_trace(
            WorkloadParams(n_sessions=120, seed=5, arrival_process="poisson")
        )
        bursty = generate_lmsys_trace(
            WorkloadParams(n_sessions=120, seed=5, arrival_process="bursty")
        )

        def cv(trace):
            gaps = np.diff([s.arrival_time for s in trace.sessions])
            return gaps.std() / gaps.mean()

        assert cv(bursty) > cv(smooth)
        # Same long-run rate: total horizons are comparable.
        assert bursty.sessions[-1].arrival_time == pytest.approx(
            smooth.sessions[-1].arrival_time, rel=0.5
        )

    def test_bursty_selfconsistency(self):
        from repro.workloads import WorkloadParams, generate_selfconsistency_trace

        trace = generate_selfconsistency_trace(
            WorkloadParams(n_sessions=6, seed=3, arrival_process="bursty")
        )
        assert trace.n_requests == trace.metadata["n_samples"]
