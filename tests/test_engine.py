"""Tests for the latency model and the discrete-event serving simulator."""

import numpy as np
import pytest

from repro.baselines.vanilla import VanillaCache
from repro.core.cache import MarconiCache
from repro.engine.latency import LatencyModel
from repro.engine.request import EngineRequest
from repro.engine.results import EngineResult, RequestRecord
from repro.engine.server import ServingSimulator, simulate_trace
from repro.models.flops import model_prefill_flops
from repro.workloads.lmsys import generate_lmsys_trace
from repro.workloads.sessions import WorkloadParams
from repro.workloads.trace import Trace, TraceRound, TraceSession


class TestLatencyModel:
    def test_prefill_scales_with_flops(self, hybrid):
        lm = LatencyModel()
        t1 = lm.prefill_seconds(hybrid, 1000)
        t2 = lm.prefill_seconds(hybrid, 10000)
        assert t2 > t1 > lm.prefill_overhead_s

    def test_reuse_reduces_latency(self, hybrid):
        lm = LatencyModel()
        assert lm.prefill_seconds(hybrid, 10000, 8000, 0) < lm.prefill_seconds(hybrid, 10000)

    def test_fetch_term_charged(self, hybrid):
        lm = LatencyModel()
        free_fetch = lm.prefill_seconds(hybrid, 1000, 500, 0)
        paid_fetch = lm.prefill_seconds(hybrid, 1000, 500, int(1e9))
        assert paid_fetch - free_fetch == pytest.approx(1e9 / lm.fetch_bandwidth_bytes_per_s)

    def test_full_reuse_is_overhead_only(self, hybrid):
        lm = LatencyModel()
        assert lm.prefill_seconds(hybrid, 100, 100, 0) == pytest.approx(lm.prefill_overhead_s)

    def test_a100_scale_sanity(self, hybrid):
        """A 10K-token prefill of a 7B hybrid should land near ~1 s."""
        lm = LatencyModel()
        t = lm.vanilla_prefill_seconds(hybrid, 10000)
        assert 0.3 < t < 3.0

    def test_decode_linear(self):
        lm = LatencyModel()
        assert lm.decode_seconds(100) == pytest.approx(100 * lm.decode_seconds_per_token)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(mfu=0)
        with pytest.raises(ValueError):
            LatencyModel(decode_seconds_per_token=-1)

    def test_negative_reused_bytes_rejected(self, hybrid):
        """Negative reused_bytes used to be silently clamped to zero,
        masking accounting bugs upstream; now both paths reject it."""
        lm = LatencyModel()
        with pytest.raises(ValueError, match="reused_bytes"):
            lm.prefill_seconds(hybrid, 1000, 500, -1)
        with pytest.raises(ValueError, match="reused_bytes"):
            lm.prefill_seconds_batch(hybrid, [(1000, 500, -1, 0)])
        # A well-formed sibling item must not mask the bad one.
        with pytest.raises(ValueError, match="reused_bytes"):
            lm.prefill_seconds_batch(hybrid, [(1000, 0, 0, 0), (1000, 500, -7, 0)])

    def test_batch_is_bit_identical_to_scalar(self, hybrid):
        """The scheduler's batch path must reproduce the scalar method's
        floats exactly (== , not approx): both feed committed transcripts."""
        lm = LatencyModel()
        items = [
            (1000, 0, 0, 0),
            (10000, 8000, int(3e8), 0),
            (4096, 4096, int(1e9), int(4e8)),
            (777, 130, 12345678, 1234567),
        ]
        batch = lm.prefill_seconds_batch(hybrid, items)
        for (seq_len, reused_len, reused_bytes, secondary), got in zip(items, batch):
            assert got == lm.prefill_seconds(
                hybrid, seq_len, reused_len, reused_bytes, secondary
            )
        with pytest.raises(ValueError):
            lm.prefill_seconds_batch(hybrid, [(100, 0, 10, 20)])


class TestEngineRequest:
    def test_lengths(self):
        req = EngineRequest(0, 0, 0.0, np.arange(5, dtype=np.int32), np.arange(8, dtype=np.int32))
        assert req.input_len == 5 and req.output_len == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineRequest(0, 0, 0.0, np.arange(5, dtype=np.int32), np.arange(5, dtype=np.int32))


def _two_session_trace():
    def mk_round(seed, n_in=50, n_out=20):
        rng = np.random.default_rng(seed)
        return TraceRound(
            rng.integers(0, 1000, n_in).astype(np.int32),
            rng.integers(0, 1000, n_out).astype(np.int32),
        )

    sessions = [
        TraceSession(0, 0.0, [mk_round(1), mk_round(2)], [0.0, 1.0]),
        TraceSession(1, 0.5, [mk_round(3)], [0.0]),
    ]
    return Trace(name="mini", seed=0, sessions=sessions)


class TestSimulator:
    def test_all_requests_served(self, hybrid):
        trace = _two_session_trace()
        result = simulate_trace(hybrid, VanillaCache(hybrid), trace, policy_name="vanilla")
        assert result.n_requests == 3

    def test_fcfs_service_order(self, hybrid):
        trace = _two_session_trace()
        result = simulate_trace(hybrid, VanillaCache(hybrid), trace)
        starts = [r.service_start for r in result.records]
        assert starts == sorted(starts)

    def test_ttft_includes_queue_delay(self, hybrid):
        trace = _two_session_trace()
        result = simulate_trace(hybrid, VanillaCache(hybrid), trace)
        for record in result.records:
            assert record.ttft == pytest.approx(
                record.queue_delay + record.prefill_seconds
            )
            assert record.queue_delay >= 0

    def test_closed_loop_round_spacing(self, hybrid):
        """Round k+1 arrives exactly decode_end + think after round k."""
        trace = _two_session_trace()
        lm = LatencyModel()
        result = simulate_trace(hybrid, VanillaCache(hybrid), trace, lm)
        session0 = sorted(
            (r for r in result.records if r.session_id == 0),
            key=lambda r: r.round_index,
        )
        first, second = session0
        decode_end = first.service_start + first.prefill_seconds + lm.decode_seconds(first.output_len)
        assert second.arrival_time == pytest.approx(decode_end + 1.0)

    def test_cache_hits_reduce_ttft(self, hybrid):
        trace = _two_session_trace()
        vanilla = simulate_trace(hybrid, VanillaCache(hybrid), trace)
        cached = simulate_trace(
            hybrid, MarconiCache(hybrid, int(10e9), alpha=1.0), trace
        )
        # Session 0 round 1 reuses round 0's sequence.
        v = next(r for r in vanilla.records if (r.session_id, r.round_index) == (0, 1))
        c = next(r for r in cached.records if (r.session_id, r.round_index) == (0, 1))
        assert c.hit_tokens > 0 and v.hit_tokens == 0
        assert c.prefill_seconds < v.prefill_seconds

    def test_flops_saved_matches_hits(self, hybrid):
        trace = _two_session_trace()
        result = simulate_trace(hybrid, MarconiCache(hybrid, int(10e9), alpha=1.0), trace)
        for record in result.records:
            assert record.flops_saved == pytest.approx(
                model_prefill_flops(hybrid, record.hit_tokens)
            )

    def test_deterministic(self, hybrid):
        trace = generate_lmsys_trace(WorkloadParams(n_sessions=10, seed=3))
        a = simulate_trace(hybrid, MarconiCache(hybrid, int(5e9), alpha=1.0), trace)
        b = simulate_trace(hybrid, MarconiCache(hybrid, int(5e9), alpha=1.0), trace)
        assert [r.ttft for r in a.records] == [r.ttft for r in b.records]
        assert a.token_hit_rate == b.token_hit_rate

    def test_cache_stats_attached(self, hybrid):
        trace = _two_session_trace()
        result = simulate_trace(hybrid, MarconiCache(hybrid, int(10e9), alpha=1.0), trace)
        assert result.cache_stats["lookups"] == 3


class TestEngineResult:
    def _result(self):
        records = [
            RequestRecord(0, i, float(i), float(i), 0.1, 0.1 + 0.01 * i, 100, 20 * i, 10, 0, 0.0)
            for i in range(5)
        ]
        return EngineResult(policy="x", records=records)

    def test_token_hit_rate(self):
        result = self._result()
        assert result.token_hit_rate == pytest.approx(sum(20 * i for i in range(5)) / 500)

    def test_percentiles(self):
        result = self._result()
        assert result.ttft_percentile(0) == pytest.approx(0.1)
        assert result.ttft_percentile(100) == pytest.approx(0.14)

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            EngineResult(policy="x").ttft_percentile(50)

    def test_summary_keys(self):
        summary = self._result().summary()
        for key in ("token_hit_rate", "p95_ttft_s", "n_requests"):
            assert key in summary
