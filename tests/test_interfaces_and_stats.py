"""Tests for the shared cache interfaces and counters."""

import numpy as np
import pytest

from repro.core.interfaces import AdmitResult, LookupResult, as_token_array
from repro.core.stats import CacheStats


class TestAsTokenArray:
    def test_list_coerced(self):
        out = as_token_array([1, 2, 3])
        assert out.dtype == np.int32
        np.testing.assert_array_equal(out, [1, 2, 3])

    def test_int64_downcast(self):
        out = as_token_array(np.asarray([5, 6], dtype=np.int64))
        assert out.dtype == np.int32

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            as_token_array(np.zeros((2, 3)))

    def test_empty_allowed(self):
        assert len(as_token_array([])) == 0


class TestLookupResult:
    def test_hit_rate(self):
        result = LookupResult(hit_tokens=25, input_tokens=100)
        assert result.hit_rate == 0.25
        assert result.is_hit

    def test_zero_input_safe(self):
        assert LookupResult(hit_tokens=0, input_tokens=0).hit_rate == 0.0

    def test_miss(self):
        assert not LookupResult(hit_tokens=0, input_tokens=10).is_hit

    def test_defaults(self):
        result = LookupResult(hit_tokens=0, input_tokens=5)
        assert result.checkpoint_positions == []
        assert result.state_payload is None


class TestAdmitResult:
    def test_defaults(self):
        result = AdmitResult()
        assert not result.rejected
        assert result.admitted_bytes == 0


class TestCacheStats:
    def test_lookup_recording(self):
        stats = CacheStats()
        stats.record_lookup(0, 100)
        stats.record_lookup(50, 100)
        assert stats.lookups == 2 and stats.hits == 1
        assert stats.token_hit_rate == pytest.approx(0.25)
        assert stats.request_hit_rate == pytest.approx(0.5)

    def test_idle_rates_are_zero(self):
        stats = CacheStats()
        assert stats.token_hit_rate == 0.0
        assert stats.request_hit_rate == 0.0

    def test_admission_recording(self):
        stats = CacheStats()
        stats.record_admission(1000)
        stats.record_admission(0, rejected=True)
        assert stats.admissions == 1
        assert stats.admitted_bytes == 1000
        assert stats.rejected_admissions == 1

    def test_eviction_recording(self):
        stats = CacheStats()
        stats.record_eviction(512)
        stats.record_eviction(256, entries=3)
        assert stats.evictions == 4
        assert stats.evicted_bytes == 768

    def test_snapshot_roundtrip(self):
        stats = CacheStats()
        stats.record_lookup(10, 20)
        snap = stats.snapshot()
        assert snap["hit_tokens"] == 10
        assert snap["token_hit_rate"] == pytest.approx(0.5)
