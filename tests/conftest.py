"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.config import ModelConfig
from repro.models.presets import hybrid_7b, tiny_test_model, transformer_7b


@pytest.fixture
def hybrid() -> ModelConfig:
    """The paper's 7B hybrid (4 Attention / 24 SSM / 28 MLP)."""
    return hybrid_7b()


@pytest.fixture
def transformer() -> ModelConfig:
    return transformer_7b()


@pytest.fixture
def tiny() -> ModelConfig:
    """A small hybrid usable by the executable NumPy model."""
    return tiny_test_model()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tokens(rng):
    """Factory for random int32 token arrays."""

    def make(n: int, seed: int | None = None) -> np.ndarray:
        local = np.random.default_rng(seed) if seed is not None else rng
        return local.integers(0, 32000, size=n, dtype=np.int32)

    return make
