"""Unit tests for the tree observer surface and the incremental eviction index."""

import numpy as np
import pytest

from repro.core.cache import MarconiCache
from repro.core.eviction import FlopAwareEviction, LRUEviction
from repro.core.eviction_index import EvictionIndex
from repro.core.radix_tree import RadixTree, TreeObserver
from repro.models.memory import model_recurrent_bytes, node_state_bytes
from repro.models.presets import tiny_test_model


def arr(*tokens):
    return np.asarray(tokens, dtype=np.int32)


class RecordingObserver(TreeObserver):
    def __init__(self):
        self.events = []

    def on_node_added(self, node):
        self.events.append(("added", node.node_id))

    def on_edge_split(self, middle, child):
        self.events.append(("split", middle.node_id, child.node_id))

    def on_leaf_removed(self, node, parent):
        self.events.append(("removed", node.node_id, parent.node_id))

    def on_merged(self, node, child):
        self.events.append(("merged", node.node_id, child.node_id))

    def on_leaf_truncated(self, node):
        self.events.append(("truncated", node.node_id))

    def on_checkpoint_changed(self, node):
        self.events.append(("checkpoint", node.node_id, node.has_ssm_state))

    def on_pin_changed(self, node):
        self.events.append(("pin", node.node_id, node.pin_count))

    def on_touched(self, node):
        self.events.append(("touched", node.node_id))


class TestTreeObserver:
    def test_insert_fires_added_and_split(self):
        tree = RadixTree()
        obs = RecordingObserver()
        tree.add_observer(obs)
        first = tree.insert(arr(1, 2, 3, 4), now=0.0)
        assert obs.events == [("added", first.end_node.node_id)]
        obs.events.clear()
        second = tree.insert(arr(1, 2, 9), now=1.0)
        kinds = [e[0] for e in obs.events]
        assert kinds == ["split", "added"]
        assert obs.events[0][1] == second.split_node.node_id
        assert obs.events[1][1] == second.new_leaf.node_id

    def test_remove_merge_truncate_and_state_callbacks(self):
        tree = RadixTree()
        obs = RecordingObserver()
        tree.add_observer(obs)
        tree.insert(arr(1, 2), now=0.0)
        out = tree.insert(arr(1, 2, 3, 4), now=1.0)
        leaf = out.end_node
        interior = leaf.parent
        obs.events.clear()

        tree.set_checkpoint(interior, now=2.0)
        tree.clear_checkpoint(interior)
        tree.touch(interior, 3.0)
        tree.refresh_access(interior, 4.0)
        tree.truncate_leaf(leaf, 1)
        tree.remove_leaf(leaf)
        assert [e[0] for e in obs.events] == [
            "checkpoint",
            "checkpoint",
            "touched",
            "touched",
            "truncated",
            "removed",
        ]
        assert interior.last_access == 4.0 and interior.hit_count == 1

    def test_pin_path_fires_per_node_and_remove_observer_silences(self):
        tree = RadixTree()
        obs = RecordingObserver()
        tree.add_observer(obs)
        out = tree.insert(arr(1, 2), now=0.0)
        tree.insert(arr(1, 2, 3), now=1.0)
        deep = tree.match(arr(1, 2, 3)).deepest_node
        obs.events.clear()
        tree.pin_path(deep)
        assert [e[0] for e in obs.events] == ["pin", "pin"]
        tree.unpin_path(deep)
        tree.remove_observer(obs)
        obs.events.clear()
        tree.touch(out.end_node, 5.0)
        assert obs.events == []


class TestEvictionIndexMaintenance:
    def make_index(self, tree):
        # Byte accounting stand-ins: 10 bytes per edge token for leaves,
        # 7 bytes for an interior checkpoint, efficiency = seq_len.
        def freeable(node):
            if node.is_leaf:
                return 10 * node.kv_tokens + (7 if node.has_ssm_state else 0)
            return 7 if node.has_ssm_state else 0

        return EvictionIndex(tree, freeable, lambda node, b: float(node.seq_len))

    def expected_ids(self, tree, freeable):
        return {
            n.node_id
            for n in tree.iter_nodes()
            if n.n_children <= 1 and not n.is_pinned and freeable(n) > 0
        }

    def test_tracks_membership_through_mutations(self):
        tree = RadixTree()
        index = self.make_index(tree)
        out1 = tree.insert(arr(1, 2, 3, 4), now=0.0)
        out2 = tree.insert(arr(1, 2, 9), now=1.0)
        # Leaves are candidates; the unchekpointed split node frees 0 bytes.
        ids = {c.node.node_id for c in index.candidates()}
        assert ids == {out1.end_node.node_id, out2.new_leaf.node_id}

        # A checkpoint alone cannot make the two-child split node evictable.
        tree.set_checkpoint(out2.split_node)
        ids = {c.node.node_id for c in index.candidates()}
        assert out2.split_node.node_id not in ids

        tree.pin_path(out1.end_node)
        ids = {c.node.node_id for c in index.candidates()}
        assert out1.end_node.node_id not in ids
        tree.unpin_path(out1.end_node)

        # Removing one branch leaves a single-child checkpointed interior
        # node: now it frees its recurrent bytes and becomes a candidate.
        tree.remove_leaf(tree.match(arr(1, 2, 9)).deepest_node)
        ids = {c.node.node_id for c in index.candidates()}
        assert out2.split_node.node_id in ids
        assert index.get(out2.split_node.node_id).freeable_bytes == 7

        tree.clear_checkpoint(out2.split_node)
        assert out2.split_node.node_id not in {
            c.node.node_id for c in index.candidates()
        }
        tree.merge_into_child(out2.split_node)
        ids = {c.node.node_id for c in index.candidates()}
        assert ids == {out1.end_node.node_id}
        # The absorbing leaf's cached freeable bytes reflect the merged edge.
        (cand,) = index.candidates()
        assert cand.freeable_bytes == 10 * 4

    def test_epoch_advances_only_on_real_changes(self):
        tree = RadixTree()
        index = self.make_index(tree)
        out = tree.insert(arr(1, 2, 3), now=0.0)
        epoch = index.epoch
        # Re-refreshing an unchanged node is a no-op for the epoch.
        index.refresh(out.end_node)
        assert index.epoch == epoch
        tree.touch(out.end_node, 1.0)
        assert index.epoch > epoch

    def test_candidates_snapshot_cached_per_epoch(self):
        tree = RadixTree()
        index = self.make_index(tree)
        tree.insert(arr(1, 2), now=0.0)
        first = index.candidates()
        assert index.candidates() is first
        tree.insert(arr(3, 4), now=1.0)
        assert index.candidates() is not first

    def test_node_visits_counts_evaluations(self):
        tree = RadixTree()
        index = self.make_index(tree)
        before = index.node_visits
        tree.insert(arr(1, 2, 3), now=0.0)
        assert index.node_visits > before


class TestHeapSelectorIdentity:
    """Heap-backed selection must equal the seed's min() over candidates."""

    @pytest.mark.parametrize("eviction", ["lru", "gdsf", "gds", "lfu", "lru_k"])
    def test_select_from_index_matches_select_victim(self, eviction, tokens):
        model = tiny_test_model()
        cache = MarconiCache(
            model, capacity_bytes=int(1e9), eviction=eviction, alpha=1.0
        )
        rng = np.random.default_rng(7)
        for i in range(12):
            if i % 3 and i > 0:
                base = tokens(8, seed=100 + i - 1)
                seq = np.concatenate([base[:4], tokens(6, seed=200 + i)])
            else:
                seq = tokens(8, seed=100 + i)
            r = cache.lookup(seq, float(i))
            cache.admit(
                np.concatenate([seq, tokens(3, seed=300 + i)]),
                float(i) + 0.5,
                handle=r.handle,
            )
            index = cache.eviction_index
            if index.candidates():
                chosen = cache.policy.select_from_index(index)
                reference = cache.policy.select_victim(index.candidates())
                assert chosen is reference

    def test_empty_index_raises(self):
        model = tiny_test_model()
        cache = MarconiCache(model, capacity_bytes=int(1e9), eviction="lru")
        with pytest.raises(ValueError):
            cache.policy.select_from_index(cache.eviction_index)


class TestBatchEviction:
    def test_batch_mode_preserves_invariants_under_pressure(self, tokens):
        model = tiny_test_model()
        per_seq = node_state_bytes(model, 450, True)
        for k in (1, 3, 16):
            cache = MarconiCache(
                model, capacity_bytes=3 * per_seq, alpha=1.0, batch_evictions=k
            )
            for i in range(8):
                seq = tokens(400, seed=4000 + i)
                r = cache.lookup(seq, float(i))
                cache.admit(
                    np.concatenate([seq, tokens(50, seed=5000 + i)]),
                    float(i) + 0.5,
                    handle=r.handle,
                )
            assert cache.stats.evictions > 0
            assert cache.used_bytes <= cache.capacity_bytes
            assert cache.used_bytes == cache.recompute_used_bytes()
            cache.tree.check_integrity()

    def test_batch_size_one_is_seed_identical(self, tokens):
        model = tiny_test_model()
        per_seq = node_state_bytes(model, 450, True)
        a = MarconiCache(model, capacity_bytes=3 * per_seq, alpha=1.0)
        b = MarconiCache(
            model, capacity_bytes=3 * per_seq, alpha=1.0, use_eviction_index=False
        )
        for i in range(10):
            seq = tokens(400, seed=6000 + i)
            ra = a.lookup(seq, float(i))
            rb = b.lookup(seq, float(i))
            full = np.concatenate([seq, tokens(50, seed=7000 + i)])
            a.admit(full, float(i) + 0.5, handle=ra.handle)
            b.admit(full, float(i) + 0.5, handle=rb.handle)
        assert a.stats.snapshot() == b.stats.snapshot()

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            FlopAwareEviction(alpha=1.0, batch_size=0)
        with pytest.raises(ValueError):
            MarconiCache(tiny_test_model(), capacity_bytes=1024, batch_evictions=0)


class TestTreeReattachment:
    def test_assigning_a_tree_reseeds_the_index(self, tokens):
        model = tiny_test_model()
        source = MarconiCache(model, capacity_bytes=int(1e9), alpha=1.0)
        for i in range(4):
            seq = tokens(30, seed=i)
            r = source.lookup(seq, float(i))
            source.admit(
                np.concatenate([seq, tokens(5, seed=50 + i)]),
                float(i) + 0.5,
                handle=r.handle,
            )
        target = MarconiCache(model, capacity_bytes=int(1e9), alpha=1.0)
        target.tree = source.tree.clone()
        target._used = target.recompute_used_bytes()
        maintained = {c.node.node_id for c in target.eviction_index.candidates()}
        rebuilt = {c.node.node_id for c in target._collect_candidates()}
        assert maintained == rebuilt and maintained

    def test_reset_clears_index(self):
        model = tiny_test_model()
        cache = MarconiCache(model, capacity_bytes=int(1e9), alpha=1.0)
        cache.lookup(arr(1, 2, 3), 0.0)
        cache.reset()
        assert cache.eviction_index is not None
        assert cache.eviction_index.candidates() == []
        assert cache.used_bytes == 0


class TestLegacyModeStillWorks:
    def test_legacy_mode_has_no_index_and_counts_scans(self, tokens):
        model = tiny_test_model()
        per_seq = node_state_bytes(model, 450, True)
        cache = MarconiCache(
            model, capacity_bytes=3 * per_seq, alpha=1.0, use_eviction_index=False
        )
        for i in range(6):
            seq = tokens(400, seed=8000 + i)
            r = cache.lookup(seq, float(i))
            cache.admit(
                np.concatenate([seq, tokens(50, seed=9000 + i)]),
                float(i) + 0.5,
                handle=r.handle,
            )
        assert cache.eviction_index is None
        assert cache.stats.evictions > 0
        assert cache.eviction_node_visits > 0
        assert cache.used_bytes == cache.recompute_used_bytes()
