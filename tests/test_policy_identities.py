"""Identity tests between policies that must coincide by construction."""

import numpy as np
import pytest

from repro.core.cache import MarconiCache
from repro.baselines.sglang_plus import SGLangPlusCache
from repro.engine.server import simulate_trace
from repro.models.presets import hybrid_7b
from repro.workloads.lmsys import generate_lmsys_trace
from repro.workloads.sessions import WorkloadParams


@pytest.fixture(scope="module")
def trace():
    return generate_lmsys_trace(
        WorkloadParams(n_sessions=40, session_rate=2.0, mean_think_s=3.0, seed=17)
    )


@pytest.fixture(scope="module")
def model():
    return hybrid_7b()


def run(model, cache, trace):
    return simulate_trace(model, cache, trace, policy_name="x")


class TestAlphaZeroIsLRU:
    def test_flop_aware_alpha0_equals_lru_under_contention(self, model, trace):
        """`S(n) = recency + 0 * efficiency` must reproduce LRU decisions
        exactly, including tie-breaks, over a full contended run."""
        capacity = int(3e9)
        lru = run(model, MarconiCache(model, capacity, eviction="lru"), trace)
        alpha0 = run(model, MarconiCache(model, capacity, alpha=0.0), trace)
        assert lru.token_hit_rate == alpha0.token_hit_rate
        assert [r.hit_tokens for r in lru.records] == [r.hit_tokens for r in alpha0.records]


class TestSGLangPlusIdentity:
    def test_sglang_plus_is_marconi_lru(self, model, trace):
        capacity = int(3e9)
        sglang = run(model, SGLangPlusCache(model, capacity), trace)
        marconi_lru = run(model, MarconiCache(model, capacity, eviction="lru"), trace)
        assert sglang.token_hit_rate == marconi_lru.token_hit_rate


class TestTunerWarmupIdentity:
    def test_untuned_marconi_tracks_lru_until_first_eviction(self, model, trace):
        """Before the first eviction, auto-tuned Marconi behaves exactly as
        LRU (alpha starts at 0) — verify on an uncontended run."""
        capacity = int(1e12)  # nothing evicts
        auto = MarconiCache(model, capacity, alpha=None)
        lru = MarconiCache(model, capacity, eviction="lru")
        a = run(model, auto, trace)
        b = run(model, lru, trace)
        assert a.token_hit_rate == b.token_hit_rate
        assert auto.alpha == 0.0  # never tuned

    def test_tuned_alpha_only_diverges_after_tuning(self, model, trace):
        capacity = int(3e9)
        auto = MarconiCache(model, capacity, alpha=None)
        run(model, auto, trace)
        if auto.tuner is not None and auto.tuner.is_tuned:
            assert auto.alpha in auto.tuner.config.alpha_grid


class TestPureTransformerEquivalence:
    def test_eviction_policy_irrelevant_without_contention(self, trace):
        from repro.models.presets import transformer_7b

        model = transformer_7b()
        capacity = int(1e12)
        a = run(model, MarconiCache(model, capacity, alpha=2.0), trace)
        b = run(model, MarconiCache(model, capacity, eviction="lru"), trace)
        assert a.token_hit_rate == b.token_hit_rate
        assert a.token_hit_rate > 0
