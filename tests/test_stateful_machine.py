"""Stateful model-based testing of MarconiCache against a brute-force oracle.

The reference model re-implements the *semantics* of Marconi's admission on
an unbounded cache with plain Python sets — no radix tree:

* the tree's node set is derived from pairwise longest-common-prefix
  arithmetic over all inserted sequences;
* a lookup checkpoints a branch point exactly when its insert creates a
  *new* intermediate node (speculative insertion);
* an admit checkpoints the end of the full sequence;
* a hybrid hit is the deepest checkpointed proper prefix of the query.

Running random interleaved request streams through both implementations
checks that the real cache's hit lengths match the executable specification
exactly, while tree integrity and byte accounting hold as invariants.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.cache import MarconiCache
from repro.models.presets import tiny_test_model
from repro.tiering import TieredMarconiCache

TOKENS = st.lists(st.integers(0, 3), min_size=1, max_size=12)


def _lcp(a: tuple, b: tuple) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


class ReferenceModel:
    """Executable specification of unbounded-capacity Marconi admission."""

    def __init__(self) -> None:
        self.paths: list[tuple] = []
        self.nodes: set[tuple] = set()
        self.checkpoints: set[tuple] = set()

    def _max_lcp(self, x: tuple) -> int:
        return max((_lcp(x, p) for p in self.paths), default=0)

    def _insert(self, x: tuple) -> tuple | None:
        """Insert a sequence; returns the newly created branch prefix, if any."""
        p = self._max_lcp(x)
        split: tuple | None = None
        if 0 < p and x[:p] not in self.nodes:
            # The walk diverged (or ended) mid-edge: a new node appears at p.
            split = x[:p]
            self.nodes.add(split)
        self.nodes.add(x)
        self.paths.append(x)
        return split

    def lookup(self, x: tuple) -> int:
        hit = max(
            (
                len(c)
                for c in self.checkpoints
                if len(c) <= len(x) - 1 and x[: len(c)] == c
            ),
            default=0,
        )
        split = self._insert(x)
        if split is not None:
            self.checkpoints.add(split)
        return hit

    def admit(self, full: tuple) -> None:
        self._insert(full)
        self.checkpoints.add(full)


class MarconiSpecMachine(RuleBasedStateMachine):
    """Random request streams: real cache vs the reference model."""

    def __init__(self) -> None:
        super().__init__()
        self.model = tiny_test_model()
        assert self.model.has_recurrent_layers
        self.cache = MarconiCache(self.model, capacity_bytes=int(1e15), alpha=1.0)
        self.ref = ReferenceModel()
        self.clock = 0.0
        self.history: list[tuple] = []
        self.pending: list[tuple] = []  # (input_tuple, handle)

    def _now(self) -> float:
        self.clock += 1.0
        return self.clock

    def _check_hit(self, inp: tuple) -> object:
        expected = self.ref.lookup(inp)
        result = self.cache.lookup(np.asarray(inp, dtype=np.int32), self._now())
        assert result.hit_tokens == expected, (
            f"hit mismatch for {inp}: cache={result.hit_tokens} spec={expected}"
        )
        return result.handle

    @rule(inp=TOKENS, out=TOKENS)
    def fresh_request(self, inp, out):
        """A full lookup+admit cycle on a fresh random input."""
        inp, out = tuple(inp), tuple(out)
        handle = self._check_hit(inp)
        full = inp + out
        self.cache.admit(np.asarray(full, dtype=np.int32), self._now(), handle=handle)
        self.ref.admit(full)
        self.history.append(full)

    @rule(data=st.data())
    def derived_request(self, data):
        """A request extending a prefix of an earlier sequence (reuse path)."""
        if not self.history:
            return
        base = data.draw(st.sampled_from(self.history))
        cut = data.draw(st.integers(1, len(base)))
        inp = base[:cut] + tuple(data.draw(TOKENS))
        out = tuple(data.draw(TOKENS))
        handle = self._check_hit(inp)
        full = inp + out
        self.cache.admit(np.asarray(full, dtype=np.int32), self._now(), handle=handle)
        self.ref.admit(full)
        self.history.append(full)

    @rule(inp=TOKENS)
    def lookup_only(self, inp):
        """Open a request and leave it in flight (pins its path)."""
        inp = tuple(inp)
        handle = self._check_hit(inp)
        self.pending.append((inp, handle))

    @precondition(lambda self: self.pending)
    @rule(data=st.data(), out=TOKENS)
    def finish_pending(self, data, out):
        """Close a random in-flight request (possibly out of order)."""
        index = data.draw(st.integers(0, len(self.pending) - 1))
        inp, handle = self.pending.pop(index)
        full = inp + tuple(out)
        self.cache.admit(np.asarray(full, dtype=np.int32), self._now(), handle=handle)
        self.ref.admit(full)
        self.history.append(full)

    @invariant()
    def accounting_holds(self):
        assert self.cache.used_bytes == self.cache.recompute_used_bytes()
        self.cache.tree.check_integrity()

    @invariant()
    def checkpoint_sets_agree(self):
        real = {
            tuple(int(t) for t in node.path_tokens())
            for node in self.cache.tree.iter_nodes()
            if node.has_ssm_state
        }
        assert real == self.ref.checkpoints


class ContendedInvariantMachine(RuleBasedStateMachine):
    """Random streams against a *small* cache: safety invariants only."""

    CACHE_FACTORY = staticmethod(
        lambda model: MarconiCache(model, capacity_bytes=200_000, alpha=1.0)
    )

    def __init__(self) -> None:
        super().__init__()
        self.model = tiny_test_model()
        self.cache = self.CACHE_FACTORY(self.model)
        self.clock = 0.0
        self.history: list[tuple] = []

    def _now(self) -> float:
        self.clock += 1.0
        return self.clock

    def _roundtrip(self, inp: tuple, out: tuple) -> None:
        result = self.cache.lookup(np.asarray(inp, dtype=np.int32), self._now())
        assert 0 <= result.hit_tokens <= len(inp) - 1
        if result.hit_tokens:
            assert tuple(inp[: result.hit_tokens]) in {
                h[: result.hit_tokens] for h in self.history if len(h) >= result.hit_tokens
            }
        full = inp + out
        self.cache.admit(
            np.asarray(full, dtype=np.int32), self._now(), handle=result.handle
        )
        self.history.append(full)

    @rule(inp=st.lists(st.integers(0, 2), min_size=1, max_size=40), out=TOKENS)
    def fresh_request(self, inp, out):
        self._roundtrip(tuple(inp), tuple(out))

    @rule(data=st.data())
    def derived_request(self, data):
        if not self.history:
            return
        base = data.draw(st.sampled_from(self.history))
        cut = data.draw(st.integers(1, len(base)))
        inp = base[:cut] + tuple(data.draw(TOKENS))
        self._roundtrip(inp, tuple(data.draw(TOKENS)))

    @invariant()
    def never_over_capacity(self):
        assert self.cache.used_bytes <= self.cache.capacity_bytes

    @invariant()
    def accounting_holds(self):
        assert self.cache.used_bytes == self.cache.recompute_used_bytes()
        self.cache.tree.check_integrity()

    @invariant()
    def no_pins_leak(self):
        assert all(n.pin_count == 0 for n in self.cache.tree.iter_nodes())


class TieredInvariantMachine(ContendedInvariantMachine):
    """The contended machine with a two-tier cache (demotion/promotion churn)."""

    CACHE_FACTORY = staticmethod(
        lambda model: TieredMarconiCache(
            model, capacity_bytes=200_000, secondary_bytes=400_000, alpha=1.0
        )
    )

    @invariant()
    def secondary_within_capacity(self):
        assert self.cache.secondary.used_bytes <= self.cache.secondary.capacity_bytes


TestMarconiSpec = MarconiSpecMachine.TestCase
TestMarconiSpec.settings = settings(max_examples=40, stateful_step_count=30, deadline=None)

TestContendedInvariants = ContendedInvariantMachine.TestCase
TestContendedInvariants.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestTieredInvariants = TieredInvariantMachine.TestCase
TestTieredInvariants.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
