"""Property tests for the simulation kernel and its event queue.

Four kernel invariants, checked over hypothesis-generated random traces
and replica counts:

* event-queue ordering is *total* — equal-timestamp events pop in
  ``(kind, per-queue insertion order)``, independent of payloads and of
  any other queue living in the same process (the tie-break bug fix);
* the virtual clock is monotone and refuses to run backwards;
* no cache session is left open once the kernel drains;
* replay is deterministic — the same (trace, seed, config) produces an
  identical ``RequestRecord`` stream, run after run, engine after engine.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.vanilla import VanillaCache
from repro.cluster import RoundRobinRouter, simulate_cluster
from repro.core.cache import MarconiCache
from repro.engine.events import EventKind, EventQueue
from repro.engine.iteration import IterationConfig, simulate_trace_iteration
from repro.engine.kernel import KernelConfig, SimulationKernel, VirtualClock
from repro.engine.server import ServingSimulator, simulate_trace
from repro.models.memory import node_state_bytes
from repro.models.presets import hybrid_7b
from repro.workloads.trace import Trace, TraceRound, TraceSession

MODEL = hybrid_7b()


# ----------------------------------------------------------------------
# Random-trace strategy
# ----------------------------------------------------------------------
@st.composite
def traces(draw):
    n_sessions = draw(st.integers(min_value=1, max_value=5))
    sessions = []
    for sid in range(n_sessions):
        arrival = draw(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False, width=32)
        )
        n_rounds = draw(st.integers(min_value=1, max_value=3))
        seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
        rng = np.random.default_rng(seed)
        rounds = [
            TraceRound(
                new_input_tokens=rng.integers(
                    0, 500, draw(st.integers(min_value=1, max_value=120))
                ).astype(np.int32),
                output_tokens=rng.integers(
                    0, 500, draw(st.integers(min_value=1, max_value=40))
                ).astype(np.int32),
            )
            for _ in range(n_rounds)
        ]
        thinks = [0.0] + [
            draw(st.sampled_from([0.0, 0.5, 2.0])) for _ in range(n_rounds - 1)
        ]
        sessions.append(
            TraceSession(
                session_id=sid,
                arrival_time=float(arrival),
                rounds=rounds,
                think_times=thinks,
            )
        )
    return Trace(name="hypothesis", seed=0, sessions=sessions)


def _marconi():
    return MarconiCache(MODEL, 4 * node_state_bytes(MODEL, 1000, True), alpha=1.0)


# ----------------------------------------------------------------------
# Event queue: total ordering + per-queue tie-break counters
# ----------------------------------------------------------------------
class TestEventQueueOrdering:
    @given(
        entries=st.lists(
            st.tuples(
                st.sampled_from([0.0, 1.0, 1.0, 2.5]),  # deliberate time ties
                st.sampled_from(list(EventKind)),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_total_order_under_equal_timestamps(self, entries):
        queue = EventQueue()
        for index, (time, kind) in enumerate(entries):
            queue.push(time, kind, payload=index)
        popped = [queue.pop() for _ in range(len(entries))]
        keys = [(e.time, e.kind, e.seq) for e in popped]
        assert keys == sorted(keys)
        # FIFO among identical (time, kind): payload index must ascend.
        for (a, b) in zip(popped, popped[1:]):
            if (a.time, a.kind) == (b.time, b.kind):
                assert a.payload < b.payload

    def test_per_queue_counters_are_independent(self):
        """Regression for the shared tie-break counter: a second queue in
        the same process must start numbering at zero, so its pop order
        (and any replay transcript built on it) cannot depend on how many
        events an unrelated simulation already pushed."""
        first = EventQueue()
        for _ in range(5):
            first.push(1.0, EventKind.REQUEST_ARRIVAL, None)
        second = EventQueue()
        second.push(1.0, EventKind.REQUEST_ARRIVAL, "a")
        first.push(1.0, EventKind.REQUEST_ARRIVAL, None)  # interleaved pushes
        second.push(1.0, EventKind.REQUEST_ARRIVAL, "b")
        events = [second.pop(), second.pop()]
        assert [e.payload for e in events] == ["a", "b"]
        assert [e.seq for e in events] == [0, 1]

    def test_external_seq_still_accepted(self):
        shared = itertools.count(10)
        queue = EventQueue(shared)
        queue.push(0.0, EventKind.REQUEST_ARRIVAL, None)
        assert queue.pop().seq == 10

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(3.0, EventKind.PREFILL_DONE, "x")
        assert queue.peek().payload == "x"
        assert len(queue) == 1


class TestVirtualClock:
    def test_monotone_advance(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(1.5) == 1.5  # equal time is fine
        with pytest.raises(ValueError):
            clock.advance(1.0)

    @given(times=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_sorted_times_always_accepted(self, times):
        clock = VirtualClock()
        for t in sorted(times):
            clock.advance(t)
        assert clock.now == max(times)


class TestKernelConstruction:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            KernelConfig(max_running=0)

    def test_rejects_empty_replica_set(self):
        with pytest.raises(ValueError):
            SimulationKernel(MODEL, [])

    def test_rejects_multi_replica_without_router(self):
        with pytest.raises(ValueError):
            SimulationKernel(MODEL, [VanillaCache(MODEL), VanillaCache(MODEL)])

    def test_rejects_policy_name_mismatch(self):
        with pytest.raises(ValueError):
            SimulationKernel(MODEL, [VanillaCache(MODEL)], policy_names=["a", "b"])

    @given(trace=traces())
    @settings(max_examples=10, deadline=None)
    def test_record_timeseries_off_keeps_records_identical(self, trace):
        on = simulate_trace(MODEL, VanillaCache(MODEL), trace)
        engine = ServingSimulator(MODEL, VanillaCache(MODEL), record_timeseries=False)
        off = engine.run(trace)
        assert off.records == on.records
        assert off.queue_depth_series == [] and off.running_series == []


# ----------------------------------------------------------------------
# Kernel-level invariants over random traces
# ----------------------------------------------------------------------
class TestKernelInvariants:
    @given(trace=traces(), n_executors=st.sampled_from([1, 2, 4]))
    @settings(max_examples=25, deadline=None)
    def test_no_session_left_open_at_drain(self, trace, n_executors):
        cache = _marconi()
        result = simulate_trace(MODEL, cache, trace, n_executors=n_executors)
        assert cache.open_sessions == 0
        assert result.n_requests == trace.n_requests

    @given(trace=traces())
    @settings(max_examples=15, deadline=None)
    def test_iteration_engine_closes_all_sessions(self, trace):
        cache = _marconi()
        result = simulate_trace_iteration(
            MODEL, cache, trace, config=IterationConfig(token_budget=128)
        )
        assert cache.open_sessions == 0
        assert result.n_requests == trace.n_requests

    @given(trace=traces(), n_replicas=st.sampled_from([1, 2, 3]))
    @settings(max_examples=15, deadline=None)
    def test_cluster_closes_all_sessions(self, trace, n_replicas):
        caches = [_marconi() for _ in range(n_replicas)]
        result = simulate_cluster(MODEL, caches, RoundRobinRouter(), trace)
        assert all(cache.open_sessions == 0 for cache in caches)
        assert result.n_requests == trace.n_requests

    @given(trace=traces(), n_executors=st.sampled_from([1, 3]))
    @settings(max_examples=20, deadline=None)
    def test_timeseries_times_monotone(self, trace, n_executors):
        result = simulate_trace(
            MODEL, VanillaCache(MODEL), trace, n_executors=n_executors
        )
        for series in (result.queue_depth_series, result.running_series):
            times = [t for t, _ in series]
            assert times == sorted(times)
        running = [r for _, r in result.running_series]
        assert all(0 <= r <= n_executors for r in running)
        assert result.running_series[-1][1] == 0  # drained

    @given(trace=traces(), n_executors=st.sampled_from([1, 2]))
    @settings(max_examples=20, deadline=None)
    def test_replay_determinism_serving(self, trace, n_executors):
        """Same (trace, seed, config) ⇒ identical RequestRecord streams."""
        first = simulate_trace(MODEL, _marconi(), trace, n_executors=n_executors)
        second = simulate_trace(MODEL, _marconi(), trace, n_executors=n_executors)
        assert first.records == second.records
        assert first.cache_stats == second.cache_stats
        assert first.queue_depth_series == second.queue_depth_series
        assert first.running_series == second.running_series

    @given(trace=traces(), n_replicas=st.sampled_from([2, 3]))
    @settings(max_examples=10, deadline=None)
    def test_replay_determinism_cluster(self, trace, n_replicas):
        runs = [
            simulate_cluster(
                MODEL,
                [_marconi() for _ in range(n_replicas)],
                RoundRobinRouter(),
                trace,
            )
            for _ in range(2)
        ]
        assert runs[0].routed_counts == runs[1].routed_counts
        assert runs[0].busy_seconds == runs[1].busy_seconds
        for a, b in zip(runs[0].replica_results, runs[1].replica_results):
            assert a.records == b.records

    def test_same_engine_instance_replays_identically(self):
        """Regression: the legacy loops threaded one engine-held counter
        into every run's event queue, so a reused engine instance started
        each run at a different seq offset.  Kernel runs rebuild all
        per-run state, so one instance replays byte-identically."""
        trace_sessions = [
            TraceSession(
                session_id=0,
                arrival_time=0.0,
                rounds=[
                    TraceRound(
                        np.arange(50, dtype=np.int32),
                        np.arange(20, dtype=np.int32),
                    )
                ],
                think_times=[0.0],
            )
        ]
        trace = Trace(name="t", seed=0, sessions=trace_sessions)
        engine = ServingSimulator(MODEL, VanillaCache(MODEL))
        assert engine.run(trace).records == engine.run(trace).records
