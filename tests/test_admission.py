"""Tests for speculative insertion and the admission taxonomy (section 4.1)."""

import numpy as np

from repro.core.admission import speculative_insert
from repro.core.cache import MarconiCache
from repro.core.radix_tree import RadixTree


def arr(*values):
    return np.asarray(values, dtype=np.int32)


class TestSpeculativeInsert:
    def test_empty_tree_no_split(self):
        tree = RadixTree()
        report = speculative_insert(tree, arr(1, 2, 3))
        assert not report.would_split_edge
        assert report.branch_position is None
        assert report.matched_len == 0

    def test_divergence_mid_edge_reports_branch(self):
        tree = RadixTree()
        tree.insert(arr(1, 2, 3, 4), now=1.0)
        report = speculative_insert(tree, arr(1, 2, 9))
        assert report.would_split_edge
        assert report.branch_position == 2

    def test_proper_prefix_reports_branch_at_end(self):
        tree = RadixTree()
        tree.insert(arr(1, 2, 3, 4), now=1.0)
        report = speculative_insert(tree, arr(1, 2, 3))
        assert report.would_split_edge
        assert report.branch_position == 3

    def test_extension_no_split(self):
        tree = RadixTree()
        tree.insert(arr(1, 2), now=1.0)
        report = speculative_insert(tree, arr(1, 2, 3, 4))
        assert not report.would_split_edge
        assert report.matched_len == 2

    def test_exact_node_match_no_split(self):
        tree = RadixTree()
        tree.insert(arr(1, 2), now=1.0)
        report = speculative_insert(tree, arr(1, 2))
        assert not report.would_split_edge
        assert report.matched_len == 2

    def test_never_mutates(self):
        tree = RadixTree()
        tree.insert(arr(1, 2, 3, 4), now=1.0)
        before = tree.n_nodes
        speculative_insert(tree, arr(1, 2, 9, 9))
        assert tree.n_nodes == before

    def test_agrees_with_actual_insert(self, tokens):
        """The dry run must predict exactly what insert() then does."""
        rng = np.random.default_rng(7)
        tree = RadixTree()
        shadow = RadixTree()
        base = tokens(64, seed=1)
        for i in range(50):
            cut = int(rng.integers(1, 64))
            candidate = np.concatenate([base[:cut], tokens(int(rng.integers(1, 20)), seed=100 + i)])
            report = speculative_insert(tree, candidate)
            outcome = tree.insert(candidate, now=float(i))
            assert report.would_split_edge == (outcome.split_node is not None)
            if report.would_split_edge:
                assert report.branch_position == outcome.split_node.seq_len
            shadow.insert(candidate, now=float(i))


class TestAdmissionTaxonomy:
    """End-to-end admission behaviour through MarconiCache."""

    def _cache(self, hybrid):
        return MarconiCache(hybrid, capacity_bytes=int(50e9), alpha=1.0)

    def test_purely_input_benefits_from_third_occurrence(self, hybrid, tokens):
        """Occurrence 1 misses, occurrence 2 misses but checkpoints the
        branch, occurrence 3 hits the shared prefix (section 4.1 tradeoffs)."""
        cache = self._cache(hybrid)
        shared = tokens(400, seed=1)
        hits = []
        for i in range(3):
            inp = np.concatenate([shared, tokens(100, seed=10 + i)])
            result = cache.lookup(inp, now=float(i))
            hits.append(result.hit_tokens)
            cache.admit(np.concatenate([inp, tokens(50, seed=20 + i)]), float(i) + 0.5,
                        handle=result.handle)
        assert hits == [0, 0, 400]

    def test_branch_checkpoint_position_reported(self, hybrid, tokens):
        cache = self._cache(hybrid)
        shared = tokens(300, seed=2)
        first = np.concatenate([shared, tokens(80, seed=30)])
        r = cache.lookup(first, 0.0)
        assert r.checkpoint_positions == []
        cache.admit(np.concatenate([first, tokens(40, seed=31)]), 0.5, handle=r.handle)
        second = np.concatenate([shared, tokens(80, seed=32)])
        r2 = cache.lookup(second, 1.0)
        assert r2.checkpoint_positions == [300]

    def test_input_output_reuse_is_instant(self, hybrid, tokens):
        """Conversation history: round 2 hits round 1's full sequence."""
        cache = self._cache(hybrid)
        round1 = tokens(200, seed=3)
        r = cache.lookup(round1, 0.0)
        full1 = np.concatenate([round1, tokens(60, seed=4)])
        cache.admit(full1, 0.5, handle=r.handle)
        round2 = np.concatenate([full1, tokens(30, seed=5)])
        r2 = cache.lookup(round2, 1.0)
        assert r2.hit_tokens == len(full1)

    def test_at_most_two_checkpoints_per_request(self, hybrid, tokens):
        """Judicious admission: <= 2 recurrent states per sequence (branch +
        last decoded token)."""
        cache = self._cache(hybrid)
        shared = tokens(300, seed=6)
        for i in range(4):
            inp = np.concatenate([shared, tokens(100, seed=40 + i)])
            r = cache.lookup(inp, float(i))
            before = sum(1 for n in cache.tree.iter_nodes() if n.has_ssm_state)
            cache.admit(np.concatenate([inp, tokens(50, seed=50 + i)]), float(i) + 0.5,
                        handle=r.handle)
            after = sum(1 for n in cache.tree.iter_nodes() if n.has_ssm_state)
            assert after - before <= 2

    def test_full_input_exact_match_capped(self, hybrid, tokens):
        """A hit can never cover the whole input (the last token must be
        prefilled to produce first-token logits)."""
        cache = self._cache(hybrid)
        seq = tokens(100, seed=7)
        r = cache.lookup(seq, 0.0)
        cache.admit(np.concatenate([seq, tokens(10, seed=8)]), 0.5, handle=r.handle)
        r2 = cache.lookup(seq, 1.0)  # identical input
        assert r2.hit_tokens < len(seq)

    def test_pure_transformer_token_granular_hits(self, transformer, tokens):
        """Without recurrent layers, hits are raw common-prefix length."""
        cache = MarconiCache(transformer, capacity_bytes=int(50e9), alpha=1.0)
        seq = tokens(100, seed=9)
        r = cache.lookup(seq, 0.0)
        cache.admit(np.concatenate([seq, tokens(20, seed=10)]), 0.5, handle=r.handle)
        # Diverge after 57 tokens: KVs reusable at token granularity.
        probe = np.concatenate([seq[:57], tokens(43, seed=11)])
        r2 = cache.lookup(probe, 1.0)
        assert r2.hit_tokens == 57
        # And no recurrent checkpoints exist anywhere.
        assert all(not n.has_ssm_state for n in cache.tree.iter_nodes())
