"""Tests for the iteration-level batching engine (chunked prefill + TBT)."""

import numpy as np
import pytest

from repro.core.cache import MarconiCache
from repro.baselines.vanilla import VanillaCache
from repro.engine.iteration import (
    IterationConfig,
    IterationSimulator,
    simulate_trace_iteration,
)
from repro.engine.latency import LatencyModel
from repro.models.memory import node_state_bytes
from repro.workloads.lmsys import generate_lmsys_trace
from repro.workloads.trace import Trace, TraceRound, TraceSession


def _session(session_id, arrival, rounds, think=1.0):
    trace_rounds = [
        TraceRound(
            new_input_tokens=np.asarray(i, dtype=np.int32),
            output_tokens=np.asarray(o, dtype=np.int32),
        )
        for i, o in rounds
    ]
    return TraceSession(
        session_id=session_id,
        arrival_time=arrival,
        rounds=trace_rounds,
        think_times=[0.0] + [think] * (len(rounds) - 1),
    )


def _trace(sessions):
    return Trace(name="t", seed=0, sessions=sessions)


def _cache(hybrid, seqs=50):
    return MarconiCache(hybrid, seqs * node_state_bytes(hybrid, 2000, True), alpha=1.0)


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            IterationConfig(token_budget=0)
        with pytest.raises(ValueError):
            IterationConfig(max_batch=0)
        with pytest.raises(ValueError):
            IterationConfig(iteration_overhead_s=-1.0)


class TestScheduling:
    def test_serves_all_requests(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=8, seed=51)
        result = simulate_trace_iteration(hybrid, _cache(hybrid), trace)
        assert result.n_requests == trace.n_requests
        assert all(r.ttft > 0 for r in result.records)

    def test_chunk_budget_bounds_iterations(self, hybrid):
        """A 1000-token prefill at budget B takes ceil(1000/B) iterations."""
        trace = _trace([_session(0, 0.0, [(list(range(1000)), [1, 2])])])
        for budget in (128, 512):
            result = simulate_trace_iteration(
                hybrid, _cache(hybrid), trace,
                config=IterationConfig(token_budget=budget),
            )
            expected = -(-1000 // budget) + 1  # prefill chunks + 1 decode step
            assert result.n_iterations == expected

    def test_ttft_grows_with_smaller_chunks(self, hybrid):
        """More chunks -> more per-iteration overhead on the same FLOPs."""
        trace = _trace([_session(0, 0.0, [(list(range(2000)), [1, 2, 3])])])
        fine = simulate_trace_iteration(
            hybrid, _cache(hybrid), trace, config=IterationConfig(token_budget=64)
        )
        coarse = simulate_trace_iteration(
            hybrid, _cache(hybrid), trace, config=IterationConfig(token_budget=4096)
        )
        assert fine.records[0].ttft > coarse.records[0].ttft

    def test_gap_count_matches_output_tokens(self, hybrid):
        out_len = 7
        trace = _trace([_session(0, 0.0, [(list(range(50)), list(range(out_len)))])])
        result = simulate_trace_iteration(hybrid, _cache(hybrid), trace)
        # First token arrives with the prefill; the rest each record a gap.
        assert len(result.tbt_gaps) == out_len - 1

    def test_single_token_output(self, hybrid):
        trace = _trace([_session(0, 0.0, [(list(range(50)), [9])])])
        result = simulate_trace_iteration(hybrid, _cache(hybrid), trace)
        assert result.n_requests == 1
        assert result.tbt_gaps == []

    def test_sessions_are_closed_loop(self, hybrid):
        trace = _trace([
            _session(0, 0.0, [([1, 2, 3], [4, 5]), ([6, 7], [8, 9])], think=3.0)
        ])
        result = simulate_trace_iteration(hybrid, _cache(hybrid), trace)
        first, second = sorted(result.records, key=lambda r: r.round_index)
        assert second.arrival_time >= first.arrival_time + first.ttft + 3.0

    def test_max_batch_delays_excess_streams(self, hybrid):
        """With max_batch=1, two concurrent decodes serialize."""
        sessions = [
            _session(0, 0.0, [(list(range(20)), list(range(30)))]),
            _session(1, 0.0, [(list(range(100, 120)), list(range(30)))]),
        ]
        serial = simulate_trace_iteration(
            hybrid, _cache(hybrid), _trace(sessions),
            config=IterationConfig(max_batch=1),
        )
        batched = simulate_trace_iteration(
            hybrid, _cache(hybrid), _trace(sessions),
            config=IterationConfig(max_batch=8),
        )
        assert serial.n_iterations > batched.n_iterations


class TestFootnoteTwo:
    """The paper's footnote 2: prefix caching lowers tail TPT too."""

    def _tbt_p95(self, hybrid, cache):
        trace = generate_lmsys_trace(
            n_sessions=16, seed=53, session_rate=4.0, mean_think_s=2.0
        )
        result = simulate_trace_iteration(
            hybrid, cache, trace, config=IterationConfig(token_budget=512)
        )
        return result

    def test_cache_hits_lower_tail_tbt(self, hybrid):
        vanilla = self._tbt_p95(hybrid, VanillaCache(hybrid))
        marconi = self._tbt_p95(hybrid, _cache(hybrid))
        assert marconi.token_hit_rate > 0
        # Fewer prefill iterations in the way of concurrent decodes.
        assert marconi.tbt_percentile(95) <= vanilla.tbt_percentile(95)
        assert marconi.ttft_percentile(95) <= vanilla.ttft_percentile(95)

    def test_chunking_bounds_tail_tbt_under_load(self, hybrid):
        """Chunked prefill caps how long a decode stream can starve."""
        sessions = [
            _session(0, 0.0, [(list(range(30)), list(range(60)))]),
            # A 20K-token monster arrives while session 0 decodes.
            _session(1, 0.05, [(list(range(100, 20100)), [1, 2])]),
        ]
        chunked = simulate_trace_iteration(
            hybrid, _cache(hybrid), _trace(sessions),
            config=IterationConfig(token_budget=256),
        )
        unchunked = simulate_trace_iteration(
            hybrid, _cache(hybrid), _trace(sessions),
            config=IterationConfig(token_budget=1 << 20),
        )
        assert max(chunked.tbt_gaps) < max(unchunked.tbt_gaps)


class TestResultSurface:
    def test_percentile_validation(self):
        from repro.engine.iteration import IterationResult

        empty = IterationResult(policy="x")
        with pytest.raises(ValueError):
            empty.ttft_percentile(95)
        with pytest.raises(ValueError):
            empty.tbt_percentile(95)
        assert empty.token_hit_rate == 0.0

    def test_cache_stats_snapshot_attached(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=4, seed=55)
        result = simulate_trace_iteration(hybrid, _cache(hybrid), trace)
        assert result.cache_stats["lookups"] == trace.n_requests
