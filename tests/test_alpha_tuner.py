"""Tests for the bootstrap alpha tuner (section 4.2)."""

import numpy as np
import pytest

from repro.core.alpha_tuner import AlphaTuner, AlphaTunerConfig, TunerPhase
from repro.core.cache import MarconiCache
from repro.models.memory import node_state_bytes


class TestConfigValidation:
    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            AlphaTunerConfig(alpha_grid=())

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            AlphaTunerConfig(alpha_grid=(-1.0,))

    def test_rejects_bad_multiplier(self):
        with pytest.raises(ValueError):
            AlphaTunerConfig(bootstrap_multiplier=0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            AlphaTunerConfig(min_bootstrap_requests=10, max_bootstrap_requests=5)

    def test_rejects_negative_margins(self):
        with pytest.raises(ValueError):
            AlphaTunerConfig(adoption_margin=-0.1)


class TestSelectionRule:
    def _tuner(self, **kwargs):
        return AlphaTuner(AlphaTunerConfig(**kwargs))

    def test_requires_margin_over_lru(self):
        tuner = self._tuner(adoption_margin=0.05)
        # 2% better than LRU: not enough to leave alpha=0.
        assert tuner._select_alpha({0.0: 0.50, 1.0: 0.51}) == 0.0

    def test_adopts_clear_winner(self):
        tuner = self._tuner(adoption_margin=0.03)
        assert tuner._select_alpha({0.0: 0.30, 1.0: 0.45}) == 1.0

    def test_prefers_smallest_on_plateau(self):
        tuner = self._tuner(adoption_margin=0.03, plateau_tolerance=0.02)
        results = {0.0: 0.30, 0.5: 0.447, 1.0: 0.45, 2.0: 0.449}
        assert tuner._select_alpha(results) == 0.5

    def test_zero_margin_is_pure_argmax(self):
        tuner = self._tuner(adoption_margin=0.0, plateau_tolerance=0.0)
        assert tuner._select_alpha({0.0: 0.40, 2.0: 0.401}) == 2.0


class TestLifecycle:
    def _make_cache(self, hybrid, capacity_multiple=3):
        per_seq = node_state_bytes(hybrid, 250, True)
        return MarconiCache(
            hybrid,
            capacity_bytes=capacity_multiple * per_seq,
            eviction="flop_aware",
            alpha=None,  # auto-tune
            tuner_config=AlphaTunerConfig(
                bootstrap_multiplier=2.0,
                min_bootstrap_requests=4,
                max_bootstrap_requests=16,
            ),
        )

    def _drive(self, cache, tokens, n_requests, length=200, start=0):
        for i in range(start, start + n_requests):
            seq = tokens(length, seed=5000 + i)
            r = cache.lookup(seq, float(i))
            cache.admit(np.concatenate([seq, tokens(50, seed=6000 + i)]),
                        float(i) + 0.5, handle=r.handle)

    def test_starts_in_warmup_with_lru_behaviour(self, hybrid, tokens):
        cache = self._make_cache(hybrid)
        assert cache.tuner.phase is TunerPhase.WARMUP
        assert cache.alpha == 0.0

    def test_transitions_through_phases(self, hybrid, tokens):
        cache = self._make_cache(hybrid)
        self._drive(cache, tokens, 3)  # fills 3-sequence capacity
        assert cache.tuner.phase is TunerPhase.WARMUP
        self._drive(cache, tokens, 2, start=3)  # triggers first eviction
        assert cache.tuner.phase in (TunerPhase.BOOTSTRAP, TunerPhase.TUNED)
        self._drive(cache, tokens, 20, start=5)
        assert cache.tuner.phase is TunerPhase.TUNED
        assert cache.tuner.tuned_alpha is not None
        assert cache.alpha == cache.tuner.tuned_alpha

    def test_grid_search_covers_grid(self, hybrid, tokens):
        cache = self._make_cache(hybrid)
        self._drive(cache, tokens, 30)
        assert cache.tuner.is_tuned
        assert set(cache.tuner.search_results) == set(cache.tuner.config.alpha_grid)
        for rate in cache.tuner.search_results.values():
            assert 0.0 <= rate <= 1.0

    def test_no_evictions_means_no_tuning(self, hybrid, tokens):
        cache = MarconiCache(hybrid, capacity_bytes=int(1e12), alpha=None)
        self._drive(cache, tokens, 10)
        assert cache.tuner.phase is TunerPhase.WARMUP
        assert cache.alpha == 0.0

    def test_fixed_alpha_disables_tuner(self, hybrid):
        cache = MarconiCache(hybrid, capacity_bytes=int(1e9), alpha=1.5)
        assert cache.tuner is None
        assert cache.alpha == 1.5

    def test_lru_eviction_disables_tuner(self, hybrid):
        cache = MarconiCache(hybrid, capacity_bytes=int(1e9), eviction="lru")
        assert cache.tuner is None

    def test_bootstrap_progress_reporting(self, hybrid, tokens):
        cache = self._make_cache(hybrid)
        self._drive(cache, tokens, 5)
        if cache.tuner.phase is TunerPhase.BOOTSTRAP:
            recorded, target = cache.tuner.bootstrap_progress
            assert 0 <= recorded <= target

    def test_replay_does_not_disturb_live_tree(self, hybrid, tokens):
        cache = self._make_cache(hybrid)
        self._drive(cache, tokens, 25)
        assert cache.tuner.is_tuned
        assert cache.used_bytes == cache.recompute_used_bytes()
        cache.tree.check_integrity()
