"""Tests for the process-pool sweep engine and the spec-keyed result caches.

The contract under test: parallel execution is a pure performance choice —
``run_specs(specs, n_workers=k)`` returns exactly what the serial path
returns, in the caller's order, for any ``k``; and the experiment-layer
caches are keyed by full value-based specs so pool workers (and forked
children generally) can never alias or leak each other's entries, which
the old ``id(trace)``-keyed module-global could.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import pytest

from repro.experiments.config import default_model
from repro.experiments.parallel import (
    RunSpec,
    _chunk_by_trace,
    derive_point_seed,
    execute_spec,
    run_specs,
)
from repro.experiments.runner import (
    ResultCache,
    clear_result_cache,
    clear_trace_cache,
    default_result_cache,
    get_trace,
    result_key,
    run_policy_on_trace,
)
from repro.experiments.sweeps import points_from_results, standard_sweep, sweep_specs
from repro.workloads import WorkloadParams, generate_trace


def _spec(policy="marconi", seed=3, workload="docqa", n_sessions=6, tag=""):
    return RunSpec(
        workload=workload,
        params=WorkloadParams(n_sessions=n_sessions, seed=seed),
        policy=policy,
        capacity_bytes=500_000_000,
        tag=tag,
    )


class TestRunSpec:
    def test_pickle_roundtrip(self):
        import pickle

        spec = _spec()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity_bytes"):
            replace(_spec(), capacity_bytes=0)

    def test_derived_seed_is_stable_and_policy_blind(self):
        base = _spec(policy="marconi", tag="cache=4")
        other_policy = _spec(policy="vanilla", tag="cache=4")
        other_point = _spec(policy="marconi", tag="cache=8")
        assert (
            base.with_derived_seed(7).params.seed
            == base.with_derived_seed(7).params.seed
        )
        # Same point, different policy: the *same* trace (paired runs).
        assert (
            base.with_derived_seed(7).params.seed
            == other_policy.with_derived_seed(7).params.seed
        )
        # Different point or different base: independent traces.
        assert (
            base.with_derived_seed(7).params.seed
            != other_point.with_derived_seed(7).params.seed
        )
        assert (
            base.with_derived_seed(7).params.seed
            != base.with_derived_seed(8).params.seed
        )

    def test_derive_point_seed_is_process_stable(self):
        # A frozen value: breaking it silently reshuffles every derived
        # sweep; move it only with a fixture-style review.
        assert derive_point_seed(0, "lmsys", 2.0) == 829212162


class TestChunking:
    def test_chunks_are_trace_contiguous_and_complete(self):
        specs = [
            _spec(policy=p, seed=s)
            for s in (1, 2, 3)
            for p in ("vanilla", "marconi")
        ]
        chunks = _chunk_by_trace(specs, n_chunks=2)
        seen = sorted(index for chunk in chunks for index, _ in chunk)
        assert seen == list(range(len(specs)))
        for chunk in chunks:
            # Within a chunk, specs of one trace sit adjacent.
            keys = [spec.trace_key() for _, spec in chunk]
            for key in set(keys):
                positions = [i for i, k in enumerate(keys) if k == key]
                assert positions == list(range(positions[0], positions[-1] + 1))

    def test_more_chunks_than_specs(self):
        chunks = _chunk_by_trace([_spec()], n_chunks=8)
        assert len(chunks) == 1 and len(chunks[0]) == 1


class TestRunSpecs:
    def test_empty_is_empty(self):
        assert run_specs([]) == []

    def test_serial_matches_execute_spec(self):
        spec = _spec()
        a = run_specs([spec], n_workers=1)[0]
        b = execute_spec(spec)
        assert [asdict(r) for r in a.records] == [asdict(r) for r in b.records]

    def test_parallel_matches_serial_in_order(self):
        specs = [
            _spec(policy=p, seed=s, tag=f"{p}/{s}")
            for s in (1, 2)
            for p in ("vanilla", "sglang+", "marconi")
        ]
        serial = run_specs(specs, n_workers=1)
        parallel = run_specs(specs, n_workers=2)
        assert len(serial) == len(parallel) == len(specs)
        for spec, a, b in zip(specs, serial, parallel):
            assert a.policy == spec.policy == b.policy
            assert [asdict(r) for r in a.records] == [asdict(r) for r in b.records]
            assert a.cache_stats == b.cache_stats


class TestResultCache:
    def setup_method(self):
        clear_result_cache()
        clear_trace_cache()

    def test_keys_are_value_based_not_identity_based(self):
        model = default_model()
        params = WorkloadParams(n_sessions=4, seed=5)
        trace_a = generate_trace("docqa", params)
        trace_b = generate_trace("docqa", params)  # distinct object, same value
        key_a = result_key(model, trace_a, "marconi", 10**9, None, 32, None)
        key_b = result_key(model, trace_b, "marconi", 10**9, None, 32, None)
        assert trace_a is not trace_b
        assert key_a == key_b
        different = generate_trace("docqa", WorkloadParams(n_sessions=4, seed=6))
        assert result_key(model, different, "marconi", 10**9, None, 32, None) != key_a

    def test_equal_headers_different_content_do_not_alias(self):
        """Hand-built traces sharing name/seed/metadata/session-count must
        still key apart: the content fingerprint disambiguates."""
        import numpy as np

        from repro.workloads.trace import Trace, TraceRound, TraceSession

        def build(token: int) -> Trace:
            rounds = [TraceRound(np.array([token, token + 1]), np.array([9]))]
            return Trace(
                name="handmade", seed=0,
                sessions=[TraceSession(0, 0.0, rounds, [0.0])],
            )

        model = default_model()
        key_a = result_key(model, build(1), "marconi", 10**9, None, 32, None)
        key_b = result_key(model, build(2), "marconi", 10**9, None, 32, None)
        assert key_a != key_b
        assert result_key(model, build(1), "marconi", 10**9, None, 32, None) == key_a

    def test_anonymous_streams_fall_back_to_object_identity(self):
        """Streams without recipe identity must never share memo entries."""
        from repro.workloads.trace import TraceStream

        trace = generate_trace("docqa", WorkloadParams(n_sessions=3, seed=1))
        anon_a = TraceStream("x", 0, lambda: iter(trace.sessions))
        anon_b = TraceStream("x", 0, lambda: iter([]))  # same header, no content
        assert anon_a.cache_key() is None
        model = default_model()
        key_a = result_key(model, anon_a, "marconi", 10**9, None, 32, None)
        key_b = result_key(model, anon_b, "marconi", 10**9, None, 32, None)
        assert key_a != key_b

    def test_run_policy_on_trace_hits_across_equal_traces(self):
        model = default_model()
        params = WorkloadParams(n_sessions=4, seed=5)
        first = run_policy_on_trace(
            model, generate_trace("docqa", params), "marconi", 10**9
        )
        second = run_policy_on_trace(
            model, generate_trace("docqa", params), "marconi", 10**9
        )
        assert second is first  # value-keyed memo, not id-keyed
        assert len(default_result_cache()) == 1

    def test_lru_eviction_and_clear(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b (least recent)
        assert "b" not in cache and "a" in cache and "c" in cache
        cache.clear()
        assert len(cache) == 0

    def test_explicit_cache_instance_isolates_entries(self):
        model = default_model()
        trace = get_trace("docqa", WorkloadParams(n_sessions=4, seed=5))
        mine = ResultCache()
        run_policy_on_trace(model, trace, "marconi", 10**9, result_cache=mine)
        assert len(mine) == 1
        assert len(default_result_cache()) == 0


class TestSweepAdoption:
    def test_specs_cover_the_grid_in_order(self):
        specs = sweep_specs("sharegpt", "smoke", policies=("vanilla", "marconi"))
        # 2 think times x 4 cache sizes x 2 policies
        assert len(specs) == 16
        assert specs[0].tag == "think=5/cache=1.5"
        assert specs[0].policy == "vanilla" and specs[1].policy == "marconi"

    def test_points_fold_back_in_grid_order(self):
        policies = ("vanilla", "marconi")
        specs = sweep_specs("sharegpt", "smoke", policies=policies)
        results = run_specs(specs, n_workers=1)
        points = points_from_results("sharegpt", "smoke", policies, results)
        assert len(points) == 8
        for point, chunk_start in zip(points, range(0, len(results), 2)):
            assert point.results["vanilla"] is results[chunk_start]
            assert point.results["marconi"] is results[chunk_start + 1]

    def test_standard_sweep_parallel_equals_serial(self):
        policies = ("sglang+", "marconi")
        serial = standard_sweep("sharegpt", "smoke", policies=policies)
        parallel = standard_sweep(
            "sharegpt", "smoke", policies=policies, n_workers=2
        )
        assert [p.describe() for p in serial] == [p.describe() for p in parallel]
        for a, b in zip(serial, parallel):
            for policy in policies:
                assert a.hit_rate(policy) == b.hit_rate(policy)
