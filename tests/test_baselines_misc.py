"""Tests for vanilla, SGLang+, the oracle, and the policy registry."""

import numpy as np
import pytest

from repro.baselines.oracle import ReplayRequest, replay_requests, tune_static_alpha
from repro.baselines.registry import POLICY_NAMES, make_cache
from repro.baselines.sglang_plus import SGLangPlusCache
from repro.baselines.vanilla import VanillaCache
from repro.baselines.vllm_plus import VLLMPlusCache
from repro.core.cache import MarconiCache
from repro.core.eviction import FlopAwareEviction, GDSFEviction, LRUEviction


class TestVanilla:
    def test_always_misses(self, hybrid, tokens):
        cache = VanillaCache(hybrid)
        for i in range(3):
            seq = tokens(100, seed=i)
            r = cache.lookup(seq, float(i))
            assert r.hit_tokens == 0
            cache.admit(seq, float(i) + 0.5, handle=r.handle)
        assert cache.stats.token_hit_rate == 0.0
        assert cache.used_bytes == 0

    def test_reset(self, hybrid, tokens):
        cache = VanillaCache(hybrid)
        cache.lookup(tokens(10, seed=1), 0.0)
        cache.reset()
        assert cache.stats.lookups == 0


class TestSGLangPlus:
    def test_is_marconi_with_lru(self, hybrid):
        cache = SGLangPlusCache(hybrid, int(1e9))
        assert isinstance(cache, MarconiCache)
        assert isinstance(cache.policy, LRUEviction)
        assert cache.tuner is None

    def test_same_admission_as_marconi(self, hybrid, tokens):
        """With ample capacity the two systems make identical admission
        decisions — only eviction differs."""
        sglang = SGLangPlusCache(hybrid, int(100e9))
        marconi = MarconiCache(hybrid, int(100e9), alpha=1.0)
        shared = tokens(200, seed=1)
        for i in range(3):
            seq = np.concatenate([shared, tokens(50, seed=10 + i)])
            full = np.concatenate([seq, tokens(20, seed=20 + i)])
            for cache in (sglang, marconi):
                r = cache.lookup(seq, float(i))
                cache.admit(full, float(i) + 0.5, handle=r.handle)
        assert sglang.stats.hit_tokens == marconi.stats.hit_tokens
        assert sglang.used_bytes == marconi.used_bytes
        assert sglang.tree.n_nodes == marconi.tree.n_nodes


class TestOracle:
    def _requests(self, tokens, n=12):
        requests = []
        for i in range(n):
            seq = tokens(150, seed=i % 4)  # heavy reuse across 4 sessions
            full = np.concatenate([seq, tokens(30, seed=100 + i)])
            requests.append(ReplayRequest(now=float(i), input_tokens=seq, full_tokens=full))
        return requests

    def test_replay_returns_hit_rate(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(10e9), alpha=0.0)
        rate = replay_requests(cache, self._requests(tokens))
        assert 0.0 <= rate <= 1.0
        assert rate == cache.stats.token_hit_rate

    def test_tune_finds_best_alpha(self, hybrid, tokens):
        result = tune_static_alpha(
            hybrid, int(1e9), self._requests(tokens), alpha_grid=(0.0, 1.0)
        )
        assert result.best_alpha in (0.0, 1.0)
        assert result.best_hit_rate == max(result.hit_rates.values())

    def test_tie_prefers_smaller_alpha(self, hybrid, tokens):
        # With infinite capacity, all alphas tie; 0.0 must win.
        result = tune_static_alpha(
            hybrid, int(1e12), self._requests(tokens), alpha_grid=(0.0, 2.0, 4.0)
        )
        assert result.best_alpha == 0.0

    def test_empty_inputs_rejected(self, hybrid):
        with pytest.raises(ValueError):
            tune_static_alpha(hybrid, int(1e9), [])


class TestRegistry:
    def test_all_names_construct(self, hybrid):
        for name in POLICY_NAMES:
            cache = make_cache(name, hybrid, int(1e9))
            assert hasattr(cache, "lookup")

    def test_types(self, hybrid):
        assert isinstance(make_cache("vanilla", hybrid, 0), VanillaCache)
        assert isinstance(make_cache("vllm+", hybrid, int(1e9)), VLLMPlusCache)
        assert isinstance(make_cache("sglang+", hybrid, int(1e9)), SGLangPlusCache)
        marconi = make_cache("marconi", hybrid, int(1e9))
        assert isinstance(marconi, MarconiCache) and marconi.tuner is not None
        fixed = make_cache("marconi-fixed", hybrid, int(1e9), alpha=2.0)
        assert isinstance(fixed.policy, FlopAwareEviction) and fixed.alpha == 2.0
        gdsf = make_cache("gdsf", hybrid, int(1e9))
        assert isinstance(gdsf.policy, GDSFEviction)

    def test_block_size_forwarded(self, hybrid):
        cache = make_cache("vllm+", hybrid, int(1e9), block_size=64)
        assert cache.block_size == 64

    def test_unknown_policy(self, hybrid):
        with pytest.raises(KeyError):
            make_cache("nope", hybrid, int(1e9))
