"""Property tests for :class:`repro.core.tokens.TokenSeq` interning.

The PR 6 hot-path campaign made ``TokenSeq`` the canonical token handle
on every probe path (``RadixTree.match``/``insert``, ``probe_hit_tokens``,
``PrefixDirectory.lookup``); these hypothesis suites pin the contract the
optimization relies on: a ``TokenSeq`` is *observationally identical* to
the raw numpy canonicalization it caches — same array, same equality, same
hashes — across input dtypes, non-contiguous slices, and the empty
sequence, and routing probes see identical hits whether handed raw tokens
or the interned handle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.router import probe_hit_tokens
from repro.core.cache import MarconiCache
from repro.core.tokens import TokenSeq, canonical_token_array
from repro.models.memory import node_state_bytes
from repro.models.presets import hybrid_7b

# Values stay within int32 (the canonical dtype) so every input dtype
# round-trips losslessly through canonicalization.
token_lists = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1), min_size=0, max_size=64
)

source_dtypes = st.sampled_from([np.int32, np.int64, np.uint16, np.int16, np.uint8])


@st.composite
def token_arrays(draw):
    """1-D integer arrays in assorted dtypes, sometimes non-contiguous."""
    dtype = draw(source_dtypes)
    info = np.iinfo(dtype)
    values = draw(
        st.lists(
            st.integers(
                min_value=max(0, info.min), max_value=min(info.max, 2**31 - 1)
            ),
            min_size=0,
            max_size=64,
        )
    )
    arr = np.asarray(values, dtype=dtype)
    if draw(st.booleans()) and len(arr) >= 2:
        # Strided view: canonicalization must copy it contiguous.
        arr = np.repeat(arr, 2)[::2]
    return arr


class TestCanonicalizationAgreement:
    @given(arr=token_arrays())
    @settings(max_examples=200, deadline=None)
    def test_interned_array_is_the_canonical_array(self, arr):
        seq = TokenSeq(arr)
        canon = canonical_token_array(np.asarray(arr, dtype=np.int32))
        assert seq.arr.dtype == np.int32
        assert seq.arr.ndim == 1
        assert seq.arr.flags.c_contiguous
        assert np.array_equal(seq.arr, canon)
        assert len(seq) == len(canon)

    @given(values=token_lists)
    @settings(max_examples=200, deadline=None)
    def test_equality_and_hash_track_content(self, values):
        a = TokenSeq(values)
        b = TokenSeq(np.asarray(values, dtype=np.int64))
        assert a == b
        assert hash(a) == hash(b)
        # Equality also holds against the raw canonical array and the list.
        assert a == np.asarray(values, dtype=np.int32)
        assert a == values
        # Perturbed content must not compare equal.
        if values:
            changed = list(values)
            changed[0] ^= 1
            assert a != TokenSeq(changed)

    @given(values=token_lists)
    @settings(max_examples=200, deadline=None)
    def test_bytes_and_prefix_hashes_match_numpy(self, values):
        seq = TokenSeq(values)
        canon = np.asarray(values, dtype=np.int32)
        assert seq.tobytes() == canon.tobytes()
        # Every prefix hash equals the hash a fresh interning of that
        # prefix computes — the O(n) chain is consistent with first
        # principles.
        for length in range(len(values) + 1):
            assert seq.prefix_hash(length) == TokenSeq(values[:length]).prefix_hash(
                length
            )

    @given(arr=token_arrays())
    @settings(max_examples=100, deadline=None)
    def test_of_is_idempotent_and_interning_stable(self, arr):
        seq = TokenSeq.of(arr)
        assert TokenSeq.of(seq) is seq
        # Slicing the interned array yields views the tree may alias;
        # the parent array must be write-protected.
        assert not seq.arr.flags.writeable

    def test_empty_sequence(self):
        seq = TokenSeq([])
        assert len(seq) == 0
        assert seq.tobytes() == b""
        assert seq == TokenSeq(np.asarray([], dtype=np.int64))
        assert seq.prefix_hash(0) == 0
        with pytest.raises(ValueError):
            seq.prefix_hash(1)

    def test_defensive_copy_insulates_caches(self):
        arr = np.arange(8, dtype=np.int32)
        seq = TokenSeq(arr)  # copy=True default: snapshot
        arr[0] = 999
        assert seq.arr[0] == 0


class TestProbeHitTokensUnchanged:
    """Interning must not change what routing probes observe."""

    @pytest.fixture(scope="class")
    def warm_cache(self):
        model = hybrid_7b()
        cache = MarconiCache(model, 32 * node_state_bytes(model, 4000, True))
        rng = np.random.default_rng(5)
        self_prefix = rng.integers(0, 1000, 256, dtype=np.int32)
        sequences = []
        for _ in range(12):
            tail = rng.integers(0, 1000, int(rng.integers(16, 512)), dtype=np.int32)
            full = np.concatenate([self_prefix, tail])
            session = cache.begin(full, now=0.0)
            session.commit(full, now=1.0)
            sequences.append(full)
        return cache, sequences

    def test_probe_agrees_across_input_forms(self, warm_cache):
        cache, sequences = warm_cache
        rng = np.random.default_rng(9)
        queries = list(sequences)
        # Also probe prefixes, extensions, and misses.
        for seq in sequences[:4]:
            queries.append(seq[: len(seq) // 2])
            queries.append(
                np.concatenate([seq, rng.integers(0, 1000, 32, dtype=np.int32)])
            )
        queries.append(rng.integers(2000, 3000, 64, dtype=np.int32))
        for query in queries:
            if len(query) == 0:
                continue
            raw = probe_hit_tokens(cache, query.copy())
            interned = probe_hit_tokens(cache, TokenSeq(query))
            as_list = probe_hit_tokens(cache, query.astype(np.int64))
            assert raw == interned == as_list
