"""Property-based tests: cache and tree invariants under random workloads."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.cache import MarconiCache
from repro.core.radix_tree import RadixTree
from repro.models.presets import tiny_test_model

# Small alphabet makes prefix collisions (splits, extensions) likely.
token_seq = st.lists(st.integers(0, 3), min_size=1, max_size=24)


@st.composite
def request_stream(draw):
    """A list of (input, output) pairs with organic prefix sharing."""
    n = draw(st.integers(2, 14))
    requests = []
    history: list[list[int]] = []
    for _ in range(n):
        if history and draw(st.booleans()):
            base = draw(st.sampled_from(history))
            cut = draw(st.integers(1, len(base)))
            inp = base[:cut] + draw(token_seq)
        else:
            inp = draw(token_seq)
        out = draw(token_seq)
        requests.append((inp, out))
        history.append(inp + out)
    return requests


class TestTreeInvariants:
    @given(seqs=st.lists(token_seq, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_insert_then_match_roundtrip(self, seqs):
        tree = RadixTree()
        for i, seq in enumerate(seqs):
            tree.insert(np.asarray(seq, dtype=np.int32), now=float(i))
        tree.check_integrity()
        for seq in seqs:
            arr = np.asarray(seq, dtype=np.int32)
            match = tree.match(arr)
            assert match.matched_len == len(seq)

    @given(seqs=st.lists(token_seq, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_token_conservation(self, seqs):
        """Total edge tokens equals the trie's distinct-prefix token count."""
        tree = RadixTree()
        for i, seq in enumerate(seqs):
            tree.insert(np.asarray(seq, dtype=np.int32), now=float(i))
        prefixes = set()
        for seq in seqs:
            for k in range(1, len(seq) + 1):
                prefixes.add(tuple(seq[:k]))
        assert tree.total_edge_tokens == len(prefixes)

    @given(seqs=st.lists(token_seq, min_size=2, max_size=16), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_eviction_preserves_remaining_paths(self, seqs, data):
        tree = RadixTree()
        for i, seq in enumerate(seqs):
            tree.insert(np.asarray(seq, dtype=np.int32), now=float(i))
        # Evict a random half of the evictable nodes.
        for _ in range(len(seqs)):
            nodes = [n for n in tree.iter_nodes() if n.n_children <= 1]
            if not nodes:
                break
            node = data.draw(st.sampled_from(nodes))
            if node.is_leaf:
                tree.remove_leaf(node)
            else:
                tree.merge_into_child(node)
            tree.check_integrity()


class TestCacheInvariants:
    @given(requests=request_stream(), capacity_kb=st.integers(1, 500))
    @settings(max_examples=50, deadline=None)
    def test_accounting_and_capacity(self, requests, capacity_kb):
        """used_bytes always equals the recomputed sum and never exceeds
        capacity after admission settles."""
        model = tiny_test_model()
        cache = MarconiCache(model, capacity_bytes=capacity_kb * 1024, alpha=1.0)
        for i, (inp, out) in enumerate(requests):
            arr_in = np.asarray(inp, dtype=np.int32)
            arr_full = np.asarray(inp + out, dtype=np.int32)
            r = cache.lookup(arr_in, float(i))
            assert 0 <= r.hit_tokens < len(arr_in)
            cache.admit(arr_full, float(i) + 0.5, handle=r.handle)
            assert cache.used_bytes == cache.recompute_used_bytes()
            assert cache.used_bytes <= cache.capacity_bytes
            cache.tree.check_integrity()

    @given(requests=request_stream())
    @settings(max_examples=50, deadline=None)
    def test_hits_are_true_prefixes(self, requests):
        """Any reported hit must correspond to a previously seen sequence
        prefix of the exact same tokens."""
        model = tiny_test_model()
        cache = MarconiCache(model, capacity_bytes=int(1e9), alpha=1.0)
        seen_prefixes: set[tuple] = set()
        for i, (inp, out) in enumerate(requests):
            arr_in = np.asarray(inp, dtype=np.int32)
            r = cache.lookup(arr_in, float(i))
            if r.hit_tokens > 0:
                assert tuple(inp[: r.hit_tokens]) in seen_prefixes
            full = inp + out
            cache.admit(np.asarray(full, dtype=np.int32), float(i) + 0.5, handle=r.handle)
            for k in range(1, len(full) + 1):
                seen_prefixes.add(tuple(full[:k]))

    @given(
        requests=request_stream(),
        capacity_kb=st.integers(1, 500),
        eviction=st.sampled_from(["flop_aware", "lru", "gdsf", "gds", "lfu", "lru_k"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_index_matches_full_rescan(self, requests, capacity_kb, eviction):
        """The core invariant of the incremental-eviction refactor: after
        every lookup/admit (and the evictions they trigger), the maintained
        index's candidate set is exactly what a from-scratch
        ``_collect_candidates()`` rebuild would produce — same nodes, same
        cached freeable bytes, FLOP efficiencies, and recency keys — and
        byte accounting still closes."""
        model = tiny_test_model()
        cache = MarconiCache(
            model, capacity_bytes=capacity_kb * 1024, eviction=eviction, alpha=1.0
        )

        def check():
            index = cache.eviction_index
            assert index is not None
            maintained = {
                c.node.node_id: (
                    c.freeable_bytes,
                    c.flop_efficiency,
                    c.last_access,
                    c.is_leaf,
                    c.sort_key,
                )
                for c in index.candidates()
            }
            rebuilt = {
                c.node.node_id: (
                    c.freeable_bytes,
                    c.flop_efficiency,
                    c.last_access,
                    c.is_leaf,
                    c.sort_key,
                )
                for c in cache._collect_candidates()
            }
            assert maintained == rebuilt
            assert cache.used_bytes == cache.recompute_used_bytes()

        for i, (inp, out) in enumerate(requests):
            r = cache.lookup(np.asarray(inp, dtype=np.int32), float(i))
            check()
            cache.admit(
                np.asarray(inp + out, dtype=np.int32), float(i) + 0.5, handle=r.handle
            )
            check()

    @given(
        requests=request_stream(),
        capacity_kb=st.integers(1, 100),
        eviction=st.sampled_from(["flop_aware", "lru", "gdsf", "gds", "lfu", "lru_k"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_index_and_legacy_modes_decide_identically(
        self, requests, capacity_kb, eviction
    ):
        """Index-backed and full-rescan eviction must pick the same victims:
        identical hits and byte-identical stats over any workload."""
        model = tiny_test_model()
        indexed = MarconiCache(
            model, capacity_bytes=capacity_kb * 1024, eviction=eviction, alpha=1.0
        )
        legacy = MarconiCache(
            model,
            capacity_bytes=capacity_kb * 1024,
            eviction=eviction,
            alpha=1.0,
            use_eviction_index=False,
        )
        for i, (inp, out) in enumerate(requests):
            arr_in = np.asarray(inp, dtype=np.int32)
            arr_full = np.asarray(inp + out, dtype=np.int32)
            ra = indexed.lookup(arr_in, float(i))
            rb = legacy.lookup(arr_in, float(i))
            assert ra.hit_tokens == rb.hit_tokens
            indexed.admit(arr_full, float(i) + 0.5, handle=ra.handle)
            legacy.admit(arr_full, float(i) + 0.5, handle=rb.handle)
            assert indexed.stats.snapshot() == legacy.stats.snapshot()

    @given(requests=request_stream())
    @settings(max_examples=30, deadline=None)
    def test_stats_consistency(self, requests):
        model = tiny_test_model()
        cache = MarconiCache(model, capacity_bytes=int(1e9), alpha=0.5)
        total_input = 0
        total_hit = 0
        for i, (inp, out) in enumerate(requests):
            r = cache.lookup(np.asarray(inp, dtype=np.int32), float(i))
            total_input += len(inp)
            total_hit += r.hit_tokens
            cache.admit(np.asarray(inp + out, dtype=np.int32), float(i) + 0.5,
                        handle=r.handle)
        assert cache.stats.input_tokens == total_input
        assert cache.stats.hit_tokens == total_hit
        assert cache.stats.lookups == len(requests)
