"""Direct unit tests for the hash-chained BlockStore."""

import numpy as np
import pytest

from repro.baselines.block_store import BlockStore, _ROOT_ID


def arr(*values):
    return np.asarray(values, dtype=np.int32)


def chunk(rng, n=4):
    return rng.integers(0, 100, n, dtype=np.int32)


class TestInsertAndMatch:
    def test_insert_full_block_only(self):
        store = BlockStore(block_size=4)
        with pytest.raises(ValueError, match="full blocks"):
            store.insert_block(_ROOT_ID, arr(1, 2), now=0.0)

    def test_duplicate_insert_rejected(self):
        store = BlockStore(block_size=4)
        store.insert_block(_ROOT_ID, arr(1, 2, 3, 4), now=0.0)
        with pytest.raises(ValueError, match="already cached"):
            store.insert_block(_ROOT_ID, arr(1, 2, 3, 4), now=1.0)

    def test_missing_parent_rejected(self):
        store = BlockStore(block_size=4)
        with pytest.raises(ValueError, match="parent"):
            store.insert_block(999, arr(1, 2, 3, 4), now=0.0)

    def test_chain_depth(self):
        store = BlockStore(block_size=2)
        a = store.insert_block(_ROOT_ID, arr(1, 2), now=0.0)
        b = store.insert_block(a.block_id, arr(3, 4), now=0.0)
        assert (a.depth, b.depth) == (1, 2)
        assert a.n_children == 1

    def test_match_chain_stops_at_gap(self):
        store = BlockStore(block_size=2)
        a = store.insert_block(_ROOT_ID, arr(1, 2), now=0.0)
        store.insert_block(a.block_id, arr(3, 4), now=0.0)
        assert len(store.match_chain(arr(1, 2, 3, 4, 5, 6))) == 2
        assert len(store.match_chain(arr(1, 2, 9, 9))) == 1
        assert len(store.match_chain(arr(9, 9))) == 0

    def test_match_chain_max_blocks(self):
        store = BlockStore(block_size=2)
        a = store.insert_block(_ROOT_ID, arr(1, 2), now=0.0)
        store.insert_block(a.block_id, arr(3, 4), now=0.0)
        assert len(store.match_chain(arr(1, 2, 3, 4), max_blocks=1)) == 1

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            BlockStore(block_size=0)


class TestLRULeafEviction:
    def test_pops_oldest_leaf_not_internal(self):
        store = BlockStore(block_size=2)
        a = store.insert_block(_ROOT_ID, arr(1, 2), now=0.0)  # oldest, internal
        b = store.insert_block(a.block_id, arr(3, 4), now=1.0)  # leaf
        c = store.insert_block(_ROOT_ID, arr(5, 6), now=2.0)  # leaf
        victim = store.pop_lru_leaf()
        assert victim is b  # a is internal despite being oldest
        victim = store.pop_lru_leaf()
        assert victim is a  # becomes a leaf once b is gone
        assert store.pop_lru_leaf() is c
        assert store.pop_lru_leaf() is None

    def test_touch_refreshes_order(self):
        store = BlockStore(block_size=2)
        a = store.insert_block(_ROOT_ID, arr(1, 2), now=0.0)
        b = store.insert_block(_ROOT_ID, arr(3, 4), now=1.0)
        store.touch(a, now=5.0)
        assert store.pop_lru_leaf() is b

    def test_internal_entry_survives_deferred_pop(self):
        """A block whose heap entry is popped while it is internal must
        still be evictable later (the lazy heap re-pushes it)."""
        store = BlockStore(block_size=2)
        a = store.insert_block(_ROOT_ID, arr(1, 2), now=0.0)
        b = store.insert_block(a.block_id, arr(3, 4), now=1.0)
        assert store.pop_lru_leaf() is b
        assert store.pop_lru_leaf() is a
        assert store.n_blocks == 0

    def test_integrity_under_random_ops(self, rng):
        store = BlockStore(block_size=2)
        frontier = [_ROOT_ID]
        for i in range(200):
            if rng.random() < 0.6 or store.n_blocks == 0:
                parent = int(rng.choice(frontier))
                if store.has_block(parent):
                    tokens = chunk(rng, 2)
                    if store.get(parent, tokens) is None:
                        block = store.insert_block(parent, tokens, now=float(i))
                        frontier.append(block.block_id)
            else:
                store.pop_lru_leaf()
            store.check_integrity()


class TestReuseCounters:
    def test_mark_reused_counts_once(self):
        store = BlockStore(block_size=2)
        a = store.insert_block(_ROOT_ID, arr(1, 2), now=0.0)
        b = store.insert_block(a.block_id, arr(3, 4), now=0.0)
        store.mark_reused([a, b], hybrid=True)
        store.mark_reused([a, b], hybrid=True)
        assert store.reuse_stats.blocks_kv_reused == 2
        assert store.reuse_stats.blocks_ssm_reused == 1  # only the deepest

    def test_rates(self):
        store = BlockStore(block_size=2)
        a = store.insert_block(_ROOT_ID, arr(1, 2), now=0.0)
        store.insert_block(a.block_id, arr(3, 4), now=0.0)
        store.mark_reused([a], hybrid=False)
        assert store.reuse_stats.kv_reuse_rate == pytest.approx(0.5)
        assert store.reuse_stats.ssm_reuse_rate == 0.0
