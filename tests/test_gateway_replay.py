"""Replay-path tests: CacheOnlyServer, TraceReplayer, and the headline
equivalence — a wall-clock replay through the live gateway produces the
same per-request hit counts as the offline ``ServingSimulator`` on the
same trace.

Equivalence preconditions (each deliberate):

* sessions get **disjoint prefixes** (unique first token) so hit counts
  are insensitive to interleaving order across sessions;
* the cache is effectively **unbounded** (no eviction to diverge on);
* ``alpha=1.0`` pins the FLOP-aware tuner (no online retuning);
* replays are **teacher-forced**, keeping committed sequences aligned
  with the trace's next-round inputs on both sides;
* sessions are **closed-loop** in both systems: round ``k`` commits
  before round ``k+1`` is submitted.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.cache import MarconiCache
from repro.engine.server import ServingSimulator
from repro.serving import (
    CacheOnlyServer,
    Gateway,
    GatewayConfig,
    TraceReplayer,
)
from repro.workloads.trace import Trace, TraceRound, TraceSession


def build_trace(n_sessions=12, seed=7, max_rounds=4, burst=False):
    """Multi-round sessions with disjoint prefixes (unique first token)."""
    rng = np.random.default_rng(seed)
    sessions = []
    t = 0.0
    for i in range(n_sessions):
        rounds, thinks = [], []
        n_rounds = int(rng.integers(1, max_rounds))
        for k in range(n_rounds):
            first = (
                np.concatenate(
                    [
                        [100000 + i],
                        rng.integers(0, 32000, int(rng.integers(5, 40)), dtype=np.int32),
                    ]
                ).astype(np.int32)
                if k == 0
                else rng.integers(0, 32000, int(rng.integers(5, 30)), dtype=np.int32)
            )
            rounds.append(
                TraceRound(
                    new_input_tokens=first,
                    output_tokens=rng.integers(
                        0, 32000, int(rng.integers(3, 12)), dtype=np.int32
                    ),
                )
            )
            thinks.append(0.0 if k == 0 else float(rng.uniform(0.5, 3.0)))
        sessions.append(TraceSession(i, t, rounds, thinks))
        if not burst:
            t += float(rng.uniform(0.0, 1.5))
    return Trace(name="replay-test", seed=seed, sessions=sessions)


def no_pins(cache) -> bool:
    return all(n.pin_count == 0 for n in cache.tree.iter_nodes())


class TestCacheOnlyServer:
    def test_session_lifecycle_and_reuse(self, tiny, tokens):
        cache = MarconiCache(tiny, int(1e9), alpha=1.0)
        server = CacheOnlyServer(cache)
        prefix = tokens(30, seed=1)
        out = tokens(6, seed=2)

        gen = server.serve_steps(prefix, 0, forced_outputs=out)
        while True:
            try:
                next(gen)
            except StopIteration as stop:
                first = stop.value
                break
        assert first.hit_tokens == 0
        np.testing.assert_array_equal(
            first.full_sequence, np.concatenate([prefix, out])
        )

        # Second request extends the committed sequence: full prefix hit.
        follow_up = np.concatenate([first.full_sequence, tokens(10, seed=3)])
        gen = server.serve_steps(follow_up, 2)
        while True:
            try:
                next(gen)
            except StopIteration as stop:
                second = stop.value
                break
        assert second.hit_tokens == len(first.full_sequence)
        assert cache.open_sessions == 0
        assert no_pins(cache)

    def test_rejects_empty_input_and_negative_n_output(self, tiny, tokens):
        server = CacheOnlyServer(MarconiCache(tiny, int(1e9), alpha=1.0))
        with pytest.raises(ValueError, match="empty request"):
            next(server.serve_steps(np.empty(0, dtype=np.int32), 4))
        with pytest.raises(ValueError, match="n_output"):
            next(server.serve_steps(tokens(8, seed=1), -1))

    def test_close_mid_serve_aborts(self, tiny, tokens):
        cache = MarconiCache(tiny, int(1e9), alpha=1.0)
        server = CacheOnlyServer(cache)
        gen = server.serve_steps(tokens(20, seed=4), 8)
        next(gen)  # session is open, mid-decode
        assert cache.open_sessions == 1
        gen.close()
        assert cache.open_sessions == 0
        assert no_pins(cache)


class TestReplayEquivalence:
    def test_replay_matches_offline_simulator(self, tiny):
        """The headline check: per-request hit counts and cache totals of a
        live gateway replay equal the offline ServingSimulator's on the
        same trace."""
        trace = build_trace(n_sessions=12, seed=7)

        sim_cache = MarconiCache(tiny, int(1e12), alpha=1.0)
        offline = ServingSimulator(tiny, sim_cache, policy_name="marconi").run(trace)
        offline_hits = sorted(
            (r.session_id, r.round_index, r.hit_tokens) for r in offline.records
        )

        gw_cache = MarconiCache(tiny, int(1e12), alpha=1.0)
        gateway = Gateway(
            CacheOnlyServer(gw_cache),
            GatewayConfig(n_workers=1, max_queue_depth=10_000),
        )

        async def scenario():
            report = await TraceReplayer(gateway, speed=None).run(trace)
            await gateway.close()
            return report

        report = asyncio.run(scenario())

        assert report.hit_counts() == offline_hits
        assert report.served == trace.n_requests
        assert report.shed == 0 and report.abandoned_rounds == 0
        assert gw_cache.stats.hit_tokens == sim_cache.stats.hit_tokens
        assert gw_cache.stats.input_tokens == sim_cache.stats.input_tokens
        assert report.hit_tokens == sim_cache.stats.hit_tokens
        assert gw_cache.open_sessions == 0
        assert no_pins(gw_cache)

    def test_replay_matches_offline_with_concurrent_workers(self, tiny):
        """Disjoint session prefixes make the comparison worker-count
        independent: four workers interleaving sessions still reproduce
        the offline hit counts exactly."""
        trace = build_trace(n_sessions=10, seed=21)

        sim_cache = MarconiCache(tiny, int(1e12), alpha=1.0)
        offline = ServingSimulator(tiny, sim_cache, policy_name="marconi").run(trace)
        offline_hits = sorted(
            (r.session_id, r.round_index, r.hit_tokens) for r in offline.records
        )

        gw_cache = MarconiCache(tiny, int(1e12), alpha=1.0)
        gateway = Gateway(
            CacheOnlyServer(gw_cache),
            GatewayConfig(n_workers=4, max_queue_depth=10_000),
        )

        async def scenario():
            report = await TraceReplayer(gateway, speed=None).run(trace)
            await gateway.close()
            return report

        report = asyncio.run(scenario())
        assert report.hit_counts() == offline_hits
        assert gw_cache.open_sessions == 0
        assert no_pins(gw_cache)


class TestReplayBackpressure:
    def test_shed_sessions_abandon_remaining_rounds(self, tiny):
        """A burst trace against a tiny queue sheds sessions with typed
        reasons and abandons their later rounds (closed-loop clients)."""
        trace = build_trace(n_sessions=10, seed=5, max_rounds=4, burst=True)

        cache = MarconiCache(tiny, int(1e12), alpha=1.0)
        gateway = Gateway(
            CacheOnlyServer(cache),
            GatewayConfig(n_workers=1, max_queue_depth=3),
        )

        async def scenario():
            report = await TraceReplayer(gateway, speed=None).run(trace)
            await gateway.close()
            return report

        report = asyncio.run(scenario())
        assert report.shed > 0
        assert report.served > 0
        shed_records = [r for r in report.records if r.status == "shed"]
        assert all(r.shed_reason == "queue_full" for r in shed_records)
        # Each shed session contributes exactly its first round as a shed
        # record; later rounds were never submitted.
        assert all(r.round_index == 0 for r in shed_records)
        expected_abandoned = sum(
            trace.sessions[r.session_id].n_rounds - 1 for r in shed_records
        )
        assert report.abandoned_rounds == expected_abandoned
        # Accounting closes: every round is served, shed, or abandoned.
        assert report.served + report.shed + report.abandoned_rounds == trace.n_requests
        assert cache.open_sessions == 0
        assert no_pins(cache)
        assert report.gateway_stats["shed"] == report.shed

    def test_report_to_dict_round_trips_counts(self, tiny):
        trace = build_trace(n_sessions=4, seed=11)
        cache = MarconiCache(tiny, int(1e12), alpha=1.0)
        gateway = Gateway(CacheOnlyServer(cache), GatewayConfig(n_workers=2))

        async def scenario():
            report = await TraceReplayer(gateway, speed=None).run(trace)
            await gateway.close()
            return report

        report = asyncio.run(scenario())
        payload = report.to_dict()
        assert payload["n_requests"] == report.n_requests
        assert payload["served"] == report.served
        assert payload["hit_tokens"] == report.hit_tokens
        assert payload["token_hit_rate"] == pytest.approx(report.token_hit_rate)
        assert payload["gateway"]["completed"] == report.served


class TestReplayTiming:
    def test_scaled_speed_respects_arrival_spacing(self, tiny):
        """With speed set, a session arriving at t=2 is not submitted
        before 2/speed wall seconds."""
        rng = np.random.default_rng(3)

        def session(i, arrival):
            return TraceSession(
                i,
                arrival,
                [
                    TraceRound(
                        new_input_tokens=np.concatenate(
                            [[100000 + i], rng.integers(0, 32000, 10, dtype=np.int32)]
                        ).astype(np.int32),
                        output_tokens=rng.integers(0, 32000, 4, dtype=np.int32),
                    )
                ],
                [0.0],
            )

        trace = Trace(
            name="timed", seed=3, sessions=[session(0, 0.0), session(1, 2.0)]
        )
        cache = MarconiCache(tiny, int(1e12), alpha=1.0)
        gateway = Gateway(CacheOnlyServer(cache), GatewayConfig(n_workers=2))

        async def scenario():
            report = await TraceReplayer(gateway, speed=100.0).run(trace)
            await gateway.close()
            return report

        report = asyncio.run(scenario())
        assert report.served == 2
        # Second arrival is due at 2.0/100 = 20ms of wall time.
        assert report.wall_seconds >= 0.02

    def test_speed_must_be_positive(self, tiny):
        cache = MarconiCache(tiny, int(1e12), alpha=1.0)
        gateway = Gateway(CacheOnlyServer(cache))
        with pytest.raises(ValueError, match="speed"):
            TraceReplayer(gateway, speed=0.0)

    def test_tier_for_routes_sessions(self, tiny):
        trace = build_trace(n_sessions=6, seed=13)
        cache = MarconiCache(tiny, int(1e12), alpha=1.0)
        gateway = Gateway(CacheOnlyServer(cache), GatewayConfig(n_workers=2))
        routed: list[tuple[int, str]] = []

        def tier_for(session):
            tier = "batch" if session.session_id % 2 else "interactive"
            routed.append((session.session_id, tier))
            return tier

        async def scenario():
            report = await TraceReplayer(
                gateway, speed=None, tier_for=tier_for
            ).run(trace)
            await gateway.close()
            return report

        report = asyncio.run(scenario())
        assert report.served == trace.n_requests
        assert {tier for _, tier in routed} == {"interactive", "batch"}
