"""Ordering contract of the tuple-backed event queue (and its legacy twin).

The seed's ``Event`` was a ``dataclass(order=True)`` whose generated
comparison would fall through to the *payload* whenever two events tied on
``(time, kind, seq)`` — a latent crash (unorderable payloads) or, worse, a
silent ordering dependence on payload internals.  The rewritten queue
compares an explicit key tuple and appends a per-queue serial as a
comparison firewall; these tests pin that contract, the external-``seq``
iterator compatibility path, and pop-order equivalence between the
tuple-backed queue and the frozen ``LegacyEventQueue``.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.engine.events import (
    ENTRY_KIND,
    ENTRY_PAYLOAD,
    ENTRY_SEQ,
    ENTRY_TIME,
    Event,
    EventKind,
    EventQueue,
    LegacyEventQueue,
)


class _Unorderable:
    """A payload that detonates if anything ever compares it."""

    def __lt__(self, other):  # pragma: no cover - the point is it never runs
        raise AssertionError("payload comparison reached the heap")

    __gt__ = __le__ = __ge__ = __lt__


class TestPayloadsNeverOrdered:
    def test_event_comparison_uses_key_only(self):
        a = Event(1.0, int(EventKind.REQUEST_ARRIVAL), 7, _Unorderable())
        b = Event(1.0, int(EventKind.REQUEST_ARRIVAL), 7, _Unorderable())
        c = Event(1.0, int(EventKind.REQUEST_ARRIVAL), 8, _Unorderable())
        assert a == b  # identical keys, different payloads
        assert not a < b and not a > b
        assert a < c and c > a and a <= b and a >= b

    @pytest.mark.parametrize("queue_cls", [EventQueue, LegacyEventQueue])
    def test_exact_key_ties_cannot_reach_payloads(self, queue_cls):
        """Two pushes with identical explicit (time, kind, seq) keys: the
        serial firewall must settle the tie before any payload comparison."""
        queue = queue_cls()
        first, second = _Unorderable(), _Unorderable()
        queue.push(2.0, EventKind.PREFILL_DONE, first, seq=-1)
        queue.push(2.0, EventKind.PREFILL_DONE, second, seq=-1)
        # Exact key ties resolve by push order.
        assert queue.pop().payload is first
        assert queue.pop().payload is second


class TestExternalSeqIterator:
    @pytest.mark.parametrize("queue_cls", [EventQueue, LegacyEventQueue])
    def test_shared_counter_numbers_across_queues(self, queue_cls):
        shared = itertools.count()
        q1, q2 = queue_cls(seq=shared), queue_cls(seq=shared)
        q1.push(0.0, EventKind.REQUEST_ARRIVAL, "a")
        q2.push(0.0, EventKind.REQUEST_ARRIVAL, "b")
        q1.push(0.0, EventKind.REQUEST_ARRIVAL, "c")
        # The shared iterator keeps numbering globally monotone.
        assert q1.pop().seq == 0
        assert q2.pop().seq == 1
        assert q1.pop().seq == 2

    @pytest.mark.parametrize("queue_cls", [EventQueue, LegacyEventQueue])
    def test_explicit_seq_overrides_counter(self, queue_cls):
        queue = queue_cls()
        queue.push(0.0, EventKind.REQUEST_ARRIVAL, "auto-0")
        queue.push(0.0, EventKind.REQUEST_ARRIVAL, "reserved", seq=-5)
        queue.push(0.0, EventKind.REQUEST_ARRIVAL, "auto-1")
        # Reserved negative seqs sort before every auto-numbered push at
        # equal (time, kind) — the kernel's streaming-admission contract —
        # and must not consume the queue's own counter.
        assert [queue.pop().payload for _ in range(3)] == [
            "reserved",
            "auto-0",
            "auto-1",
        ]


def _random_schedule(seed: int, n: int):
    rng = np.random.default_rng(seed)
    times = np.round(rng.uniform(0.0, 3.0, n), 1)  # coarse grid forces ties
    kinds = rng.integers(0, 5, n)
    return [
        (float(times[i]), EventKind(int(kinds[i])), f"payload-{i}") for i in range(n)
    ]


class TestLegacyQueueEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_pop_order_identical(self, seed):
        """Same pushes -> byte-identical pop transcripts on both queues,
        including heavy (time, kind) ties from the coarse time grid."""
        schedule = _random_schedule(seed, 300)
        tuple_queue, legacy_queue = EventQueue(), LegacyEventQueue()
        for time, kind, payload in schedule:
            tuple_queue.push(time, kind, payload)
            legacy_queue.push(time, kind, payload)
        transcript = []
        while tuple_queue:
            a = tuple_queue.pop()
            b = legacy_queue.pop()
            assert (a.time, a.kind, a.seq, a.payload) == (
                b.time,
                b.kind,
                b.seq,
                b.payload,
            )
            transcript.append(a.payload)
        assert not legacy_queue
        assert len(transcript) == len(schedule)

    @pytest.mark.parametrize("queue_cls", [EventQueue, LegacyEventQueue])
    def test_entry_surface_matches_object_surface(self, queue_cls):
        queue = queue_cls()
        for time, kind, payload in _random_schedule(7, 50):
            queue.push(time, kind, payload)
        while queue:
            head = queue.peek_entry()
            event = queue.peek()
            assert (
                head[ENTRY_TIME],
                head[ENTRY_KIND],
                head[ENTRY_SEQ],
                head[ENTRY_PAYLOAD],
            ) == (event.time, event.kind, event.seq, event.payload)
            popped = queue.pop_entry()
            assert popped[:3] == head[:3] and popped[ENTRY_PAYLOAD] is head[ENTRY_PAYLOAD]

    def test_env_switch_roundtrip(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEGACY_QUEUE", "1")
        assert isinstance(EventQueue(), LegacyEventQueue)
        monkeypatch.delenv("REPRO_LEGACY_QUEUE")
        assert type(EventQueue()) is EventQueue
