"""Edge-case coverage for the workload layer.

The corners the generators and trace schema must hold firm on: degenerate
think-time lists, single-round sessions, one-state MMPP chains, the
thinning-based arrival processes' validation and envelopes, and — the
regression the experiment caches rely on — seed stability of every
registered workload generator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    ARRIVAL_PROCESS_NAMES,
    WORKLOAD_NAMES,
    DiurnalProcess,
    FlashCrowdProcess,
    MarkovModulatedPoisson,
    PoissonProcess,
    WorkloadParams,
    exponential_think_times,
    generate_trace,
    generate_trace_stream,
    make_arrival_process,
    mix_streams,
)
from repro.workloads.trace import TraceRound, TraceSession


class TestThinkTimes:
    def test_zero_rounds_is_rejected(self):
        with pytest.raises(ValueError, match="n_rounds must be positive"):
            exponential_think_times(np.random.default_rng(0), 0, 1.0)

    def test_single_round_is_the_zero_gap(self):
        assert exponential_think_times(np.random.default_rng(0), 1, 5.0) == [0.0]

    def test_zero_mean_gives_all_zero_gaps(self):
        gaps = exponential_think_times(np.random.default_rng(0), 4, 0.0)
        assert gaps == [0.0, 0.0, 0.0, 0.0]

    def test_negative_mean_is_rejected(self):
        with pytest.raises(ValueError, match="mean_seconds"):
            exponential_think_times(np.random.default_rng(0), 3, -1.0)

    def test_session_rejects_empty_think_list(self):
        rounds = [TraceRound(np.array([1, 2]), np.array([3]))]
        with pytest.raises(ValueError, match="one think time per round"):
            TraceSession(0, 0.0, rounds, think_times=[])

    def test_session_rejects_mismatched_think_list(self):
        rounds = [TraceRound(np.array([1, 2]), np.array([3]))]
        with pytest.raises(ValueError, match="one think time per round"):
            TraceSession(0, 0.0, rounds, think_times=[0.0, 1.0])

    def test_single_round_session_roundtrips(self):
        session = TraceSession(
            7, 1.5, [TraceRound(np.array([1, 2]), np.array([3]))], [0.0]
        )
        assert session.n_rounds == 1
        assert session.input_lengths() == [2]
        assert session.output_lengths() == [1]
        assert (session.full_sequence(0) == np.array([1, 2, 3])).all()


class TestDegenerateMMPP:
    def test_one_state_chain_is_poisson_like(self):
        """burst_rate == base_rate collapses the chain to one state."""
        rate = 3.0
        mmpp = MarkovModulatedPoisson(base_rate=rate, burst_rate=rate)
        assert mmpp.mean_rate == pytest.approx(rate)
        rng = np.random.default_rng(11)
        times = mmpp.arrival_times(rng, 4000)
        assert len(times) == 4000
        assert (np.diff(times) >= 0).all()
        # Gaps of a collapsed chain are exponential(rate): the empirical
        # mean gap lands near 1/rate (law of large numbers, wide margin).
        assert float(np.mean(np.diff(times))) == pytest.approx(1 / rate, rel=0.15)

    def test_burst_below_base_is_rejected(self):
        with pytest.raises(ValueError, match="burst_rate"):
            MarkovModulatedPoisson(base_rate=2.0, burst_rate=1.0)

    def test_zero_dwell_is_rejected(self):
        with pytest.raises(ValueError, match="dwell"):
            MarkovModulatedPoisson(base_rate=1.0, burst_rate=2.0, mean_on_s=0.0)


class TestArrivalProcesses:
    def test_factory_covers_every_name(self):
        for name in ARRIVAL_PROCESS_NAMES:
            process = make_arrival_process(name, 2.0)
            times = process.arrival_times(np.random.default_rng(5), 200)
            assert len(times) == 200
            assert (np.diff(times) >= 0).all()
            assert (times > 0).all()

    def test_factory_rejects_unknown_name(self):
        with pytest.raises(KeyError, match="unknown arrival process"):
            make_arrival_process("tidal", 1.0)

    def test_poisson_zero_requests(self):
        assert len(PoissonProcess(1.0).arrival_times(np.random.default_rng(0), 0)) == 0

    def test_diurnal_rate_curve_spans_peak_and_trough(self):
        process = DiurnalProcess(mean_rate=4.0, amplitude=0.5, period_s=100.0)
        quarter = 25.0  # sin peaks a quarter period in
        assert process.rate_at(quarter) == pytest.approx(6.0)
        assert process.rate_at(3 * quarter) == pytest.approx(2.0)
        assert process.rate_at(0.0) == pytest.approx(4.0)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalProcess(mean_rate=1.0, amplitude=1.0)
        with pytest.raises(ValueError, match="mean_rate"):
            DiurnalProcess(mean_rate=0.0)
        with pytest.raises(ValueError, match="period_s"):
            DiurnalProcess(mean_rate=1.0, period_s=0.0)

    def test_flash_crowd_windows(self):
        process = FlashCrowdProcess(
            base_rate=1.0, spike_times=(10.0,), spike_duration_s=5.0,
            spike_multiplier=4.0,
        )
        assert not process.in_spike(9.999)
        assert process.in_spike(10.0)
        assert process.in_spike(14.999)
        assert not process.in_spike(15.0)
        assert process.rate_at(12.0) == pytest.approx(4.0)
        assert process.rate_at(20.0) == pytest.approx(1.0)

    def test_flash_crowd_sorts_spikes_and_validates(self):
        process = FlashCrowdProcess(base_rate=1.0, spike_times=(30.0, 10.0))
        assert process.spike_times == (10.0, 30.0)
        with pytest.raises(ValueError, match="spike_multiplier"):
            FlashCrowdProcess(base_rate=1.0, spike_multiplier=0.5)
        with pytest.raises(ValueError, match="non-negative"):
            FlashCrowdProcess(base_rate=1.0, spike_times=(-1.0,))

    def test_flash_crowd_periodic_schedule_repeats_forever(self):
        process = FlashCrowdProcess(
            base_rate=1.0, spike_times=(30.0,), spike_duration_s=20.0,
            spike_multiplier=6.0, spike_period_s=120.0,
        )
        for cycle in (0, 1, 5, 1000):
            base = 120.0 * cycle
            assert process.in_spike(base + 30.0)
            assert process.in_spike(base + 49.999)
            assert not process.in_spike(base + 50.0)
            assert not process.in_spike(base + 29.999)

    def test_flash_crowd_periodic_window_must_fit_period(self):
        with pytest.raises(ValueError, match="fit inside one period"):
            FlashCrowdProcess(
                base_rate=1.0, spike_times=(110.0,), spike_duration_s=20.0,
                spike_period_s=120.0,
            )
        with pytest.raises(ValueError, match="spike_period_s"):
            FlashCrowdProcess(base_rate=1.0, spike_period_s=0.0)

    def test_flashcrowd_preset_mean_rate_holds_over_long_horizons(self):
        """The factory preset's normalization must not decay after the
        first spike cycles (the schedule repeats indefinitely)."""
        rate = 2.0
        process = make_arrival_process("flashcrowd", rate)
        times = process.arrival_times(np.random.default_rng(17), 30_000)
        horizon = float(times[-1])
        assert horizon > 5_000  # many 120 s cycles deep
        empirical = len(times) / horizon
        assert empirical == pytest.approx(rate, rel=0.1)

    def test_flash_crowd_concentrates_arrivals_in_spikes(self):
        process = FlashCrowdProcess(
            base_rate=1.0, spike_times=(50.0,), spike_duration_s=10.0,
            spike_multiplier=10.0,
        )
        times = process.arrival_times(np.random.default_rng(3), 400)
        horizon = times[-1]
        in_spike = np.sum((times >= 50.0) & (times < 60.0))
        # The 10 s window carries ~10x the base density; with 400 samples
        # it must visibly dominate an equal-width window outside it.
        out_spike = np.sum((times >= 70.0) & (times < 80.0))
        if horizon > 80.0:
            assert in_spike > 2 * max(out_spike, 1)

    def test_workload_params_accepts_every_process(self):
        for name in ARRIVAL_PROCESS_NAMES:
            params = WorkloadParams(n_sessions=4, seed=0, arrival_process=name)
            trace = generate_trace("lmsys", params)
            assert trace.n_sessions == 4

    def test_workload_params_rejects_unknown_process(self):
        with pytest.raises(ValueError, match="arrival_process"):
            WorkloadParams(arrival_process="tidal")


class TestSeedStability:
    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_same_seed_same_trace(self, workload):
        params = WorkloadParams(n_sessions=6, seed=42)
        first = generate_trace(workload, params)
        second = generate_trace(workload, params)
        assert first.n_sessions == second.n_sessions
        for a, b in zip(first.sessions, second.sessions):
            assert a.session_id == b.session_id
            assert a.arrival_time == b.arrival_time
            assert a.think_times == b.think_times
            for ra, rb in zip(a.rounds, b.rounds):
                assert (ra.new_input_tokens == rb.new_input_tokens).all()
                assert (ra.output_tokens == rb.output_tokens).all()

    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_different_seed_different_trace(self, workload):
        params_a = WorkloadParams(n_sessions=6, seed=1)
        params_b = WorkloadParams(n_sessions=6, seed=2)
        a = generate_trace(workload, params_a)
        b = generate_trace(workload, params_b)
        assert [s.arrival_time for s in a.sessions] != [
            s.arrival_time for s in b.sessions
        ]

    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_stream_is_seed_stable(self, workload):
        params = WorkloadParams(n_sessions=5, seed=9)
        first = generate_trace_stream(workload, params)
        second = generate_trace_stream(workload, params)
        fingerprint = lambda stream: [  # noqa: E731
            (s.session_id, s.arrival_time, sum(len(r.new_input_tokens) for r in s.rounds))
            for s in stream.iter_sessions()
        ]
        assert fingerprint(first) == fingerprint(second)


class TestMixtureEdges:
    def test_empty_component_list_rejected(self):
        with pytest.raises(ValueError, match="at least one component"):
            mix_streams([])

    def test_single_component_mixture_keeps_sessions(self):
        stream = mix_streams(
            [generate_trace_stream("docqa", WorkloadParams(n_sessions=3, seed=0))]
        )
        trace = stream.materialize()
        assert trace.n_sessions == 3
        assert trace.metadata["components"][0]["session_id_offset"] == 0
