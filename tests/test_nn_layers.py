"""Tests for the NumPy layers: functional primitives, attention, SSM, states."""

import numpy as np
import pytest

from repro.nn.attention import AttentionLayer
from repro.nn.functional import rmsnorm, silu, softmax, softplus
from repro.nn.mlp import MLPLayer
from repro.nn.sampling import greedy_token, sample_token
from repro.nn.ssm import SSMLayer
from repro.nn.states import KVState, ModelState, RecurrentState


class TestFunctional:
    def test_softmax_sums_to_one(self, rng):
        x = rng.normal(size=(4, 7))
        assert np.allclose(softmax(x).sum(axis=-1), 1.0)

    def test_softmax_stable_for_large_inputs(self):
        out = softmax(np.asarray([1e4, 1e4 + 1.0]))
        assert np.all(np.isfinite(out))

    def test_silu_signs(self):
        assert silu(np.asarray([10.0]))[0] == pytest.approx(10.0, rel=1e-3)
        assert abs(silu(np.asarray([-50.0]))[0]) < 1e-10

    def test_softplus_no_overflow(self):
        assert softplus(np.asarray([1000.0]))[0] == pytest.approx(1000.0)
        assert softplus(np.asarray([-1000.0]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_rmsnorm_unit_scale(self, rng):
        x = rng.normal(size=(3, 16)) * 100
        out = rmsnorm(x, np.ones(16))
        assert np.allclose(np.sqrt(np.mean(out**2, axis=-1)), 1.0, rtol=1e-3)


class TestKVState:
    def test_append_and_trim_roundtrip(self, rng):
        state = KVState.empty(2, 4)
        k = rng.normal(size=(5, 2, 4))
        v = rng.normal(size=(5, 2, 4))
        grown = state.appended(k, v)
        assert grown.seq_len == 5
        trimmed = grown.trimmed(3)
        np.testing.assert_array_equal(trimmed.k, k[:3])

    def test_trim_validation(self):
        state = KVState.empty(2, 4)
        with pytest.raises(ValueError):
            state.trimmed(1)

    def test_append_does_not_mutate_original(self, rng):
        state = KVState.empty(2, 4)
        grown = state.appended(rng.normal(size=(3, 2, 4)), rng.normal(size=(3, 2, 4)))
        assert state.seq_len == 0 and grown.seq_len == 3


class TestRecurrentState:
    def test_zeros_shapes(self):
        state = RecurrentState.zeros(d_inner=8, d_state=4, d_conv=3)
        assert state.conv.shape == (2, 8)
        assert state.ssm.shape == (8, 4)

    def test_clone_is_deep(self):
        state = RecurrentState.zeros(4, 2, 3)
        copy = state.clone()
        copy.ssm[0, 0] = 7.0
        assert state.ssm[0, 0] == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RecurrentState(conv=np.zeros((2, 3)), ssm=np.zeros((4, 2)))


class TestAttentionLayer:
    def _layer(self):
        return AttentionLayer(d_model=16, n_heads=4, rng=np.random.default_rng(0))

    def test_incremental_equals_full(self, rng):
        """Prefill in one shot == prefill then decode token by token."""
        layer = self._layer()
        x = rng.normal(size=(6, 16))
        full, _ = layer.forward(x, layer.init_state())
        state = layer.init_state()
        outs = []
        for t in range(6):
            out, state = layer.forward(x[t : t + 1], state)
            outs.append(out[0])
        assert np.allclose(full, np.stack(outs), rtol=1e-10, atol=1e-12)

    def test_causality(self, rng):
        """Changing a future token must not affect earlier outputs."""
        layer = self._layer()
        x = rng.normal(size=(5, 16))
        y1, _ = layer.forward(x, layer.init_state())
        x2 = x.copy()
        x2[4] += 1.0
        y2, _ = layer.forward(x2, layer.init_state())
        assert np.allclose(y1[:4], y2[:4])
        assert not np.allclose(y1[4], y2[4])

    def test_input_state_not_mutated(self, rng):
        layer = self._layer()
        x = rng.normal(size=(3, 16))
        _, state = layer.forward(x, layer.init_state())
        snapshot = state.k.copy()
        layer.forward(rng.normal(size=(2, 16)), state)
        np.testing.assert_array_equal(state.k, snapshot)

    def test_head_divisibility_enforced(self):
        with pytest.raises(ValueError):
            AttentionLayer(d_model=10, n_heads=4, rng=np.random.default_rng(0))


class TestSSMLayer:
    def _layer(self):
        return SSMLayer(d_model=12, d_state=4, rng=np.random.default_rng(1))

    def test_chunked_equals_full(self, rng):
        """The in-place recurrence gives identical results chunked or not —
        chunked state passing is exact at chunk boundaries."""
        layer = self._layer()
        x = rng.normal(size=(20, 12))
        full, full_state = layer.forward(x, layer.init_state())
        state = layer.init_state()
        parts = []
        for lo, hi in [(0, 7), (7, 13), (13, 20)]:
            out, state = layer.forward(x[lo:hi], state)
            parts.append(out)
        assert np.allclose(full, np.concatenate(parts), rtol=1e-10, atol=1e-12)
        assert np.allclose(full_state.ssm, state.ssm, rtol=1e-10, atol=1e-12)
        assert np.allclose(full_state.conv, state.conv)

    def test_state_depends_on_full_history(self, rng):
        """Property 2: the state encodes all tokens — different prefixes give
        different states even with identical suffixes."""
        layer = self._layer()
        suffix = rng.normal(size=(5, 12))
        a = np.concatenate([rng.normal(size=(3, 12)), suffix])
        b = np.concatenate([rng.normal(size=(3, 12)), suffix])
        _, state_a = layer.forward(a, layer.init_state())
        _, state_b = layer.forward(b, layer.init_state())
        assert not np.allclose(state_a.ssm, state_b.ssm)

    def test_state_size_constant(self, rng):
        """Property 1: state size is independent of sequence length."""
        layer = self._layer()
        _, s_short = layer.forward(rng.normal(size=(2, 12)), layer.init_state())
        _, s_long = layer.forward(rng.normal(size=(40, 12)), layer.init_state())
        assert s_short.ssm.shape == s_long.ssm.shape
        assert s_short.conv.shape == s_long.conv.shape

    def test_input_state_not_mutated(self, rng):
        layer = self._layer()
        state = layer.init_state()
        snapshot = state.ssm.copy()
        layer.forward(rng.normal(size=(4, 12)), state)
        np.testing.assert_array_equal(state.ssm, snapshot)

    def test_validation(self):
        with pytest.raises(ValueError):
            SSMLayer(d_model=8, d_state=0, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            SSMLayer(d_model=8, d_state=4, rng=np.random.default_rng(0), d_conv=1)


class TestMLP:
    def test_shapes_and_statelessness(self, rng):
        layer = MLPLayer(d_model=8, rng=np.random.default_rng(2))
        x = rng.normal(size=(5, 8))
        out = layer.forward(x)
        assert out.shape == (5, 8)
        # Token-wise independence (no state, no mixing across time).
        out_row = layer.forward(x[2:3])
        assert np.allclose(out[2], out_row[0])


class TestSampling:
    def test_greedy(self):
        assert greedy_token(np.asarray([0.1, 3.0, 2.0])) == 1

    def test_greedy_validation(self):
        with pytest.raises(ValueError):
            greedy_token(np.zeros((2, 2)))

    def test_sample_temperature_zero_is_greedy(self, rng):
        logits = np.asarray([0.0, 5.0, 1.0])
        assert sample_token(logits, rng, temperature=0.0) == 1

    def test_sample_in_range(self, rng):
        logits = np.asarray([0.0, 1.0, 2.0])
        for _ in range(20):
            assert 0 <= sample_token(logits, rng) < 3
