"""Tests for the vLLM+ baseline (block-granular checkpointing, leaf-LRU)."""

import numpy as np
import pytest

from repro.baselines.vllm_plus import VLLMPlusCache
from repro.models.memory import block_entry_bytes, kv_bytes, model_recurrent_bytes


class TestBlockBytes:
    def test_hybrid_block_includes_checkpoint(self, hybrid):
        cache = VLLMPlusCache(hybrid, int(1e9), block_size=32)
        assert cache.block_bytes == block_entry_bytes(hybrid, 32)
        assert cache.block_bytes > kv_bytes(hybrid, 32)

    def test_transformer_block_is_kv_only(self, transformer):
        cache = VLLMPlusCache(transformer, int(1e9), block_size=32)
        assert cache.block_bytes == kv_bytes(transformer, 32)

    def test_rejects_bad_capacity(self, hybrid):
        with pytest.raises(ValueError):
            VLLMPlusCache(hybrid, 0)


class TestLookupAdmit:
    def _roundtrip(self, cache, tokens, n, seed):
        seq = tokens(n, seed=seed)
        r = cache.lookup(seq, 0.0)
        cache.admit(seq, 0.5, handle=r.handle)
        return seq

    def test_block_granular_hit(self, hybrid, tokens):
        cache = VLLMPlusCache(hybrid, int(100e9), block_size=32)
        seq = self._roundtrip(cache, tokens, 100, seed=1)
        probe = np.concatenate([seq, tokens(50, seed=2)])
        r = cache.lookup(probe, 1.0)
        assert r.hit_tokens == 96  # 3 full blocks of the 100-token prefix

    def test_hit_capped_below_input_length(self, hybrid, tokens):
        """Even an exact block-aligned match must leave >= 1 token to prefill."""
        cache = VLLMPlusCache(hybrid, int(100e9), block_size=32)
        seq = self._roundtrip(cache, tokens, 128, seed=3)
        r = cache.lookup(seq, 1.0)  # identical, block-aligned input
        assert r.hit_tokens == 96  # 4th block would cover the whole input

    def test_partial_trailing_block_not_cached(self, hybrid, tokens):
        cache = VLLMPlusCache(hybrid, int(100e9), block_size=32)
        self._roundtrip(cache, tokens, 40, seed=4)  # 1 full block + 8 spare
        assert cache.store.n_blocks == 1
        assert cache.used_bytes == cache.block_bytes

    def test_admission_dedupes_shared_blocks(self, hybrid, tokens):
        cache = VLLMPlusCache(hybrid, int(100e9), block_size=32)
        shared = tokens(64, seed=5)
        self._roundtrip(cache, tokens, 0, seed=0) if False else None
        a = np.concatenate([shared, tokens(32, seed=6)])
        b = np.concatenate([shared, tokens(32, seed=7)])
        for seq in (a, b):
            r = cache.lookup(seq, 0.0)
            cache.admit(seq, 0.5, handle=r.handle)
        # 2 shared + 1 unique each = 4 blocks, not 6.
        assert cache.store.n_blocks == 4

    def test_divergent_content_same_position_not_shared(self, hybrid, tokens):
        """Hash-chained keys: same-position blocks with different ancestry
        never collide."""
        cache = VLLMPlusCache(hybrid, int(100e9), block_size=32)
        a = tokens(64, seed=8)
        b = np.concatenate([tokens(32, seed=9), a[32:64]])  # same 2nd block tokens
        for seq in (a, b):
            r = cache.lookup(seq, 0.0)
            cache.admit(seq, 0.5, handle=r.handle)
        assert cache.store.n_blocks == 4

    def test_accounting_invariant(self, hybrid, tokens):
        cache = VLLMPlusCache(hybrid, int(2e9), block_size=32)
        for i in range(10):
            seq = tokens(200 + 30 * i, seed=100 + i)
            r = cache.lookup(seq, float(i))
            cache.admit(seq, float(i) + 0.5, handle=r.handle)
        assert cache.used_bytes == cache.recompute_used_bytes()
        assert cache.used_bytes <= cache.capacity_bytes
        cache.store.check_integrity()

    def test_handle_reuse_rejected(self, hybrid, tokens):
        cache = VLLMPlusCache(hybrid, int(1e9))
        seq = tokens(64, seed=10)
        r = cache.lookup(seq, 0.0)
        cache.admit(seq, 0.5, handle=r.handle)
        with pytest.raises(ValueError):
            cache.admit(seq, 1.0, handle=r.handle)


class TestEviction:
    def test_lru_leaf_eviction_order(self, hybrid, tokens):
        cache = VLLMPlusCache(hybrid, 3 * block_entry_bytes(hybrid, 32), block_size=32)
        old = tokens(32, seed=11)
        fresh = tokens(32, seed=12)
        for t, seq in [(0.0, old), (1.0, fresh)]:
            r = cache.lookup(seq, t)
            cache.admit(seq, t + 0.1, handle=r.handle)
        # Force eviction of one block by admitting two more.
        extra = tokens(64, seed=13)
        r = cache.lookup(extra, 2.0)
        cache.admit(extra, 2.1, handle=r.handle)
        # The oldest block (old) should be gone; fresh should survive.
        assert cache.lookup(np.concatenate([fresh, tokens(8, seed=14)]), 3.0).hit_tokens == 32
        assert cache.lookup(np.concatenate([old, tokens(8, seed=15)]), 4.0).hit_tokens == 0

    def test_prefix_property_preserved_under_eviction(self, hybrid, tokens):
        """Eviction only removes leaves, so any matched chain stays rooted."""
        cache = VLLMPlusCache(hybrid, 10 * block_entry_bytes(hybrid, 32), block_size=32)
        rng = np.random.default_rng(0)
        for i in range(15):
            seq = tokens(int(rng.integers(32, 320)), seed=300 + i)
            r = cache.lookup(seq, float(i))
            cache.admit(seq, float(i) + 0.5, handle=r.handle)
        cache.store.check_integrity()
        for block in cache.store.iter_blocks():
            assert cache.store.has_block(block.parent_id)

    def test_thrash_counts_evictions(self, hybrid, tokens):
        cache = VLLMPlusCache(hybrid, 4 * block_entry_bytes(hybrid, 32), block_size=32)
        for i in range(8):
            seq = tokens(128, seed=400 + i)
            r = cache.lookup(seq, float(i))
            cache.admit(seq, float(i) + 0.5, handle=r.handle)
        assert cache.stats.evictions > 0
        assert cache.used_bytes <= cache.capacity_bytes


class TestReuseStats:
    def test_fig3a_sparse_ssm_reuse(self, hybrid, tokens):
        """A chain hit reuses every block's KVs but only the last block's
        recurrent state — the Fig. 3a asymmetry."""
        cache = VLLMPlusCache(hybrid, int(100e9), block_size=32)
        seq = tokens(320, seed=16)  # 10 blocks
        r = cache.lookup(seq, 0.0)
        cache.admit(seq, 0.5, handle=r.handle)
        probe = np.concatenate([seq, tokens(32, seed=17)])
        r = cache.lookup(probe, 1.0)
        assert r.hit_tokens == 320
        stats = cache.reuse_stats
        assert stats.blocks_kv_reused == 10
        assert stats.blocks_ssm_reused == 1
        assert stats.kv_reuse_rate > stats.ssm_reuse_rate

    def test_reuse_flags_are_sticky(self, hybrid, tokens):
        cache = VLLMPlusCache(hybrid, int(100e9), block_size=32)
        seq = tokens(64, seed=18)
        r = cache.lookup(seq, 0.0)
        cache.admit(seq, 0.5, handle=r.handle)
        for t in (1.0, 2.0, 3.0):
            cache.lookup(np.concatenate([seq, tokens(16, seed=19)]), t)
        assert cache.reuse_stats.blocks_kv_reused == 2  # counted once each
