"""End-to-end behavioural tests for MarconiCache."""

import numpy as np
import pytest

from repro.core.cache import MarconiCache
from repro.core.interfaces import LookupResult
from repro.models.memory import (
    kv_bytes_per_token,
    model_recurrent_bytes,
    node_state_bytes,
)


class TestBasics:
    def test_rejects_bad_capacity(self, hybrid):
        with pytest.raises(ValueError):
            MarconiCache(hybrid, capacity_bytes=0)

    def test_rejects_empty_lookup(self, hybrid):
        cache = MarconiCache(hybrid, int(1e9), alpha=1.0)
        with pytest.raises(ValueError):
            cache.lookup(np.asarray([], dtype=np.int32), 0.0)

    def test_rejects_2d_tokens(self, hybrid):
        cache = MarconiCache(hybrid, int(1e9), alpha=1.0)
        with pytest.raises(ValueError, match="1-D"):
            cache.lookup(np.zeros((2, 2), dtype=np.int32), 0.0)

    def test_accepts_python_lists(self, hybrid):
        cache = MarconiCache(hybrid, int(1e9), alpha=1.0)
        r = cache.lookup([1, 2, 3], 0.0)
        assert isinstance(r, LookupResult)
        cache.admit([1, 2, 3, 4], 0.5, handle=r.handle)

    def test_handle_cannot_be_reused(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(1e9), alpha=1.0)
        seq = tokens(50, seed=1)
        r = cache.lookup(seq, 0.0)
        full = np.concatenate([seq, tokens(10, seed=2)])
        cache.admit(full, 0.5, handle=r.handle)
        with pytest.raises(ValueError, match="already admitted"):
            cache.admit(full, 1.0, handle=r.handle)

    def test_foreign_handle_rejected(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(1e9), alpha=1.0)
        with pytest.raises(TypeError):
            cache.admit(tokens(10, seed=1), 0.0, handle="not-a-handle")

    def test_admit_without_lookup_supported(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(1e9), alpha=1.0)
        seq = tokens(100, seed=3)
        cache.admit(seq, 0.0)
        r = cache.lookup(np.concatenate([seq, tokens(10, seed=4)]), 1.0)
        assert r.hit_tokens == len(seq)

    def test_reset_clears_everything(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(1e9), alpha=1.0)
        r = cache.lookup(tokens(100, seed=5), 0.0)
        cache.admit(tokens(110, seed=5), 0.5)
        cache.reset()
        assert cache.used_bytes == 0
        assert cache.stats.lookups == 0
        assert cache.tree.n_nodes == 0


class TestAccounting:
    def test_lookup_charges_input_kvs(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(10e9), alpha=1.0)
        seq = tokens(500, seed=6)
        cache.lookup(seq, 0.0)
        assert cache.used_bytes == 500 * kv_bytes_per_token(hybrid)

    def test_admit_charges_output_and_checkpoint(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(10e9), alpha=1.0)
        seq = tokens(500, seed=7)
        r = cache.lookup(seq, 0.0)
        full = np.concatenate([seq, tokens(100, seed=8)])
        result = cache.admit(full, 0.5, handle=r.handle)
        expected = 100 * kv_bytes_per_token(hybrid) + model_recurrent_bytes(hybrid)
        assert result.admitted_bytes == expected
        assert cache.used_bytes == cache.recompute_used_bytes()

    def test_branch_checkpoint_charged_once(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(10e9), alpha=1.0)
        shared = tokens(300, seed=9)
        for i in range(2):
            seq = np.concatenate([shared, tokens(80, seed=20 + i)])
            r = cache.lookup(seq, float(i))
            cache.admit(np.concatenate([seq, tokens(30, seed=30 + i)]),
                        float(i) + 0.5, handle=r.handle)
        assert cache.used_bytes == cache.recompute_used_bytes()

    def test_free_bytes_and_utilization(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(1e9), alpha=1.0)
        assert cache.free_bytes == cache.capacity_bytes
        assert cache.utilization == 0.0
        cache.lookup(tokens(100, seed=10), 0.0)
        assert 0.0 < cache.utilization < 1.0
        assert cache.free_bytes == cache.capacity_bytes - cache.used_bytes


class TestStats:
    def test_token_hit_rate_accumulates(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(10e9), alpha=1.0)
        seq = tokens(100, seed=11)
        r = cache.lookup(seq, 0.0)
        full = np.concatenate([seq, tokens(100, seed=12)])
        cache.admit(full, 0.5, handle=r.handle)
        follow = np.concatenate([full, tokens(100, seed=13)])
        cache.lookup(follow, 1.0)
        # 0 hits of 100, then 200 hits of 300 => 200/400.
        assert cache.stats.token_hit_rate == pytest.approx(200 / 400)
        assert cache.stats.hits == 1
        assert cache.stats.lookups == 2

    def test_flops_saved_tracked(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(10e9), alpha=1.0)
        seq = tokens(100, seed=14)
        r = cache.lookup(seq, 0.0)
        full = np.concatenate([seq, tokens(10, seed=15)])
        cache.admit(full, 0.5, handle=r.handle)
        assert cache.stats.flops_saved == 0.0
        cache.lookup(np.concatenate([full, tokens(120, seed=16)]), 1.0)
        assert cache.stats.flops_saved > 0

    def test_snapshot_keys(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(10e9), alpha=1.0)
        cache.lookup(tokens(10, seed=17), 0.0)
        snap = cache.stats.snapshot()
        for key in ("lookups", "token_hit_rate", "evictions", "admitted_bytes"):
            assert key in snap


class TestPinningUnderPressure:
    def test_inflight_hit_node_survives_pressure(self, hybrid, tokens):
        """States being used by an in-flight prefill must not be evicted
        between lookup and admit."""
        per_seq = node_state_bytes(hybrid, 220, True)
        cache = MarconiCache(hybrid, capacity_bytes=4 * per_seq, alpha=0.0)
        base = tokens(200, seed=18)
        r = cache.lookup(base, 0.0)
        full = np.concatenate([base, tokens(20, seed=19)])
        cache.admit(full, 0.5, handle=r.handle)
        # Open a request that hits `full`, keep it in flight.
        follow = np.concatenate([full, tokens(50, seed=20)])
        inflight = cache.lookup(follow, 1.0)
        assert inflight.hit_tokens == len(full)
        # Hammer the cache with other sequences to force evictions.
        for i in range(8):
            other = tokens(220, seed=100 + i)
            r2 = cache.lookup(other, 2.0 + i)
            cache.admit(np.concatenate([other, tokens(20, seed=200 + i)]),
                        2.5 + i, handle=r2.handle)
        # The in-flight path must still be intact.
        node = cache.tree.match(follow).deepest_node
        assert node is not None and node.is_pinned
        cache.admit(np.concatenate([follow, tokens(10, seed=21)]), 20.0,
                    handle=inflight.handle)
        assert cache.used_bytes == cache.recompute_used_bytes()
        cache.tree.check_integrity()

    def test_partial_prefix_kept_when_input_exceeds_capacity(self, hybrid, tokens):
        """An input larger than the cache keeps only its longest affordable
        KV prefix (mirroring block caches admitting prefix blocks)."""
        cache = MarconiCache(hybrid, capacity_bytes=int(5e7), alpha=0.0)
        seq = tokens(2000, seed=22)  # 2000 * 64KB >> 50MB
        r = cache.lookup(seq, 0.0)
        assert r.hit_tokens == 0
        assert 0 < cache.used_bytes <= cache.capacity_bytes
        assert cache.used_bytes == cache.recompute_used_bytes()
        node = next(iter(cache.tree.iter_nodes()))
        assert 0 < node.kv_tokens < 2000
        np.testing.assert_array_equal(node.edge_tokens, seq[: node.kv_tokens])
        cache.admit(np.concatenate([seq, tokens(10, seed=23)]), 0.5, handle=r.handle)
        assert cache.used_bytes <= cache.capacity_bytes
        assert cache.used_bytes == cache.recompute_used_bytes()
        cache.tree.check_integrity()

    def test_full_rollback_when_nothing_fits(self, hybrid, tokens):
        """With capacity below one token's KVs, the path is rolled back."""
        cache = MarconiCache(hybrid, capacity_bytes=1024, alpha=0.0)
        seq = tokens(100, seed=24)
        r = cache.lookup(seq, 0.0)
        assert cache.used_bytes == 0
        assert cache.stats.rejected_admissions >= 1
        result = cache.admit(np.concatenate([seq, tokens(10, seed=25)]), 0.5,
                             handle=r.handle)
        assert result.rejected
        assert cache.tree.n_nodes == 0
        cache.tree.check_integrity()


class TestStorePayloads:
    def test_leaf_payload_roundtrip(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(10e9), alpha=1.0, store_states=True)
        seq = tokens(100, seed=24)
        r = cache.lookup(seq, 0.0)
        full = np.concatenate([seq, tokens(10, seed=25)])
        cache.admit(full, 0.5, handle=r.handle, state_payload={"state": 42})
        r2 = cache.lookup(np.concatenate([full, tokens(5, seed=26)]), 1.0)
        assert r2.state_payload == {"state": 42}

    def test_attach_branch_state(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(10e9), alpha=1.0, store_states=True)
        shared = tokens(300, seed=27)
        first = np.concatenate([shared, tokens(50, seed=28)])
        r = cache.lookup(first, 0.0)
        cache.admit(np.concatenate([first, tokens(10, seed=29)]), 0.5, handle=r.handle)
        second = np.concatenate([shared, tokens(50, seed=30)])
        r2 = cache.lookup(second, 1.0)
        assert r2.checkpoint_positions == [300]
        cache.attach_branch_state(r2.handle, 300, {"branch": True})
        cache.admit(np.concatenate([second, tokens(10, seed=31)]), 1.5, handle=r2.handle)
        third = np.concatenate([shared, tokens(50, seed=32)])
        r3 = cache.lookup(third, 2.0)
        assert r3.hit_tokens == 300
        assert r3.state_payload == {"branch": True}

    def test_attach_at_wrong_position_raises(self, hybrid, tokens):
        cache = MarconiCache(hybrid, int(10e9), alpha=1.0, store_states=True)
        r = cache.lookup(tokens(50, seed=33), 0.0)
        with pytest.raises(ValueError, match="branch checkpoint"):
            cache.attach_branch_state(r.handle, 10, {})
