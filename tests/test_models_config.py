"""Tests for ModelConfig validation and derived properties."""

import dataclasses

import pytest

from repro.models.config import LayerType, ModelConfig
from repro.models.presets import (
    PRESETS,
    get_preset,
    hybrid_7b,
    hybrid_with_composition,
    hybrid_with_state_dim,
    mamba_7b,
    tiny_test_model,
    transformer_7b,
)


class TestValidation:
    def test_rejects_non_positive_d_model(self):
        with pytest.raises(ValueError, match="d_model"):
            ModelConfig("x", d_model=0, d_state=16, n_attention=1, n_ssm=1, n_mlp=1)

    def test_rejects_zero_d_state_with_ssm_layers(self):
        with pytest.raises(ValueError, match="d_state"):
            ModelConfig("x", d_model=64, d_state=0, n_attention=1, n_ssm=2, n_mlp=1)

    def test_allows_zero_d_state_without_ssm_layers(self):
        config = ModelConfig("x", d_model=64, d_state=0, n_attention=2, n_ssm=0, n_mlp=2, n_heads=4)
        assert config.is_pure_transformer

    def test_rejects_negative_layer_counts(self):
        with pytest.raises(ValueError, match="non-negative"):
            ModelConfig("x", d_model=64, d_state=16, n_attention=-1, n_ssm=1, n_mlp=1)

    def test_rejects_empty_model(self):
        with pytest.raises(ValueError, match="at least one layer"):
            ModelConfig("x", d_model=64, d_state=16, n_attention=0, n_ssm=0, n_mlp=0)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError, match="divisible"):
            ModelConfig("x", d_model=65, d_state=16, n_attention=1, n_ssm=0, n_mlp=1, n_heads=4)

    def test_rejects_bad_dtype_bytes(self):
        with pytest.raises(ValueError, match="dtype_bytes"):
            ModelConfig("x", d_model=64, d_state=16, n_attention=0, n_ssm=1, n_mlp=1, dtype_bytes=0)


class TestDerived:
    def test_d_inner_is_expanded(self, hybrid):
        assert hybrid.d_inner == hybrid.expand * hybrid.d_model

    def test_layer_counts_paper_hybrid(self, hybrid):
        assert hybrid.layer_counts() == {
            LayerType.ATTENTION: 4,
            LayerType.SSM: 24,
            LayerType.MLP: 28,
        }
        assert hybrid.n_layers == 56

    def test_recurrent_flags(self, hybrid, transformer):
        assert hybrid.has_recurrent_layers and not hybrid.is_pure_transformer
        assert transformer.is_pure_transformer and not transformer.has_recurrent_layers

    def test_attention_ssm_ratio(self, hybrid, transformer):
        assert hybrid.attention_ssm_ratio == pytest.approx(4 / 24)
        assert transformer.attention_ssm_ratio == float("inf")

    def test_frozen(self, hybrid):
        with pytest.raises(dataclasses.FrozenInstanceError):
            hybrid.d_model = 1


class TestConstructors:
    def test_with_state_dim(self, hybrid):
        smaller = hybrid.with_state_dim(16)
        assert smaller.d_state == 16
        assert smaller.n_ssm == hybrid.n_ssm
        assert "N16" in smaller.name

    def test_with_composition(self, hybrid):
        swapped = hybrid.with_composition(30, 5)
        assert (swapped.n_ssm, swapped.n_attention) == (30, 5)
        assert swapped.n_mlp == hybrid.n_mlp


class TestPresets:
    def test_all_presets_construct(self):
        for name in PRESETS:
            config = get_preset(name)
            assert config.n_layers > 0

    def test_get_preset_unknown(self):
        with pytest.raises(KeyError, match="unknown model preset"):
            get_preset("nope")

    def test_paper_dimensions(self):
        m = hybrid_7b()
        assert (m.d_model, m.d_state) == (4096, 128)
        assert m.dtype_bytes == 2  # FP16

    def test_transformer_is_llama_shaped(self):
        m = transformer_7b()
        assert (m.n_attention, m.n_ssm, m.n_mlp) == (32, 0, 32)

    def test_mamba_is_pure_ssm(self):
        m = mamba_7b()
        assert m.n_attention == 0 and m.n_mlp == 0 and m.n_ssm == 64

    def test_composition_preset_pure_transformer_end(self):
        m = hybrid_with_composition(0, 36)
        assert m.is_pure_transformer
        assert m.n_attention == 36

    def test_composition_preset_keeps_mlp(self):
        base = hybrid_7b()
        for ssm, attn in [(32, 4), (30, 5), (28, 7), (24, 12)]:
            m = hybrid_with_composition(ssm, attn)
            assert m.n_mlp == base.n_mlp
            assert (m.n_ssm, m.n_attention) == (ssm, attn)

    def test_state_dim_preset(self):
        for dim in (128, 64, 32, 16):
            assert hybrid_with_state_dim(dim).d_state == dim

    def test_tiny_model_usable_by_nn(self):
        m = tiny_test_model()
        assert m.d_model % m.n_heads == 0
        assert m.vocab_size <= 1024
