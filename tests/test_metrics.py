"""Tests for metrics: percentiles, hit-rate aggregation, TTFT, reporting."""

import numpy as np
import pytest

from repro.engine.results import EngineResult, RequestRecord, step_time_weighted_mean
from repro.metrics.fairness import coefficient_of_variation, jain_fairness
from repro.metrics.hit_rate import (
    hit_rate_win,
    improvement_ratio,
    mean_hit_rate_by_length_bin,
    token_hit_rate,
)
from repro.metrics.percentiles import BoxSummary, cdf, percentile
from repro.metrics.reporting import ascii_table, format_bytes, format_percent, format_ratio
from repro.metrics.ttft import relative_ttft_percentile, ttft_cdf


def record(input_len, hit, ttft=0.1):
    return RequestRecord(0, 0, 0.0, 0.0, ttft, ttft, input_len, hit, 10, 0, 0.0)


class TestPercentiles:
    def test_basic(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 120)

    def test_box_summary_ordering(self, rng):
        box = BoxSummary.from_values(rng.normal(size=500))
        assert box.p5 <= box.q1 <= box.median <= box.q3 <= box.p95

    def test_box_as_dict(self):
        box = BoxSummary.from_values([1.0, 2.0, 3.0])
        assert set(box.as_dict()) == {"p5", "q1", "median", "q3", "p95"}

    def test_cdf_monotone(self, rng):
        values, probs = cdf(rng.normal(size=100))
        assert np.all(np.diff(values) >= 0)
        assert probs[0] == pytest.approx(0.01) and probs[-1] == 1.0


class TestPercentileEdgeCases:
    """Degenerate inputs exercised by the kernel's utilization telemetry."""

    def test_single_sample_is_its_own_percentile(self):
        for p in (0, 5, 50, 95, 100):
            assert percentile([7.5], p) == 7.5

    def test_all_equal_values(self):
        assert percentile([2.0] * 9, 95) == 2.0

    def test_boundary_percentiles(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_negative_percentile_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_box_summary_single_sample_collapses(self):
        box = BoxSummary.from_values([4.0])
        assert box.p5 == box.q1 == box.median == box.q3 == box.p95 == 4.0

    def test_box_summary_empty_raises(self):
        with pytest.raises(ValueError):
            BoxSummary.from_values([])

    def test_cdf_single_sample(self):
        values, probs = cdf([3.0])
        assert values.tolist() == [3.0]
        assert probs.tolist() == [1.0]

    def test_cdf_empty_raises(self):
        with pytest.raises(ValueError):
            cdf([])


class TestFairness:
    """Load-balance metrics over replica sets, including degenerate ones."""

    def test_even_loads_are_perfectly_fair(self):
        assert jain_fairness([3.0, 3.0, 3.0]) == pytest.approx(1.0)
        assert coefficient_of_variation([3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_one_hot_load_is_worst_case(self):
        n = 4
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(1 / n)

    def test_empty_replica_set_raises(self):
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            coefficient_of_variation([])

    def test_single_replica(self):
        assert jain_fairness([5.0]) == pytest.approx(1.0)
        assert coefficient_of_variation([5.0]) == pytest.approx(0.0)

    def test_all_zero_loads(self):
        """Idle cluster: defined as perfectly fair / perfectly balanced."""
        assert jain_fairness([0.0, 0.0]) == 1.0
        assert coefficient_of_variation([0.0, 0.0]) == 0.0

    def test_negative_loads_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([1.0, -1.0])

    def test_accepts_ndarray(self):
        arr = np.asarray([1.0, 2.0, 3.0])
        assert 0 < jain_fairness(arr) <= 1.0
        assert coefficient_of_variation(arr) > 0.0


class TestStepTimeWeightedMean:
    """The integrator behind the kernel's utilization timeseries."""

    def test_empty_and_single_sample_are_zero(self):
        assert step_time_weighted_mean([]) == 0.0
        assert step_time_weighted_mean([(0.0, 5)]) == 0.0

    def test_constant_step_function(self):
        assert step_time_weighted_mean([(0.0, 2), (10.0, 2)]) == pytest.approx(2.0)

    def test_weighted_by_dwell_time(self):
        # value 4 for 1s, value 0 for 3s -> mean 1.0
        series = [(0.0, 4), (1.0, 0), (4.0, 0)]
        assert step_time_weighted_mean(series) == pytest.approx(1.0)

    def test_zero_span_is_zero(self):
        assert step_time_weighted_mean([(2.0, 3), (2.0, 7)]) == 0.0

    def test_engine_result_utilization_bounds(self):
        result = EngineResult(
            policy="x",
            max_running=2,
            running_series=[(0.0, 2), (1.0, 1), (2.0, 0)],
        )
        assert result.mean_running() == pytest.approx(1.5)
        assert result.executor_utilization() == pytest.approx(0.75)

    def test_engine_result_empty_series(self):
        result = EngineResult(policy="x")
        assert result.mean_queue_depth() == 0.0
        assert result.peak_queue_depth() == 0
        assert result.executor_utilization() == 0.0


class TestHitRate:
    def test_token_hit_rate_weighted(self):
        records = [record(100, 50), record(300, 0)]
        assert token_hit_rate(records) == pytest.approx(50 / 400)

    def test_empty_is_zero(self):
        assert token_hit_rate([]) == 0.0

    def test_improvement_ratio_floor(self):
        assert improvement_ratio(0.3, 0.0) == pytest.approx(0.3 / 1e-4)
        assert improvement_ratio(0.3, 0.1) == pytest.approx(3.0)

    def test_hit_rate_win(self):
        a = EngineResult("a", [record(100, 60)])
        b = EngineResult("b", [record(100, 40)])
        assert hit_rate_win(a, b) == pytest.approx(0.5)

    def test_binning(self):
        records = [record(500, 250), record(1500, 1500 * 0.8), record(2500, 0)]
        means, counts = mean_hit_rate_by_length_bin(records, np.asarray([0, 1000, 2000, 3000]))
        assert counts.tolist() == [1, 1, 1]
        assert means[0] == pytest.approx(0.5)
        assert means[1] == pytest.approx(0.8)
        assert means[2] == 0.0

    def test_binning_empty_bin_is_nan(self):
        means, counts = mean_hit_rate_by_length_bin([record(100, 0)], np.asarray([0, 50, 200]))
        assert counts[0] == 0 and np.isnan(means[0])

    def test_binning_validation(self):
        with pytest.raises(ValueError):
            mean_hit_rate_by_length_bin([], np.asarray([1.0]))


class TestTTFT:
    def test_relative_percentile(self):
        fast = EngineResult("fast", [record(10, 0, ttft=0.5) for _ in range(10)])
        slow = EngineResult("slow", [record(10, 0, ttft=1.0) for _ in range(10)])
        assert relative_ttft_percentile(fast, slow, 95) == pytest.approx(0.5)

    def test_ttft_cdf(self):
        result = EngineResult("x", [record(10, 0, ttft=t) for t in (0.3, 0.1, 0.2)])
        values, probs = ttft_cdf(result)
        assert values.tolist() == [0.1, 0.2, 0.3]


class TestReporting:
    def test_ascii_table_alignment(self):
        table = ascii_table(["a", "bbb"], [[1, 2], [33, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_ascii_table_validation(self):
        with pytest.raises(ValueError):
            ascii_table([], [])
        with pytest.raises(ValueError):
            ascii_table(["a"], [[1, 2]])

    def test_format_bytes(self):
        assert format_bytes(17.4e9) == "17.4 GB"
        assert format_bytes(26.7e6) == "26.7 MB"
        assert format_bytes(512) == "512 B"

    def test_format_ratio_and_percent(self):
        assert format_ratio(34.42) == "34.4x"
        assert format_percent(0.711) == "71.1%"
