"""Property suite for the split-point steering cost model (compute-or-load v2).

Three invariants lock the planner:

1. **Bandwidth monotonicity** — raising the inter-replica link bandwidth
   never moves the chosen plan toward *more* recompute: the loaded depth
   (0 for recompute, the split point for split, the deepest checkpoint for
   full load) is non-decreasing in bandwidth.
2. **Degenerate byte-identity** — with splitting disabled (or no interior
   checkpoint available) the planner must reproduce the PR-4
   all-or-nothing compute-or-load rule expression-for-expression: same
   decision, same byte count, bit-identical cost floats.
3. **No leaks under mid-flight failure** — failing the split source (or a
   bystander/target replica) while a head transfer is in flight must
   leave zero pinned nodes, zero open sessions, and every round served.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DirectoryRouter, ScenarioEvent, simulate_cluster
from repro.engine.latency import LatencyModel
from repro.engine.steering import plan_split
from repro.experiments.steering_sweep import split_probe_trace
from repro.models.flops import model_suffix_prefill_flops
from repro.models.memory import kv_bytes, model_recurrent_bytes
from repro.models.presets import hybrid_7b
from repro.tiering import TieredMarconiCache

HYBRID = hybrid_7b()


def _loaded_depth(plan, local_hit):
    """Tokens of state the plan ships (the 'how far from recompute' axis)."""
    if plan is None or plan.mode == "recompute":
        return local_hit
    return plan.depth


# Checkpoint layouts: a handful of interior depths below a deepest one.
_depth_sets = st.lists(
    st.integers(min_value=8, max_value=1990), min_size=1, max_size=6, unique=True
).map(sorted)


class TestBandwidthMonotonicity:
    @settings(max_examples=120, deadline=None)
    @given(
        depths=_depth_sets,
        local_hit=st.integers(min_value=0, max_value=400),
        total_len=st.integers(min_value=2000, max_value=4000),
        bw_lo=st.floats(min_value=1e7, max_value=1e11),
        bw_ratio=st.floats(min_value=1.0, max_value=100.0),
        min_tokens=st.sampled_from([1, 16, 64]),
    )
    def test_loaded_depth_non_decreasing_in_bandwidth(
        self, depths, local_hit, total_len, bw_lo, bw_ratio, min_tokens
    ):
        lo = LatencyModel(transfer_bandwidth_bytes_per_s=bw_lo)
        hi = LatencyModel(transfer_bandwidth_bytes_per_s=bw_lo * bw_ratio)
        plan_lo = plan_split(
            HYBRID, lo, total_len, local_hit, depths, min_tokens=min_tokens
        )
        plan_hi = plan_split(
            HYBRID, hi, total_len, local_hit, depths, min_tokens=min_tokens
        )
        assert (plan_lo is None) == (plan_hi is None)  # gate is bw-independent
        assert _loaded_depth(plan_hi, local_hit) >= _loaded_depth(
            plan_lo, local_hit
        ), (plan_lo, plan_hi)


def _pr4_rule(model, latency, total_len, local_hit, depth):
    """The PR-4 all-or-nothing compute-or-load rule, reimplemented verbatim
    from before the split planner existed (the conformance oracle)."""
    nbytes = kv_bytes(model, depth) + model_recurrent_bytes(model)
    load_seconds = (
        latency.transfer_seconds(nbytes)
        + nbytes / latency.secondary_fetch_bandwidth_bytes_per_s
    )
    saved_flops = model_suffix_prefill_flops(
        model, total_len, local_hit
    ) - model_suffix_prefill_flops(model, total_len, depth)
    recompute_seconds = saved_flops / latency.effective_flops_per_s
    return nbytes, load_seconds, recompute_seconds


class TestDegenerateByteIdentity:
    @settings(max_examples=120, deadline=None)
    @given(
        depths=_depth_sets,
        local_hit=st.integers(min_value=0, max_value=400),
        total_len=st.integers(min_value=2000, max_value=4000),
        bandwidth=st.floats(min_value=1e7, max_value=1e11),
        allow_split=st.booleans(),
    )
    def test_endpoints_match_pr4_rule_bit_for_bit(
        self, depths, local_hit, total_len, bandwidth, allow_split
    ):
        """With splitting off — or on, whenever an endpoint wins — the
        decision and its cost floats must equal the legacy rule exactly
        (==, not approx): same expressions, same evaluation order."""
        latency = LatencyModel(transfer_bandwidth_bytes_per_s=bandwidth)
        plan = plan_split(
            HYBRID, latency, total_len, local_hit, depths, allow_split=allow_split
        )
        usable = [d for d in depths if local_hit < d <= total_len - 1]
        if plan is None:
            assert not usable
            return
        deepest = usable[-1]
        nbytes, load_s, recompute_s = _pr4_rule(
            HYBRID, latency, total_len, local_hit, deepest
        )
        tail = model_suffix_prefill_flops(HYBRID, total_len, deepest)
        assert plan.est_load == load_s + tail / latency.effective_flops_per_s
        assert (
            plan.est_recompute == recompute_s + tail / latency.effective_flops_per_s
        )
        if not allow_split:
            assert plan.mode in ("load", "recompute")
        if plan.mode == "load":
            assert load_s < recompute_s  # PR-4 tie goes to recompute
            assert plan.depth == deepest and plan.nbytes == nbytes
        elif plan.mode == "recompute":
            assert not load_s < recompute_s
            assert plan.depth == local_hit and plan.nbytes == 0

    def test_single_candidate_never_splits(self):
        """One checkpoint depth == no interior point: splitting enabled or
        not, the plan must be the all-or-nothing decision."""
        latency = LatencyModel()
        for bw in (1e8, 1e9, 1e10, 1e11):
            latency = LatencyModel(transfer_bandwidth_bytes_per_s=bw)
            on = plan_split(HYBRID, latency, 3000, 100, (1500,), allow_split=True)
            off = plan_split(HYBRID, latency, 3000, 100, (1500,), allow_split=False)
            assert on == off
            assert on.mode in ("load", "recompute")


def _probe_caches(n):
    return [TieredMarconiCache(HYBRID, int(1e12), int(1e12)) for _ in range(n)]


def _run_probe(scenario, n_replicas=2, bandwidth=1e9):
    trace = split_probe_trace()
    caches = _probe_caches(n_replicas)
    result = simulate_cluster(
        HYBRID,
        caches,
        DirectoryRouter(split=True, transfer_min_tokens=16),
        trace,
        scenario=scenario,
        latency=LatencyModel(transfer_bandwidth_bytes_per_s=bandwidth),
    )
    return trace, caches, result


def _assert_no_leaks(trace, caches, result):
    expected = {
        (s.session_id, r) for s in trace.sessions for r in range(s.n_rounds)
    }
    served = {
        (rec.session_id, rec.round_index)
        for replica in result.replica_results
        for rec in replica.records
    }
    assert served == expected
    for cache in caches:
        assert cache.open_sessions == 0
        assert all(node.pin_count == 0 for node in cache.tree.iter_nodes())
        assert cache.used_bytes == cache.recompute_used_bytes()


class TestMidFlightFailure:
    """The split probe's steered round arrives ~31s in (4 quick rounds,
    then a 30s think past the 10s drain of replica 0); failures injected
    across that window land before, during, and after the head transfer."""

    @settings(max_examples=40, deadline=None)
    @given(
        fail_time=st.floats(min_value=30.0, max_value=33.0),
        fail_replica=st.sampled_from([0, 1]),
        bandwidth=st.sampled_from([1e8, 3e8, 1e9]),
    )
    def test_no_leaks_whenever_a_replica_dies(
        self, fail_time, fail_replica, bandwidth
    ):
        scenario = [
            ScenarioEvent(10.0, "drain", replica=0),
            ScenarioEvent(fail_time, "fail", replica=fail_replica),
        ]
        trace, caches, result = _run_probe(
            scenario, n_replicas=3, bandwidth=bandwidth
        )
        _assert_no_leaks(trace, caches, result)

    def test_source_failure_during_transfer_drops_cleanly(self):
        """Sweep failure times until one provably lands mid-flight (the
        transfer outcome differs from the failure-free run), then check
        the drop left no debris behind."""
        trace, caches, baseline = _run_probe(
            [ScenarioEvent(10.0, "drain", replica=0)], n_replicas=3
        )
        base = baseline.steering_counter
        assert base("transfers_split") >= 1
        hit_mid_flight = False
        for fail_time in np.arange(30.0, 33.0, 0.1):
            scenario = [
                ScenarioEvent(10.0, "drain", replica=0),
                ScenarioEvent(float(fail_time), "fail", replica=0),
            ]
            trace, caches, result = _run_probe(scenario, n_replicas=3)
            _assert_no_leaks(trace, caches, result)
            counter = result.steering_counter
            if counter("transfers_completed") < base("transfers_completed") or (
                counter("transfers_stale_source") > 0
            ):
                hit_mid_flight = True
        assert hit_mid_flight, "no swept failure time interrupted the transfer"
