"""Tests for time-resolved analysis + property tests for persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    cumulative_hit_rate,
    warmup_requests,
    windowed_hit_rate,
)
from repro.core.cache import MarconiCache
from repro.core.persistence import load_cache, save_cache
from repro.engine.results import RequestRecord
from repro.engine.server import simulate_trace
from repro.models.memory import node_state_bytes
from repro.models.presets import tiny_test_model
from repro.workloads.lmsys import generate_lmsys_trace


def record(i, input_len=100, hit=0):
    return RequestRecord(
        session_id=0, round_index=i, arrival_time=float(i), service_start=float(i),
        prefill_seconds=0.1, ttft=0.1, input_len=input_len, hit_tokens=hit,
        output_len=5, reused_bytes=0, flops_saved=0.0,
    )


class TestWindowedHitRate:
    def test_windows_partition_records(self):
        records = [record(i, hit=50 if i >= 10 else 0) for i in range(25)]
        points = windowed_hit_rate(records, window=10)
        assert [p.requests for p in points] == [10, 10, 5]
        assert points[0].token_hit_rate == 0.0
        assert points[-1].token_hit_rate == pytest.approx(0.5)

    def test_orders_by_service_start(self):
        records = [record(5), record(1, hit=100), record(3)]
        points = windowed_hit_rate(records, window=1)
        assert [p.end_time for p in points] == [1.0, 3.0, 5.0]
        assert points[0].token_hit_rate == 1.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            windowed_hit_rate([record(0)], window=0)

    def test_empty_records(self):
        assert windowed_hit_rate([], window=5) == []
        assert cumulative_hit_rate([]).size == 0


class TestCumulative:
    def test_running_ratio(self):
        records = [record(0, 100, 0), record(1, 100, 100), record(2, 100, 50)]
        running = cumulative_hit_rate(records)
        assert running[0] == 0.0
        assert running[1] == pytest.approx(0.5)
        assert running[2] == pytest.approx(0.5)

    def test_matches_aggregate_at_end(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=6, seed=99)
        cache = MarconiCache(hybrid, 50 * node_state_bytes(hybrid, 2000, True), alpha=1.0)
        result = simulate_trace(hybrid, cache, trace)
        running = cumulative_hit_rate(result.records)
        assert running[-1] == pytest.approx(result.token_hit_rate)


class TestWarmup:
    def test_cold_then_warm(self):
        records = [record(i, hit=0 if i < 40 else 90) for i in range(80)]
        warm_at = warmup_requests(records, fraction=0.9, window=10)
        assert 40 < warm_at <= 60

    def test_never_warm_returns_total(self):
        # Hit rate strictly decreasing: threshold (of the final window)
        # is met by the *first* window already; use fraction=1.0 with
        # oscillation to exercise the fallback instead.
        records = [record(i, hit=100 if i % 20 < 10 else 0) for i in range(40)]
        assert warmup_requests(records, fraction=1.0, window=40) == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            warmup_requests([record(0)], fraction=0.0)

    def test_real_cache_warms_up(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=20, seed=101)
        cache = MarconiCache(hybrid, 50 * node_state_bytes(hybrid, 3000, True), alpha=1.0)
        result = simulate_trace(hybrid, cache, trace)
        warm_at = warmup_requests(result.records, fraction=0.5, window=15)
        assert 0 < warm_at <= result.n_requests


TOKENS = st.lists(st.integers(0, 3), min_size=1, max_size=10)


class TestPersistenceProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        requests=st.lists(st.tuples(TOKENS, TOKENS), min_size=1, max_size=12),
        queries=st.lists(TOKENS, min_size=1, max_size=6),
    )
    def test_roundtrip_preserves_match_semantics(self, tmp_path_factory, requests, queries):
        """After save/load, every query sees the identical hit length."""
        model = tiny_test_model()
        cache = MarconiCache(model, int(1e12), alpha=1.0)
        clock = 0.0
        for inp, out in requests:
            clock += 1.0
            r = cache.lookup(np.asarray(inp, dtype=np.int32), clock)
            cache.admit(
                np.asarray(inp + out, dtype=np.int32), clock + 0.5, handle=r.handle
            )
        path = tmp_path_factory.mktemp("props") / "cache.npz"
        save_cache(cache, path)
        warm = load_cache(model, int(1e12), path, alpha=1.0)
        warm.tree.check_integrity()
        assert warm.used_bytes == cache.used_bytes
        for query in queries:
            arr = np.asarray(query, dtype=np.int32)
            a = cache.tree.match(arr)
            b = warm.tree.match(arr)
            assert a.matched_len == b.matched_len
            node_a = a.deepest_ssm_node(max_seq_len=len(arr) - 1)
            node_b = b.deepest_ssm_node(max_seq_len=len(arr) - 1)
            assert (node_a.seq_len if node_a else 0) == (
                node_b.seq_len if node_b else 0
            )
