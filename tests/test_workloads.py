"""Tests for distributions, vocab pools, trace schema, and generators."""

import numpy as np
import pytest

from repro.workloads.arrivals import PoissonProcess, exponential_think_times
from repro.workloads.distributions import (
    GeometricCount,
    LogNormalLength,
    sample_zipf,
    zipf_weights,
)
from repro.workloads.lmsys import generate_lmsys_trace
from repro.workloads.registry import WORKLOAD_NAMES, generate_trace
from repro.workloads.sessions import WorkloadParams
from repro.workloads.sharegpt import generate_sharegpt_trace
from repro.workloads.swebench import generate_swebench_trace
from repro.workloads.trace import Trace, TraceRound, TraceSession
from repro.workloads.vocab import SharedSegmentPool, fresh_tokens


class TestDistributions:
    def test_lognormal_respects_clip(self, rng):
        dist = LogNormalLength(median=100, sigma=2.0, minimum=10, maximum=500)
        samples = dist.sample_many(rng, 2000)
        assert samples.min() >= 10 and samples.max() <= 500

    def test_lognormal_median_roughly_right(self, rng):
        dist = LogNormalLength(median=100, sigma=0.8, minimum=1, maximum=100000)
        samples = dist.sample_many(rng, 4000)
        assert 85 < np.median(samples) < 115

    def test_lognormal_validation(self):
        with pytest.raises(ValueError):
            LogNormalLength(median=0, sigma=1.0)
        with pytest.raises(ValueError):
            LogNormalLength(median=10, sigma=-1.0)
        with pytest.raises(ValueError):
            LogNormalLength(median=10, sigma=1.0, minimum=5, maximum=2)

    def test_geometric_mean_and_clip(self, rng):
        dist = GeometricCount(mean=4.0, minimum=1, maximum=10)
        samples = [dist.sample(rng) for _ in range(3000)]
        assert 1 <= min(samples) and max(samples) <= 10
        assert 3.0 < np.mean(samples) < 4.5

    def test_zipf_weights_normalized_and_decreasing(self):
        w = zipf_weights(10, 1.2)
        assert w.sum() == pytest.approx(1.0)
        assert all(w[i] >= w[i + 1] for i in range(9))

    def test_zipf_sample_in_range(self, rng):
        for _ in range(50):
            assert 0 <= sample_zipf(rng, 7, 1.0) < 7


class TestVocab:
    def test_fresh_tokens_shape_and_range(self, rng):
        t = fresh_tokens(rng, 100, 500)
        assert t.dtype == np.int32 and len(t) == 100
        assert t.min() >= 0 and t.max() < 500

    def test_pool_deterministic_across_instances(self):
        kwargs = dict(
            base_seed=42,
            n_templates=5,
            length=LogNormalLength(median=50, sigma=0.3),
            vocab_size=1000,
        )
        a, b = SharedSegmentPool(**kwargs), SharedSegmentPool(**kwargs)
        for i in range(5):
            np.testing.assert_array_equal(a.get(i), b.get(i))

    def test_pool_templates_distinct(self):
        pool = SharedSegmentPool(
            base_seed=1, n_templates=6,
            length=LogNormalLength(median=80, sigma=0.2), vocab_size=32000,
        )
        contents = {p.tobytes() for p in (pool.get(i) for i in range(6))}
        assert len(contents) == 6

    def test_pool_zipf_sampling_prefers_head(self, rng):
        pool = SharedSegmentPool(
            base_seed=2, n_templates=10,
            length=LogNormalLength(median=20, sigma=0.1), vocab_size=100,
            zipf_exponent=1.5,
        )
        draws = [pool.sample_index(rng) for _ in range(800)]
        assert draws.count(0) > draws.count(9)


class TestArrivals:
    def test_poisson_rate(self, rng):
        times = PoissonProcess(rate=2.0).arrival_times(rng, 4000)
        assert np.all(np.diff(times) >= 0)
        assert times[-1] / 4000 == pytest.approx(0.5, rel=0.1)

    def test_think_times_shape(self, rng):
        gaps = exponential_think_times(rng, 5, 3.0)
        assert len(gaps) == 5 and gaps[0] == 0.0
        assert all(g >= 0 for g in gaps)

    def test_single_round_session(self, rng):
        assert exponential_think_times(rng, 1, 5.0) == [0.0]

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PoissonProcess(rate=0)
        with pytest.raises(ValueError):
            exponential_think_times(rng, 0, 1.0)


class TestTraceSchema:
    def _session(self):
        rounds = [
            TraceRound(np.asarray([1, 2, 3], dtype=np.int32), np.asarray([4, 5], dtype=np.int32)),
            TraceRound(np.asarray([6], dtype=np.int32), np.asarray([7, 8], dtype=np.int32)),
        ]
        return TraceSession(0, 1.0, rounds, [0.0, 2.5])

    def test_full_input_accumulates_context(self):
        session = self._session()
        np.testing.assert_array_equal(session.full_input(0), [1, 2, 3])
        np.testing.assert_array_equal(session.full_input(1), [1, 2, 3, 4, 5, 6])
        np.testing.assert_array_equal(session.full_sequence(1), [1, 2, 3, 4, 5, 6, 7, 8])

    def test_round_input_is_prefix_of_next(self):
        session = self._session()
        prev = session.full_sequence(0)
        nxt = session.full_input(1)
        np.testing.assert_array_equal(nxt[: len(prev)], prev)

    def test_lengths(self):
        session = self._session()
        assert session.input_lengths() == [3, 6]
        assert session.output_lengths() == [2, 2]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one round"):
            TraceSession(0, 0.0, [], [])
        with pytest.raises(ValueError, match="think time"):
            TraceSession(0, 0.0, self._session().rounds, [1.0, 2.0])
        with pytest.raises(ValueError):
            TraceRound(np.asarray([], dtype=np.int32), np.asarray([1], dtype=np.int32))

    def test_jsonl_roundtrip(self, tmp_path):
        trace = generate_lmsys_trace(WorkloadParams(n_sessions=5, seed=3))
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        loaded = Trace.from_jsonl(path)
        assert loaded.name == trace.name and loaded.seed == trace.seed
        assert loaded.n_requests == trace.n_requests
        for a, b in zip(trace.sessions, loaded.sessions):
            assert a.think_times == pytest.approx(b.think_times)
            for ra, rb in zip(a.rounds, b.rounds):
                np.testing.assert_array_equal(ra.new_input_tokens, rb.new_input_tokens)
                np.testing.assert_array_equal(ra.output_tokens, rb.output_tokens)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "other"}\n')
        with pytest.raises(ValueError, match="trace file"):
            Trace.from_jsonl(path)

    def test_nominal_request_order_sorted(self):
        trace = generate_sharegpt_trace(WorkloadParams(n_sessions=8, seed=4))
        times = [t for t, *_ in trace.iter_requests_nominal()]
        assert times == sorted(times)


class TestGenerators:
    def test_deterministic_in_seed(self):
        a = generate_lmsys_trace(WorkloadParams(n_sessions=6, seed=9))
        b = generate_lmsys_trace(WorkloadParams(n_sessions=6, seed=9))
        assert a.n_requests == b.n_requests
        for sa, sb in zip(a.sessions, b.sessions):
            np.testing.assert_array_equal(sa.full_sequence(0), sb.full_sequence(0))

    def test_different_seeds_differ(self):
        a = generate_lmsys_trace(WorkloadParams(n_sessions=6, seed=1))
        b = generate_lmsys_trace(WorkloadParams(n_sessions=6, seed=2))
        assert not np.array_equal(a.sessions[0].full_sequence(0), b.sessions[0].full_sequence(0))

    def test_registry_names(self):
        assert {"lmsys", "sharegpt", "swebench"} <= set(WORKLOAD_NAMES)
        with pytest.raises(KeyError):
            generate_trace("nope")

    def test_params_and_kwargs_mutually_exclusive(self):
        with pytest.raises(TypeError):
            generate_lmsys_trace(WorkloadParams(), n_sessions=5)

    def test_fig6_shape_sharegpt_short(self):
        """ShareGPT: short sequences (mostly < ~6K inputs, short outputs)."""
        trace = generate_sharegpt_trace(WorkloadParams(n_sessions=60, seed=5))
        assert trace.input_lengths().max() <= 8000
        assert np.median(trace.output_lengths()) < 300

    def test_fig6_shape_swebench_wide_inputs_short_outputs(self):
        trace = generate_swebench_trace(WorkloadParams(n_sessions=60, seed=5))
        inputs = trace.input_lengths()
        assert inputs.max() > 20000  # reaches tens of thousands
        assert np.percentile(inputs, 5) < 5000  # but also has short requests
        assert np.median(trace.output_lengths()) < 400

    def test_fig6_shape_lmsys_long_outputs(self):
        lmsys = generate_lmsys_trace(WorkloadParams(n_sessions=60, seed=5))
        sharegpt = generate_sharegpt_trace(WorkloadParams(n_sessions=60, seed=5))
        assert np.median(lmsys.output_lengths()) > np.median(sharegpt.output_lengths())

    def test_swebench_shares_preamble_across_sessions(self):
        """Every trajectory opens with a pooled repo-context template."""
        trace = generate_swebench_trace(WorkloadParams(n_sessions=20, seed=6))
        firsts = [s.rounds[0].new_input_tokens for s in trace.sessions]
        shared_pairs = 0
        for i in range(len(firsts)):
            for j in range(i + 1, len(firsts)):
                n = min(len(firsts[i]), len(firsts[j]), 256)
                if np.array_equal(firsts[i][:n], firsts[j][:n]):
                    shared_pairs += 1
        assert shared_pairs > 0

    def test_context_cap_respected(self):
        trace = generate_swebench_trace(WorkloadParams(n_sessions=40, seed=7))
        for session in trace.sessions:
            assert session.input_lengths()[-1] <= 38000 + 10000  # cap + one round

    def test_session_arrival_rate_scales(self):
        slow = generate_lmsys_trace(WorkloadParams(n_sessions=50, session_rate=0.5, seed=8))
        fast = generate_lmsys_trace(WorkloadParams(n_sessions=50, session_rate=2.0, seed=8))
        assert slow.sessions[-1].arrival_time > fast.sessions[-1].arrival_time
