"""Tests for the two-tier cache (secondary store, demotion, promotion)."""

import numpy as np
import pytest

from repro.core.cache import MarconiCache
from repro.engine.latency import LatencyModel
from repro.engine.server import simulate_trace
from repro.models.memory import kv_bytes, model_recurrent_bytes, node_state_bytes
from repro.tiering import SecondaryStore, TieredMarconiCache
from repro.workloads.lmsys import generate_lmsys_trace


def toks(n, seed):
    return np.random.default_rng(seed).integers(0, 32000, size=n, dtype=np.int32)


class TestSecondaryStore:
    def test_insert_and_exact_membership(self):
        store = SecondaryStore(10_000)
        assert store.insert(toks(10, 1), 100, now=0.0)
        assert toks(10, 1) in store
        assert toks(10, 2) not in store
        assert store.used_bytes == 100
        assert store.n_entries == 1

    def test_longest_match_picks_deepest(self):
        store = SecondaryStore(10_000)
        seq = toks(50, 3)
        store.insert(seq[:20], 100, now=0.0)
        store.insert(seq[:40], 100, now=0.0)
        hit = store.longest_match(seq, max_len=49, now=1.0)
        assert hit is not None and hit.seq_len == 40
        assert hit.hits == 1 and hit.last_access == 1.0

    def test_longest_match_respects_max_len(self):
        store = SecondaryStore(10_000)
        seq = toks(50, 4)
        store.insert(seq[:40], 100, now=0.0)
        assert store.longest_match(seq, max_len=39, now=1.0) is None

    def test_capacity_evicts_lru(self):
        store = SecondaryStore(250)
        store.insert(toks(5, 1), 100, now=0.0)
        store.insert(toks(5, 2), 100, now=1.0)
        store.insert(toks(5, 3), 100, now=2.0)  # evicts the oldest
        assert toks(5, 1) not in store
        assert toks(5, 2) in store and toks(5, 3) in store
        assert store.stats.evictions == 1

    def test_flop_aware_policy_keeps_efficient_entries(self):
        store = SecondaryStore(250, policy="flop_aware", alpha=10.0)
        store.insert(toks(5, 1), 100, now=0.0, flop_efficiency=1000.0)
        store.insert(toks(5, 2), 100, now=1.0, flop_efficiency=1.0)
        store.insert(toks(5, 3), 100, now=2.0, flop_efficiency=500.0)
        # The old-but-efficient entry survives; the fresh-but-cheap one goes.
        assert toks(5, 1) in store
        assert toks(5, 2) not in store

    def test_oversized_entry_rejected(self):
        store = SecondaryStore(100)
        assert not store.insert(toks(5, 1), 500, now=0.0)
        assert store.stats.rejected == 1
        assert store.used_bytes == 0

    def test_reinsert_refreshes(self):
        store = SecondaryStore(1_000)
        store.insert(toks(5, 1), 100, now=0.0)
        store.insert(toks(5, 1), 300, now=5.0)
        assert store.n_entries == 1
        assert store.used_bytes == 300

    def test_remove_and_clear(self):
        store = SecondaryStore(1_000)
        store.insert(toks(5, 1), 100, now=0.0)
        entry = store.remove(toks(5, 1))
        assert entry is not None and store.used_bytes == 0
        assert store.remove(toks(5, 1)) is None
        store.insert(toks(5, 2), 100, now=0.0)
        store.clear()
        assert store.n_entries == 0 and store.used_bytes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SecondaryStore(-1)
        with pytest.raises(ValueError):
            SecondaryStore(10, policy="fifo")
        store = SecondaryStore(10)
        with pytest.raises(ValueError):
            store.insert(np.empty(0, dtype=np.int32), 5, now=0.0)
        with pytest.raises(ValueError):
            store.insert(toks(3, 1), 0, now=0.0)


def _run_session(cache, seq, extra_out, now):
    """One request: lookup the input, admit input + output."""
    r = cache.lookup(seq, now)
    full = np.concatenate([seq, extra_out])
    cache.admit(full, now + 0.5, handle=r.handle)
    return r, full


class TestTieredCache:
    def _make(self, hybrid, n_primary_seqs=3, secondary_gb=64, **kwargs):
        per_seq = node_state_bytes(hybrid, 450, True)
        return TieredMarconiCache(
            hybrid,
            capacity_bytes=n_primary_seqs * per_seq,
            secondary_bytes=int(secondary_gb * 1e9),
            alpha=0.0,
            **kwargs,
        )

    def test_eviction_demotes_checkpoints(self, hybrid):
        cache = self._make(hybrid)
        for i in range(6):
            _run_session(cache, toks(400, 100 + i), toks(50, 200 + i), float(i))
        assert cache.stats.extra.get("demotions", 0) > 0
        assert cache.secondary.n_entries > 0
        assert cache.used_bytes <= cache.capacity_bytes

    def test_promotion_serves_demoted_prefix(self, hybrid):
        cache = self._make(hybrid)
        first = toks(400, 1)
        _, full_first = _run_session(cache, first, toks(50, 2), 0.0)
        # Push the first sequence out of the primary tier.
        for i in range(5):
            _run_session(cache, toks(400, 300 + i), toks(50, 400 + i), 1.0 + i)
        assert full_first in cache.secondary
        # Revisiting the conversation must hit via promotion.
        followup = np.concatenate([full_first, toks(60, 5)])
        r = cache.lookup(followup, 50.0)
        assert r.hit_tokens == len(full_first)
        assert r.reused_secondary_bytes > 0
        assert cache.stats.extra.get("promotions", 0) == 1
        assert full_first not in cache.secondary  # moved back up
        cache.admit(np.concatenate([followup, toks(10, 6)]), 50.5, handle=r.handle)

    def test_second_hit_is_primary(self, hybrid):
        cache = self._make(hybrid)
        first = toks(400, 1)
        _, full_first = _run_session(cache, first, toks(50, 2), 0.0)
        for i in range(5):
            _run_session(cache, toks(400, 500 + i), toks(50, 600 + i), 1.0 + i)
        followup = np.concatenate([full_first, toks(60, 7)])
        r1 = cache.lookup(followup, 50.0)
        cache.admit(np.concatenate([followup, toks(10, 8)]), 50.5, handle=r1.handle)
        r2 = cache.lookup(np.concatenate([followup, toks(10, 8), toks(5, 9)]), 51.0)
        assert r2.hit_tokens > 0
        assert r2.reused_secondary_bytes == 0  # now served from the tree
        cache.admit(
            np.concatenate([followup, toks(10, 8), toks(5, 9), toks(5, 10)]),
            51.5,
            handle=r2.handle,
        )

    def test_zero_secondary_matches_single_tier(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=15, seed=11)
        per_seq = node_state_bytes(hybrid, 2000, True)
        single = MarconiCache(hybrid, 5 * per_seq, alpha=1.0)
        tiered = TieredMarconiCache(hybrid, 5 * per_seq, 0, alpha=1.0)
        for now, _, _, inp, full in trace.iter_requests_nominal():
            rs = single.lookup(inp, now)
            single.admit(full, now, handle=rs.handle)
            rt = tiered.lookup(inp, now)
            tiered.admit(full, now, handle=rt.handle)
        assert tiered.stats.token_hit_rate == pytest.approx(single.stats.token_hit_rate)
        assert tiered.secondary.n_entries == 0

    def test_second_tier_improves_hit_rate(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=20, seed=13)
        per_seq = node_state_bytes(hybrid, 2000, True)
        single = MarconiCache(hybrid, 4 * per_seq, alpha=1.0)
        tiered = TieredMarconiCache(hybrid, 4 * per_seq, int(200e9), alpha=1.0)
        for now, _, _, inp, full in trace.iter_requests_nominal():
            rs = single.lookup(inp, now)
            single.admit(full, now, handle=rs.handle)
            rt = tiered.lookup(inp, now)
            tiered.admit(full, now, handle=rt.handle)
        assert tiered.stats.token_hit_rate >= single.stats.token_hit_rate
        assert tiered.stats.extra.get("secondary_hits", 0) > 0

    def test_accounting_invariants_under_churn(self, hybrid):
        cache = self._make(hybrid, n_primary_seqs=2, secondary_gb=2)
        for i in range(25):
            seq = toks(300 + (i * 37) % 400, 1000 + i % 7)
            _run_session(cache, seq, toks(40, 2000 + i), float(i))
        assert cache.used_bytes == cache.recompute_used_bytes()
        assert cache.used_bytes <= cache.capacity_bytes
        assert cache.secondary.used_bytes <= cache.secondary.capacity_bytes
        cache.tree.check_integrity()

    def test_failed_promotion_keeps_tree_consistent(self, hybrid):
        # Secondary holds an entry far larger than the whole primary tier.
        rec = model_recurrent_bytes(hybrid)
        cache = TieredMarconiCache(hybrid, rec // 2, int(64e9), alpha=0.0)
        seq = toks(4000, 21)
        nbytes = kv_bytes(hybrid, len(seq)) + rec
        cache.secondary.insert(seq, nbytes, now=0.0)
        r = cache.lookup(np.concatenate([seq, toks(10, 22)]), 1.0)
        assert r.hit_tokens == 0
        assert r.reused_secondary_bytes == 0
        assert cache.stats.extra.get("promotions_failed", 0) == 1
        assert cache.used_bytes == cache.recompute_used_bytes()
        cache.tree.check_integrity()
        cache.admit(np.concatenate([seq, toks(10, 22), toks(5, 23)]), 1.5, handle=r.handle)

    def test_failed_promotion_undoes_edge_split(self, hybrid):
        """A failed promotion whose tree insert split an edge must merge
        the split back (no stray zero-state intermediate nodes)."""
        rec = model_recurrent_bytes(hybrid)
        cache = TieredMarconiCache(hybrid, rec // 2, int(64e9), alpha=0.0)
        seq = toks(4000, 61)
        # Seed the tree with the full sequence as one leaf edge; don't let
        # the admit be charged (capacity is tiny), so force-insert directly.
        cache.tree.insert(np.concatenate([seq, toks(100, 62)]), 0.0)
        nodes_before = cache.tree.n_nodes
        # The secondary holds a checkpoint at a prefix *inside* that edge.
        cache.secondary.insert(seq, kv_bytes(hybrid, len(seq)) + rec, now=0.0)
        r = cache.lookup(np.concatenate([seq, toks(10, 63)]), 1.0)
        assert r.hit_tokens == 0
        assert cache.stats.extra.get("promotions_failed", 0) == 1
        cache.tree.check_integrity()
        cache.admit(np.concatenate([seq, toks(10, 63), [1]]).astype(np.int32),
                    1.5, handle=r.handle)
        cache.tree.check_integrity()

    def test_reset_clears_both_tiers(self, hybrid):
        cache = self._make(hybrid)
        for i in range(6):
            _run_session(cache, toks(400, 700 + i), toks(50, 800 + i), float(i))
        cache.reset()
        assert cache.used_bytes == 0
        assert cache.secondary.n_entries == 0


class TestLatencyIntegration:
    def test_secondary_bytes_priced_slower(self, hybrid):
        latency = LatencyModel()
        fast = latency.prefill_seconds(hybrid, 1000, 500, reused_bytes=int(1e9))
        slow = latency.prefill_seconds(
            hybrid, 1000, 500, reused_bytes=int(1e9), secondary_bytes=int(1e9)
        )
        assert slow > fast

    def test_secondary_bytes_validated(self, hybrid):
        with pytest.raises(ValueError):
            LatencyModel().prefill_seconds(
                hybrid, 100, 50, reused_bytes=100, secondary_bytes=200
            )

    def test_engine_runs_tiered_cache(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=8, seed=17)
        per_seq = node_state_bytes(hybrid, 2000, True)
        cache = TieredMarconiCache(hybrid, 3 * per_seq, int(100e9), alpha=1.0)
        result = simulate_trace(hybrid, cache, trace, policy_name="tiered")
        assert result.n_requests == trace.n_requests
        assert all(r.ttft > 0 for r in result.records)
