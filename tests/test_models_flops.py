"""Tests for the Table 1 FLOP formulas."""

import pytest

from repro.models.config import LayerType
from repro.models.flops import (
    attention_prefill_flops,
    flop_breakdown,
    layer_prefill_flops,
    mlp_prefill_flops,
    model_decode_flops_per_token,
    model_prefill_flops,
    model_suffix_prefill_flops,
    ssm_prefill_flops,
)


class TestClosedForms:
    def test_attention_formula(self):
        # 8 L D^2 + 4 L^2 D at L=100, D=64.
        assert attention_prefill_flops(100, 64) == 8 * 100 * 64**2 + 4 * 100**2 * 64

    def test_mlp_formula(self):
        assert mlp_prefill_flops(100, 64) == 16 * 100 * 64**2

    def test_ssm_formula(self):
        assert ssm_prefill_flops(100, 64, 16) == 12 * 100 * 64**2 + 16 * 100 * 64 * 16 + 10 * 100

    def test_zero_length_is_zero(self, hybrid):
        assert model_prefill_flops(hybrid, 0) == 0.0

    def test_layer_dispatch_matches_direct(self, hybrid):
        assert layer_prefill_flops(LayerType.ATTENTION, 50, hybrid) == attention_prefill_flops(50, hybrid.d_model)
        assert layer_prefill_flops(LayerType.SSM, 50, hybrid) == ssm_prefill_flops(50, hybrid.d_model, hybrid.d_state)
        assert layer_prefill_flops(LayerType.MLP, 50, hybrid) == mlp_prefill_flops(50, hybrid.d_model)


class TestModelAggregates:
    def test_breakdown_sums_to_total(self, hybrid):
        breakdown = flop_breakdown(hybrid, 1000)
        assert sum(breakdown.values()) == pytest.approx(model_prefill_flops(hybrid, 1000))

    def test_breakdown_rejects_negative(self, hybrid):
        with pytest.raises(ValueError):
            flop_breakdown(hybrid, -1)

    def test_attention_share_grows_with_length(self, hybrid):
        """Fig. 14: the quadratic term makes attention dominate at long L."""
        shares = []
        for length in (1000, 10000, 30000):
            b = flop_breakdown(hybrid, length)
            shares.append(b[LayerType.ATTENTION] / sum(b.values()))
        assert shares[0] < shares[1] < shares[2]

    def test_monotone_in_length(self, hybrid):
        values = [model_prefill_flops(hybrid, n) for n in (1, 10, 100, 1000)]
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_roughly_2x_params_per_token(self, hybrid):
        """A 7B model costs ~2 * 7e9 FLOPs per prefill token at short L."""
        per_token = model_prefill_flops(hybrid, 1000) / 1000
        assert 0.5e10 < per_token < 3e10


class TestSuffixFlops:
    def test_full_reuse_is_free(self, hybrid):
        assert model_suffix_prefill_flops(hybrid, 500, 500) == 0.0

    def test_no_reuse_is_full_prefill(self, hybrid):
        assert model_suffix_prefill_flops(hybrid, 500, 0) == model_prefill_flops(hybrid, 500)

    def test_additivity(self, hybrid):
        """prefill(0->a) + prefill(a->b) == prefill(0->b) for every layer type."""
        a, b = 300, 900
        combined = model_prefill_flops(hybrid, a) + model_suffix_prefill_flops(hybrid, b, a)
        assert combined == pytest.approx(model_prefill_flops(hybrid, b))

    def test_rejects_bad_range(self, hybrid):
        with pytest.raises(ValueError):
            model_suffix_prefill_flops(hybrid, 10, 20)

    def test_suffix_attention_quadratic_accounting(self, transformer):
        """Prefilling the second half of 2L costs more than prefilling L
        from scratch (the suffix attends to the full context)."""
        length = 1000
        suffix = model_suffix_prefill_flops(transformer, 2 * length, length)
        fresh = model_prefill_flops(transformer, length)
        assert suffix > fresh


class TestDecodeFlops:
    def test_decode_is_marginal_prefill(self, hybrid):
        expected = model_prefill_flops(hybrid, 101) - model_prefill_flops(hybrid, 100)
        assert model_decode_flops_per_token(hybrid, 100) == pytest.approx(expected)

    def test_decode_grows_with_context_for_attention(self, transformer):
        assert model_decode_flops_per_token(transformer, 10000) > model_decode_flops_per_token(transformer, 100)

    def test_rejects_negative_context(self, hybrid):
        with pytest.raises(ValueError):
            model_decode_flops_per_token(hybrid, -1)
