"""Asyncio integration suite for the live serving gateway.

Covers the acceptance bar end to end: many concurrent clients served
byte-identically to a cache-less reference, cancellation mid-decode
aborting the session with zero leaked pins, overload shedding with typed
rejections, response-cache hits byte-identical to cold serves, SLO-tier
scheduling, and the socket front-end.  Every test runs its own event loop
via ``asyncio.run`` (no asyncio pytest plugin required).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.cache import MarconiCache
from repro.nn.hybrid import HybridModel
from repro.serving import (
    AdmissionRejected,
    CacheOnlyServer,
    DecodeParams,
    ExactReuseServer,
    Gateway,
    GatewayClient,
    GatewayClientError,
    GatewayClosed,
    GatewayConfig,
    GatewayServer,
    ResponseCache,
    SLOTier,
)
from repro.serving.engine import ServedRequest
from repro.metrics import gateway_summary_dict


def no_pins(cache) -> bool:
    return all(n.pin_count == 0 for n in cache.tree.iter_nodes())


def run(coro):
    return asyncio.run(coro)


class SignalingServer(ExactReuseServer):
    """ExactReuseServer that raises a flag after each request's first token
    (lets tests deterministically cancel mid-decode)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.first_token_event: asyncio.Event | None = None

    def serve_steps(self, *args, **kwargs):
        inner = super().serve_steps(*args, **kwargs)

        def wrapped():
            try:
                while True:
                    try:
                        token = next(inner)
                    except StopIteration as stop:
                        return stop.value
                    if self.first_token_event is not None:
                        self.first_token_event.set()
                    yield token
            finally:
                inner.close()

        return wrapped()


class TrackingServer(CacheOnlyServer):
    """CacheOnlyServer that records serve order and peak concurrency."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.serve_order: list[int] = []
        self.active = 0
        self.max_active = 0

    def serve_steps(self, input_tokens, n_output, **kwargs):
        self.serve_order.append(int(np.asarray(input_tokens)[0]))
        inner = super().serve_steps(input_tokens, n_output, **kwargs)

        def wrapped():
            self.active += 1
            self.max_active = max(self.max_active, self.active)
            try:
                while True:
                    try:
                        token = next(inner)
                    except StopIteration as stop:
                        return stop.value
                    yield token
            finally:
                self.active -= 1
                inner.close()

        return wrapped()


class TestConcurrentCorrectness:
    def test_32_concurrent_clients_byte_identical(self, tiny, tokens):
        """The acceptance bar: >= 32 concurrent clients, every output
        byte-identical to a cache-less reference model, zero open sessions
        and zero pins after drain."""
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        reference = HybridModel(tiny, seed=0)
        shared = tokens(30, seed=1) % tiny.vocab_size
        queries = [
            np.concatenate([shared, tokens(8, seed=100 + i) % tiny.vocab_size])
            if i % 2
            else tokens(24, seed=200 + i) % tiny.vocab_size
            for i in range(32)
        ]

        async def scenario():
            async with Gateway(server, GatewayConfig(n_workers=4)) as gw:
                results = await asyncio.gather(
                    *[gw.submit(q, 3) for q in queries]
                )
                return results

        results = run(scenario())
        assert len(results) == 32
        for query, result in zip(queries, results):
            expected, _ = reference.generate(query, 3)
            np.testing.assert_array_equal(result.output_tokens, expected)
            np.testing.assert_array_equal(
                result.full_sequence, np.concatenate([query, expected])
            )
        assert server.cache.open_sessions == 0
        assert no_pins(server.cache)

    def test_interleaving_actually_happens(self, tiny, tokens):
        """With several workers and per-token yields, decode steps of
        different requests interleave (the gateway is concurrent, not a
        serializer)."""
        cache = MarconiCache(tiny, int(1e9), alpha=1.0)
        server = TrackingServer(cache)
        reqs = [
            np.concatenate([[i], tokens(10, seed=i)]).astype(np.int32)
            for i in range(6)
        ]

        async def scenario():
            async with Gateway(server, GatewayConfig(n_workers=4)) as gw:
                await asyncio.gather(*[gw.submit(q, 6) for q in reqs])

        run(scenario())
        assert server.max_active > 1
        assert cache.open_sessions == 0
        assert no_pins(cache)

    def test_timing_fields_sane(self, tiny, tokens):
        server = ExactReuseServer(tiny, int(1e9), seed=0)

        async def scenario():
            async with Gateway(server) as gw:
                return await gw.submit(tokens(16, seed=3) % tiny.vocab_size, 2)

        result = run(scenario())
        assert result.queue_seconds >= 0.0
        assert 0.0 <= result.ttft_seconds <= result.total_seconds
        assert result.tier == "interactive"
        assert not result.from_response_cache


class TestCancellation:
    def test_cancel_mid_decode_aborts_session_zero_pins(self, tiny, tokens):
        server = SignalingServer(tiny, int(1e9), seed=0)
        query = tokens(20, seed=9) % tiny.vocab_size

        async def scenario():
            server.first_token_event = asyncio.Event()
            async with Gateway(server, GatewayConfig(n_workers=1)) as gw:
                task = asyncio.create_task(gw.submit(query, 64))
                await server.first_token_event.wait()  # decode is running
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                await gw.drain()
                return gw.stats.snapshot()

        stats = run(scenario())
        assert stats["aborted"] == 1
        assert stats["completed"] == 0
        assert server.cache.open_sessions == 0
        assert no_pins(server.cache)

    def test_cancel_while_queued_never_opens_session(self, tiny, tokens):
        """Cancelling a request that is still waiting in the queue drops it
        before any session is begun."""
        server = SignalingServer(tiny, int(1e9), seed=0)

        async def scenario():
            server.first_token_event = asyncio.Event()
            async with Gateway(server, GatewayConfig(n_workers=1)) as gw:
                long_task = asyncio.create_task(
                    gw.submit(tokens(20, seed=10) % tiny.vocab_size, 64)
                )
                await server.first_token_event.wait()
                queued_task = asyncio.create_task(
                    gw.submit(tokens(20, seed=11) % tiny.vocab_size, 4)
                )
                await asyncio.sleep(0)  # let it enqueue
                assert gw.queued == 1
                queued_task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await queued_task
                result = await long_task
                await gw.drain()
                return result, gw.stats.snapshot()

        result, stats = run(scenario())
        assert len(result.output_tokens) == 64
        assert stats["aborted"] == 1 and stats["completed"] == 1
        assert server.cache.open_sessions == 0
        assert no_pins(server.cache)

    def test_close_without_drain_sheds_queue_and_aborts_running(
        self, tiny, tokens
    ):
        server = SignalingServer(tiny, int(1e9), seed=0)

        async def scenario():
            server.first_token_event = asyncio.Event()
            gw = Gateway(server, GatewayConfig(n_workers=1))
            await gw.start()
            running = asyncio.create_task(
                gw.submit(tokens(20, seed=12) % tiny.vocab_size, 64)
            )
            await server.first_token_event.wait()
            queued = [
                asyncio.create_task(
                    gw.submit(tokens(20, seed=13 + i) % tiny.vocab_size, 4)
                )
                for i in range(3)
            ]
            await asyncio.sleep(0)
            await gw.close(drain=False)
            outcomes = await asyncio.gather(
                running, *queued, return_exceptions=True
            )
            return outcomes, gw.stats.snapshot()

        outcomes, stats = run(scenario())
        # The running request was aborted mid-decode; the queued ones got
        # typed shutdown rejections.
        assert isinstance(outcomes[0], asyncio.CancelledError)
        for outcome in outcomes[1:]:
            assert isinstance(outcome, AdmissionRejected)
            assert outcome.reason == "shutdown"
        assert stats["aborted"] == 4
        assert server.cache.open_sessions == 0
        assert no_pins(server.cache)


class TestAdmissionControl:
    def test_overload_sheds_with_typed_rejection(self, tiny, tokens):
        cache = MarconiCache(tiny, int(1e9), alpha=1.0)
        server = CacheOnlyServer(cache)

        async def scenario():
            gw = Gateway(
                server, GatewayConfig(n_workers=1, max_queue_depth=3)
            )
            await gw.start()
            outcomes = await asyncio.gather(
                *[
                    gw.submit(tokens(12, seed=20 + i), 4)
                    for i in range(10)
                ],
                return_exceptions=True,
            )
            await gw.close()
            return outcomes, gw.stats.snapshot()

        outcomes, stats = run(scenario())
        shed = [o for o in outcomes if isinstance(o, AdmissionRejected)]
        served = [o for o in outcomes if not isinstance(o, Exception)]
        assert len(shed) == 7 and len(served) == 3
        for rejection in shed:
            assert rejection.reason == "queue_full"
        assert stats["shed"] == 7 and stats["completed"] == 3
        assert cache.open_sessions == 0
        assert no_pins(cache)

    def test_per_tier_queue_bound(self, tiny, tokens):
        cache = MarconiCache(tiny, int(1e9), alpha=1.0)
        config = GatewayConfig(
            tiers=(
                SLOTier("interactive", priority=0),
                SLOTier("batch", priority=10, max_queue_depth=1),
            ),
            n_workers=1,
            max_queue_depth=100,
        )

        async def scenario():
            gw = Gateway(CacheOnlyServer(cache), config)
            await gw.start()
            outcomes = await asyncio.gather(
                *[
                    gw.submit(tokens(12, seed=30 + i), 2, tier="batch")
                    for i in range(4)
                ],
                return_exceptions=True,
            )
            await gw.close()
            return outcomes

        outcomes = run(scenario())
        rejected = [o for o in outcomes if isinstance(o, AdmissionRejected)]
        assert rejected and all(r.reason == "tier_queue_full" for r in rejected)
        assert all(r.tier == "batch" for r in rejected)

    def test_submit_after_close_raises_gateway_closed(self, tiny, tokens):
        async def scenario():
            gw = Gateway(CacheOnlyServer(MarconiCache(tiny, int(1e9), alpha=1.0)))
            await gw.start()
            await gw.close()
            with pytest.raises(GatewayClosed):
                await gw.submit(tokens(8, seed=1), 2)

        run(scenario())

    def test_unknown_tier_rejected(self, tiny, tokens):
        async def scenario():
            async with Gateway(
                CacheOnlyServer(MarconiCache(tiny, int(1e9), alpha=1.0))
            ) as gw:
                with pytest.raises(ValueError, match="unknown tier"):
                    await gw.submit(tokens(8, seed=1), 2, tier="platinum")

        run(scenario())


class TestSLOTiers:
    def test_interactive_overtakes_queued_batch(self, tiny, tokens):
        """With one worker busy, a later interactive arrival is served
        before batch requests that queued first."""
        cache = MarconiCache(tiny, int(1e9), alpha=1.0)
        server = TrackingServer(cache)

        async def scenario():
            async with Gateway(
                server, GatewayConfig(n_workers=1, max_queue_depth=100)
            ) as gw:
                tasks = [
                    asyncio.create_task(
                        gw.submit(
                            np.concatenate([[i], tokens(10, seed=40 + i)]).astype(
                                np.int32
                            ),
                            2,
                            tier="batch",
                        )
                    )
                    for i in range(3)
                ]
                # Submitted last, after the batch requests are queued:
                tasks.append(
                    asyncio.create_task(
                        gw.submit(
                            np.concatenate([[99], tokens(10, seed=50)]).astype(
                                np.int32
                            ),
                            2,
                            tier="interactive",
                        )
                    )
                )
                await asyncio.gather(*tasks)

        run(scenario())
        order = server.serve_order
        # The first batch request may already be running, but the
        # interactive one outranks every still-queued batch request.
        assert order.index(99) <= 1

    def test_tier_max_concurrency_enforced(self, tiny, tokens):
        cache = MarconiCache(tiny, int(1e9), alpha=1.0)
        server = TrackingServer(cache)
        config = GatewayConfig(
            tiers=(SLOTier("batch", priority=0, max_concurrency=1),),
            n_workers=4,
        )

        async def scenario():
            async with Gateway(server, config) as gw:
                await asyncio.gather(
                    *[
                        gw.submit(
                            np.concatenate([[i], tokens(10, seed=60 + i)]).astype(
                                np.int32
                            ),
                            6,
                            tier="batch",
                        )
                        for i in range(5)
                    ]
                )

        run(scenario())
        assert server.max_active == 1
        assert cache.open_sessions == 0


class TestResponseCache:
    def test_hit_byte_identical_to_cold_serve(self, tiny, tokens):
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        query = tokens(24, seed=70) % tiny.vocab_size

        async def scenario():
            async with Gateway(server) as gw:
                cold = await gw.submit(query, 5)
                warm = await gw.submit(query, 5)
                return cold, warm, gw.stats.snapshot()

        cold, warm, stats = run(scenario())
        assert not cold.from_response_cache and warm.from_response_cache
        np.testing.assert_array_equal(warm.output_tokens, cold.output_tokens)
        np.testing.assert_array_equal(warm.full_sequence, cold.full_sequence)
        assert warm.output_tokens.tobytes() == cold.output_tokens.tobytes()
        assert stats["response_cache_hits"] == 1
        # The hit never touched the model/prefix cache: only one serve ran.
        assert stats["completed"] == 1
        assert server.cache.stats.lookups == 1

    def test_different_n_output_is_a_different_request(self, tiny, tokens):
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        query = tokens(24, seed=71) % tiny.vocab_size

        async def scenario():
            async with Gateway(server) as gw:
                first = await gw.submit(query, 3)
                second = await gw.submit(query, 6)
                return first, second

        first, second = run(scenario())
        assert not second.from_response_cache
        np.testing.assert_array_equal(
            second.output_tokens[:3], first.output_tokens
        )

    def test_sampled_requests_bypass_response_cache(self, tiny, tokens):
        """temperature > 0 means independent draws: never served from the
        response cache, even with a fixed seed."""
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        query = tokens(24, seed=72) % tiny.vocab_size
        params = DecodeParams(temperature=0.8, seed=123)

        async def scenario():
            async with Gateway(server) as gw:
                first = await gw.submit(query, 4, params=params)
                second = await gw.submit(query, 4, params=params)
                return first, second, gw.stats.snapshot()

        first, second, stats = run(scenario())
        assert not first.from_response_cache
        assert not second.from_response_cache
        assert stats["response_cache_hits"] == 0
        assert stats["completed"] == 2
        # Seeded sampling is reproducible in isolation — the cold serves
        # agree — but reuse policy treats them as independent draws.
        np.testing.assert_array_equal(first.output_tokens, second.output_tokens)

    def test_response_cache_disabled(self, tiny, tokens):
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        query = tokens(16, seed=73) % tiny.vocab_size

        async def scenario():
            async with Gateway(
                server, GatewayConfig(response_cache_entries=0)
            ) as gw:
                assert gw.response_cache is None
                await gw.submit(query, 3)
                repeat = await gw.submit(query, 3)
                return repeat

        assert not run(scenario()).from_response_cache


def _served(n_in: int, n_out: int, seed: int) -> ServedRequest:
    rng = np.random.default_rng(seed)
    inp = rng.integers(0, 32000, n_in, dtype=np.int32)
    out = rng.integers(0, 32000, n_out, dtype=np.int32)
    return ServedRequest(
        output_tokens=out,
        hit_tokens=0,
        prefilled_tokens=n_in,
        full_sequence=np.concatenate([inp, out]),
    )


class TestResponseCacheUnit:
    def test_make_key_refuses_sampled_params(self):
        cache = ResponseCache()
        with pytest.raises(ValueError, match="independent draw"):
            cache.make_key(np.arange(4, dtype=np.int32), 2, DecodeParams(temperature=1.0))

    def test_lru_eviction_by_entry_count(self):
        cache = ResponseCache(max_entries=2, max_bytes=1 << 20)
        keys = [((i,), 1) for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, _served(8, 2, seed=i))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(keys[0]) is None  # oldest entry evicted
        assert cache.get(keys[2]) is not None

    def test_lru_order_refreshed_by_get(self):
        cache = ResponseCache(max_entries=2, max_bytes=1 << 20)
        a, b, c = (("a",), 1), (("b",), 1), (("c",), 1)
        cache.put(a, _served(8, 2, seed=1))
        cache.put(b, _served(8, 2, seed=2))
        cache.get(a)  # a becomes most-recent
        cache.put(c, _served(8, 2, seed=3))
        assert cache.get(b) is None  # b was LRU, not a
        assert cache.get(a) is not None

    def test_byte_budget_evicts_and_rejects(self):
        one_entry = _served(8, 2, seed=4)
        entry_bytes = int(
            one_entry.output_tokens.nbytes + one_entry.full_sequence.nbytes
        )
        cache = ResponseCache(max_entries=100, max_bytes=2 * entry_bytes)
        cache.put((("x",), 1), _served(8, 2, seed=5))
        cache.put((("y",), 1), _served(8, 2, seed=6))
        cache.put((("z",), 1), _served(8, 2, seed=7))
        assert cache.stats.stored_bytes <= cache.max_bytes
        assert cache.stats.evictions >= 1
        # An entry bigger than the whole budget is rejected outright.
        assert not cache.put((("huge",), 1), _served(10_000, 2, seed=8))
        assert cache.stats.rejected_inserts == 1

    def test_hit_returns_copies(self):
        cache = ResponseCache()
        key = (("k",), 1)
        cache.put(key, _served(8, 2, seed=9))
        first = cache.get(key)
        first.output_tokens[:] = -1
        second = cache.get(key)
        assert not np.array_equal(first.output_tokens, second.output_tokens)

    def test_overwrite_same_key_keeps_bytes_consistent(self):
        cache = ResponseCache()
        key = (("k",), 1)
        cache.put(key, _served(8, 2, seed=10))
        before = cache.stats.stored_bytes
        cache.put(key, _served(8, 2, seed=11))
        assert cache.stats.stored_bytes == before
        assert len(cache) == 1

    def test_clear_and_hit_rate(self):
        cache = ResponseCache()
        key = (("k",), 1)
        assert cache.stats.hit_rate == 0.0
        cache.put(key, _served(8, 2, seed=12))
        cache.get(key)
        cache.get((("absent",), 1))
        assert cache.stats.hit_rate == pytest.approx(0.5)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.stored_bytes == 0
        assert cache.get(key) is None

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            ResponseCache(max_entries=0)
        with pytest.raises(ValueError):
            ResponseCache(max_bytes=0)


class TestSummaries:
    def test_gateway_summary_dict_shape(self, tiny, tokens):
        server = ExactReuseServer(tiny, int(1e9), seed=0)

        async def scenario():
            async with Gateway(server) as gw:
                await gw.submit(tokens(12, seed=80) % tiny.vocab_size, 2)
                await gw.submit(tokens(12, seed=80) % tiny.vocab_size, 2)
                return gateway_summary_dict(gw)

        summary = run(scenario())
        assert summary["gateway"]["admitted"] == 1
        assert summary["gateway"]["response_cache_hits"] == 1
        assert summary["response_cache"]["hits"] == 1
        assert summary["open_sessions"] == 0
        assert summary["prefix_cache"]["lookups"] == 1
        assert "interactive" in summary["tiers"]


class TestNetServe:
    def test_round_trip_byte_identical(self, tiny, tokens):
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        reference = HybridModel(tiny, seed=0)
        query = tokens(20, seed=90) % tiny.vocab_size

        async def scenario():
            gw = Gateway(server)
            async with GatewayServer(gw) as net:
                async with await GatewayClient.connect(net.host, net.port) as client:
                    response = await client.request(query, 4)
            await gw.close()
            return response

        response = run(scenario())
        expected, _ = reference.generate(query, 4)
        np.testing.assert_array_equal(response["output"], expected)
        assert response["hit_tokens"] == 0
        assert response["prefilled_tokens"] == len(query)

    def test_concurrent_requests_multiplexed_on_one_connection(
        self, tiny, tokens
    ):
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        reference = HybridModel(tiny, seed=0)
        queries = [tokens(14, seed=91 + i) % tiny.vocab_size for i in range(8)]

        async def scenario():
            gw = Gateway(server, GatewayConfig(n_workers=3))
            async with GatewayServer(gw) as net:
                async with await GatewayClient.connect(net.host, net.port) as client:
                    responses = await asyncio.gather(
                        *[client.request(q, 3) for q in queries]
                    )
            await gw.close()
            return responses

        responses = run(scenario())
        for query, response in zip(queries, responses):
            expected, _ = reference.generate(query, 3)
            np.testing.assert_array_equal(response["output"], expected)
        assert server.cache.open_sessions == 0
        assert no_pins(server.cache)

    def test_error_reply_for_bad_request(self, tiny):
        server = ExactReuseServer(tiny, int(1e9), seed=0)

        async def scenario():
            gw = Gateway(server)
            async with GatewayServer(gw) as net:
                async with await GatewayClient.connect(net.host, net.port) as client:
                    with pytest.raises(GatewayClientError) as err:
                        await client.request([], 4)  # empty input
            await gw.close()
            return err.value

        error = run(scenario())
        assert error.error["type"] == "ValueError"
        assert "empty request" in error.error["message"]

    def test_admission_rejection_travels_to_client(self, tiny, tokens):
        cache = MarconiCache(tiny, int(1e9), alpha=1.0)
        server = CacheOnlyServer(cache)

        async def scenario():
            gw = Gateway(server, GatewayConfig(n_workers=1, max_queue_depth=1))
            async with GatewayServer(gw) as net:
                async with await GatewayClient.connect(net.host, net.port) as client:
                    outcomes = await asyncio.gather(
                        *[
                            client.request(tokens(10, seed=95 + i), 2)
                            for i in range(6)
                        ],
                        return_exceptions=True,
                    )
            await gw.close()
            return outcomes

        outcomes = run(scenario())
        rejections = [o for o in outcomes if isinstance(o, GatewayClientError)]
        served = [o for o in outcomes if isinstance(o, dict)]
        assert rejections and served
        for rejection in rejections:
            assert rejection.error["type"] == "admission_rejected"
            assert rejection.error["reason"] in ("queue_full", "tier_queue_full")


class TestConfigValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            GatewayConfig(n_workers=0)
        with pytest.raises(ValueError):
            GatewayConfig(max_queue_depth=0)
        with pytest.raises(ValueError):
            GatewayConfig(decode_yield_every=0)
        with pytest.raises(ValueError):
            GatewayConfig(tiers=())
        with pytest.raises(ValueError, match="duplicate"):
            GatewayConfig(tiers=(SLOTier("a"), SLOTier("a")))
        with pytest.raises(ValueError):
            SLOTier("x", max_concurrency=-1)
