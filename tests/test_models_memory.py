"""Tests for state-size formulas, anchored to the paper's reported numbers."""

import pytest

from repro.models.memory import (
    block_entry_bytes,
    conv_state_bytes,
    kv_bytes,
    kv_bytes_per_token,
    model_recurrent_bytes,
    node_state_bytes,
    recurrent_state_bytes,
    sequence_cache_footprint,
    ssm_state_bytes,
)
from repro.models.presets import hybrid_7b, transformer_7b


class TestPerLayerSizes:
    def test_ssm_state_is_2DN(self, hybrid):
        # D * N * 2 bytes in FP16 (Appendix A).
        assert ssm_state_bytes(hybrid) == hybrid.d_model * hybrid.d_state * 2

    def test_paper_1mb_ssm_state(self, hybrid):
        assert ssm_state_bytes(hybrid) == 1_048_576  # exactly 1 MiB at D=4096, N=128

    def test_conv_state_fraction_about_6_percent(self, hybrid):
        """The paper reports conv states are ~6.1% of the total state size."""
        fraction = conv_state_bytes(hybrid) / recurrent_state_bytes(hybrid)
        assert 0.05 < fraction < 0.07

    def test_kv_per_token_is_4D_per_layer(self, hybrid):
        per_layer = kv_bytes_per_token(hybrid) / hybrid.n_attention
        assert per_layer == 4 * hybrid.d_model  # 2 (K,V) * D * 2 bytes

    def test_ssm_state_vs_single_token_kv_ratio(self, hybrid):
        """Property 3: SSM states are orders of magnitude larger than one
        token's KVs — N/2 = 64x for the 7B hybrid (Table 1 caption)."""
        per_layer_kv = kv_bytes_per_token(hybrid) / hybrid.n_attention
        ratio = ssm_state_bytes(hybrid) / per_layer_kv
        assert ratio == pytest.approx(hybrid.d_state / 2)


class TestAggregates:
    def test_kv_bytes_linear(self, hybrid):
        assert kv_bytes(hybrid, 200) == 2 * kv_bytes(hybrid, 100)

    def test_kv_bytes_rejects_negative(self, hybrid):
        with pytest.raises(ValueError):
            kv_bytes(hybrid, -1)

    def test_recurrent_bytes_zero_for_transformer(self, transformer):
        assert model_recurrent_bytes(transformer) == 0

    def test_node_state_bytes_composition(self, hybrid):
        base = node_state_bytes(hybrid, 100, has_ssm_state=False)
        with_state = node_state_bytes(hybrid, 100, has_ssm_state=True)
        assert with_state - base == model_recurrent_bytes(hybrid)

    def test_block_entry_has_per_block_checkpoint(self, hybrid):
        entry = block_entry_bytes(hybrid, 32)
        assert entry == kv_bytes(hybrid, 32) + model_recurrent_bytes(hybrid)

    def test_block_entry_rejects_bad_block(self, hybrid):
        with pytest.raises(ValueError):
            block_entry_bytes(hybrid, 0)


class TestPaperAnchors:
    def test_17_4_gb_at_10k_block16(self, hybrid):
        """Section 3: a single 10K-token sequence of the 7B hybrid consumes
        17.4 GB with block size 16."""
        footprint = sequence_cache_footprint(hybrid, 10_000, 16)
        assert footprint / 1e9 == pytest.approx(17.4, abs=0.1)

    def test_3_3x_larger_than_transformer(self, hybrid, transformer):
        """Section 3: that footprint is 3.3x a same-size Transformer's."""
        h = sequence_cache_footprint(hybrid, 10_000, 16)
        t = sequence_cache_footprint(transformer, 10_000, 16)
        assert h / t == pytest.approx(3.3, abs=0.1)

    def test_ssm_state_4x_block_kvs_at_block16(self, hybrid):
        """Section 3: with block size 16 the per-layer SSM state is 4x the
        per-layer KVs in a token block (d_state / (2 * block_size))."""
        per_layer_kv_block = 16 * 4 * hybrid.d_model
        assert ssm_state_bytes(hybrid) / per_layer_kv_block == pytest.approx(4.0)

    def test_footprint_monotone_in_length_and_granularity(self, hybrid):
        assert sequence_cache_footprint(hybrid, 5000, 16) < sequence_cache_footprint(hybrid, 10000, 16)
        assert sequence_cache_footprint(hybrid, 10000, 32) < sequence_cache_footprint(hybrid, 10000, 16)

    def test_footprint_rejects_negative_length(self, hybrid):
        with pytest.raises(ValueError):
            sequence_cache_footprint(hybrid, -5, 16)
