"""Tests for the experiment harness: config, runner, sweeps, CLI."""

import pytest

from repro.experiments.config import (
    DATASET_CONFIGS,
    SCALES,
    DatasetConfig,
    Scale,
    get_scale,
)
from repro.experiments.registry import FIGURES, run_figure
from repro.experiments.runner import get_trace, run_policies, run_policy_on_trace
from repro.experiments.sweeps import standard_sweep
from repro.experiments.__main__ import main as cli_main
from repro.models.presets import hybrid_7b


class TestScale:
    def test_presets_exist(self):
        assert set(SCALES) == {"smoke", "bench", "full"}

    def test_get_scale_passthrough(self):
        scale = Scale("custom", 0.5, 0.5)
        assert get_scale(scale) is scale
        assert get_scale("smoke").name == "smoke"
        with pytest.raises(KeyError):
            get_scale("nope")

    def test_sessions_floor(self):
        scale = Scale("x", session_factor=0.001, cache_factor=1.0)
        assert scale.sessions(100) == 4  # never degenerates to zero

    def test_cache_bytes(self):
        scale = Scale("x", 1.0, 0.5)
        assert scale.cache_bytes(10.0) == int(5e9)


class TestDatasetConfigs:
    def test_all_three_datasets(self):
        assert set(DATASET_CONFIGS) == {"lmsys", "sharegpt", "swebench"}

    def test_workload_params_overrides(self):
        config = DATASET_CONFIGS["lmsys"]
        params = config.workload_params(get_scale("smoke"), mean_think_s=9.0)
        assert params.mean_think_s == 9.0
        assert params.n_sessions == get_scale("smoke").sessions(config.n_sessions)

    def test_cache_grids_sorted_ascending(self):
        for config in DATASET_CONFIGS.values():
            assert list(config.cache_grid_gb) == sorted(config.cache_grid_gb)


class TestRunner:
    def test_trace_caching_returns_same_object(self):
        config = DATASET_CONFIGS["sharegpt"]
        params = config.workload_params(get_scale("smoke"))
        assert get_trace(config.workload, params) is get_trace(config.workload, params)

    def test_run_policy_produces_result(self):
        config = DATASET_CONFIGS["sharegpt"]
        trace = get_trace(config.workload, config.workload_params(get_scale("smoke")))
        result = run_policy_on_trace(hybrid_7b(), trace, "sglang+", int(1e9))
        assert result.n_requests == trace.n_requests
        assert 0.0 <= result.token_hit_rate < 1.0

    def test_run_policies_covers_all(self):
        config = DATASET_CONFIGS["sharegpt"]
        trace = get_trace(config.workload, config.workload_params(get_scale("smoke")))
        results = run_policies(hybrid_7b(), trace, ("vanilla", "marconi"), int(1e9))
        assert set(results) == {"vanilla", "marconi"}
        assert results["vanilla"].token_hit_rate == 0.0

    def test_alpha_recorded_in_stats(self):
        config = DATASET_CONFIGS["sharegpt"]
        trace = get_trace(config.workload, config.workload_params(get_scale("smoke")))
        result = run_policy_on_trace(hybrid_7b(), trace, "marconi", int(1e9))
        assert "alpha" in result.cache_stats


class TestSweep:
    def test_sweep_shape(self):
        points = standard_sweep("sharegpt", "smoke", policies=("vanilla", "sglang+"))
        config = DATASET_CONFIGS["sharegpt"]
        assert len(points) == len(config.cache_grid_gb) * len(config.think_grid_s)
        for point in points:
            assert set(point.results) == {"vanilla", "sglang+"}
            assert point.hit_rate("vanilla") == 0.0


class TestRegistryAndCLI:
    def test_figure_ids_complete(self):
        paper_figures = {
            "fig3a", "fig3b", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig11", "fig12a", "fig12b", "fig13a", "fig13b", "fig14", "table1",
        }
        assert paper_figures <= set(FIGURES)
        assert all(
            fig in paper_figures or fig.startswith("ext-") for fig in FIGURES
        )

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            run_figure("fig99")

    def test_cli_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table1" in out

    def test_cli_runs_analytic_figure(self, capsys):
        assert cli_main(["--figure", "table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "done in" in out

    def test_cli_requires_target(self, capsys):
        with pytest.raises(SystemExit):
            cli_main([])

    def test_cli_taxonomy(self, capsys):
        assert cli_main(["--taxonomy", "sharegpt", "--sessions", "6"]) == 0
        out = capsys.readouterr().out
        assert "purely_input" in out and "ceiling" in out

    def test_cli_gen_trace_roundtrip(self, capsys, tmp_path):
        from repro.workloads.trace import Trace

        path = tmp_path / "trace.jsonl"
        assert cli_main(
            ["--gen-trace", "docqa", "--out", str(path), "--sessions", "4"]
        ) == 0
        trace = Trace.from_jsonl(path)
        assert trace.name == "docqa"
        assert trace.n_sessions == 4

    def test_cli_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            cli_main(["--taxonomy", "nope"])

    def test_extension_figures_registered(self):
        from repro.experiments.registry import FIGURES

        assert {"ext-zoo", "ext-tiering", "ext-cluster", "ext-taxonomy",
                "ext-multitenant", "ext-tbt"} <= set(FIGURES)

    @pytest.mark.parametrize("figure_id", ["ext-tiering", "ext-tbt"])
    def test_extension_figures_run_at_smoke(self, figure_id):
        result = run_figure(figure_id, "smoke")
        assert result.figure_id == figure_id
        assert result.rows and result.extra
