"""Tests for the purely-input workload generators (docqa/fewshot/selfconsistency)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import classify_trace
from repro.workloads import (
    DOCQA_SHAPE,
    FEWSHOT_SHAPE,
    WORKLOAD_NAMES,
    SelfConsistencyShape,
    WorkloadParams,
    generate_docqa_trace,
    generate_fewshot_trace,
    generate_lmsys_trace,
    generate_selfconsistency_trace,
    generate_trace,
)
from repro.workloads.selfconsistency import build_selfconsistency_trace


def common_prefix(a: np.ndarray, b: np.ndarray) -> int:
    limit = min(len(a), len(b))
    diff = a[:limit] != b[:limit]
    return int(np.argmax(diff)) if diff.any() else limit


class TestRegistry:
    def test_all_six_workloads_registered(self):
        assert set(WORKLOAD_NAMES) == {
            "lmsys", "sharegpt", "swebench", "docqa", "fewshot", "selfconsistency",
        }

    @pytest.mark.parametrize("name", ["docqa", "fewshot", "selfconsistency"])
    def test_registry_dispatch(self, name):
        trace = generate_trace(name, n_sessions=3, seed=1)
        assert trace.name == name
        assert trace.n_requests >= 3


class TestDocQA:
    def test_single_round_sessions(self):
        trace = generate_docqa_trace(n_sessions=12, seed=0)
        assert all(s.n_rounds == 1 for s in trace.sessions)

    def test_global_preamble_shared_by_all_sessions(self):
        trace = generate_docqa_trace(n_sessions=8, seed=0)
        first = trace.sessions[0].full_input(0)
        n = DOCQA_SHAPE.global_preamble_tokens
        for session in trace.sessions[1:]:
            assert common_prefix(first, session.full_input(0)) >= n

    def test_documents_shared_across_sessions(self):
        """With 6 documents and Zipf popularity, some pair of sessions must
        share a document-length prefix."""
        trace = generate_docqa_trace(n_sessions=12, seed=3)
        inputs = [s.full_input(0) for s in trace.sessions]
        best = max(
            common_prefix(inputs[i], inputs[j])
            for i in range(len(inputs))
            for j in range(i + 1, len(inputs))
        )
        assert best >= 8000 + DOCQA_SHAPE.global_preamble_tokens

    def test_inputs_dwarf_questions(self):
        trace = generate_docqa_trace(n_sessions=6, seed=1)
        lengths = trace.input_lengths()
        assert lengths.min() >= 8000

    def test_reuse_is_purely_input(self):
        report = classify_trace(generate_docqa_trace(n_sessions=20, seed=2))
        assert report.purely_input_tokens > 0
        assert report.purely_input_tokens > 50 * max(1, report.input_output_tokens)

    def test_deterministic_in_seed(self):
        a = generate_docqa_trace(n_sessions=4, seed=9)
        b = generate_docqa_trace(n_sessions=4, seed=9)
        for sa, sb in zip(a.sessions, b.sessions):
            assert np.array_equal(sa.full_input(0), sb.full_input(0))


class TestFewShot:
    def test_outputs_are_short(self):
        trace = generate_fewshot_trace(n_sessions=40, seed=0)
        assert np.median(trace.output_lengths()) <= FEWSHOT_SHAPE.output.maximum
        assert trace.output_lengths().max() <= 40

    def test_single_round_sessions(self):
        trace = generate_fewshot_trace(n_sessions=10, seed=0)
        assert all(s.n_rounds == 1 for s in trace.sessions)

    def test_templates_shared(self):
        trace = generate_fewshot_trace(n_sessions=60, seed=4)
        report = classify_trace(trace)
        # With 57 subjects and 60 sessions, collisions are guaranteed by
        # Zipf popularity; shared preamble alone guarantees some reuse.
        assert report.purely_input_tokens > 0
        assert report.input_output_tokens == 0


class TestSelfConsistency:
    def test_samples_share_identical_inputs(self):
        trace = generate_selfconsistency_trace(n_sessions=5, seed=0)
        by_input: dict[bytes, int] = {}
        for session in trace.sessions:
            key = session.full_input(0).tobytes()
            by_input[key] = by_input.get(key, 0) + 1
        counts = sorted(by_input.values())
        assert len(by_input) == 5  # one distinct prompt per query
        assert counts[0] >= 2  # every query sampled at least twice

    def test_metadata_counts(self):
        trace = generate_selfconsistency_trace(n_sessions=7, seed=1)
        assert trace.metadata["n_queries"] == 7
        assert trace.metadata["n_samples"] == trace.n_sessions == trace.n_requests

    def test_samples_arrive_within_spread(self):
        shape = SelfConsistencyShape(sample_spread_s=0.25)
        trace = build_selfconsistency_trace(shape, WorkloadParams(n_sessions=4, seed=2))
        groups: dict[bytes, list[float]] = {}
        for session in trace.sessions:
            groups.setdefault(session.full_input(0).tobytes(), []).append(
                session.arrival_time
            )
        for arrivals in groups.values():
            assert max(arrivals) - min(arrivals) <= 0.25 + 1e-9

    def test_outputs_differ_across_samples(self):
        trace = generate_selfconsistency_trace(n_sessions=3, seed=3)
        outputs = {s.rounds[0].output_tokens.tobytes() for s in trace.sessions}
        assert len(outputs) == trace.n_sessions

    def test_rejects_negative_spread(self):
        with pytest.raises(ValueError):
            SelfConsistencyShape(sample_spread_s=-1.0)

    def test_reuse_is_purely_input(self):
        report = classify_trace(generate_selfconsistency_trace(n_sessions=10, seed=5))
        assert report.purely_input_tokens > 0
        assert report.input_output_tokens == 0


class TestTaxonomyContrast:
    def test_chat_has_input_output_reuse_docqa_does_not(self):
        chat = classify_trace(generate_lmsys_trace(n_sessions=15, seed=6))
        docqa = classify_trace(generate_docqa_trace(n_sessions=15, seed=6))
        assert chat.input_output_tokens > 0
        assert docqa.input_output_tokens <= docqa.purely_input_tokens // 50


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 1_000),
        name=st.sampled_from(["docqa", "fewshot", "selfconsistency"]),
    )
    def test_generators_deterministic(self, seed, name):
        a = generate_trace(name, n_sessions=3, seed=seed)
        b = generate_trace(name, n_sessions=3, seed=seed)
        assert a.n_requests == b.n_requests
        for sa, sb in zip(a.sessions, b.sessions):
            assert sa.arrival_time == sb.arrival_time
            for ra, rb in zip(sa.rounds, sb.rounds):
                assert np.array_equal(ra.new_input_tokens, rb.new_input_tokens)
                assert np.array_equal(ra.output_tokens, rb.output_tokens)
