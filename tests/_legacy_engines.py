"""Frozen pre-kernel reference implementations of the three serving loops.

These are byte-for-byte copies of the scheduling loops that lived in
``repro/engine/server.py``, ``repro/engine/iteration.py``, and
``repro/cluster/simulator.py`` before the unified simulation kernel
(``repro/engine/kernel.py``) replaced them.  They exist solely as the
*reference side* of the differential conformance suite
(``test_kernel_conformance.py``): replaying identical traces through a
legacy loop and the kernel-backed engine must produce byte-identical
per-request records and cache statistics at ``max_running=1`` (and, for
the single-node engine, at any ``n_executors``).

Do not "improve" these implementations: their value is that they do not
change.  The only edits from the deleted originals are renames
(``Legacy*`` prefixes) and import paths.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.interfaces import CacheProtocol, RequestSession
from repro.cluster.router import Router
from repro.cluster.simulator import ClusterResult
from repro.engine.events import EventKind, EventQueue
from repro.engine.iteration import IterationConfig, IterationResult
from repro.engine.latency import LatencyModel
from repro.engine.request import EngineRequest
from repro.engine.results import EngineResult, RequestRecord
from repro.models.config import ModelConfig
from repro.models.flops import model_prefill_flops, model_suffix_prefill_flops
from repro.workloads.trace import Trace, TraceSession


# ----------------------------------------------------------------------
# Legacy single-node FCFS serving simulator (ex repro/engine/server.py)
# ----------------------------------------------------------------------
@dataclass
class _InFlight:
    request: EngineRequest
    session: RequestSession
    service_start: float
    prefill_seconds: float


class LegacyServingSimulator:
    """The pre-kernel FCFS serving loop, verbatim."""

    def __init__(
        self,
        model: ModelConfig,
        cache: CacheProtocol,
        latency: Optional[LatencyModel] = None,
        policy_name: str = "unnamed",
        n_executors: int = 1,
    ) -> None:
        if n_executors < 1:
            raise ValueError(f"n_executors must be >= 1, got {n_executors}")
        self.model = model
        self.cache = cache
        self.latency = latency or LatencyModel()
        self.policy_name = policy_name
        self.n_executors = n_executors
        self._seq = itertools.count()

    def run(self, trace: Trace) -> EngineResult:
        events = EventQueue(self._seq)
        push = events.push
        queue: deque[EngineRequest] = deque()
        result = EngineResult(policy=self.policy_name)
        free_executors = self.n_executors

        for session in trace.sessions:
            push(
                session.arrival_time,
                EventKind.REQUEST_ARRIVAL,
                self._make_request(session, 0, session.arrival_time),
            )

        def start_next(now: float) -> None:
            nonlocal free_executors
            n_start = min(free_executors, len(queue))
            if n_start <= 0:
                return
            batch = [queue.popleft() for _ in range(n_start)]
            sessions = self.cache.begin_many(
                [request.input_tokens for request in batch], now
            )
            free_executors -= n_start
            for request, session in zip(batch, sessions):
                prefill_seconds = self.latency.prefill_seconds(
                    self.model,
                    seq_len=request.input_len,
                    reused_len=session.hit_tokens,
                    reused_bytes=session.reused_bytes,
                    secondary_bytes=session.reused_secondary_bytes,
                )
                push(
                    now + prefill_seconds,
                    EventKind.PREFILL_DONE,
                    _InFlight(
                        request=request,
                        session=session,
                        service_start=now,
                        prefill_seconds=prefill_seconds,
                    ),
                )

        sessions_by_id = {s.session_id: s for s in trace.sessions}
        while events:
            event = events.pop()
            now = event.time
            if event.kind == EventKind.REQUEST_ARRIVAL:
                queue.append(event.payload)
                start_next(now)
            elif event.kind == EventKind.PREFILL_DONE:
                flight: _InFlight = event.payload
                request = flight.request
                result.records.append(
                    RequestRecord(
                        session_id=request.session_id,
                        round_index=request.round_index,
                        arrival_time=request.arrival_time,
                        service_start=flight.service_start,
                        prefill_seconds=flight.prefill_seconds,
                        ttft=now - request.arrival_time,
                        input_len=request.input_len,
                        hit_tokens=flight.session.hit_tokens,
                        output_len=request.output_len,
                        reused_bytes=flight.session.reused_bytes,
                        flops_saved=model_prefill_flops(
                            self.model, flight.session.hit_tokens
                        ),
                    )
                )
                free_executors += 1
                push(
                    now + self.latency.decode_seconds(request.output_len),
                    EventKind.REQUEST_COMPLETE,
                    flight,
                )
                start_next(now)
            else:  # REQUEST_COMPLETE
                flight = event.payload
                request = flight.request
                flight.session.commit(request.full_tokens, now)
                session = sessions_by_id[request.session_id]
                next_round = request.round_index + 1
                if next_round < session.n_rounds:
                    arrival = now + session.think_times[next_round]
                    push(
                        arrival,
                        EventKind.REQUEST_ARRIVAL,
                        self._make_request(session, next_round, arrival),
                    )

        if hasattr(self.cache, "stats"):
            result.cache_stats = self.cache.stats.snapshot()
        return result

    @staticmethod
    def _make_request(
        session: TraceSession, round_index: int, arrival: float
    ) -> EngineRequest:
        return EngineRequest(
            session_id=session.session_id,
            round_index=round_index,
            arrival_time=arrival,
            input_tokens=session.full_input(round_index),
            full_tokens=session.full_sequence(round_index),
        )


def legacy_simulate_trace(
    model, cache, trace, latency=None, policy_name="unnamed", n_executors=1
) -> EngineResult:
    return LegacyServingSimulator(model, cache, latency, policy_name, n_executors).run(
        trace
    )


# ----------------------------------------------------------------------
# Legacy iteration-level engine (ex repro/engine/iteration.py)
# ----------------------------------------------------------------------
@dataclass
class _PrefillJob:
    request: EngineRequest
    session: Optional[RequestSession] = None
    position: int = 0
    started: bool = False
    service_start: float = 0.0
    compute_seconds: float = 0.0

    @property
    def hit_tokens(self) -> int:
        return self.session.hit_tokens if self.session is not None else 0

    @property
    def reused_bytes(self) -> int:
        return self.session.reused_bytes if self.session is not None else 0

    @property
    def reused_secondary_bytes(self) -> int:
        return self.session.reused_secondary_bytes if self.session is not None else 0

    @property
    def remaining(self) -> int:
        return self.request.input_len - self.position


@dataclass
class _DecodeJob:
    request: EngineRequest
    session: RequestSession
    produced: int = 0
    last_token_time: float = 0.0

    @property
    def remaining(self) -> int:
        return self.request.output_len - self.produced


class LegacyIterationSimulator:
    """The pre-kernel iteration-level loop, verbatim."""

    def __init__(
        self,
        model: ModelConfig,
        cache: CacheProtocol,
        latency: Optional[LatencyModel] = None,
        config: Optional[IterationConfig] = None,
        policy_name: str = "unnamed",
    ) -> None:
        self.model = model
        self.cache = cache
        self.latency = latency or LatencyModel()
        self.config = config or IterationConfig()
        self.policy_name = policy_name
        self._seq = itertools.count()

    def _chunk_seconds(self, job: _PrefillJob, chunk: int) -> float:
        flops = model_suffix_prefill_flops(
            self.model, job.position + chunk, job.position
        )
        seconds = flops / self.latency.effective_flops_per_s
        if job.position == job.hit_tokens and job.reused_bytes:
            primary = job.reused_bytes - job.reused_secondary_bytes
            seconds += primary / self.latency.fetch_bandwidth_bytes_per_s
            seconds += (
                job.reused_secondary_bytes
                / self.latency.secondary_fetch_bandwidth_bytes_per_s
            )
        return seconds

    def run(self, trace: Trace) -> IterationResult:
        result = IterationResult(policy=self.policy_name)
        arrivals: list[tuple[float, int, EngineRequest]] = []
        for session in trace.sessions:
            heapq.heappush(
                arrivals,
                (
                    session.arrival_time,
                    next(self._seq),
                    self._make_request(session, 0, session.arrival_time),
                ),
            )
        sessions_by_id = {s.session_id: s for s in trace.sessions}

        prefill_queue: list[_PrefillJob] = []
        decodes: list[_DecodeJob] = []
        now = 0.0

        def drain_arrivals(upto: float) -> None:
            while arrivals and arrivals[0][0] <= upto:
                _, _, request = heapq.heappop(arrivals)
                prefill_queue.append(_PrefillJob(request=request))

        while arrivals or prefill_queue or decodes:
            if not prefill_queue and not decodes:
                now = max(now, arrivals[0][0])
            drain_arrivals(now)
            if not prefill_queue and not decodes:
                continue

            batch = decodes[: self.config.max_batch]
            chunk = 0
            job: Optional[_PrefillJob] = None
            if prefill_queue:
                job = prefill_queue[0]
                if not job.started:
                    session = self.cache.begin(job.request.input_tokens, now)
                    job.started = True
                    job.service_start = now
                    job.session = session
                    job.position = session.hit_tokens
                chunk = min(self.config.token_budget, job.remaining)

            duration = self.config.iteration_overhead_s
            if chunk and job is not None:
                chunk_seconds = self._chunk_seconds(job, chunk)
                job.compute_seconds += chunk_seconds
                duration += chunk_seconds
            if batch:
                duration += self.latency.decode_seconds_per_token
            now += duration
            result.n_iterations += 1

            finished_decodes = []
            for stream in batch:
                if stream.produced > 0:
                    result.tbt_gaps.append(now - stream.last_token_time)
                stream.produced += 1
                stream.last_token_time = now
                if stream.remaining == 0:
                    finished_decodes.append(stream)
            for stream in finished_decodes:
                decodes.remove(stream)
                self._complete(stream, now, arrivals, sessions_by_id)

            if chunk and job is not None:
                job.position += chunk
                if job.remaining == 0:
                    prefill_queue.pop(0)
                    result.records.append(
                        RequestRecord(
                            session_id=job.request.session_id,
                            round_index=job.request.round_index,
                            arrival_time=job.request.arrival_time,
                            service_start=job.service_start,
                            prefill_seconds=job.compute_seconds,
                            ttft=now - job.request.arrival_time,
                            input_len=job.request.input_len,
                            hit_tokens=job.hit_tokens,
                            output_len=job.request.output_len,
                            reused_bytes=job.reused_bytes,
                            flops_saved=model_prefill_flops(
                                self.model, job.hit_tokens
                            ),
                        )
                    )
                    decodes.append(
                        _DecodeJob(
                            request=job.request,
                            session=job.session,
                            produced=1,
                            last_token_time=now,
                        )
                    )
                    if job.request.output_len == 1:
                        stream = decodes.pop()
                        self._complete(stream, now, arrivals, sessions_by_id)

        if hasattr(self.cache, "stats"):
            result.cache_stats = self.cache.stats.snapshot()
        return result

    def _complete(self, stream: _DecodeJob, now, arrivals, sessions_by_id) -> None:
        stream.session.commit(stream.request.full_tokens, now)
        session = sessions_by_id[stream.request.session_id]
        next_round = stream.request.round_index + 1
        if next_round < session.n_rounds:
            arrival = now + session.think_times[next_round]
            heapq.heappush(
                arrivals,
                (
                    arrival,
                    next(self._seq),
                    self._make_request(session, next_round, arrival),
                ),
            )

    @staticmethod
    def _make_request(
        session: TraceSession, round_index: int, arrival: float
    ) -> EngineRequest:
        return EngineRequest(
            session_id=session.session_id,
            round_index=round_index,
            arrival_time=arrival,
            input_tokens=session.full_input(round_index),
            full_tokens=session.full_sequence(round_index),
        )


def legacy_simulate_trace_iteration(
    model, cache, trace, latency=None, config=None, policy_name="unnamed"
) -> IterationResult:
    return LegacyIterationSimulator(model, cache, latency, config, policy_name).run(
        trace
    )


# ----------------------------------------------------------------------
# Legacy cluster simulator (ex repro/cluster/simulator.py)
# ----------------------------------------------------------------------
@dataclass
class _ClusterInFlight:
    request: EngineRequest
    replica: int
    session: RequestSession
    service_start: float
    prefill_seconds: float


class LegacyClusterSimulator:
    """The pre-kernel cluster loop, verbatim (one busy flag per replica)."""

    def __init__(
        self,
        model: ModelConfig,
        caches: Sequence[CacheProtocol],
        router: Router,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        if not caches:
            raise ValueError("need at least one replica cache")
        self.model = model
        self.caches = list(caches)
        self.router = router
        self.latency = latency or LatencyModel()
        self._seq = itertools.count()

    def run(self, trace: Trace) -> ClusterResult:
        n = len(self.caches)
        events = EventQueue(self._seq)
        push = events.push
        queues: list[list[EngineRequest]] = [[] for _ in range(n)]
        busy = [False] * n
        busy_seconds = [0.0] * n
        routed_counts = [0] * n
        results = [
            EngineResult(policy=f"{self.router.name}/replica{i}") for i in range(n)
        ]

        def loads() -> list[int]:
            return [len(queues[i]) + (1 if busy[i] else 0) for i in range(n)]

        def start_next(replica: int, now: float) -> None:
            if busy[replica] or not queues[replica]:
                return
            request = queues[replica].pop(0)
            session = self.caches[replica].begin(request.input_tokens, now)
            prefill_seconds = self.latency.prefill_seconds(
                self.model,
                seq_len=request.input_len,
                reused_len=session.hit_tokens,
                reused_bytes=session.reused_bytes,
                secondary_bytes=session.reused_secondary_bytes,
            )
            busy[replica] = True
            push(
                now + prefill_seconds,
                EventKind.PREFILL_DONE,
                _ClusterInFlight(
                    request=request,
                    replica=replica,
                    session=session,
                    service_start=now,
                    prefill_seconds=prefill_seconds,
                ),
            )

        def admit_arrival(request: EngineRequest, now: float) -> None:
            replica = self.router.route(
                request.input_tokens, request.session_id, self.caches, loads(), now
            )
            if not 0 <= replica < n:
                raise ValueError(
                    f"router {self.router.name!r} returned invalid replica {replica}"
                )
            routed_counts[replica] += 1
            queues[replica].append(request)
            start_next(replica, now)

        for session in trace.sessions:
            push(
                session.arrival_time,
                EventKind.REQUEST_ARRIVAL,
                self._make_request(session, 0, session.arrival_time),
            )

        sessions_by_id = {s.session_id: s for s in trace.sessions}
        while events:
            event = events.pop()
            now = event.time
            if event.kind == EventKind.REQUEST_ARRIVAL:
                admit_arrival(event.payload, now)
            elif event.kind == EventKind.PREFILL_DONE:
                flight: _ClusterInFlight = event.payload
                request = flight.request
                results[flight.replica].records.append(
                    RequestRecord(
                        session_id=request.session_id,
                        round_index=request.round_index,
                        arrival_time=request.arrival_time,
                        service_start=flight.service_start,
                        prefill_seconds=flight.prefill_seconds,
                        ttft=now - request.arrival_time,
                        input_len=request.input_len,
                        hit_tokens=flight.session.hit_tokens,
                        output_len=request.output_len,
                        reused_bytes=flight.session.reused_bytes,
                        flops_saved=model_prefill_flops(
                            self.model, flight.session.hit_tokens
                        ),
                    )
                )
                busy_seconds[flight.replica] += flight.prefill_seconds
                busy[flight.replica] = False
                push(
                    now + self.latency.decode_seconds(request.output_len),
                    EventKind.REQUEST_COMPLETE,
                    flight,
                )
                start_next(flight.replica, now)
            else:  # REQUEST_COMPLETE
                flight = event.payload
                request = flight.request
                flight.session.commit(request.full_tokens, now)
                session = sessions_by_id[request.session_id]
                next_round = request.round_index + 1
                if next_round < session.n_rounds:
                    arrival = now + session.think_times[next_round]
                    push(
                        arrival,
                        EventKind.REQUEST_ARRIVAL,
                        self._make_request(session, next_round, arrival),
                    )

        for index, cache in enumerate(self.caches):
            if hasattr(cache, "stats"):
                results[index].cache_stats = cache.stats.snapshot()
        return ClusterResult(
            router=self.router.name,
            replica_results=results,
            routed_counts=routed_counts,
            busy_seconds=busy_seconds,
        )

    @staticmethod
    def _make_request(
        session: TraceSession, round_index: int, arrival: float
    ) -> EngineRequest:
        return EngineRequest(
            session_id=session.session_id,
            round_index=round_index,
            arrival_time=arrival,
            input_tokens=session.full_input(round_index),
            full_tokens=session.full_sequence(round_index),
        )


def legacy_simulate_cluster(
    model, caches, router, trace, latency=None
) -> ClusterResult:
    return LegacyClusterSimulator(model, caches, router, latency).run(trace)
