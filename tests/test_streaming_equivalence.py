"""Property suite: a streamed trace replays identically to a materialized one.

The streaming admission path (``TraceStream`` pulled lazily into the
kernel's event queue) and the bulk path (``Trace`` pushed up front) must
produce *byte-identical* transcripts: the same ``RequestRecord`` stream,
the same cache stats, the same telemetry timeseries — for every engine,
and with cluster fail/drain/join scenarios firing mid-stream.  Hypothesis
drives randomized workload parameters through the real generators (the
same code paths experiments use), so any divergence between the two
admission paths — event tie-breaks, session lifetime bookkeeping, arrival
ordering — shows up as a concrete failing seed.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.registry import make_cache
from repro.cluster.router import PrefixAffinityRouter, RoundRobinRouter
from repro.cluster.simulator import simulate_cluster
from repro.engine.iteration import simulate_trace_iteration
from repro.engine.latency import LatencyModel
from repro.engine.server import simulate_trace
from repro.engine.steering import ScenarioEvent
from repro.models.presets import hybrid_7b
from repro.workloads import (
    WORKLOAD_NAMES,
    WorkloadParams,
    generate_trace,
    generate_trace_stream,
    mix_streams,
    mix_traces,
)
from repro.workloads.trace import TraceStream

MODEL = hybrid_7b()
LATENCY = LatencyModel()

#: Workloads whose materialized builder already emits sessions in arrival
#: order, so stream and trace agree record-for-record without re-sorting.
SORTED_WORKLOADS = tuple(n for n in WORKLOAD_NAMES if n != "selfconsistency")


@st.composite
def workload_params(draw, max_sessions: int = 12):
    return WorkloadParams(
        n_sessions=draw(st.integers(min_value=2, max_value=max_sessions)),
        session_rate=draw(st.sampled_from([0.5, 1.0, 2.0, 5.0])),
        mean_think_s=draw(st.sampled_from([0.0, 0.5, 2.0])),
        seed=draw(st.integers(min_value=0, max_value=2**20)),
        arrival_process=draw(
            st.sampled_from(["poisson", "bursty", "diurnal", "flashcrowd"])
        ),
    )


def _records(result):
    return [asdict(r) for r in result.records]


def _assert_engine_results_equal(a, b):
    assert _records(a) == _records(b)
    assert a.cache_stats == b.cache_stats
    assert a.queue_depth_series == b.queue_depth_series
    assert a.running_series == b.running_series


class TestGeneratorEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        workload=st.sampled_from(SORTED_WORKLOADS),
        params=workload_params(),
    )
    def test_materialized_stream_is_the_built_trace(self, workload, params):
        trace = generate_trace(workload, params)
        again = generate_trace_stream(workload, params).materialize()
        assert trace.name == again.name
        assert trace.seed == again.seed
        assert trace.metadata == again.metadata
        assert trace.n_sessions == again.n_sessions
        for ours, theirs in zip(trace.sessions, again.sessions):
            assert ours.session_id == theirs.session_id
            assert ours.arrival_time == theirs.arrival_time
            assert ours.think_times == theirs.think_times
            for ra, rb in zip(ours.rounds, theirs.rounds):
                assert (ra.new_input_tokens == rb.new_input_tokens).all()
                assert (ra.output_tokens == rb.output_tokens).all()

    @settings(max_examples=10, deadline=None)
    @given(params=workload_params(max_sessions=6))
    def test_selfconsistency_stream_is_sorted_same_content(self, params):
        trace = generate_trace("selfconsistency", params)
        stream = generate_trace_stream("selfconsistency", params).materialize()
        assert trace.n_sessions == stream.n_sessions
        arrivals = [s.arrival_time for s in stream.sessions]
        assert arrivals == sorted(arrivals)
        by_id = {s.session_id: s for s in trace.sessions}
        for session in stream.sessions:
            original = by_id[session.session_id]
            assert session.arrival_time == original.arrival_time
            assert (
                session.rounds[0].new_input_tokens
                == original.rounds[0].new_input_tokens
            ).all()

    @settings(max_examples=10, deadline=None)
    @given(
        workload=st.sampled_from(SORTED_WORKLOADS),
        params=workload_params(max_sessions=8),
    )
    def test_stream_is_reiterable_and_deterministic(self, workload, params):
        stream = generate_trace_stream(workload, params)
        first = [(s.session_id, s.arrival_time) for s in stream.iter_sessions()]
        second = [(s.session_id, s.arrival_time) for s in stream.iter_sessions()]
        assert first == second


class TestEngineEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        workload=st.sampled_from(WORKLOAD_NAMES),
        params=workload_params(max_sessions=8),
        policy=st.sampled_from(["vanilla", "vllm+", "sglang+", "marconi"]),
        capacity=st.sampled_from([200_000_000, 1_000_000_000]),
    )
    def test_serving_engine_byte_identical(self, workload, params, policy, capacity):
        trace = generate_trace(workload, params)
        stream = generate_trace_stream(workload, params)
        bulk = simulate_trace(
            MODEL, make_cache(policy, MODEL, capacity), trace, LATENCY,
            policy_name=policy,
        )
        streamed = simulate_trace(
            MODEL, make_cache(policy, MODEL, capacity), stream, LATENCY,
            policy_name=policy,
        )
        if workload == "selfconsistency":
            # The bulk path replays generation order, the stream arrival
            # order; ties are measure-zero, so only record order differs.
            key = lambda d: (d["session_id"], d["round_index"])  # noqa: E731
            assert sorted(_records(bulk), key=key) == sorted(
                _records(streamed), key=key
            )
            assert bulk.cache_stats == streamed.cache_stats
        else:
            _assert_engine_results_equal(bulk, streamed)

    @settings(max_examples=8, deadline=None)
    @given(
        params=workload_params(max_sessions=6),
        policy=st.sampled_from(["sglang+", "marconi"]),
    )
    def test_iteration_engine_byte_identical(self, params, policy):
        trace = generate_trace("lmsys", params)
        stream = generate_trace_stream("lmsys", params)
        bulk = simulate_trace_iteration(
            MODEL, make_cache(policy, MODEL, 500_000_000), trace, LATENCY,
            policy_name=policy,
        )
        streamed = simulate_trace_iteration(
            MODEL, make_cache(policy, MODEL, 500_000_000), stream, LATENCY,
            policy_name=policy,
        )
        _assert_engine_results_equal(bulk, streamed)
        assert bulk.tbt_gaps == streamed.tbt_gaps
        assert bulk.n_iterations == streamed.n_iterations

    @settings(max_examples=8, deadline=None)
    @given(
        params=workload_params(max_sessions=10),
        router_cls=st.sampled_from([PrefixAffinityRouter, RoundRobinRouter]),
        fail_time=st.sampled_from([0.5, 2.0, 6.0]),
        join_time=st.sampled_from([1.0, 4.0]),
    )
    def test_cluster_scenario_byte_identical(
        self, params, router_cls, fail_time, join_time
    ):
        """Fail + join + drain fire mid-stream; transcripts still match."""
        spawn = lambda: make_cache("marconi", MODEL, 400_000_000)  # noqa: E731
        scenario = [
            ScenarioEvent(fail_time, "fail", replica=1),
            ScenarioEvent(join_time, "join", cache_factory=spawn, name="spare"),
            ScenarioEvent(fail_time + join_time, "drain", replica=0),
        ]
        trace = generate_trace("lmsys", params)
        stream = generate_trace_stream("lmsys", params)

        def run(source):
            caches = [make_cache("marconi", MODEL, 400_000_000) for _ in range(3)]
            return simulate_cluster(
                MODEL, caches, router_cls(), source, LATENCY, scenario=scenario
            )

        bulk, streamed = run(trace), run(stream)
        assert [_records(r) for r in bulk.replica_results] == [
            _records(r) for r in streamed.replica_results
        ]
        assert bulk.routed_counts == streamed.routed_counts
        assert bulk.busy_seconds == streamed.busy_seconds
        assert bulk.steering.to_dict() == streamed.steering.to_dict()
        # Every trace round is served exactly once despite the failure.
        served = sum(r.n_requests for r in streamed.replica_results)
        assert served == trace.n_requests

    @settings(max_examples=6, deadline=None)
    @given(
        pa=workload_params(max_sessions=6),
        pb=workload_params(max_sessions=6),
    )
    def test_mixture_stream_byte_identical(self, pa, pb):
        trace = mix_traces(
            [generate_trace("lmsys", pa), generate_trace("docqa", pb)]
        )
        stream = mix_streams(
            [
                generate_trace_stream("lmsys", pa),
                generate_trace_stream("docqa", pb),
            ]
        )
        assert stream.materialize().metadata == trace.metadata
        bulk = simulate_trace(
            MODEL, make_cache("marconi", MODEL, 500_000_000), trace, LATENCY
        )
        streamed = simulate_trace(
            MODEL, make_cache("marconi", MODEL, 500_000_000), stream, LATENCY
        )
        _assert_engine_results_equal(bulk, streamed)


class TestStreamContract:
    def test_unsorted_stream_is_rejected(self):
        trace = generate_trace("lmsys", WorkloadParams(n_sessions=4, seed=0))
        backwards = list(reversed(trace.sessions))
        stream = TraceStream("bad", 0, lambda: iter(backwards))
        with pytest.raises(ValueError, match="sorted by arrival"):
            list(stream.iter_sessions())

    def test_from_trace_sorts_unsorted_sessions(self):
        trace = generate_trace("selfconsistency", WorkloadParams(n_sessions=4, seed=1))
        stream = TraceStream.from_trace(trace)
        arrivals = [s.arrival_time for s in stream.iter_sessions()]
        assert arrivals == sorted(arrivals)

    def test_streamed_kernel_releases_finished_sessions(self):
        """Bounded memory: the kernel's session registry drains to zero."""
        from repro.engine.kernel import SimulationKernel

        params = WorkloadParams(n_sessions=10, seed=3)
        stream = generate_trace_stream("lmsys", params)
        kernel = SimulationKernel(
            MODEL, [make_cache("marconi", MODEL, 500_000_000)], LATENCY
        )
        kernel.run(stream)
        assert kernel._sessions_by_id == {}

    def test_jsonl_stream_roundtrip_matches_trace(self, tmp_path):
        params = WorkloadParams(n_sessions=5, seed=7)
        trace = generate_trace("sharegpt", params)
        path = tmp_path / "t.jsonl"
        written = generate_trace_stream("sharegpt", params).to_jsonl(path)
        assert written == 5
        loaded = TraceStream.from_jsonl(path)
        bulk = simulate_trace(
            MODEL, make_cache("marconi", MODEL, 500_000_000), trace, LATENCY
        )
        streamed = simulate_trace(
            MODEL, make_cache("marconi", MODEL, 500_000_000), loaded, LATENCY
        )
        _assert_engine_results_equal(bulk, streamed)
