"""Golden-trace regression suite: frozen traces, frozen end-to-end numbers.

Three small traces are committed under ``tests/fixtures/`` as JSONL files,
together with the expected summary of replaying each one across the
cache-policy x engine matrix (serving, iteration-level, and 2-replica
cluster).  The traces are *frozen artifacts*: they were generated once and
are loaded from disk, so generator changes cannot silently shift what
these tests measure — any change in the committed numbers is a real
behavioural change in the caches or engines and must be reviewed, not
absorbed.

Regenerating after an intentional change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_traces.py

then commit the updated ``tests/fixtures/golden_expected.json`` (and say
why in the PR).  See docs/testing.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.baselines.registry import make_cache
from repro.cluster.router import PrefixAffinityRouter
from repro.cluster.simulator import simulate_cluster
from repro.engine.iteration import simulate_trace_iteration
from repro.engine.latency import LatencyModel
from repro.engine.server import simulate_trace
from repro.metrics.export import summary_dict
from repro.models.presets import hybrid_7b
from repro.workloads.trace import Trace

FIXTURES = Path(__file__).parent / "fixtures"
EXPECTED_PATH = FIXTURES / "golden_expected.json"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

POLICIES = ("vanilla", "vllm+", "sglang+", "marconi")

#: name -> (trace file, cache capacity in bytes).  Capacities sit in each
#: trace's contention region so hit rates are neither 0 nor saturated.
GOLDEN_TRACES: dict[str, tuple[str, int]] = {
    "golden_chat": ("golden_chat.trace.jsonl", 600_000_000),
    "golden_agent": ("golden_agent.trace.jsonl", 3_000_000_000),
    "golden_mix": ("golden_mix.trace.jsonl", 1_500_000_000),
}

ENGINES = ("serving", "iteration", "cluster")


def _load_trace(name: str) -> Trace:
    path, _ = GOLDEN_TRACES[name]
    return Trace.from_jsonl(FIXTURES / path)


def _run_matrix_cell(name: str, engine: str, policy: str) -> dict:
    """Replay one golden trace through one engine under one policy."""
    trace = _load_trace(name)
    _, capacity = GOLDEN_TRACES[name]
    model = hybrid_7b()
    latency = LatencyModel()
    if engine == "serving":
        result = simulate_trace(
            model, make_cache(policy, model, capacity), trace, latency,
            policy_name=policy,
        )
        summary = summary_dict(result)
    elif engine == "iteration":
        result = simulate_trace_iteration(
            model, make_cache(policy, model, capacity), trace, latency,
            policy_name=policy,
        )
        summary = summary_dict(result)
        summary["n_iterations"] = result.n_iterations
        summary["tbt_p95"] = result.tbt_percentile(95)
    elif engine == "cluster":
        caches = [make_cache(policy, model, capacity // 2) for _ in range(2)]
        result = simulate_cluster(
            model, caches, PrefixAffinityRouter(), trace, latency
        )
        summary = {
            "policy": policy,
            "n_requests": result.n_requests,
            "token_hit_rate": result.token_hit_rate,
            "routed_counts": list(result.routed_counts),
            "busy_seconds": list(result.busy_seconds),
            "ttft_p50": result.ttft_percentile(50),
            "ttft_p95": result.ttft_percentile(95),
            "load_fairness": result.load_fairness,
        }
    else:  # pragma: no cover - matrix misconfiguration
        raise ValueError(f"unknown engine {engine!r}")
    return summary


def _assert_matches(actual, expected, path: str) -> None:
    """Recursive comparison: exact for ints/strs, tight-tolerance floats."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected dict, got {type(actual)}"
        assert sorted(actual) == sorted(expected), (
            f"{path}: keys differ: {sorted(actual)} vs {sorted(expected)}"
        )
        for key in expected:
            _assert_matches(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert len(actual) == len(expected), f"{path}: length differs"
        for i, (a, e) in enumerate(zip(actual, expected)):
            _assert_matches(a, e, f"{path}[{i}]")
    elif isinstance(expected, bool) or not isinstance(expected, (int, float)):
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"
    elif isinstance(expected, float) or isinstance(actual, float):
        assert actual == pytest.approx(expected, rel=1e-9, abs=1e-12), (
            f"{path}: {actual!r} != {expected!r}"
        )
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


def _expected() -> dict:
    if not EXPECTED_PATH.exists():  # pragma: no cover - fixture missing
        pytest.fail(
            f"{EXPECTED_PATH} missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
    return json.loads(EXPECTED_PATH.read_text())


@pytest.fixture(scope="module")
def expected() -> dict:
    return _expected()


class TestFixturesAreFrozen:
    """The committed traces themselves (not just results) stay bit-stable."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_TRACES))
    def test_trace_loads_and_matches_header(self, name, expected):
        if REGEN:
            pytest.skip("regeneration run; comparisons are stale by design")
        trace = _load_trace(name)
        meta = expected[name]["trace"]
        assert trace.n_sessions == meta["n_sessions"]
        assert trace.n_requests == meta["n_requests"]
        assert trace.total_input_tokens == meta["total_input_tokens"]
        assert int(trace.input_lengths().max()) == meta["max_input_len"]


@pytest.mark.parametrize("name", sorted(GOLDEN_TRACES))
@pytest.mark.parametrize("engine", ENGINES)
class TestGoldenMatrix:
    def test_cell_matches_committed_numbers(self, name, engine, expected):
        if REGEN:
            pytest.skip("regeneration run; see regen hook below")
        for policy in POLICIES:
            actual = _run_matrix_cell(name, engine, policy)
            _assert_matches(
                actual,
                expected[name]["engines"][engine][policy],
                f"{name}.{engine}.{policy}",
            )


@pytest.mark.parametrize("engine", ENGINES)
class TestLegacyQueueIdentity:
    """The tuple-backed event queue is transcript-identical to the legacy
    object-per-event queue it replaced.

    ``REPRO_LEGACY_QUEUE=1`` (checked at queue construction) swaps every
    :class:`~repro.engine.events.EventQueue` for the frozen
    ``LegacyEventQueue``; replaying a golden cell under it must reproduce
    the *same committed numbers* as the optimized path, across all three
    engines — any divergence means the queue rewrite changed event order.
    """

    def test_switch_selects_legacy_queue(self, engine, monkeypatch):
        from repro.engine.events import EventQueue, LegacyEventQueue

        monkeypatch.setenv("REPRO_LEGACY_QUEUE", "1")
        assert type(EventQueue()) is LegacyEventQueue
        monkeypatch.delenv("REPRO_LEGACY_QUEUE")
        assert type(EventQueue()) is EventQueue

    def test_legacy_queue_matches_committed_numbers(
        self, engine, expected, monkeypatch
    ):
        if REGEN:
            pytest.skip("regeneration run; comparisons are stale by design")
        monkeypatch.setenv("REPRO_LEGACY_QUEUE", "1")
        for policy in ("marconi", "vanilla"):
            actual = _run_matrix_cell("golden_chat", engine, policy)
            _assert_matches(
                actual,
                expected["golden_chat"]["engines"][engine][policy],
                f"legacy-queue.golden_chat.{engine}.{policy}",
            )


def test_regenerate_golden_expectations():
    """Rewrites the expected-summary fixture when REPRO_REGEN_GOLDEN=1."""
    if not REGEN:
        pytest.skip("set REPRO_REGEN_GOLDEN=1 to regenerate")
    payload: dict = {}
    for name in sorted(GOLDEN_TRACES):
        trace = _load_trace(name)
        payload[name] = {
            "trace": {
                "n_sessions": trace.n_sessions,
                "n_requests": trace.n_requests,
                "total_input_tokens": trace.total_input_tokens,
                "max_input_len": int(trace.input_lengths().max()),
            },
            "engines": {
                engine: {
                    policy: _run_matrix_cell(name, engine, policy)
                    for policy in POLICIES
                }
                for engine in ENGINES
            },
        }
    EXPECTED_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
