"""Tests for FLOP efficiency (Eq. 1 and Table 1's derived rows)."""

import pytest

from repro.models.efficiency import (
    flop_efficiency,
    flops_saved_per_byte_attention,
    flops_saved_per_byte_ssm,
    node_flop_efficiency,
)
from repro.models.flops import model_prefill_flops
from repro.models.presets import hybrid_7b, mamba_7b, transformer_7b


class TestClosedForms:
    def test_attention_L_plus_2D(self):
        assert flops_saved_per_byte_attention(100, 4096) == 100 + 2 * 4096

    def test_attention_7b_is_L_plus_8192(self):
        """Table 1 last row: L + 8192 for the 7B model."""
        assert flops_saved_per_byte_attention(1000, 4096) == 1000 + 8192

    def test_ssm_7b_is_200L(self):
        """Table 1 last row: 200 L for the 7B model (D=4096, N=128)."""
        assert flops_saved_per_byte_ssm(1000, 4096, 128) == pytest.approx(200_000, rel=1e-4)

    def test_ssm_closed_form_expansion(self):
        L, D, N = 77, 64, 16
        expected = L * (6 * D / N + 8 + 5 / (D * N))
        assert flops_saved_per_byte_ssm(L, D, N) == pytest.approx(expected)

    def test_rejects_non_positive_length(self):
        with pytest.raises(ValueError):
            flops_saved_per_byte_attention(0, 64)
        with pytest.raises(ValueError):
            flops_saved_per_byte_ssm(0, 64, 16)


class TestModelEfficiency:
    def test_fig5_ordering_at_2k(self):
        """Fig. 5: at L=2000, Mamba > Hybrid >> Transformer."""
        mamba = flop_efficiency(mamba_7b(), 2000)
        hybrid = flop_efficiency(hybrid_7b(), 2000)
        transformer = flop_efficiency(transformer_7b(), 2000)
        assert mamba > hybrid > transformer
        assert hybrid / transformer > 3

    def test_fig5_magnitudes(self):
        assert flop_efficiency(mamba_7b(), 2000) == pytest.approx(3.8e5, rel=0.15)
        assert flop_efficiency(hybrid_7b(), 2000) == pytest.approx(1.7e5, rel=0.15)
        assert flop_efficiency(transformer_7b(), 2000) == pytest.approx(2.7e4, rel=0.15)

    def test_ssm_models_grow_steeply(self):
        """The slope is steeper with more SSM layers."""
        short, long = 500, 2000
        growth = {
            "mamba": flop_efficiency(mamba_7b(), long) / flop_efficiency(mamba_7b(), short),
            "hybrid": flop_efficiency(hybrid_7b(), long) / flop_efficiency(hybrid_7b(), short),
            "transformer": flop_efficiency(transformer_7b(), long) / flop_efficiency(transformer_7b(), short),
        }
        assert growth["mamba"] > growth["hybrid"] > growth["transformer"]

    def test_rejects_zero_length(self, hybrid):
        with pytest.raises(ValueError):
            flop_efficiency(hybrid, 0)


class TestNodeEfficiency:
    def test_prefix_mode_uses_full_prefix_flops(self, hybrid):
        freed = 1000
        value = node_flop_efficiency(hybrid, 500, 400, freed, mode="prefix_per_freed")
        assert value == pytest.approx(model_prefill_flops(hybrid, 500) / freed)

    def test_edge_delta_mode(self, hybrid):
        freed = 1000
        value = node_flop_efficiency(hybrid, 500, 400, freed, mode="edge_delta")
        expected = (model_prefill_flops(hybrid, 500) - model_prefill_flops(hybrid, 400)) / freed
        assert value == pytest.approx(expected)

    def test_deep_nodes_dominate_in_prefix_mode(self, hybrid):
        """The short-for-long trade (Fig. 10a) requires deep >> shallow."""
        freed = 10_000_000
        deep = node_flop_efficiency(hybrid, 20_000, 19_500, freed)
        shallow = node_flop_efficiency(hybrid, 2_000, 1_500, freed)
        assert deep / shallow > 5

    def test_zero_freeable_scores_zero(self, hybrid):
        assert node_flop_efficiency(hybrid, 500, 400, 0) == 0.0

    def test_rejects_bad_range(self, hybrid):
        with pytest.raises(ValueError):
            node_flop_efficiency(hybrid, 10, 20, 100)

    def test_rejects_unknown_mode(self, hybrid):
        with pytest.raises(ValueError, match="mode"):
            node_flop_efficiency(hybrid, 20, 10, 100, mode="bogus")
