"""Tests for the offline analysis tools (clairvoyant replay, reuse taxonomy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ClairvoyantEviction,
    ReuseClass,
    TaxonomyReport,
    clairvoyant_replay,
    classify_trace,
)
from repro.core.cache import MarconiCache
from repro.core.eviction import EvictionCandidate
from repro.core.node import RadixNode
from repro.models.memory import node_state_bytes
from repro.workloads.lmsys import generate_lmsys_trace
from repro.workloads.trace import Trace, TraceRound, TraceSession


def _session(session_id, arrival, rounds, think=1.0):
    """Build a session from [(input_tokens, output_tokens), ...] pairs."""
    trace_rounds = [
        TraceRound(
            new_input_tokens=np.asarray(i, dtype=np.int32),
            output_tokens=np.asarray(o, dtype=np.int32),
        )
        for i, o in rounds
    ]
    think_times = [0.0] + [think] * (len(rounds) - 1)
    return TraceSession(
        session_id=session_id,
        arrival_time=arrival,
        rounds=trace_rounds,
        think_times=think_times,
    )


def _candidate(node_tokens, last_access=0.0, efficiency=1.0, freeable=100):
    root = RadixNode(np.empty(0, dtype=np.int32), parent=None, now=0.0)
    node = RadixNode(np.asarray(node_tokens, dtype=np.int32), parent=root, now=last_access)
    node.last_access = last_access
    return EvictionCandidate(
        node=node,
        freeable_bytes=freeable,
        flop_efficiency=efficiency,
        last_access=last_access,
        is_leaf=True,
    )


class TestClairvoyantEviction:
    def test_next_use_finds_extending_request(self):
        schedule = [
            np.asarray([1, 2, 3], dtype=np.int32),
            np.asarray([1, 2, 3, 4, 5], dtype=np.int32),
            np.asarray([9, 9], dtype=np.int32),
        ]
        policy = ClairvoyantEviction(schedule)
        assert policy._next_use(np.asarray([1, 2], dtype=np.int32)) == 0.0
        policy.advance(1)
        assert policy._next_use(np.asarray([1, 2], dtype=np.int32)) == 1.0
        assert policy._next_use(np.asarray([7], dtype=np.int32)) == float("inf")

    def test_exact_length_match_does_not_count(self):
        # A request equal to the prefix leaves no final token to prefill.
        schedule = [np.asarray([1, 2], dtype=np.int32)]
        policy = ClairvoyantEviction(schedule)
        assert policy._next_use(np.asarray([1, 2], dtype=np.int32)) == float("inf")

    def test_evicts_never_reused_first(self):
        schedule = [np.asarray([1, 2, 3, 4], dtype=np.int32)]
        policy = ClairvoyantEviction(schedule)
        reused = _candidate([1, 2], efficiency=0.1)
        dead = _candidate([5, 6], efficiency=99.0)
        assert policy.select_victim([reused, dead]) is dead

    def test_among_reused_evicts_farthest(self):
        schedule = [
            np.asarray([1, 2, 9], dtype=np.int32),
            np.asarray([3, 4, 9], dtype=np.int32),
        ]
        policy = ClairvoyantEviction(schedule)
        soon = _candidate([1, 2])
        later = _candidate([3, 4])
        assert policy.select_victim([soon, later]) is later

    def test_advance_bounds(self):
        policy = ClairvoyantEviction([np.asarray([1], dtype=np.int32)])
        with pytest.raises(ValueError):
            policy.advance(-1)
        with pytest.raises(ValueError):
            policy.advance(2)

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            ClairvoyantEviction([]).select_victim([])


class TestClairvoyantReplay:
    def test_unbounded_cache_matches_lru_replay(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=10, seed=7)
        huge = int(1e13)
        oracle = clairvoyant_replay(hybrid, trace, huge)
        lru = MarconiCache(hybrid, huge, eviction="lru")
        for now, _, _, inp, full in trace.iter_requests_nominal():
            r = lru.lookup(inp, now)
            lru.admit(full, now, handle=r.handle)
        assert oracle.evictions == 0
        assert oracle.token_hit_rate == pytest.approx(lru.stats.token_hit_rate)

    def test_beats_lru_under_contention(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=24, seed=3)
        capacity = 6 * node_state_bytes(hybrid, 2000, True)
        oracle = clairvoyant_replay(hybrid, trace, capacity)
        lru = MarconiCache(hybrid, capacity, eviction="lru")
        for now, _, _, inp, full in trace.iter_requests_nominal():
            r = lru.lookup(inp, now)
            lru.admit(full, now, handle=r.handle)
        assert oracle.evictions > 0
        assert oracle.token_hit_rate >= lru.stats.token_hit_rate

    def test_per_request_accounting(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=5, seed=1)
        result = clairvoyant_replay(hybrid, trace, int(1e13))
        assert len(result.per_request_hits) == result.n_requests == trace.n_requests
        assert sum(result.per_request_hits) == result.hit_tokens
        assert result.input_tokens == trace.total_input_tokens

    def test_empty_trace_raises(self, hybrid):
        empty = Trace(name="empty", seed=0, sessions=[])
        with pytest.raises(ValueError):
            clairvoyant_replay(hybrid, empty, int(1e9))


class TestTaxonomy:
    def test_first_request_is_fresh(self):
        trace = Trace(
            name="t", seed=0,
            sessions=[_session(0, 0.0, [(list(range(10)), [99, 98])])],
        )
        report = classify_trace(trace)
        assert report.n_requests == 1
        request = report.requests[0]
        assert request.reuse_class is ReuseClass.NONE
        assert request.fresh == request.input_len == 10

    def test_conversation_history_is_input_output(self):
        trace = Trace(
            name="t", seed=0,
            sessions=[
                _session(0, 0.0, [
                    (list(range(100, 110)), [201, 202]),
                    (list(range(300, 305)), [203]),
                ])
            ],
        )
        report = classify_trace(trace)
        round2 = report.requests[1]
        assert round2.reuse_class is ReuseClass.INPUT_OUTPUT
        # Round 1's input (10 tokens) was a previous *input*; its output
        # (2 tokens) extends the reusable span through output territory.
        assert round2.purely_input == 10
        assert round2.input_output == 2

    def test_shared_prompt_is_purely_input(self):
        shared = list(range(500, 540))
        trace = Trace(
            name="t", seed=0,
            sessions=[
                _session(0, 0.0, [(shared + [7, 8], [11])]),
                _session(1, 1.0, [(shared + [9, 10], [12])]),
            ],
        )
        report = classify_trace(trace)
        second = report.requests[1]
        assert second.reuse_class is ReuseClass.PURELY_INPUT
        assert second.purely_input == len(shared)
        assert second.input_output == 0
        assert report.branch_splits == 1

    def test_aggregates_are_consistent(self):
        trace = generate_lmsys_trace(n_sessions=12, seed=5)
        report = classify_trace(trace)
        assert report.input_tokens == trace.total_input_tokens
        assert (
            report.purely_input_tokens
            + report.input_output_tokens
            + report.fresh_tokens
            == report.input_tokens
        )
        assert 0.0 <= report.reusable_token_share <= 1.0
        assert sum(report.class_counts().values()) == report.n_requests

    def test_share_bounds_unbounded_cache_hit_rate(self, hybrid):
        """No cache can beat the trace's reuse opportunity."""
        trace = generate_lmsys_trace(n_sessions=10, seed=9)
        report = classify_trace(trace)
        cache = MarconiCache(hybrid, int(1e13), eviction="lru")
        for now, _, _, inp, full in trace.iter_requests_nominal():
            r = cache.lookup(inp, now)
            cache.admit(full, now, handle=r.handle)
        assert cache.stats.token_hit_rate <= report.reusable_token_share + 1e-9

    def test_summary_table_renders(self):
        trace = generate_lmsys_trace(n_sessions=4, seed=2)
        table = classify_trace(trace).summary_table()
        assert "purely_input" in table and "input_output" in table

    def test_empty_report_properties(self):
        report = TaxonomyReport(trace_name="empty")
        assert report.reusable_token_share == 0.0
        assert report.input_tokens == 0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n_sessions=st.integers(1, 8))
    def test_reuse_never_exceeds_input(self, seed, n_sessions):
        trace = generate_lmsys_trace(n_sessions=n_sessions, seed=seed)
        report = classify_trace(trace)
        for request in report.requests:
            assert 0 <= request.purely_input
            assert 0 <= request.input_output
            # At least the final input token is never reusable.
            assert request.total_reusable <= request.input_len - 1
