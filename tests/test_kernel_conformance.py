"""Differential conformance: kernel-backed engines vs the frozen legacy loops.

The unified simulation kernel (``repro/engine/kernel.py``) replaced three
independently maintained scheduling loops.  This suite replays identical
traces through the kernel-backed engines and the pre-refactor reference
implementations (frozen in ``tests/_legacy_engines.py``) and asserts the
transcripts are *byte-identical*: every ``RequestRecord`` field (dataclass
equality → exact float equality), the cache-stats snapshots, routed
counts, busy seconds, iteration counts, and TBT gap streams.

Coverage axes: three workload shapes (queueing-heavy LMSys, a bursty
same-instant-arrival trace, a zero-think multi-round trace), two cache
policies (Marconi under eviction pressure, vanilla), serving concurrency
``n_executors ∈ {1, 4}``, iteration configs with fine/coarse chunking,
and clusters of 1-3 replicas under three router families.
"""

from __future__ import annotations

import numpy as np
import pytest

from _legacy_engines import (
    legacy_simulate_cluster,
    legacy_simulate_trace,
    legacy_simulate_trace_iteration,
)
from repro.baselines.vanilla import VanillaCache
from repro.cluster import (
    LeastLoadedRouter,
    PrefixAffinityRouter,
    RoundRobinRouter,
    simulate_cluster,
)
from repro.core.cache import MarconiCache
from repro.engine.iteration import IterationConfig, simulate_trace_iteration
from repro.engine.server import simulate_trace
from repro.models.memory import node_state_bytes
from repro.models.presets import hybrid_7b
from repro.workloads.lmsys import generate_lmsys_trace
from repro.workloads.trace import Trace, TraceRound, TraceSession

MODEL = hybrid_7b()


def _session(session_id, arrival, rounds, thinks=None):
    trace_rounds = [
        TraceRound(
            new_input_tokens=np.asarray(i, dtype=np.int32),
            output_tokens=np.asarray(o, dtype=np.int32),
        )
        for i, o in rounds
    ]
    if thinks is None:
        thinks = [0.0] + [1.0] * (len(rounds) - 1)
    return TraceSession(
        session_id=session_id,
        arrival_time=arrival,
        rounds=trace_rounds,
        think_times=thinks,
    )


def _rand_round(seed, n_in, n_out):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 2000, n_in).tolist(),
        rng.integers(0, 2000, n_out).tolist(),
    )


def _lmsys_trace() -> Trace:
    # High session rate so the FCFS queue actually builds depth.
    return generate_lmsys_trace(
        n_sessions=14, seed=93, session_rate=4.0, mean_think_s=1.0
    )


def _bursty_trace() -> Trace:
    """Waves of same-instant arrivals: the tie-break torture test."""
    sessions = []
    sid = 0
    for wave, t in enumerate([0.0, 0.0, 2.5, 2.5, 2.5, 7.0, 7.0, 7.0]):
        sessions.append(
            _session(
                sid,
                t,
                [
                    _rand_round(100 * wave + sid, 300 + 40 * sid, 50),
                    _rand_round(200 * wave + sid, 80, 60),
                ],
            )
        )
        sid += 1
    return Trace(name="bursty", seed=0, sessions=sessions)


def _zero_think_trace() -> Trace:
    """Next rounds arriving exactly at decode end (equal-timestamp events)."""
    sessions = [
        _session(
            0,
            0.0,
            [_rand_round(7, 200, 30), _rand_round(8, 50, 1), _rand_round(9, 40, 25)],
            thinks=[0.0, 0.0, 0.0],
        ),
        _session(1, 0.0, [_rand_round(10, 150, 1)], thinks=[0.0]),
        _session(2, 0.1, [_rand_round(11, 90, 20), _rand_round(12, 30, 10)],
                 thinks=[0.0, 0.0]),
    ]
    return Trace(name="zero-think", seed=0, sessions=sessions)


TRACES = {
    "lmsys": _lmsys_trace,
    "bursty": _bursty_trace,
    "zero_think": _zero_think_trace,
}


def _marconi():
    # Small enough that eviction fires during the replay.
    return MarconiCache(MODEL, 6 * node_state_bytes(MODEL, 2000, True), alpha=1.0)


def _vanilla():
    return VanillaCache(MODEL)


CACHES = {"marconi": _marconi, "vanilla": _vanilla}


def _assert_engine_results_identical(kernel_result, legacy_result):
    assert len(kernel_result.records) == len(legacy_result.records)
    # Dataclass equality is exact per-field (floats compared bit-for-bit).
    assert kernel_result.records == legacy_result.records
    assert [r.ttft for r in kernel_result.records] == [
        r.ttft for r in legacy_result.records
    ]
    assert kernel_result.cache_stats == legacy_result.cache_stats


class TestServingConformance:
    @pytest.mark.parametrize("trace_name", sorted(TRACES))
    @pytest.mark.parametrize("cache_name", sorted(CACHES))
    @pytest.mark.parametrize("n_executors", [1, 4])
    def test_matches_legacy(self, trace_name, cache_name, n_executors):
        trace = TRACES[trace_name]()
        kernel_result = simulate_trace(
            MODEL, CACHES[cache_name](), trace, n_executors=n_executors
        )
        legacy_result = legacy_simulate_trace(
            MODEL, CACHES[cache_name](), trace, n_executors=n_executors
        )
        _assert_engine_results_identical(kernel_result, legacy_result)

    def test_no_open_sessions_after_run(self):
        cache = _marconi()
        simulate_trace(MODEL, cache, _bursty_trace(), n_executors=2)
        assert cache.open_sessions == 0


class TestIterationConformance:
    @pytest.mark.parametrize("trace_name", sorted(TRACES))
    @pytest.mark.parametrize("cache_name", sorted(CACHES))
    @pytest.mark.parametrize(
        "config",
        [
            IterationConfig(),
            IterationConfig(token_budget=64, max_batch=2),
            IterationConfig(token_budget=4096, max_batch=1),
        ],
        ids=["default", "fine", "coarse"],
    )
    def test_matches_legacy(self, trace_name, cache_name, config):
        trace = TRACES[trace_name]()
        kernel_result = simulate_trace_iteration(
            MODEL, CACHES[cache_name](), trace, config=config
        )
        legacy_result = legacy_simulate_trace_iteration(
            MODEL, CACHES[cache_name](), trace, config=config
        )
        _assert_engine_results_identical(kernel_result, legacy_result)
        assert kernel_result.n_iterations == legacy_result.n_iterations
        assert kernel_result.tbt_gaps == legacy_result.tbt_gaps


class TestClusterConformance:
    @pytest.mark.parametrize("trace_name", sorted(TRACES))
    @pytest.mark.parametrize("n_replicas", [1, 2, 3])
    @pytest.mark.parametrize(
        "router_factory",
        [RoundRobinRouter, LeastLoadedRouter, PrefixAffinityRouter],
        ids=["round_robin", "least_loaded", "prefix_affinity"],
    )
    def test_matches_legacy(self, trace_name, n_replicas, router_factory):
        trace = TRACES[trace_name]()
        caches = lambda: [_marconi() for _ in range(n_replicas)]  # noqa: E731
        kernel_result = simulate_cluster(MODEL, caches(), router_factory(), trace)
        legacy_result = legacy_simulate_cluster(MODEL, caches(), router_factory(), trace)
        assert kernel_result.routed_counts == legacy_result.routed_counts
        assert kernel_result.busy_seconds == legacy_result.busy_seconds
        for kernel_replica, legacy_replica in zip(
            kernel_result.replica_results, legacy_result.replica_results
        ):
            _assert_engine_results_identical(kernel_replica, legacy_replica)

    def test_cluster_equals_serving_at_one_replica(self):
        """The two kernel configurations coincide at R=1, max_running=1."""
        trace = _lmsys_trace()
        single = simulate_trace(MODEL, _marconi(), trace)
        cluster = simulate_cluster(MODEL, [_marconi()], RoundRobinRouter(), trace)
        assert cluster.replica_results[0].records == single.records
        assert cluster.replica_results[0].cache_stats == single.cache_stats


class TestKernelNewCapabilities:
    """What the kernel adds beyond the legacy loops."""

    def test_timeseries_populated_and_monotone(self):
        result = simulate_trace(MODEL, _marconi(), _bursty_trace(), n_executors=2)
        assert result.queue_depth_series and result.running_series
        for series in (result.queue_depth_series, result.running_series):
            times = [t for t, _ in series]
            assert times == sorted(times)
        assert result.peak_queue_depth() > 0
        assert 0.0 <= result.executor_utilization() <= 1.0

    def test_more_executors_raise_concurrency_on_bursty_trace(self):
        trace = _bursty_trace()
        serial = simulate_trace(MODEL, _marconi(), trace, n_executors=1)
        batched = simulate_trace(MODEL, _marconi(), trace, n_executors=4)
        # Continuous batching actually occupies the extra slots...
        assert batched.mean_running() > serial.mean_running()
        # ...and burns down the backlog.
        assert batched.mean_queue_depth() < serial.mean_queue_depth()

    def test_cluster_max_running_speeds_up_bursts(self):
        trace = _bursty_trace()
        slow = simulate_cluster(MODEL, [_marconi()], RoundRobinRouter(), trace)
        fast = simulate_cluster(
            MODEL, [_marconi()], RoundRobinRouter(), trace, max_running=4
        )
        assert fast.ttft_percentile(95) < slow.ttft_percentile(95)
        assert fast.replica_results[0].max_running == 4
