"""Tests for the router-side global prefix directory.

The directory's one promise is decision compatibility: for any sequence of
cache operations, a directory lookup must report exactly the per-replica
hits the legacy deep probe would compute by walking every replica tree.
The suites here check the maintenance protocol event by event, then hammer
the equivalence with randomized operation streams (hypothesis) including
eviction pressure, aborts, truncation, and resets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import PrefixAffinityRouter, PrefixDirectory, probe_hit_tokens
from repro.core.cache import MarconiCache
from repro.models.memory import node_state_bytes
from repro.models.presets import hybrid_7b, transformer_7b
from repro.tiering import TieredMarconiCache

HYBRID = hybrid_7b()
TRANSFORMER = transformer_7b()


def toks(n, seed):
    return np.random.default_rng(seed).integers(0, 32000, size=n, dtype=np.int32)


def serve(cache, seq, now, out=10, out_seed=991):
    """One full request: begin + commit with a random output suffix."""
    with cache.begin(seq, now) as session:
        full = np.concatenate([seq, toks(out, out_seed)])
        session.commit(full, now + 0.5)
    return full


def assert_parity(directory, caches, queries):
    """Directory lookups must equal deep probes for every tracked replica."""
    for query in queries:
        query = np.asarray(query, dtype=np.int32)
        lookup = directory.lookup(query, limit=len(query) - 1)
        cap = max(len(query) - 1, 0)
        for index, cache in enumerate(caches):
            expected = probe_hit_tokens(cache, query)
            if cache.model.has_recurrent_layers:
                got = lookup.ckpt_depth.get(index, 0)
            else:
                got = min(lookup.kv_matched.get(index, 0), cap)
            assert got == expected, (
                f"replica {index}: directory {got} != deep probe {expected} "
                f"for query of {len(query)} tokens"
            )


class TestDirectoryMaintenance:
    def test_attach_tracks_tree_caches(self):
        directory = PrefixDirectory()
        cache = MarconiCache(HYBRID, int(1e12), alpha=0.0)
        assert directory.attach(0, cache)
        assert directory.tracked(0)
        assert directory.replicas == (0,)

    def test_attach_rejects_opaque_and_probe_caches(self):
        directory = PrefixDirectory()

        class Opaque:
            pass

        class WithProbe:
            tree = None

            def probe(self, tokens):
                return 7

        assert not directory.attach(0, Opaque())
        assert not directory.attach(1, WithProbe())
        assert directory.stats.untracked_replicas == 2

    def test_admission_is_indexed_incrementally(self):
        directory = PrefixDirectory()
        cache = MarconiCache(HYBRID, int(1e12), alpha=0.0)
        directory.attach(0, cache)
        seq = toks(300, 1)
        full = serve(cache, seq, 0.0)
        resyncs_before = directory.stats.resyncs
        query = np.concatenate([full, toks(20, 2)])
        assert_parity(directory, [cache], [query, seq, toks(50, 3)])
        assert directory.stats.resyncs == resyncs_before  # no rescans

    def test_attach_after_content_resyncs(self):
        cache = MarconiCache(HYBRID, int(1e12), alpha=0.0)
        seq = toks(280, 4)
        full = serve(cache, seq, 0.0)
        directory = PrefixDirectory()
        directory.attach(0, cache)
        assert directory.stats.resyncs >= 1
        assert_parity(directory, [cache], [np.concatenate([full, toks(9, 5)])])

    def test_reset_invalidates_via_reattach(self):
        directory = PrefixDirectory()
        cache = MarconiCache(HYBRID, int(1e12), alpha=0.0)
        directory.attach(0, cache)
        full = serve(cache, toks(200, 6), 0.0)
        query = np.concatenate([full, toks(5, 7)])
        assert directory.lookup(query, limit=len(query) - 1).ckpt_depth
        cache.reset()
        lookup = directory.lookup(query, limit=len(query) - 1)
        assert not lookup.ckpt_depth and not lookup.kv_matched
        # ...and the directory keeps following the *new* tree.
        full2 = serve(cache, toks(180, 8), 1.0)
        assert_parity(directory, [cache], [np.concatenate([full2, toks(5, 9)])])

    def test_eviction_under_pressure_stays_consistent(self):
        per_seq = node_state_bytes(HYBRID, 2000, True)
        cache = MarconiCache(HYBRID, 3 * per_seq, alpha=1.0)
        directory = PrefixDirectory()
        directory.attach(0, cache)
        fulls = []
        for i in range(12):
            n = 1800 if i % 2 == 0 else 60
            fulls.append(serve(cache, toks(n, 100 + i), float(i), out_seed=200 + i))
        directory.check_integrity()
        queries = [np.concatenate([full, toks(7, 400)]) for full in fulls]
        assert_parity(directory, [cache], queries)

    def test_abort_rollback_stays_consistent(self):
        cache = MarconiCache(HYBRID, int(1e12), alpha=0.0)
        directory = PrefixDirectory()
        directory.attach(0, cache)
        base = toks(150, 20)
        serve(cache, base, 0.0)
        # Aborted session rolls back its speculative insert; the directory
        # must shed the aborted branch too.
        branch = np.concatenate([base[:100], toks(80, 21)])
        session = cache.begin(branch, 1.0)
        session.abort()
        directory.check_integrity()
        assert_parity(
            directory,
            [cache],
            [np.concatenate([branch, toks(5, 22)]), np.concatenate([base, toks(5, 23)])],
        )

    def test_truncation_clear_descend(self):
        """A leaf truncated under pressure loses exactly its tail in the
        directory, even though the dropped tokens are no longer known."""
        cache = MarconiCache(TRANSFORMER, int(1e12), alpha=0.0)
        directory = PrefixDirectory()
        directory.attach(0, cache)
        seq = toks(400, 30)
        full = serve(cache, seq, 0.0)
        leaf = max(cache.tree.iter_nodes(), key=lambda n: n.seq_len)
        assert leaf.is_leaf
        cache.tree.truncate_leaf(leaf, leaf.kv_tokens // 2)
        directory.check_integrity()
        assert_parity(directory, [cache], [np.concatenate([full, toks(5, 31)])])

    def test_truncation_cut_mid_directory_edge(self):
        """The directory can be more split than the truncated replica's
        leaf (another replica's divergence splits the union edge): the
        clear-descend must still remove the deeper coverage chain when
        the cut lands mid-directory-edge."""
        caches = [MarconiCache(TRANSFORMER, int(1e12), alpha=0.0) for _ in range(2)]
        directory = PrefixDirectory()
        for i, cache in enumerate(caches):
            directory.attach(i, cache)
        base = np.arange(12, dtype=np.int32)
        caches[0].tree.insert(base, 0.0)  # replica 0: one 12-token leaf
        diverged = np.concatenate([base[:8], [50, 51, 52]]).astype(np.int32)
        caches[1].tree.insert(diverged, 1.0)  # splits the union edge at 8
        leaf = max(
            (n for n in caches[0].tree.iter_nodes() if n.is_leaf),
            key=lambda n: n.seq_len,
        )
        caches[0].tree.truncate_leaf(leaf, 6)  # cut strictly inside [0, 8)
        directory.check_integrity()
        query = np.concatenate([base, [77, 78]]).astype(np.int32)
        assert_parity(directory, caches, [query])

    def test_transformer_mid_edge_matches(self):
        cache = MarconiCache(TRANSFORMER, int(1e12), alpha=0.0)
        directory = PrefixDirectory()
        directory.attach(0, cache)
        seq = toks(300, 40)
        serve(cache, seq, 0.0)
        # Query diverging mid-edge: raw match length, not node-aligned.
        query = np.concatenate([seq[:137], toks(60, 41)])
        assert_parity(directory, [cache], [query])

    def test_detach_invalidates_replica(self):
        directory = PrefixDirectory()
        caches = [MarconiCache(HYBRID, int(1e12), alpha=0.0) for _ in range(2)]
        for i, cache in enumerate(caches):
            directory.attach(i, cache)
        full = serve(caches[1], toks(220, 50), 0.0)
        query = np.concatenate([full, toks(5, 51)])
        assert directory.lookup(query, limit=len(query) - 1).ckpt_depth == {1: len(full)}
        directory.detach(1)
        assert not directory.lookup(query, limit=len(query) - 1).ckpt_depth
        assert directory.stats.invalidations == 1
        assert directory.replicas == (0,)

    def test_pruning_keeps_index_compact(self):
        per_seq = node_state_bytes(HYBRID, 500, True)
        cache = MarconiCache(HYBRID, 2 * per_seq, alpha=1.0)
        directory = PrefixDirectory()
        directory.attach(0, cache)
        for i in range(20):
            serve(cache, toks(450, 60 + i), float(i), out_seed=900 + i)
        directory.check_integrity()
        assert directory.stats.pruned_nodes > 0
        # The directory holds at most what the tree holds (plus boundary
        # splits from checkpoint marks).
        n_dir = sum(1 for _ in directory.iter_nodes())
        assert n_dir <= 3 * cache.tree.n_nodes + 5
        assert directory.stats.n_nodes == n_dir

    def test_staleness_snapshot_shape(self):
        directory = PrefixDirectory()
        cache = MarconiCache(HYBRID, int(1e12), alpha=0.0)
        directory.attach(0, cache)
        serve(cache, toks(100, 70), 0.0)
        snap = directory.staleness()
        for key in ("events", "resyncs", "pruned_nodes", "n_nodes", "lookups"):
            assert key in snap


class TestDirectoryMultiReplica:
    def test_union_tree_separates_replicas(self):
        directory = PrefixDirectory()
        caches = [MarconiCache(HYBRID, int(1e12), alpha=0.0) for _ in range(3)]
        for i, cache in enumerate(caches):
            directory.attach(i, cache)
        base = toks(200, 80)
        full0 = serve(caches[0], base, 0.0, out_seed=81)
        full2 = serve(caches[2], np.concatenate([base, toks(50, 82)]), 0.0, out_seed=83)
        queries = [
            np.concatenate([full0, toks(5, 84)]),
            np.concatenate([full2, toks(5, 85)]),
            np.concatenate([base, toks(5, 86)]),
        ]
        assert_parity(directory, caches, queries)

    def test_mixed_model_fleet(self):
        """Hybrid and pure-Transformer replicas coexist in one directory."""
        directory = PrefixDirectory()
        caches = [
            MarconiCache(HYBRID, int(1e12), alpha=0.0),
            MarconiCache(TRANSFORMER, int(1e12), alpha=0.0),
        ]
        for i, cache in enumerate(caches):
            directory.attach(i, cache)
        seq = toks(250, 90)
        serve(caches[0], seq, 0.0)
        serve(caches[1], seq, 0.0)
        assert_parity(directory, caches, [np.concatenate([seq, toks(30, 91)])])


@st.composite
def op_stream(draw):
    """A randomized multi-replica operation stream over a tiny vocab
    (maximizing shared prefixes, splits, and evictions)."""
    n_replicas = draw(st.integers(2, 3))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_replicas - 1),  # replica
                st.sampled_from(["serve", "abort", "reset"]),
                st.integers(1, 60),  # length
                st.integers(0, 5),  # vocab seed
            ),
            min_size=4,
            max_size=24,
        )
    )
    queries = draw(
        st.lists(
            st.tuples(st.integers(1, 80), st.integers(0, 5)),
            min_size=3,
            max_size=8,
        )
    )
    return n_replicas, ops, queries


def _tiny_vocab_seq(length, seed):
    return np.random.default_rng(seed).integers(0, 4, size=length, dtype=np.int32)


class TestDirectoryProperties:
    @settings(max_examples=40, deadline=None)
    @given(op_stream(), st.booleans())
    def test_randomized_parity_with_deep_probe(self, stream, tight):
        n_replicas, ops, queries = stream
        per_seq = node_state_bytes(HYBRID, 64, True)
        capacity = 3 * per_seq if tight else int(1e12)
        caches = [MarconiCache(HYBRID, capacity, alpha=1.0) for _ in range(n_replicas)]
        directory = PrefixDirectory()
        for i, cache in enumerate(caches):
            directory.attach(i, cache)
        now = 0.0
        for replica, action, length, vocab_seed in ops:
            now += 1.0
            cache = caches[replica]
            if action == "reset":
                cache.reset()
                continue
            seq = _tiny_vocab_seq(length, vocab_seed)
            session = cache.begin(seq, now)
            if action == "abort":
                session.abort()
            else:
                session.commit(
                    np.concatenate([seq, _tiny_vocab_seq(4, vocab_seed + 7)]),
                    now + 0.5,
                )
        directory.check_integrity()
        query_arrays = [_tiny_vocab_seq(n, s) for n, s in queries]
        assert_parity(directory, caches, query_arrays)

    @settings(max_examples=25, deadline=None)
    @given(op_stream())
    def test_router_decision_parity(self, stream):
        """PrefixAffinityRouter picks the same replica in directory and
        deep-probe modes for any cache state and query."""
        n_replicas, ops, queries = stream
        caches = [MarconiCache(HYBRID, int(1e12), alpha=0.0) for _ in range(n_replicas)]
        now = 0.0
        for replica, action, length, vocab_seed in ops:
            now += 1.0
            seq = _tiny_vocab_seq(length, vocab_seed)
            session = caches[replica].begin(seq, now)
            if action == "abort":
                session.abort()
            else:
                session.commit(
                    np.concatenate([seq, _tiny_vocab_seq(4, vocab_seed + 7)]),
                    now + 0.5,
                )
        deep = PrefixAffinityRouter(probe="deep")
        fast = PrefixAffinityRouter(probe="directory")
        loads_cycle = [[i % 3 for i in range(n_replicas)], [0] * n_replicas]
        for qi, (n, s) in enumerate(queries):
            query = _tiny_vocab_seq(n, s)
            loads = loads_cycle[qi % 2]
            assert deep.route(query, qi, caches, loads, now) == fast.route(
                query, qi, caches, loads, now
            )


class TestRouterSatellites:
    def test_session_affinity_huge_ids(self):
        from repro.cluster import SessionAffinityRouter

        router = SessionAffinityRouter()
        caches = [object() for _ in range(4)]
        # Out-of-signed-64-bit ids must hash, not raise.
        big = router.route(toks(3, 1), 2**70 + 17, caches, [0] * 4, 0.0)
        assert 0 <= big < 4
        # In-range ids (including negative) keep their legacy placement:
        # the masked encoding equals the old signed two's complement.
        import zlib

        for sid in (0, 42, -1, -(2**63), 2**63 - 1):
            legacy = zlib.crc32(int(sid).to_bytes(8, "little", signed=True)) % 4
            assert router.route(toks(3, 1), sid, caches, [0] * 4, 0.0) == legacy

    def test_probe_fast_path_precoerced(self, hybrid):
        cache = MarconiCache(hybrid, int(1e12), alpha=0.0)
        seq = toks(100, 2)
        serve(cache, seq, 0.0)
        query = np.concatenate([seq, toks(10, 3)])
        assert probe_hit_tokens(cache, query) == probe_hit_tokens(cache, list(query))

    def test_router_probe_mode_validation(self):
        with pytest.raises(ValueError):
            PrefixAffinityRouter(probe="psychic")

    def test_directory_router_in_registry(self):
        from repro.cluster import DirectoryRouter, make_router
        from repro.cluster.router import ROUTER_NAMES

        assert "directory" in ROUTER_NAMES
        assert isinstance(make_router("directory"), DirectoryRouter)

    def test_router_reset_clears_directory(self):
        router = PrefixAffinityRouter(probe="directory")
        caches = [MarconiCache(HYBRID, int(1e12), alpha=0.0) for _ in range(2)]
        serve(caches[0], toks(120, 4), 0.0)
        router.route(toks(120, 4), 0, caches, [0, 0], 1.0)
        assert router.directory is not None
        router.reset()
        assert router.directory is None
        # Observers were removed: mutating the cache must not touch a
        # stale directory.
        serve(caches[0], toks(80, 5), 2.0)

    def test_tiered_cache_is_tracked(self):
        directory = PrefixDirectory()
        cache = TieredMarconiCache(
            HYBRID, int(1e12), secondary_bytes=int(1e12), alpha=0.0
        )
        assert directory.attach(0, cache)
        full = serve(cache, toks(150, 6), 0.0)
        assert_parity(directory, [cache], [np.concatenate([full, toks(5, 7)])])
