"""Integration tests: the executable model served through the Marconi cache.

These validate the paper's correctness premise end to end: "prefix reusing
is exact and does not change the LLM output".
"""

import numpy as np
import pytest

from repro.models.presets import tiny_test_model
from repro.nn.hybrid import HybridModel
from repro.serving.engine import DecodeParams, ExactReuseServer


@pytest.fixture
def reference(tiny):
    return HybridModel(tiny, seed=0)


def expect(reference, prompt, n):
    out, _ = reference.generate(prompt, n)
    return out


class TestExactReuse:
    def test_conversation_rounds_bitwise_identical(self, tiny, reference, tokens):
        """Multi-round chat: each round reuses the previous round's state
        and still produces exactly the no-cache outputs."""
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        context = tokens(30, seed=1) % tiny.vocab_size
        for round_index in range(3):
            served = server.serve(context, 5)
            np.testing.assert_array_equal(
                served.output_tokens, expect(reference, context, 5)
            )
            if round_index > 0:
                assert served.hit_tokens > 0
            context = np.concatenate(
                [served.full_sequence, tokens(10, seed=10 + round_index) % tiny.vocab_size]
            )

    def test_shared_prefix_branch_checkpoint_exact(self, tiny, reference, tokens):
        """Purely-input reuse: the third occurrence serves from the branch
        checkpoint materialized during the second's prefill — exactly."""
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        shared = tokens(40, seed=2) % tiny.vocab_size
        queries = [
            np.concatenate([shared, tokens(12, seed=20 + i) % tiny.vocab_size])
            for i in range(3)
        ]
        hits = []
        for query in queries:
            served = server.serve(query, 4)
            hits.append(served.hit_tokens)
            np.testing.assert_array_equal(served.output_tokens, expect(reference, query, 4))
        assert hits[0] == 0 and hits[1] == 0 and hits[2] == len(shared)

    def test_chunked_mode_still_exact(self, tiny, reference, tokens):
        """Chunk-aligned checkpoints shift the reuse point but never the
        output."""
        server = ExactReuseServer(tiny, int(1e9), seed=0, prefill_mode="chunked", chunk_size=16)
        shared = tokens(40, seed=3) % tiny.vocab_size
        for i in range(3):
            query = np.concatenate([shared, tokens(10, seed=30 + i) % tiny.vocab_size])
            served = server.serve(query, 4)
            np.testing.assert_array_equal(served.output_tokens, expect(reference, query, 4))

    def test_rollforward_mode_exact_and_attaches_branch(self, tiny, reference, tokens):
        """chunked_rollforward lands checkpoints on the exact branch
        positions (the paper's optional roll-forward kernel), so unaligned
        purely-input prefixes become servable — with bitwise-exact outputs."""
        server = ExactReuseServer(
            tiny, int(1e9), seed=0, prefill_mode="chunked_rollforward", chunk_size=16
        )
        shared = tokens(40, seed=7) % tiny.vocab_size  # 40 is not chunk-aligned
        hits = []
        for i in range(3):
            query = np.concatenate([shared, tokens(10, seed=70 + i) % tiny.vocab_size])
            served = server.serve(query, 4)
            hits.append(served.hit_tokens)
            np.testing.assert_array_equal(served.output_tokens, expect(reference, query, 4))
        assert hits[2] == len(shared)

    def test_plain_chunked_misses_unaligned_branch(self, tiny, tokens):
        """Contrast case: without roll-forward, the snapped checkpoint
        cannot be attached at the unaligned branch position, so the third
        occurrence prefills in full (correctly, but without reuse)."""
        server = ExactReuseServer(
            tiny, int(1e9), seed=0, prefill_mode="chunked", chunk_size=16
        )
        shared = tokens(40, seed=8) % tiny.vocab_size
        hits = []
        for i in range(3):
            query = np.concatenate([shared, tokens(10, seed=80 + i) % tiny.vocab_size])
            hits.append(server.serve(query, 4).hit_tokens)
        assert hits[2] == 0

    def test_eviction_degrades_hits_not_correctness(self, tiny, reference, tokens):
        """Under a tiny cache, hits disappear but outputs stay exact."""
        server = ExactReuseServer(tiny, capacity_bytes=64 * 1024, seed=0)
        for i in range(5):
            query = tokens(25, seed=40 + i) % tiny.vocab_size
            served = server.serve(query, 3)
            np.testing.assert_array_equal(served.output_tokens, expect(reference, query, 3))
        assert server.cache.used_bytes <= server.cache.capacity_bytes

    def test_prefilled_plus_hit_covers_input(self, tiny, tokens):
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        context = tokens(20, seed=5) % tiny.vocab_size
        first = server.serve(context, 4)
        follow = np.concatenate([first.full_sequence, tokens(6, seed=6) % tiny.vocab_size])
        second = server.serve(follow, 4)
        assert second.hit_tokens + second.prefilled_tokens == len(follow)
        assert second.hit_tokens == len(first.full_sequence)


class TestServeEdgeCases:
    def test_empty_input_rejected_with_clear_error(self, tiny):
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        with pytest.raises(ValueError, match="empty request"):
            server.serve(np.empty(0, dtype=np.int32), 4)
        with pytest.raises(ValueError, match="empty request"):
            server.serve([], 4)
        # Nothing was begun: the failed request leaves no session behind.
        assert server.cache.open_sessions == 0

    def test_negative_n_output_rejected(self, tiny, tokens):
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        with pytest.raises(ValueError, match="n_output"):
            server.serve(tokens(10, seed=1) % tiny.vocab_size, -1)
        assert server.cache.open_sessions == 0

    def test_n_output_zero_commits_input_only(self, tiny, tokens):
        """n_output=0 is prefill-and-commit: no tokens decoded, and the
        committed state is reusable by a longer follow-up."""
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        context = tokens(24, seed=2) % tiny.vocab_size
        served = server.serve(context, 0)
        assert served.output_tokens.shape == (0,)
        assert served.output_tokens.dtype == np.int32
        np.testing.assert_array_equal(served.full_sequence, context)
        assert served.prefilled_tokens == len(context)

        follow = np.concatenate([context, tokens(8, seed=3) % tiny.vocab_size])
        second = server.serve(follow, 2)
        assert second.hit_tokens > 0
        assert server.cache.open_sessions == 0

    def test_serve_steps_closed_early_aborts_session(self, tiny, tokens):
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        gen = server.serve_steps(tokens(20, seed=4) % tiny.vocab_size, 8)
        next(gen)  # prefill ran, session is open
        assert server.cache.open_sessions == 1
        gen.close()
        assert server.cache.open_sessions == 0
        assert all(n.pin_count == 0 for n in server.cache.tree.iter_nodes())

    def test_seeded_sampling_reproducible_and_exact_under_reuse(
        self, tiny, reference, tokens
    ):
        """Seeded temperature sampling is reproducible across servers, and
        prefix reuse does not perturb the sampled outputs either."""
        params = DecodeParams(temperature=0.7, seed=99)
        prefix = tokens(20, seed=5) % tiny.vocab_size

        warm_server = ExactReuseServer(tiny, int(1e9), seed=0)
        first = warm_server.serve(prefix, 4)  # greedy pass populates the cache
        query = np.concatenate(
            [first.full_sequence, tokens(6, seed=55) % tiny.vocab_size]
        )
        cold = ExactReuseServer(tiny, int(1e9), seed=0).serve(query, 5, params=params)
        warm = warm_server.serve(query, 5, params=params)
        assert warm.hit_tokens == len(first.full_sequence)
        np.testing.assert_array_equal(warm.output_tokens, cold.output_tokens)

    def test_forced_outputs_override_selection_and_commit(self, tiny, tokens):
        """Teacher forcing: the served output is the forced sequence, the
        commit reflects it, and n_output is taken from its length."""
        server = ExactReuseServer(tiny, int(1e9), seed=0)
        query = tokens(18, seed=6) % tiny.vocab_size
        forced = tokens(5, seed=7) % tiny.vocab_size
        served = server.serve(query, 999, forced_outputs=forced)
        np.testing.assert_array_equal(served.output_tokens, forced)
        np.testing.assert_array_equal(
            served.full_sequence, np.concatenate([query, forced])
        )
        follow = np.concatenate([served.full_sequence, tokens(4, seed=8) % tiny.vocab_size])
        assert server.serve(follow, 1).hit_tokens == len(served.full_sequence)


class TestClockInjection:
    def test_injected_clock_stamps_cache_accesses(self, tiny, tokens):
        ticks = []

        def clock():
            ticks.append(len(ticks))
            return float(len(ticks))

        server = ExactReuseServer(tiny, int(1e9), seed=0, clock=clock)
        server.serve(tokens(12, seed=9) % tiny.vocab_size, 2)
        # begin() and commit() each stamp once per request.
        assert len(ticks) == 2
        server.serve(tokens(12, seed=10) % tiny.vocab_size, 2)
        assert len(ticks) == 4

    def test_default_clock_is_private_and_monotone(self, tiny, tokens):
        a = ExactReuseServer(tiny, int(1e9), seed=0)
        b = ExactReuseServer(tiny, int(1e9), seed=0)
        assert a.clock is not b.clock
        first, second = a.clock(), a.clock()
        assert second > first
