"""Session-API semantics: lifecycle, legacy-shim identity, and leak safety.

Covers the transactional request-session surface:

* the legacy ``lookup``/``admit`` shims are byte-identical to driving
  ``begin``/``commit`` directly (property-tested over random traces),
* the lifecycle state machine (double-commit, commit-after-abort,
  abort-after-commit, detach-on-reset) behaves as documented,
* aborts — including abort storms under eviction pressure and interleaved
  with committing requests — leave zero pinned nodes, ``open_sessions == 0``,
  and intact accounting (``used_bytes == recompute_used_bytes()``).
"""

import gc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.vanilla import VanillaCache
from repro.baselines.vllm_plus import VLLMPlusCache
from repro.core.cache import MarconiCache, MarconiSession
from repro.core.interfaces import CacheProtocol, RequestSession, SessionState
from repro.models.presets import tiny_test_model
from repro.tiering.tiered_cache import TieredMarconiCache

# Small alphabet makes prefix collisions (splits, extensions) likely.
token_seq = st.lists(st.integers(0, 3), min_size=1, max_size=24)


@st.composite
def request_stream(draw, min_size=2, max_size=14):
    """A list of (input, output) pairs with organic prefix sharing."""
    n = draw(st.integers(min_size, max_size))
    requests = []
    history: list[list[int]] = []
    for _ in range(n):
        if history and draw(st.booleans()):
            base = draw(st.sampled_from(history))
            cut = draw(st.integers(1, len(base)))
            inp = base[:cut] + draw(token_seq)
        else:
            inp = draw(token_seq)
        out = draw(token_seq)
        requests.append((inp, out))
        history.append(inp + out)
    return requests


def _arr(seq) -> np.ndarray:
    return np.asarray(seq, dtype=np.int32)


def _make_cache(kind: str, capacity: int):
    model = tiny_test_model()
    if kind == "marconi":
        return MarconiCache(model, capacity, alpha=1.0)
    if kind == "tiered":
        return TieredMarconiCache(model, capacity, capacity * 4, alpha=1.0)
    if kind == "vllm+":
        return VLLMPlusCache(model, capacity, block_size=4)
    if kind == "vanilla":
        return VanillaCache(model)
    raise KeyError(kind)


CACHE_KINDS = ("marconi", "tiered", "vllm+", "vanilla")


class TestLegacyShimIdentity:
    """lookup/admit must be indistinguishable from begin/commit."""

    @pytest.mark.parametrize("kind", CACHE_KINDS)
    @given(requests=request_stream(), capacity_kb=st.integers(1, 500))
    @settings(max_examples=25, deadline=None)
    def test_replay_stats_byte_identical(self, kind, requests, capacity_kb):
        legacy = _make_cache(kind, capacity_kb * 1024)
        modern = _make_cache(kind, capacity_kb * 1024)
        for i, (inp, out) in enumerate(requests):
            arr_in, arr_full = _arr(inp), _arr(inp + out)
            r = legacy.lookup(arr_in, float(i))
            legacy.admit(arr_full, float(i) + 0.5, handle=r.handle)
            with modern.begin(arr_in, float(i)) as session:
                assert session.hit_tokens == r.hit_tokens
                assert session.reused_bytes == r.reused_bytes
                assert session.checkpoint_positions == r.checkpoint_positions
                session.commit(arr_full, float(i) + 0.5)
        assert legacy.stats.snapshot() == modern.stats.snapshot()
        assert legacy.used_bytes == modern.used_bytes
        assert legacy.open_sessions == 0 and modern.open_sessions == 0

    @given(requests=request_stream(), capacity_kb=st.integers(1, 500))
    @settings(max_examples=25, deadline=None)
    def test_replay_tree_identical(self, requests, capacity_kb):
        """Beyond stats: the radix trees end structurally identical."""
        legacy = _make_cache("marconi", capacity_kb * 1024)
        modern = _make_cache("marconi", capacity_kb * 1024)
        for i, (inp, out) in enumerate(requests):
            arr_in, arr_full = _arr(inp), _arr(inp + out)
            r = legacy.lookup(arr_in, float(i))
            legacy.admit(arr_full, float(i) + 0.5, handle=r.handle)
            session = modern.begin(arr_in, float(i))
            session.commit(arr_full, float(i) + 0.5)

        def shape(tree):
            return sorted(
                (tuple(n.path_tokens().tolist()), n.has_ssm_state)
                for n in tree.iter_nodes()
            )

        assert shape(legacy.tree) == shape(modern.tree)

    def test_lookup_handle_is_the_session(self):
        cache = _make_cache("marconi", 1 << 20)
        r = cache.lookup(_arr([1, 2, 3]), 0.0)
        assert isinstance(r.handle, RequestSession)
        assert r.handle.is_open
        cache.admit(_arr([1, 2, 3, 4]), 0.5, handle=r.handle)
        assert r.handle.is_committed

    def test_dropped_lookup_handle_preserves_legacy_pin(self):
        """The deprecated shim must keep the legacy drop-the-handle
        behaviour: the path stays charged and pinned (no GC abort)."""
        cache = _make_cache("marconi", 1 << 24)
        cache.lookup(_arr(list(range(20))), 0.0)
        gc.collect()
        assert cache.used_bytes > 0
        assert any(n.is_pinned for n in cache.tree.iter_nodes())
        assert cache.open_sessions == 1  # the faithful leak, now observable


class TestLifecycle:
    def test_commit_closes_and_double_commit_raises(self):
        cache = _make_cache("marconi", 1 << 20)
        session = cache.begin(_arr([1, 2, 3]), 0.0)
        assert cache.open_sessions == 1
        session.commit(_arr([1, 2, 3, 4]), 0.5)
        assert session.state is SessionState.COMMITTED
        assert cache.open_sessions == 0
        with pytest.raises(ValueError, match="already admitted"):
            session.commit(_arr([1, 2, 3, 4]), 1.0)

    def test_commit_after_abort_raises(self):
        cache = _make_cache("marconi", 1 << 20)
        session = cache.begin(_arr([1, 2, 3]), 0.0)
        session.abort()
        assert session.is_aborted
        with pytest.raises(ValueError, match="aborted"):
            session.commit(_arr([1, 2, 3, 4]), 0.5)

    def test_abort_is_idempotent_and_safe_after_commit(self):
        cache = _make_cache("marconi", 1 << 20)
        session = cache.begin(_arr([1, 2, 3]), 0.0)
        session.commit(_arr([1, 2, 3, 4]), 0.5)
        session.abort()  # no-op
        assert session.is_committed
        other = cache.begin(_arr([7, 8]), 1.0)
        other.abort()
        other.abort()  # idempotent
        assert other.is_aborted
        assert cache.open_sessions == 0

    def test_context_manager_aborts_on_exception(self):
        cache = _make_cache("marconi", 1 << 24)
        with pytest.raises(RuntimeError):
            with cache.begin(_arr(list(range(12))), 0.0) as session:
                raise RuntimeError("prefill executor died")
        assert session.is_aborted
        assert cache.open_sessions == 0
        assert all(n.pin_count == 0 for n in cache.tree.iter_nodes())
        assert cache.used_bytes == cache.recompute_used_bytes()

    def test_context_manager_commit_wins(self):
        cache = _make_cache("marconi", 1 << 24)
        with cache.begin(_arr([1, 2, 3]), 0.0) as session:
            session.commit(_arr([1, 2, 3, 4]), 0.5)
        assert session.is_committed

    def test_gc_of_begin_session_aborts(self):
        cache = _make_cache("marconi", 1 << 24)
        cache.begin(_arr(list(range(16))), 0.0)  # dropped immediately
        gc.collect()
        assert cache.open_sessions == 0
        assert all(n.pin_count == 0 for n in cache.tree.iter_nodes())
        assert cache.used_bytes == cache.recompute_used_bytes()

    def test_gc_mid_operation_defers_abort_to_next_entry(self):
        """A session collected while the cache is mid-operation must not
        roll back reentrantly; it parks on the deferred list and drains at
        the next begin/commit."""
        cache = _make_cache("marconi", 1 << 24)
        session = cache.begin(_arr(list(range(16))), 0.0)
        cache._mutating = True  # simulate GC firing inside an operation
        del session
        gc.collect()
        cache._mutating = False
        assert cache._deferred_aborts, "session should be parked, not aborted"
        assert any(n.is_pinned for n in cache.tree.iter_nodes())
        cache.begin(_arr([7, 8]), 1.0).abort()  # next operation drains the backlog
        assert not cache._deferred_aborts
        assert cache.open_sessions == 0
        assert all(n.pin_count == 0 for n in cache.tree.iter_nodes())
        assert cache.used_bytes == cache.recompute_used_bytes()

    def test_admit_rejects_foreign_cache_handle(self):
        """A handle must be admitted into the cache that issued it."""
        issuer = _make_cache("marconi", 1 << 20)
        other = _make_cache("marconi", 1 << 20)
        r = issuer.lookup(_arr([1, 2, 3]), 0.0)
        with pytest.raises(TypeError, match="different cache"):
            other.admit(_arr([1, 2, 3, 4]), 0.5, handle=r.handle)
        assert r.handle.is_open  # the mix-up must not close the session
        issuer.admit(_arr([1, 2, 3, 4]), 1.0, handle=r.handle)

    def test_reset_detaches_open_sessions(self):
        cache = _make_cache("marconi", 1 << 24)
        session = cache.begin(_arr([1, 2, 3]), 0.0)
        cache.reset()
        assert cache.open_sessions == 0
        assert session.state is SessionState.DETACHED
        with pytest.raises(ValueError, match="reset"):
            session.commit(_arr([1, 2, 3, 4]), 0.5)
        session.abort()  # inert, must not touch the rebuilt tree
        assert cache.used_bytes == 0 == cache.recompute_used_bytes()

    def test_attach_requires_open_session(self):
        cache = MarconiCache(tiny_test_model(), 1 << 24, alpha=1.0, store_states=True)
        session = cache.begin(_arr([1, 2, 3]), 0.0)
        session.commit(_arr([1, 2, 3, 4]), 0.5)
        with pytest.raises(ValueError, match="committed"):
            session.attach_branch_state(3, {"state": 1})

    def test_begin_many_orders_and_counts(self):
        cache = _make_cache("marconi", 1 << 24)
        seqs = [_arr([1, 2, 3]), _arr([1, 2, 9]), _arr([4, 5])]
        sessions = cache.begin_many(seqs, 0.0)
        assert len(sessions) == 3
        assert cache.open_sessions == 3
        for session, seq in zip(sessions, seqs):
            assert session.input_tokens == len(seq)
            session.commit(np.concatenate([seq, _arr([11])]), 1.0)
        assert cache.open_sessions == 0

    @pytest.mark.parametrize("kind", CACHE_KINDS)
    def test_every_cache_satisfies_protocol(self, kind):
        cache = _make_cache(kind, 1 << 20)
        assert isinstance(cache, CacheProtocol)

    def test_marconi_session_type(self):
        cache = _make_cache("marconi", 1 << 20)
        session = cache.begin(_arr([1, 2]), 0.0)
        assert isinstance(session, MarconiSession)
        session.abort()


class TestAbortRollback:
    def test_abort_releases_pins_and_rolls_back_insert(self):
        cache = _make_cache("marconi", 1 << 24)
        session = cache.begin(_arr(list(range(30))), 0.0)
        assert cache.used_bytes > 0
        session.abort()
        assert cache.used_bytes == 0
        assert cache.tree.n_nodes == 0
        assert all(n.pin_count == 0 for n in cache.tree.iter_nodes())

    def test_abort_keeps_shared_prefix_intact(self):
        """Aborting one request must not damage paths other requests
        committed (or still hold open) on the shared prefix."""
        cache = _make_cache("marconi", 1 << 24)
        shared = list(range(10))
        with cache.begin(_arr(shared + [91, 92]), 0.0) as first:
            first.commit(_arr(shared + [91, 92, 93]), 0.5)
        used_before = cache.used_bytes
        victim = cache.begin(_arr(shared + [77, 78]), 1.0)
        victim.abort()
        assert cache.used_bytes == used_before == cache.recompute_used_bytes()
        # The committed path still fully matches.
        assert cache.tree.match(_arr(shared + [91, 92, 93])).matched_len == 13
        cache.tree.check_integrity()

    def test_abort_preserves_extension_built_on_our_edge(self):
        """If another session grew a path through our speculative leaf,
        abort must leave the now-shared tokens in place."""
        cache = _make_cache("marconi", 1 << 24)
        ours = cache.begin(_arr([1, 2, 3, 4]), 0.0)
        with cache.begin(_arr([1, 2, 3, 4, 5, 6]), 1.0) as theirs:
            theirs.commit(_arr([1, 2, 3, 4, 5, 6, 7]), 1.5)
        ours.abort()
        assert all(n.pin_count == 0 for n in cache.tree.iter_nodes())
        assert cache.used_bytes == cache.recompute_used_bytes()
        assert cache.tree.match(_arr([1, 2, 3, 4, 5, 6, 7])).matched_len == 7
        cache.tree.check_integrity()

    def test_abort_storm_leaves_no_pins(self):
        """The regression for the seed's pin leak: a storm of sessions
        aborted under eviction pressure leaves zero pinned nodes and zero
        open sessions."""
        model = tiny_test_model()
        cache = MarconiCache(model, capacity_bytes=64 * 1024, alpha=1.0)
        rng = np.random.default_rng(7)
        history = []
        for i in range(200):
            if history and rng.random() < 0.5:
                base = history[rng.integers(len(history))]
                cut = int(rng.integers(1, len(base) + 1))
                inp = list(base[:cut]) + rng.integers(0, 4, size=6).tolist()
            else:
                inp = rng.integers(0, 4, size=int(rng.integers(4, 40))).tolist()
            session = cache.begin(_arr(inp), float(i))
            if rng.random() < 0.6:
                session.abort()
            else:
                full = inp + rng.integers(0, 4, size=8).tolist()
                session.commit(_arr(full), float(i) + 0.5)
                history.append(full)
            assert cache.used_bytes == cache.recompute_used_bytes()
        assert cache.open_sessions == 0
        assert all(n.pin_count == 0 for n in cache.tree.iter_nodes())
        assert cache.stats.extra.get("aborted_sessions", 0) > 0
        cache.tree.check_integrity()

    @given(requests=request_stream(min_size=4, max_size=18), data=st.data(),
           capacity_kb=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_random_interleavings_keep_invariants(self, requests, data, capacity_kb):
        """Arbitrary begin/commit/abort interleavings (with several
        sessions in flight at once, under eviction pressure) preserve the
        accounting invariant and end with no leaked pins."""
        model = tiny_test_model()
        cache = MarconiCache(model, capacity_bytes=capacity_kb * 1024, alpha=1.0)
        open_sessions: list[tuple[list, MarconiSession]] = []
        clock = 0.0
        for inp, out in requests:
            clock += 1.0
            open_sessions.append((inp + out, cache.begin(_arr(inp), clock)))
            while open_sessions and data.draw(st.booleans()):
                index = data.draw(st.integers(0, len(open_sessions) - 1))
                full, session = open_sessions.pop(index)
                if data.draw(st.booleans()):
                    session.abort()
                else:
                    clock += 1.0
                    session.commit(_arr(full), clock)
            assert cache.used_bytes == cache.recompute_used_bytes()
            assert cache.used_bytes <= cache.capacity_bytes
            cache.tree.check_integrity()
        for full, session in open_sessions:
            session.abort()
        assert cache.open_sessions == 0
        assert all(n.pin_count == 0 for n in cache.tree.iter_nodes())
        assert cache.used_bytes == cache.recompute_used_bytes()

    def test_tiered_abort_keeps_both_tiers_consistent(self):
        model = tiny_test_model()
        cache = TieredMarconiCache(model, 32 * 1024, 256 * 1024, alpha=1.0)
        rng = np.random.default_rng(3)
        for i in range(120):
            inp = rng.integers(0, 4, size=int(rng.integers(4, 30))).tolist()
            session = cache.begin(_arr(inp), float(i))
            if i % 3 == 0:
                session.abort()
            else:
                session.commit(_arr(inp + [1, 2, 3]), float(i) + 0.5)
        assert cache.open_sessions == 0
        assert all(n.pin_count == 0 for n in cache.tree.iter_nodes())
        assert cache.used_bytes == cache.recompute_used_bytes()
        assert cache.secondary_used_bytes <= cache.secondary.capacity_bytes
