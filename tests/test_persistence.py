"""Tests for cache snapshot/restore (warm restarts)."""

import numpy as np
import pytest

from repro.core.cache import MarconiCache
from repro.core.persistence import load_cache, load_tree, save_cache
from repro.models.memory import node_state_bytes
from repro.models.presets import transformer_7b
from repro.workloads.lmsys import generate_lmsys_trace


def toks(n, seed):
    return np.random.default_rng(seed).integers(0, 32000, size=n, dtype=np.int32)


def _warm_cache(hybrid, capacity=None, n=8):
    cache = MarconiCache(
        hybrid,
        capacity or 50 * node_state_bytes(hybrid, 2000, True),
        alpha=1.0,
    )
    shared = toks(200, 1)
    for i in range(n):
        seq = np.concatenate([shared, toks(100 + 13 * i, 100 + i)])
        r = cache.lookup(seq, float(i))
        cache.admit(np.concatenate([seq, toks(40, 200 + i)]), i + 0.5, handle=r.handle)
    return cache


class TestRoundtrip:
    def test_structure_and_stats_preserved(self, hybrid, tmp_path):
        cache = _warm_cache(hybrid)
        path = tmp_path / "cache.npz"
        save_cache(cache, path)
        tree, meta = load_tree(path)
        assert meta["model_name"] == hybrid.name
        assert meta["n_nodes"] == cache.tree.n_nodes

        original = {
            n.path_tokens().tobytes(): (n.has_ssm_state, n.last_access, n.hit_count)
            for n in cache.tree.iter_nodes()
        }
        restored = {
            n.path_tokens().tobytes(): (n.has_ssm_state, n.last_access, n.hit_count)
            for n in tree.iter_nodes()
        }
        assert restored == original

    def test_restored_cache_serves_same_hits(self, hybrid, tmp_path):
        cache = _warm_cache(hybrid)
        path = tmp_path / "cache.npz"
        save_cache(cache, path)
        warm = load_cache(hybrid, cache.capacity_bytes, path, alpha=1.0)
        assert warm.used_bytes == cache.used_bytes

        query = np.concatenate([toks(200, 1), toks(113, 100), toks(40, 200), toks(5, 999)])
        a = cache.lookup(query, 100.0)
        b = warm.lookup(query, 100.0)
        assert a.hit_tokens == b.hit_tokens > 0
        cache.admit(np.concatenate([query, [1]]).astype(np.int32), 100.5, handle=a.handle)
        warm.admit(np.concatenate([query, [1]]).astype(np.int32), 100.5, handle=b.handle)

    def test_warm_restart_preserves_trace_hit_rate(self, hybrid, tmp_path):
        """Splitting a trace across a save/load boundary loses nothing."""
        trace = generate_lmsys_trace(n_sessions=10, seed=61)
        requests = list(trace.iter_requests_nominal())
        half = len(requests) // 2
        capacity = 50 * node_state_bytes(hybrid, 3000, True)

        unbroken = MarconiCache(hybrid, capacity, alpha=1.0)
        for now, _, _, inp, full in requests:
            r = unbroken.lookup(inp, now)
            unbroken.admit(full, now, handle=r.handle)

        first = MarconiCache(hybrid, capacity, alpha=1.0)
        for now, _, _, inp, full in requests[:half]:
            r = first.lookup(inp, now)
            first.admit(full, now, handle=r.handle)
        path = tmp_path / "restart.npz"
        save_cache(first, path)
        second = load_cache(hybrid, capacity, path, alpha=1.0)
        hit_tokens = first.stats.hit_tokens
        input_tokens = first.stats.input_tokens
        for now, _, _, inp, full in requests[half:]:
            r = second.lookup(inp, now)
            second.admit(full, now, handle=r.handle)
        combined = (hit_tokens + second.stats.hit_tokens) / (
            input_tokens + second.stats.input_tokens
        )
        assert combined == pytest.approx(unbroken.stats.token_hit_rate)

    def test_empty_cache_roundtrip(self, hybrid, tmp_path):
        cache = MarconiCache(hybrid, int(1e9), alpha=0.0)
        path = tmp_path / "empty.npz"
        save_cache(cache, path)
        warm = load_cache(hybrid, int(1e9), path)
        assert warm.tree.n_nodes == 0
        assert warm.used_bytes == 0

    def test_pure_transformer_roundtrip(self, tmp_path):
        model = transformer_7b()
        cache = MarconiCache(model, int(1e12), alpha=0.0)
        seq = toks(300, 71)
        r = cache.lookup(seq, 0.0)
        cache.admit(np.concatenate([seq, toks(20, 72)]), 0.5, handle=r.handle)
        path = tmp_path / "t.npz"
        save_cache(cache, path)
        warm = load_cache(model, int(1e12), path)
        assert warm.used_bytes == cache.used_bytes


class TestGuards:
    def test_refuses_inflight_requests(self, hybrid, tmp_path):
        cache = MarconiCache(hybrid, int(1e12), alpha=0.0)
        seq = toks(100, 81)
        r = cache.lookup(seq, 0.0)
        with pytest.raises(ValueError, match="in-flight"):
            save_cache(cache, tmp_path / "x.npz")
        cache.admit(np.concatenate([seq, [1]]).astype(np.int32), 0.5, handle=r.handle)
        save_cache(cache, tmp_path / "x.npz")  # fine once closed

    def test_model_mismatch_rejected(self, hybrid, tmp_path):
        cache = _warm_cache(hybrid, n=2)
        path = tmp_path / "m.npz"
        save_cache(cache, path)
        with pytest.raises(ValueError, match="model"):
            load_cache(transformer_7b(), int(1e12), path)

    def test_shrinking_load_evicts_to_fit(self, hybrid, tmp_path):
        cache = _warm_cache(hybrid, n=8)
        path = tmp_path / "s.npz"
        save_cache(cache, path)
        small = cache.used_bytes // 2
        warm = load_cache(hybrid, small, path, alpha=0.0)
        assert warm.used_bytes <= small
        assert warm.used_bytes == warm.recompute_used_bytes()
        warm.tree.check_integrity()
