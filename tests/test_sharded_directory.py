"""Differential + property conformance harness for the sharded directory.

The sharded directory's load-bearing promise is *zero-delay exactness*:
with ``propagation_delay=0`` a :class:`ShardedPrefixDirectory` of any
shard count and region size must be lookup- and routing-decision-identical
to the synchronous :class:`PrefixDirectory` oracle, for any stream of
cache operations (inserts, evictions, aborts, truncations, resets,
replica failures and joins).  The suites here pin that contract the same
way ``tests/test_kernel_conformance.py`` pins the kernel against the
legacy engines — a hand-written differential harness plus hypothesis-
randomized operation streams — then exercise what the oracle cannot
express: bounded staleness (delayed gossip, budget throttling, lookup
ages), shard loss, dropped batches, and shared multi-router views.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    DirectoryRouter,
    HierarchicalRouter,
    ManualGossipTransport,
    PrefixAffinityRouter,
    PrefixDirectory,
    ShardedPrefixDirectory,
    make_router,
)
from repro.cluster.sharded_directory import _HashRing
from repro.core.cache import MarconiCache
from repro.core.tokens import TokenSeq
from repro.models.memory import node_state_bytes
from repro.models.presets import hybrid_7b, transformer_7b

HYBRID = hybrid_7b()
TRANSFORMER = transformer_7b()


def toks(n, seed):
    return np.random.default_rng(seed).integers(0, 32000, size=n, dtype=np.int32)


def tiny(n, seed):
    """Tiny-vocab sequences maximize shared prefixes, splits, evictions."""
    return np.random.default_rng(seed).integers(0, 4, size=n, dtype=np.int32)


def serve(cache, seq, now, out=10, out_seed=991):
    with cache.begin(seq, now) as session:
        full = np.concatenate([seq, toks(out, out_seed)])
        session.commit(full, now + 0.5)
    return full


def assert_lookup_identical(sharded, oracle, queries):
    """The differential check: sharded lookups must equal the oracle's
    exactly — same replica sets, same depths, byte for byte."""
    for query in queries:
        query = np.asarray(query, dtype=np.int32)
        for limit in (len(query), max(len(query) - 1, 0)):
            got = sharded.lookup(query, limit=limit)
            want = oracle.lookup(query, limit=limit)
            assert got.kv_matched == want.kv_matched, (
                f"kv divergence for {len(query)}-token query at limit {limit}: "
                f"sharded {got.kv_matched} != oracle {want.kv_matched}"
            )
            assert got.ckpt_depth == want.ckpt_depth, (
                f"ckpt divergence for {len(query)}-token query at limit {limit}: "
                f"sharded {got.ckpt_depth} != oracle {want.ckpt_depth}"
            )


def fresh_cache(model=HYBRID, capacity=int(1e12), alpha=0.0):
    return MarconiCache(model, capacity, alpha=alpha)


class TestShardedValidation:
    def test_constructor_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ShardedPrefixDirectory(n_shards=0)
        with pytest.raises(ValueError):
            ShardedPrefixDirectory(region_tokens=0)
        with pytest.raises(ValueError):
            ShardedPrefixDirectory(propagation_delay=-1.0)
        with pytest.raises(ValueError):
            ShardedPrefixDirectory(gossip_budget=0)
        with pytest.raises(ValueError):
            ShardedPrefixDirectory(propagation_delay=1.0, gossip_interval=0.0)

    def test_drop_gossip_rejects_bad_batches(self):
        with pytest.raises(ValueError):
            ShardedPrefixDirectory().drop_gossip(batches=0)

    def test_fail_shard_rejects_unknown_index(self):
        with pytest.raises(ValueError):
            ShardedPrefixDirectory(n_shards=2).fail_shard(5)

    def test_attach_contract_matches_oracle(self):
        """Opaque caches and probe-owning caches fall back to deep probing
        under the sharded backend exactly as under the oracle."""

        class Opaque:
            pass

        class WithProbe:
            tree = None

            def probe(self, tokens):
                return 7

        sharded = ShardedPrefixDirectory(n_shards=3)
        assert not sharded.attach(0, Opaque())
        assert not sharded.attach(1, WithProbe())
        assert sharded.attach(2, fresh_cache())
        assert sharded.untracked_replicas == 2
        assert sharded.replicas == (2,)
        assert sharded.tracked(2) and not sharded.tracked(0)

    def test_attach_rebinds_on_cache_change(self):
        sharded = ShardedPrefixDirectory(n_shards=2, region_tokens=4)
        old, new = fresh_cache(), fresh_cache()
        sharded.attach(0, old)
        full = serve(old, tiny(20, 1), 0.0)
        assert sharded.lookup(full, limit=len(full)).ckpt_depth
        # Same slot, different cache (an elastic join reusing the index):
        # the old cache's entries must vanish, the new tree is resynced.
        sharded.attach(0, new)
        assert not sharded.lookup(full, limit=len(full)).ckpt_depth
        full2 = serve(new, tiny(16, 2), 1.0)
        assert sharded.lookup(full2, limit=len(full2)).ckpt_depth == {0: len(full2)}


class TestHashRing:
    def test_remove_keeps_surviving_assignments(self):
        """Consistent hashing's point: killing one shard remaps only that
        shard's keys — every key owned by a survivor keeps its owner."""
        ring = _HashRing(shards=8, vnodes=16)
        keys = [int(k) for k in np.random.default_rng(0).integers(0, 2**32, 500)]
        before = {key: ring.lookup(key) for key in keys}
        ring.remove(3)
        for key, owner in before.items():
            if owner != 3:
                assert ring.lookup(key) == owner
            else:
                assert ring.lookup(key) != 3

    def test_empty_ring_maps_nothing(self):
        ring = _HashRing(shards=1, vnodes=4)
        ring.remove(0)
        assert ring.lookup(12345) is None


class TestZeroDelayConformance:
    """Hand-written differential scenarios at propagation_delay=0."""

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    @pytest.mark.parametrize("region_tokens", [2, 4, 32])
    def test_serve_evict_reset_identical(self, n_shards, region_tokens):
        per_seq = node_state_bytes(HYBRID, 64, True)
        caches = [MarconiCache(HYBRID, 3 * per_seq, alpha=1.0) for _ in range(3)]
        sharded = ShardedPrefixDirectory(n_shards=n_shards, region_tokens=region_tokens)
        oracle = PrefixDirectory()
        for i, cache in enumerate(caches):
            assert sharded.attach(i, cache) == oracle.attach(i, cache)
        now = 0.0
        for step in range(18):
            cache = caches[step % 3]
            if step % 7 == 6:
                cache.reset()
            else:
                with cache.begin(tiny(8 + 3 * step, step % 5), now) as session:
                    session.commit(tiny(12 + 3 * step, step % 5), now + 0.5)
            now += 1.0
        sharded.check_integrity()
        oracle.check_integrity()
        queries = [tiny(n, s) for n in (1, 5, 30, 70) for s in range(5)]
        assert_lookup_identical(sharded, oracle, queries)

    def test_transformer_mid_edge_identical(self):
        """Raw KV matches that end mid-edge (no checkpoint alignment) must
        survive the region truncation unchanged."""
        cache = MarconiCache(TRANSFORMER, int(1e12), alpha=0.0)
        sharded = ShardedPrefixDirectory(n_shards=4, region_tokens=8)
        oracle = PrefixDirectory()
        sharded.attach(0, cache)
        oracle.attach(0, cache)
        seq = toks(300, 40)
        serve(cache, seq, 0.0)
        queries = [
            np.concatenate([seq[:137], toks(60, 41)]),
            seq[:5],  # shorter than the region: answered from the
            seq[:8],  # truncated replicas present on every shard
            np.concatenate([seq, toks(10, 42)]),
        ]
        assert_lookup_identical(sharded, oracle, queries)

    def test_truncation_identical(self):
        cache = MarconiCache(TRANSFORMER, int(1e12), alpha=0.0)
        sharded = ShardedPrefixDirectory(n_shards=3, region_tokens=4)
        oracle = PrefixDirectory()
        sharded.attach(0, cache)
        oracle.attach(0, cache)
        full = serve(cache, toks(400, 30), 0.0)
        leaf = max(cache.tree.iter_nodes(), key=lambda n: n.seq_len)
        cache.tree.truncate_leaf(leaf, leaf.kv_tokens // 2)
        sharded.check_integrity()
        assert_lookup_identical(
            sharded, oracle, [np.concatenate([full, toks(5, 31)]), full[:3]]
        )

    def test_detach_and_rejoin_identical(self):
        caches = [fresh_cache() for _ in range(3)]
        sharded = ShardedPrefixDirectory(n_shards=3, region_tokens=4)
        oracle = PrefixDirectory()
        for i, cache in enumerate(caches):
            sharded.attach(i, cache)
            oracle.attach(i, cache)
        fulls = [serve(caches[i], tiny(20 + i, i), float(i)) for i in range(3)]
        sharded.detach(1)
        oracle.detach(1)
        assert_lookup_identical(sharded, oracle, fulls)
        # Rejoin with warm content: attach resyncs on both backends.
        joiner = fresh_cache()
        full_j = serve(joiner, tiny(25, 9), 5.0)
        sharded.attach(3, joiner)
        oracle.attach(3, joiner)
        assert_lookup_identical(sharded, oracle, fulls + [full_j])
        assert sharded.replicas == oracle.replicas == (0, 2, 3)

    def test_interned_tokens_lookup_identical(self):
        """TokenSeq queries take the O(1) prefix-hash fast path; the
        answers must match the array slow path and the oracle."""
        cache = fresh_cache()
        sharded = ShardedPrefixDirectory(n_shards=4, region_tokens=8)
        oracle = PrefixDirectory()
        sharded.attach(0, cache)
        oracle.attach(0, cache)
        full = serve(cache, toks(100, 50), 0.0)
        query = np.concatenate([full, toks(5, 51)])
        interned = TokenSeq(query)
        assert sharded._region_key(interned) == sharded._region_key(query)
        a = sharded.lookup(interned, limit=len(query) - 1)
        b = oracle.lookup(query, limit=len(query) - 1)
        assert a.ckpt_depth == b.ckpt_depth and a.kv_matched == b.kv_matched

    def test_close_detaches_everything(self):
        cache = fresh_cache()
        sharded = ShardedPrefixDirectory(n_shards=2)
        sharded.attach(0, cache)
        sharded.close()
        assert sharded.replicas == ()
        # Observer removed: further cache activity must not be indexed.
        full = serve(cache, tiny(12, 3), 0.0)
        assert not sharded.lookup(full, limit=len(full)).ckpt_depth


@st.composite
def sharded_op_stream(draw):
    """A randomized fleet history: serves, aborts, resets, truncations,
    replica failures, and mid-stream joins, over a tiny vocabulary."""
    n_replicas = draw(st.integers(2, 3))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_replicas + 1),  # replica slot (incl. joiners)
                st.sampled_from(
                    ["serve", "serve", "serve", "abort", "reset", "truncate",
                     "fail", "join"]
                ),
                st.integers(1, 60),  # length
                st.integers(0, 5),  # vocab seed
            ),
            min_size=4,
            max_size=24,
        )
    )
    queries = draw(
        st.lists(
            st.tuples(st.integers(1, 80), st.integers(0, 5)),
            min_size=3,
            max_size=8,
        )
    )
    n_shards = draw(st.integers(1, 5))
    region_tokens = draw(st.sampled_from([2, 4, 8]))
    return n_replicas, ops, queries, n_shards, region_tokens


def _replay(stream, sharded, oracle, tight):
    """Drive one op stream into both backends; returns the query arrays."""
    n_replicas, ops, queries, _, _ = stream
    per_seq = node_state_bytes(HYBRID, 64, True)
    capacity = 3 * per_seq if tight else int(1e12)
    caches: dict[int, MarconiCache] = {}
    for i in range(n_replicas):
        caches[i] = MarconiCache(HYBRID, capacity, alpha=1.0)
        sharded.attach(i, caches[i])
        oracle.attach(i, caches[i])
    next_slot = n_replicas
    now = 0.0
    for slot, action, length, vocab_seed in ops:
        now += 1.0
        if action == "join":
            cache = MarconiCache(HYBRID, capacity, alpha=1.0)
            serve(cache, tiny(length, vocab_seed), now)  # join warm
            caches[next_slot] = cache
            sharded.attach(next_slot, cache)
            oracle.attach(next_slot, cache)
            next_slot += 1
            continue
        live = sorted(caches)
        replica = live[slot % len(live)]
        cache = caches[replica]
        if action == "fail":
            if len(caches) <= 1:
                continue  # keep at least one replica serving
            sharded.detach(replica)
            oracle.detach(replica)
            del caches[replica]
        elif action == "reset":
            cache.reset()
        elif action == "truncate":
            leaves = [
                n
                for n in cache.tree.iter_nodes()
                if n.is_leaf and n.kv_tokens > 1 and not n.has_ssm_state
            ]
            if leaves:
                leaf = max(leaves, key=lambda n: n.seq_len)
                cache.tree.truncate_leaf(leaf, leaf.kv_tokens // 2)
        else:
            seq = tiny(length, vocab_seed)
            session = cache.begin(seq, now)
            if action == "abort":
                session.abort()
            else:
                session.commit(
                    np.concatenate([seq, tiny(4, vocab_seed + 7)]), now + 0.5
                )
    return [tiny(n, s) for n, s in queries]


class TestShardedProperties:
    @settings(max_examples=40, deadline=None)
    @given(sharded_op_stream(), st.booleans())
    def test_randomized_lookup_identity(self, stream, tight):
        """The tentpole invariant: at zero delay, any shard count and
        region size, lookups are byte-identical to the oracle under any
        operation stream (including eviction pressure)."""
        _, _, _, n_shards, region_tokens = stream
        sharded = ShardedPrefixDirectory(n_shards=n_shards, region_tokens=region_tokens)
        oracle = PrefixDirectory()
        query_arrays = _replay(stream, sharded, oracle, tight)
        sharded.check_integrity()
        oracle.check_integrity()
        assert_lookup_identical(sharded, oracle, query_arrays)

    @settings(max_examples=20, deadline=None)
    @given(sharded_op_stream())
    def test_randomized_router_decision_identity(self, stream):
        """Routers backed by the sharded directory pick the same replica
        as oracle-backed and deep-probing routers, for any fleet state."""
        n_replicas, ops, queries, n_shards, region_tokens = stream
        caches = [fresh_cache() for _ in range(n_replicas)]
        now = 0.0
        for slot, action, length, vocab_seed in ops:
            if action in ("fail", "join", "truncate", "reset"):
                continue  # fixed fleet: this suite pins decisions only
            now += 1.0
            seq = tiny(length, vocab_seed)
            session = caches[slot % n_replicas].begin(seq, now)
            if action == "abort":
                session.abort()
            else:
                session.commit(
                    np.concatenate([seq, tiny(4, vocab_seed + 7)]), now + 0.5
                )
        deep = PrefixAffinityRouter(probe="deep")
        oracle_backed = PrefixAffinityRouter(probe="directory")
        sharded_backed = PrefixAffinityRouter(
            directory_factory=lambda: ShardedPrefixDirectory(
                n_shards=n_shards, region_tokens=region_tokens
            )
        )
        loads_cycle = [[i % 3 for i in range(n_replicas)], [0] * n_replicas]
        for qi, (n, s) in enumerate(queries):
            query = tiny(n, s)
            loads = loads_cycle[qi % 2]
            want = deep.route(query, qi, caches, loads, now)
            assert oracle_backed.route(query, qi, caches, loads, now) == want
            assert sharded_backed.route(query, qi, caches, loads, now) == want
        for router in (deep, oracle_backed, sharded_backed):
            router.release()


class TestBoundedStaleness:
    def test_updates_invisible_until_delay_passes(self):
        sharded = ShardedPrefixDirectory(
            n_shards=3, region_tokens=4, propagation_delay=5.0, gossip_interval=1.0
        )
        transport = ManualGossipTransport()
        sharded.connect_transport(transport)
        cache = fresh_cache()
        sharded.attach(0, cache)
        full = serve(cache, tiny(20, 1), 0.0)
        # Routed against the stale view: nothing visible yet.
        assert sharded.lookup(full, limit=len(full)).ckpt_depth == {}
        transport.run_until(4.9)
        assert sharded.lookup(full, limit=len(full)).ckpt_depth == {}
        transport.run_until(5.0)
        assert sharded.lookup(full, limit=len(full)).ckpt_depth == {0: len(full)}
        snap = sharded.staleness()
        assert snap["updates_pending"] == 0
        assert snap["updates_applied"] > 0

    def test_converges_to_oracle_after_pump(self):
        """Async mode is eventually exact: once every queued update is
        applied, lookups equal the synchronous oracle again."""
        sharded = ShardedPrefixDirectory(
            n_shards=3, region_tokens=4, propagation_delay=2.0, gossip_interval=1.0
        )
        oracle = PrefixDirectory()
        caches = [fresh_cache(), fresh_cache()]
        for i, cache in enumerate(caches):
            sharded.attach(i, cache)
            oracle.attach(i, cache)
        fulls = []
        for step in range(8):
            sharded.advance_to(float(step))
            fulls.append(serve(caches[step % 2], tiny(10 + step, step % 3), float(step)))
        sharded.pump(upto=100.0)
        sharded.check_integrity()
        assert_lookup_identical(sharded, oracle, fulls)

    def test_gossip_budget_throttles_per_flush(self):
        sharded = ShardedPrefixDirectory(
            n_shards=1,
            region_tokens=4,
            propagation_delay=1.0,
            gossip_budget=2,
            gossip_interval=0.5,
        )
        transport = ManualGossipTransport()
        sharded.connect_transport(transport)
        cache = fresh_cache()
        sharded.attach(0, cache)
        for i in range(6):
            serve(cache, tiny(12 + i, i), 0.0)
        shard = sharded.shards[0]
        backlog = len(shard.pending)
        assert backlog > 4
        transport.run_until(1.0)  # first flush: exactly budget-many apply
        assert shard.applied <= 2 and len(shard.pending) == backlog - shard.applied
        transport.run_until(50.0)  # retries drain the rest at the interval
        assert len(shard.pending) == 0
        assert shard.applied == backlog
        assert shard.flushes >= (backlog + 1) // 2

    def test_lookup_age_telemetry(self):
        sharded = ShardedPrefixDirectory(
            n_shards=1, region_tokens=4, propagation_delay=10.0, gossip_interval=1.0
        )
        transport = ManualGossipTransport()
        sharded.connect_transport(transport)
        cache = fresh_cache()
        sharded.attach(0, cache)
        full = serve(cache, tiny(16, 2), 0.0)
        transport.run_until(7.0)
        sharded.lookup(full, limit=len(full))  # oldest queued update: age 7
        snap = sharded.staleness()
        assert snap["lookup_age_max"] == pytest.approx(7.0)
        assert snap["lookup_age_p95"] > 0.0
        transport.run_until(20.0)
        sharded.lookup(full, limit=len(full))  # queue drained: age 0
        assert sharded.staleness()["lookup_age_p50"] < 7.0

    def test_reconnect_transport_reschedules_pending(self):
        sharded = ShardedPrefixDirectory(
            n_shards=2, region_tokens=4, propagation_delay=1.0, gossip_interval=0.5
        )
        first = ManualGossipTransport()
        sharded.connect_transport(first)
        cache = fresh_cache()
        sharded.attach(0, cache)
        full = serve(cache, tiny(14, 4), 0.0)
        # The first transport dies mid-run (a kernel run ends); a second
        # one picks the queue up without losing the backlog.
        second = ManualGossipTransport(start=first.now())
        sharded.connect_transport(second)
        second.run_until(30.0)
        assert sharded.staleness()["updates_pending"] == 0
        assert sharded.lookup(full, limit=len(full)).ckpt_depth == {0: len(full)}

    def test_staleness_snapshot_shape(self):
        sharded = ShardedPrefixDirectory(n_shards=2)
        cache = fresh_cache()
        sharded.attach(0, cache)
        serve(cache, tiny(10, 1), 0.0)
        sharded.lookup(tiny(10, 1), limit=10)
        snap = sharded.staleness()
        for key in (
            "backend",
            "n_shards",
            "live_shards",
            "region_tokens",
            "events",
            "lookups",
            "updates_applied",
            "updates_pending",
            "updates_dropped",
            "lookup_age_p50",
            "lookup_age_p95",
            "lookup_age_max",
            "per_shard",
        ):
            assert key in snap
        assert snap["backend"] == "sharded"
        assert len(snap["per_shard"]) == 2
        for entry in snap["per_shard"]:
            assert {"shard", "alive", "applied_updates", "pending_updates"} <= set(entry)


class TestShardFaults:
    def test_fail_shard_recovers_exactly(self):
        caches = [fresh_cache() for _ in range(2)]
        sharded = ShardedPrefixDirectory(n_shards=4, region_tokens=4)
        oracle = PrefixDirectory()
        for i, cache in enumerate(caches):
            sharded.attach(i, cache)
            oracle.attach(i, cache)
        fulls = [serve(caches[i], tiny(18 + i, i), float(i)) for i in range(2)]
        sharded.fail_shard(1)
        assert sharded.live_shards == 3
        assert sharded.staleness()["shard_losses"] == 1
        sharded.check_integrity()
        # Synchronous anti-entropy: survivors answer exactly, immediately.
        assert_lookup_identical(sharded, oracle, fulls + [tiny(30, 5)])
        # ...and keep tracking live mutations after the remap.
        fulls.append(serve(caches[0], tiny(33, 7), 9.0))
        assert_lookup_identical(sharded, oracle, fulls)

    def test_fail_shard_async_recovers_after_delay(self):
        sharded = ShardedPrefixDirectory(
            n_shards=3, region_tokens=4, propagation_delay=2.0, gossip_interval=1.0
        )
        transport = ManualGossipTransport()
        sharded.connect_transport(transport)
        oracle = PrefixDirectory()
        cache = fresh_cache()
        sharded.attach(0, cache)
        oracle.attach(0, cache)
        full = serve(cache, tiny(24, 1), 0.0)
        transport.run_until(10.0)
        sharded.fail_shard(0)
        transport.run_until(30.0)  # one propagation delay rebuilds the remap
        sharded.check_integrity()
        assert_lookup_identical(sharded, oracle, [full, tiny(40, 2)])

    def test_all_shards_lost_reports_empty(self):
        sharded = ShardedPrefixDirectory(n_shards=2, region_tokens=4)
        cache = fresh_cache()
        sharded.attach(0, cache)
        full = serve(cache, tiny(12, 1), 0.0)
        sharded.fail_shard(0)
        sharded.fail_shard(1)
        assert sharded.live_shards == 0
        lookup = sharded.lookup(full, limit=len(full))
        assert not lookup.ckpt_depth and not lookup.kv_matched

    def test_fail_shard_idempotent(self):
        sharded = ShardedPrefixDirectory(n_shards=2)
        sharded.fail_shard(0)
        sharded.fail_shard(0)
        assert sharded.staleness()["shard_losses"] == 1

    def test_dropped_gossip_recovers_exactly(self):
        sharded = ShardedPrefixDirectory(
            n_shards=2, region_tokens=4, propagation_delay=1.0, gossip_interval=0.5
        )
        transport = ManualGossipTransport()
        sharded.connect_transport(transport)
        oracle = PrefixDirectory()
        cache = fresh_cache()
        sharded.attach(0, cache)
        oracle.attach(0, cache)
        full = serve(cache, tiny(20, 2), 0.0)
        sharded.drop_gossip()  # every shard loses its next batch in transit
        transport.run_until(50.0)
        snap = sharded.staleness()
        assert snap["updates_dropped"] > 0
        assert snap["updates_pending"] == 0
        sharded.check_integrity()
        assert_lookup_identical(sharded, oracle, [full, tiny(35, 4)])

    def test_dropped_gossip_single_shard_counts(self):
        sharded = ShardedPrefixDirectory(
            n_shards=3, region_tokens=4, propagation_delay=1.0, gossip_interval=0.5
        )
        transport = ManualGossipTransport()
        sharded.connect_transport(transport)
        cache = fresh_cache()
        sharded.attach(0, cache)
        serve(cache, tiny(15, 3), 0.0)
        sharded.drop_gossip(shard=1, batches=1)
        transport.run_until(50.0)
        snap = sharded.staleness()
        per_shard = {entry["shard"]: entry for entry in snap["per_shard"]}
        assert per_shard[1]["dropped_batches"] == 1
        assert per_shard[0]["dropped_batches"] == 0
        assert per_shard[2]["dropped_batches"] == 0

    def test_stale_entries_eventually_invalidated(self):
        """An invalidation races in-flight lookups: stale shards keep
        answering with the dead replica until the gossip lands, then the
        entries are gone everywhere."""
        sharded = ShardedPrefixDirectory(
            n_shards=2, region_tokens=4, propagation_delay=3.0, gossip_interval=1.0
        )
        transport = ManualGossipTransport()
        sharded.connect_transport(transport)
        cache = fresh_cache()
        sharded.attach(0, cache)
        full = serve(cache, tiny(22, 5), 0.0)
        transport.run_until(10.0)
        assert sharded.lookup(full, limit=len(full)).ckpt_depth  # warm
        sharded.detach(0)  # failure: invalidation is gossiped, not instant
        assert sharded.lookup(full, limit=len(full)).ckpt_depth  # stale window
        transport.run_until(20.0)
        lookup = sharded.lookup(full, limit=len(full))
        assert not lookup.ckpt_depth and not lookup.kv_matched
        sharded.check_integrity()


class TestSharedBackendRouting:
    def test_two_routers_share_one_sharded_view(self):
        """A multi-router contention setup: both routers bind the same
        externally owned backend, neither closes it on release."""
        backend = ShardedPrefixDirectory(n_shards=3, region_tokens=8)
        router_a = PrefixAffinityRouter(directory=backend)
        router_b = PrefixAffinityRouter(directory=backend)
        caches = [fresh_cache() for _ in range(3)]
        full = serve(caches[1], toks(120, 6), 0.0)
        query = np.concatenate([full, toks(5, 7)])
        loads = [0, 0, 0]
        assert router_a.route(query, 0, caches, loads, 1.0) == 1
        assert router_b.route(query, 1, caches, loads, 1.0) == 1
        assert backend.lookups >= 2
        router_a.release()
        router_b.release()
        # The shared backend survives both releases, still attached.
        assert backend.replicas == (0, 1, 2)
        assert backend.lookup(query, limit=len(query) - 1).ckpt_depth
        backend.close()
        assert backend.replicas == ()

    def test_directory_router_accepts_sharded_backend(self):
        backend = ShardedPrefixDirectory(n_shards=2, region_tokens=8)
        router = DirectoryRouter(directory=backend)
        caches = [fresh_cache() for _ in range(2)]
        full = serve(caches[0], toks(150, 8), 0.0)
        decision = router.decide(
            np.concatenate([full, toks(5, 9)]), 0, caches, [0, 0], 1.0
        )
        assert decision.replica == 0
        assert router.directory is backend
        stats = router.directory_stats
        assert stats["backend"] == "sharded"
        router.release()
        backend.close()

    def test_hierarchical_in_registry_with_sharded_factory(self):
        router = make_router(
            "hierarchical",
            rack_size=2,
            directory_factory=lambda: ShardedPrefixDirectory(n_shards=2),
        )
        assert isinstance(router, HierarchicalRouter)
        caches = [fresh_cache() for _ in range(4)]
        full = serve(caches[3], toks(90, 10), 0.0)
        choice = router.route(
            np.concatenate([full, toks(4, 11)]), 0, caches, [0, 0, 0, 0], 1.0
        )
        assert choice == 3
        assert router.directory_stats["backend"] == "sharded"
        router.release()


class TestAutoProbeCrossover:
    def test_mode_pins_crossover_at_threshold(self):
        """The small-fleet regression fix: auto mode deep-probes below the
        threshold (directory maintenance costs more than a few tree walks)
        and switches to the directory at the crossover, never before."""
        router = PrefixAffinityRouter()  # probe="auto", auto_threshold=8
        for n in range(1, 8):
            assert router._mode(n) == "deep", f"fleet of {n} must deep-probe"
        for n in (8, 9, 64, 512):
            assert router._mode(n) == "directory"

    def test_auto_small_fleet_builds_no_directory(self):
        router = PrefixAffinityRouter()
        caches = [fresh_cache() for _ in range(4)]
        full = serve(caches[2], toks(100, 12), 0.0)
        query = np.concatenate([full, toks(5, 112)])
        router.prepare(HYBRID, caches, None)
        assert router.route(query, 0, caches, [0] * 4, 1.0) == 2
        assert router.directory is None
        assert router.directory_stats is None

    def test_auto_large_fleet_builds_directory(self):
        router = PrefixAffinityRouter(auto_threshold=4)
        caches = [fresh_cache() for _ in range(4)]
        full = serve(caches[2], toks(100, 13), 0.0)
        query = np.concatenate([full, toks(5, 113)])
        router.prepare(HYBRID, caches, None)
        assert router.route(query, 0, caches, [0] * 4, 1.0) == 2
        assert router.directory is not None
        router.release()

    def test_backend_forces_directory_mode_under_auto(self):
        router = PrefixAffinityRouter(
            directory_factory=lambda: ShardedPrefixDirectory(n_shards=2)
        )
        assert router._mode(2) == "directory"

    def test_backend_rejected_with_deep_probe(self):
        with pytest.raises(ValueError):
            PrefixAffinityRouter(probe="deep", directory=ShardedPrefixDirectory())
        with pytest.raises(ValueError):
            PrefixAffinityRouter(
                directory=ShardedPrefixDirectory(),
                directory_factory=ShardedPrefixDirectory,
            )

    def test_auto_decisions_identical_across_crossover(self):
        """One fleet straddling the threshold: auto (deep) and forced
        directory modes agree, so the crossover is invisible to routing."""
        caches = [fresh_cache() for _ in range(6)]
        for i in (1, 4):
            serve(caches[i], tiny(30 + i, i), float(i))
        auto = PrefixAffinityRouter(auto_threshold=8)  # 6 replicas: deep
        forced = PrefixAffinityRouter(probe="directory")
        for qi in range(8):
            query = tiny(10 + qi * 5, qi % 3)
            loads = [qi % 2] * 6
            assert auto.route(query, qi, caches, loads, 10.0) == forced.route(
                query, qi, caches, loads, 10.0
            )
        forced.release()


class TestHierarchicalRouting:
    def _warm(self, caches, replica, seed):
        return serve(caches[replica], toks(200, seed), 0.0, out_seed=seed + 100)

    def test_small_fleet_degrades_to_flat(self):
        flat = PrefixAffinityRouter(probe="deep")
        hier = HierarchicalRouter(rack_size=8, probe="deep")
        caches = [fresh_cache() for _ in range(4)]
        full = self._warm(caches, 2, 20)
        query = np.concatenate([full, toks(5, 21)])
        for loads in ([0, 0, 0, 0], [3, 1, 0, 2]):
            assert hier.route(query, 0, caches, loads, 1.0) == flat.route(
                query, 0, caches, loads, 1.0
            )

    def test_affinity_goes_to_owning_rack(self):
        hier = HierarchicalRouter(rack_size=2, probe="deep")
        caches = [fresh_cache() for _ in range(6)]
        full = self._warm(caches, 4, 22)  # rack 2 owns the prefix
        query = np.concatenate([full, toks(5, 23)])
        assert hier.route(query, 0, caches, [0] * 6, 1.0) == 4
        assert hier.decision_stats.get("rack_affinity", 0) == 1

    def test_overload_spills_rack_local(self):
        hier = HierarchicalRouter(rack_size=2, rack_max_imbalance=1, probe="deep")
        caches = [fresh_cache() for _ in range(6)]
        full = self._warm(caches, 4, 24)
        query = np.concatenate([full, toks(5, 25)])
        # Replica 4 is overloaded relative to its rack-mate 5: the spill
        # must stay inside rack 2 (replica 5), not scatter fleet-wide.
        loads = [0, 0, 0, 0, 9, 2]
        assert hier.route(query, 0, caches, loads, 1.0) == 5
        assert hier.decision_stats.get("rack_spilled", 0) == 1

    def test_cold_requests_fall_back_globally(self):
        hier = HierarchicalRouter(rack_size=2, probe="deep")
        caches = [fresh_cache() for _ in range(6)]
        loads = [5, 5, 5, 5, 0, 5]
        assert hier.route(toks(40, 26), 0, caches, loads, 1.0) == 4
        assert hier.decision_stats.get("cold", 0) == 1

    def test_rack_of_and_validation(self):
        hier = HierarchicalRouter(rack_size=4)
        assert [hier.rack_of(i) for i in (0, 3, 4, 11)] == [0, 0, 1, 2]
        with pytest.raises(ValueError):
            HierarchicalRouter(rack_size=0)
        with pytest.raises(ValueError):
            HierarchicalRouter(rack_max_imbalance=-1)

    def test_reset_clears_rack_rotation(self):
        hier = HierarchicalRouter(rack_size=2, rack_max_imbalance=0, probe="deep")
        caches = [fresh_cache() for _ in range(4)]
        full = self._warm(caches, 0, 27)
        query = np.concatenate([full, toks(5, 28)])
        hier.route(query, 0, caches, [9, 0, 0, 0], 1.0)
        assert hier._rack_rotation == 1
        hier.reset()
        assert hier._rack_rotation == 0
