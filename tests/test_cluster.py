"""Tests for cluster routing policies and the multi-replica simulator."""

import numpy as np
import pytest

from repro.cluster import (
    LeastLoadedRouter,
    PrefixAffinityRouter,
    RoundRobinRouter,
    SessionAffinityRouter,
    make_router,
    probe_hit_tokens,
    simulate_cluster,
)
from repro.cluster.router import ROUTER_NAMES
from repro.core.cache import MarconiCache
from repro.metrics.fairness import coefficient_of_variation, jain_fairness
from repro.models.memory import node_state_bytes
from repro.workloads.lmsys import generate_lmsys_trace


def toks(n, seed):
    return np.random.default_rng(seed).integers(0, 32000, size=n, dtype=np.int32)


class TestFairnessMetrics:
    def test_jain_even_loads(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_jain_single_hot_replica(self):
        assert jain_fairness([9.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_jain_all_zero_is_fair(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_jain_validation(self):
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([-1.0])

    def test_cv(self):
        assert coefficient_of_variation([4.0, 4.0]) == 0.0
        assert coefficient_of_variation([0.0, 0.0]) == 0.0
        assert coefficient_of_variation([0.0, 8.0]) == pytest.approx(1.0)


class TestProbe:
    def test_probe_matches_real_hybrid_hit(self, hybrid):
        cache = MarconiCache(hybrid, int(1e12), alpha=0.0)
        seq = toks(300, 1)
        r = cache.lookup(seq, 0.0)
        full = np.concatenate([seq, toks(40, 2)])
        cache.admit(full, 0.5, handle=r.handle)
        query = np.concatenate([full, toks(20, 3)])
        probed = probe_hit_tokens(cache, query)
        real = cache.lookup(query, 1.0)
        assert probed == real.hit_tokens == len(full)
        cache.admit(np.concatenate([query, toks(5, 4)]), 1.5, handle=real.handle)

    def test_probe_does_not_mutate(self, hybrid):
        cache = MarconiCache(hybrid, int(1e12), alpha=0.0)
        seq = toks(100, 5)
        r = cache.lookup(seq, 0.0)
        cache.admit(np.concatenate([seq, toks(10, 6)]), 0.5, handle=r.handle)
        nodes_before = cache.tree.n_nodes
        used_before = cache.used_bytes
        probe_hit_tokens(cache, np.concatenate([seq, toks(50, 7)]))
        assert cache.tree.n_nodes == nodes_before
        assert cache.used_bytes == used_before

    def test_probe_without_tree_is_zero(self):
        class Opaque:
            pass

        assert probe_hit_tokens(Opaque(), toks(5, 1)) == 0

    def test_probe_custom_method_wins(self):
        class WithProbe:
            def probe(self, tokens):
                return 7

        assert probe_hit_tokens(WithProbe(), toks(5, 1)) == 7

    def test_probe_vllm_plus_block_cache(self, hybrid):
        from repro.baselines.vllm_plus import VLLMPlusCache

        cache = VLLMPlusCache(hybrid, int(1e13), block_size=32)
        seq = toks(100, 31)
        r = cache.lookup(seq, 0.0)
        cache.admit(np.concatenate([seq, toks(30, 32)]), 0.5, handle=r.handle)
        query = np.concatenate([seq, toks(10, 33)])
        reuse_before = cache.reuse_stats.blocks_kv_reused
        probed = probe_hit_tokens(cache, query)
        assert probed == (len(seq) // 32) * 32
        # The probe must not perturb reuse counters.
        assert cache.reuse_stats.blocks_kv_reused == reuse_before


class TestRouters:
    def _fake_caches(self, n):
        return [object() for _ in range(n)]

    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        caches = self._fake_caches(3)
        picks = [router.route(toks(3, i), i, caches, [0, 0, 0], 0.0) for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
        router.reset()
        assert router.route(toks(3, 9), 9, caches, [0, 0, 0], 0.0) == 0

    def test_least_loaded_picks_minimum(self):
        router = LeastLoadedRouter()
        assert router.route(toks(3, 1), 1, self._fake_caches(3), [2, 0, 1], 0.0) == 1

    def test_session_affinity_is_sticky(self):
        router = SessionAffinityRouter()
        caches = self._fake_caches(4)
        a = [router.route(toks(3, i), 42, caches, [0] * 4, 0.0) for i in range(5)]
        assert len(set(a)) == 1

    def test_session_affinity_spreads_sessions(self):
        router = SessionAffinityRouter()
        caches = self._fake_caches(4)
        picks = {router.route(toks(3, 1), sid, caches, [0] * 4, 0.0) for sid in range(64)}
        assert len(picks) >= 3

    def test_prefix_affinity_chases_cached_prefix(self, hybrid):
        caches = [MarconiCache(hybrid, int(1e12), alpha=0.0) for _ in range(2)]
        seq = toks(300, 11)
        r = caches[1].lookup(seq, 0.0)
        full = np.concatenate([seq, toks(30, 12)])
        caches[1].admit(full, 0.5, handle=r.handle)
        router = PrefixAffinityRouter()
        query = np.concatenate([full, toks(10, 13)])
        assert router.route(query, 0, caches, [0, 0], 1.0) == 1

    def test_prefix_affinity_spills_when_overloaded(self, hybrid):
        caches = [MarconiCache(hybrid, int(1e12), alpha=0.0) for _ in range(2)]
        seq = toks(300, 14)
        r = caches[1].lookup(seq, 0.0)
        full = np.concatenate([seq, toks(30, 15)])
        caches[1].admit(full, 0.5, handle=r.handle)
        router = PrefixAffinityRouter(max_imbalance=2)
        query = np.concatenate([full, toks(10, 16)])
        assert router.route(query, 0, caches, [0, 10], 1.0) == 0

    def test_prefix_affinity_cold_start_is_least_loaded(self, hybrid):
        caches = [MarconiCache(hybrid, int(1e12), alpha=0.0) for _ in range(3)]
        router = PrefixAffinityRouter()
        assert router.route(toks(50, 17), 0, caches, [3, 1, 2], 0.0) == 1

    def test_prefix_affinity_validation(self):
        with pytest.raises(ValueError):
            PrefixAffinityRouter(max_imbalance=-1)

    def test_factory(self):
        for name in ROUTER_NAMES:
            assert make_router(name).name == name
        with pytest.raises(KeyError):
            make_router("nope")


class TestClusterSimulator:
    def _caches(self, hybrid, n, seqs=4):
        per_seq = node_state_bytes(hybrid, 2000, True)
        return [MarconiCache(hybrid, seqs * per_seq, alpha=1.0) for _ in range(n)]

    def test_all_requests_served_once(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=12, seed=21)
        result = simulate_cluster(
            hybrid, self._caches(hybrid, 3), RoundRobinRouter(), trace
        )
        assert result.n_requests == trace.n_requests
        assert sum(result.routed_counts) == trace.n_requests

    def test_single_replica_matches_engine(self, hybrid):
        """A 1-replica cluster under any router equals the single simulator."""
        from repro.engine.server import simulate_trace

        trace = generate_lmsys_trace(n_sessions=8, seed=22)
        per_seq = node_state_bytes(hybrid, 2000, True)
        single = simulate_trace(
            hybrid, MarconiCache(hybrid, 4 * per_seq, alpha=1.0), trace
        )
        cluster = simulate_cluster(
            hybrid,
            [MarconiCache(hybrid, 4 * per_seq, alpha=1.0)],
            LeastLoadedRouter(),
            trace,
        )
        assert cluster.token_hit_rate == pytest.approx(single.token_hit_rate)
        assert cluster.ttft_percentile(95) == pytest.approx(single.ttft_percentile(95))

    def test_prefix_affinity_beats_round_robin_on_hit_rate(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=20, seed=23)
        affinity = simulate_cluster(
            hybrid, self._caches(hybrid, 4), PrefixAffinityRouter(), trace
        )
        scattered = simulate_cluster(
            hybrid, self._caches(hybrid, 4), RoundRobinRouter(), trace
        )
        assert affinity.token_hit_rate > scattered.token_hit_rate

    def test_session_affinity_preserves_conversation_reuse(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=20, seed=24)
        sticky = simulate_cluster(
            hybrid, self._caches(hybrid, 4), SessionAffinityRouter(), trace
        )
        scattered = simulate_cluster(
            hybrid, self._caches(hybrid, 4), RoundRobinRouter(), trace
        )
        assert sticky.token_hit_rate > scattered.token_hit_rate

    def test_round_robin_balances_request_counts(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=16, seed=25)
        result = simulate_cluster(
            hybrid, self._caches(hybrid, 4), RoundRobinRouter(), trace
        )
        counts = result.routed_counts
        assert max(counts) - min(counts) <= 1

    def test_fairness_metrics_exposed(self, hybrid):
        trace = generate_lmsys_trace(n_sessions=12, seed=26)
        result = simulate_cluster(
            hybrid, self._caches(hybrid, 3), LeastLoadedRouter(), trace
        )
        assert 1 / 3 <= result.load_fairness <= 1.0
        assert result.load_imbalance >= 0.0

    def test_rejects_empty_cluster(self, hybrid):
        from repro.cluster.simulator import ClusterSimulator

        with pytest.raises(ValueError):
            ClusterSimulator(hybrid, [], RoundRobinRouter())

    def test_invalid_router_output_raises(self, hybrid):
        class BadRouter(RoundRobinRouter):
            def route(self, tokens, session_id, caches, loads, now):
                return 99

        trace = generate_lmsys_trace(n_sessions=2, seed=27)
        with pytest.raises(ValueError):
            simulate_cluster(hybrid, self._caches(hybrid, 2), BadRouter(), trace)
