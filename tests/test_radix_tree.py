"""Tests for the radix tree: insert, match, split, merge, pinning."""

import numpy as np
import pytest

from repro.core.radix_tree import RadixTree, common_prefix_length


def arr(*values):
    return np.asarray(values, dtype=np.int32)


class TestCommonPrefix:
    def test_empty(self):
        assert common_prefix_length(arr(), arr(1, 2)) == 0

    def test_disjoint(self):
        assert common_prefix_length(arr(1, 2), arr(3, 4)) == 0

    def test_partial(self):
        assert common_prefix_length(arr(1, 2, 3), arr(1, 2, 9)) == 2

    def test_full_shorter(self):
        assert common_prefix_length(arr(1, 2), arr(1, 2, 3)) == 2

    def test_identical(self):
        assert common_prefix_length(arr(1, 2, 3), arr(1, 2, 3)) == 3


class TestInsert:
    def test_insert_into_empty(self):
        tree = RadixTree()
        outcome = tree.insert(arr(1, 2, 3), now=1.0)
        assert outcome.new_leaf is outcome.end_node
        assert outcome.split_node is None
        assert outcome.new_edge_tokens == 3
        assert outcome.end_node.seq_len == 3
        tree.check_integrity()

    def test_insert_extension(self):
        tree = RadixTree()
        tree.insert(arr(1, 2), now=1.0)
        outcome = tree.insert(arr(1, 2, 3, 4), now=2.0)
        assert outcome.split_node is None
        assert outcome.new_edge_tokens == 2
        assert outcome.end_node.seq_len == 4
        assert tree.n_nodes == 2
        tree.check_integrity()

    def test_insert_divergence_splits_once(self):
        tree = RadixTree()
        tree.insert(arr(1, 2, 3, 4), now=1.0)
        outcome = tree.insert(arr(1, 2, 9, 9), now=2.0)
        assert outcome.split_node is not None
        assert outcome.split_node.seq_len == 2
        assert outcome.split_node.n_children == 2
        assert outcome.new_edge_tokens == 2  # only the fresh suffix
        assert tree.total_edge_tokens == 6  # 4 + 2, split conserves tokens
        tree.check_integrity()

    def test_insert_proper_prefix_splits_at_end(self):
        tree = RadixTree()
        tree.insert(arr(1, 2, 3, 4), now=1.0)
        outcome = tree.insert(arr(1, 2), now=2.0)
        assert outcome.split_node is not None
        assert outcome.end_node is outcome.split_node
        assert outcome.new_leaf is None
        assert outcome.new_edge_tokens == 0
        tree.check_integrity()

    def test_insert_exact_duplicate_is_noop(self):
        tree = RadixTree()
        tree.insert(arr(1, 2, 3), now=1.0)
        outcome = tree.insert(arr(1, 2, 3), now=2.0)
        assert outcome.split_node is None
        assert outcome.new_leaf is None
        assert outcome.new_edge_tokens == 0
        assert tree.n_nodes == 1

    def test_insert_divergence_at_existing_node(self):
        tree = RadixTree()
        tree.insert(arr(1, 2), now=1.0)
        tree.insert(arr(1, 2, 3), now=2.0)
        outcome = tree.insert(arr(1, 2, 7), now=3.0)
        # Divergence exactly at the (1,2) node: new leaf, no split.
        assert outcome.split_node is None
        assert outcome.new_edge_tokens == 1
        tree.check_integrity()

    def test_split_preserves_child_states(self):
        tree = RadixTree()
        first = tree.insert(arr(1, 2, 3, 4), now=1.0)
        first.end_node.has_ssm_state = True
        tree.insert(arr(1, 2, 9), now=2.0)
        # The original node's path and checkpoint must survive the split.
        match = tree.match(arr(1, 2, 3, 4))
        assert match.deepest_node.has_ssm_state
        assert match.deepest_node.seq_len == 4


class TestMatch:
    def test_match_empty_tree(self):
        tree = RadixTree()
        match = tree.match(arr(1, 2))
        assert match.matched_len == 0 and match.path == []

    def test_match_mid_edge(self):
        tree = RadixTree()
        tree.insert(arr(1, 2, 3, 4), now=1.0)
        match = tree.match(arr(1, 2, 9))
        assert match.matched_len == 2
        assert match.path == []  # no full node reached

    def test_match_through_nodes(self):
        tree = RadixTree()
        tree.insert(arr(1, 2), now=1.0)
        tree.insert(arr(1, 2, 3, 4), now=2.0)
        match = tree.match(arr(1, 2, 3, 4, 5))
        assert match.matched_len == 4
        assert [n.seq_len for n in match.path] == [2, 4]

    def test_match_never_mutates(self):
        tree = RadixTree()
        tree.insert(arr(1, 2, 3, 4), now=1.0)
        before = tree.n_nodes
        tree.match(arr(1, 2, 9, 9))
        assert tree.n_nodes == before

    def test_deepest_ssm_node_respects_cap(self):
        tree = RadixTree()
        a = tree.insert(arr(1, 2), now=1.0).end_node
        b = tree.insert(arr(1, 2, 3, 4), now=2.0).end_node
        a.has_ssm_state = True
        b.has_ssm_state = True
        match = tree.match(arr(1, 2, 3, 4))
        assert match.deepest_ssm_node(max_seq_len=4).seq_len == 4
        assert match.deepest_ssm_node(max_seq_len=3).seq_len == 2
        assert match.deepest_ssm_node(max_seq_len=1) is None


class TestEvictionMechanics:
    def _chain(self):
        tree = RadixTree()
        tree.insert(arr(1, 2), now=1.0)
        tree.insert(arr(1, 2, 3, 4), now=2.0)
        tree.insert(arr(1, 2, 3, 4, 5, 6), now=3.0)
        return tree

    def test_remove_leaf(self):
        tree = self._chain()
        leaf = tree.match(arr(1, 2, 3, 4, 5, 6)).deepest_node
        tree.remove_leaf(leaf)
        assert tree.match(arr(1, 2, 3, 4, 5, 6)).matched_len == 4
        tree.check_integrity()

    def test_remove_leaf_rejects_interior(self):
        tree = self._chain()
        interior = tree.match(arr(1, 2)).deepest_node
        with pytest.raises(ValueError, match="not a leaf"):
            tree.remove_leaf(interior)

    def test_merge_into_child_absorbs_kvs(self):
        tree = self._chain()
        middle = tree.match(arr(1, 2, 3, 4)).deepest_node
        tokens_before = tree.total_edge_tokens
        child = tree.merge_into_child(middle)
        assert tree.total_edge_tokens == tokens_before  # KVs absorbed, not freed
        assert child.seq_len == 6
        assert child.kv_tokens == 4  # absorbed 2 + own 2
        # Path lookups still work end to end.
        assert tree.match(arr(1, 2, 3, 4, 5, 6)).matched_len == 6
        tree.check_integrity()

    def test_merge_rejects_multi_child(self):
        tree = self._chain()
        tree.insert(arr(1, 2, 9), now=4.0)
        branching = tree.match(arr(1, 2)).deepest_node
        with pytest.raises(ValueError, match="children"):
            tree.merge_into_child(branching)

    def test_root_protected(self):
        tree = self._chain()
        with pytest.raises(ValueError):
            tree.remove_leaf(tree.root)
        with pytest.raises(ValueError):
            tree.merge_into_child(tree.root)


class TestPinning:
    def test_pin_blocks_removal_and_merge(self):
        tree = RadixTree()
        tree.insert(arr(1, 2), now=1.0)
        end = tree.insert(arr(1, 2, 3, 4), now=2.0).end_node
        tree.pin_path(end)
        middle = tree.match(arr(1, 2)).deepest_node
        with pytest.raises(ValueError, match="pinned"):
            tree.remove_leaf(end)
        with pytest.raises(ValueError, match="pinned"):
            tree.merge_into_child(middle)
        tree.unpin_path(end)
        tree.remove_leaf(end)
        tree.check_integrity()

    def test_unbalanced_unpin_raises(self):
        tree = RadixTree()
        end = tree.insert(arr(1, 2), now=1.0).end_node
        with pytest.raises(ValueError, match="unbalanced"):
            tree.unpin_path(end)

    def test_split_inherits_pin(self):
        tree = RadixTree()
        end = tree.insert(arr(1, 2, 3, 4), now=1.0).end_node
        tree.pin_path(end)
        outcome = tree.insert(arr(1, 2, 9), now=2.0)
        assert outcome.split_node.is_pinned  # sits on the pinned path
        tree.unpin_path(end)
        assert not outcome.split_node.is_pinned


class TestClone:
    def test_clone_is_deep_and_equal(self):
        tree = RadixTree()
        tree.insert(arr(1, 2), now=1.0).end_node.has_ssm_state = True
        tree.insert(arr(1, 2, 3), now=2.0)
        tree.insert(arr(9, 9), now=3.0)
        copy = tree.clone()
        copy.check_integrity()
        assert copy.n_nodes == tree.n_nodes
        assert copy.total_edge_tokens == tree.total_edge_tokens
        # Checkpoints and timestamps survive.
        original = tree.match(arr(1, 2)).deepest_node
        mirrored = copy.match(arr(1, 2)).deepest_node
        assert mirrored.has_ssm_state == original.has_ssm_state
        assert mirrored.last_access == original.last_access
        # Mutating the copy leaves the original intact.
        copy.remove_leaf(copy.match(arr(9, 9)).deepest_node)
        assert tree.match(arr(9, 9)).matched_len == 2

    def test_clone_drops_pins(self):
        tree = RadixTree()
        end = tree.insert(arr(1, 2), now=1.0).end_node
        tree.pin_path(end)
        copy = tree.clone()
        assert all(not n.is_pinned for n in copy.iter_nodes())


class TestPathTokens:
    def test_path_reconstruction(self):
        tree = RadixTree()
        tree.insert(arr(5, 6, 7), now=1.0)
        end = tree.insert(arr(5, 6, 7, 8, 9), now=2.0).end_node
        np.testing.assert_array_equal(end.path_tokens(), arr(5, 6, 7, 8, 9))
