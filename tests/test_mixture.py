"""Tests for workload mixtures (multi-tenant traces)."""

import numpy as np
import pytest

from repro.core.cache import MarconiCache
from repro.engine.server import simulate_trace
from repro.models.memory import node_state_bytes
from repro.workloads import (
    component_of,
    generate_lmsys_trace,
    generate_sharegpt_trace,
    generate_swebench_trace,
    mix_traces,
)
from repro.workloads.trace import Trace


class TestMixTraces:
    def _mixture(self):
        chat = generate_lmsys_trace(n_sessions=6, seed=1)
        agent = generate_swebench_trace(n_sessions=4, seed=2)
        return chat, agent, mix_traces([chat, agent])

    def test_sessions_and_requests_preserved(self):
        chat, agent, mixed = self._mixture()
        assert mixed.n_sessions == chat.n_sessions + agent.n_sessions
        assert mixed.n_requests == chat.n_requests + agent.n_requests
        assert mixed.total_input_tokens == (
            chat.total_input_tokens + agent.total_input_tokens
        )

    def test_arrivals_sorted(self):
        _, _, mixed = self._mixture()
        arrivals = [s.arrival_time for s in mixed.sessions]
        assert arrivals == sorted(arrivals)

    def test_session_ids_unique_and_attributable(self):
        chat, agent, mixed = self._mixture()
        ids = [s.session_id for s in mixed.sessions]
        assert len(ids) == len(set(ids))
        names = {component_of(mixed, sid) for sid in ids}
        assert names == {"lmsys", "swebench"}

    def test_component_of_validates(self):
        chat = generate_lmsys_trace(n_sessions=3, seed=3)
        with pytest.raises(ValueError):
            component_of(chat, 0)  # not a mixture
        _, _, mixed = self._mixture()
        with pytest.raises(KeyError):
            component_of(mixed, 5_000_000)

    def test_default_name_and_metadata(self):
        _, _, mixed = self._mixture()
        assert mixed.name == "lmsys+swebench"
        assert [c["name"] for c in mixed.metadata["components"]] == [
            "lmsys", "swebench",
        ]
        named = mix_traces([generate_sharegpt_trace(n_sessions=2, seed=4)], name="solo")
        assert named.name == "solo"

    def test_empty_component_list_rejected(self):
        with pytest.raises(ValueError):
            mix_traces([])

    def test_round_content_shared_not_copied(self):
        """Mixing re-wraps sessions without touching token arrays."""
        chat, _, mixed = self._mixture()
        original = chat.sessions[0].rounds[0].new_input_tokens
        mirrored = next(
            s for s in mixed.sessions
            if component_of(mixed, s.session_id) == "lmsys" and s.session_id % 1_000_000 == 0
        ).rounds[0].new_input_tokens
        assert np.shares_memory(original, mirrored)

    def test_engine_serves_mixture(self, hybrid):
        _, _, mixed = self._mixture()
        cache = MarconiCache(hybrid, 20 * node_state_bytes(hybrid, 3000, True), alpha=1.0)
        result = simulate_trace(hybrid, cache, mixed, policy_name="mixed")
        assert result.n_requests == mixed.n_requests

    def test_serialization_roundtrip(self, tmp_path):
        _, _, mixed = self._mixture()
        path = tmp_path / "mixed.jsonl"
        mixed.to_jsonl(path)
        loaded = Trace.from_jsonl(path)
        assert loaded.n_requests == mixed.n_requests
        assert component_of(loaded, loaded.sessions[-1].session_id) in (
            "lmsys", "swebench",
        )
