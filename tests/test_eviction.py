"""Tests for eviction policies and MarconiCache's eviction mechanics."""

import numpy as np
import pytest

from repro.core.cache import MarconiCache
from repro.core.eviction import (
    _POLICIES,
    EvictionCandidate,
    FlopAwareEviction,
    GDSEviction,
    GDSFEviction,
    LFUEviction,
    LRUEviction,
    LRUKEviction,
    RandomEviction,
    _rank_normalize,
    make_eviction_policy,
)
from repro.core.node import RadixNode
from repro.models.memory import model_recurrent_bytes, node_state_bytes


def candidate(node_id_time: float, efficiency: float, freeable: int = 100) -> EvictionCandidate:
    node = RadixNode(np.asarray([1], dtype=np.int32), parent=None, now=node_id_time)
    node.last_access = node_id_time
    return EvictionCandidate(
        node=node,
        freeable_bytes=freeable,
        flop_efficiency=efficiency,
        last_access=node_id_time,
        is_leaf=True,
    )


class TestLRU:
    def test_picks_oldest(self):
        cands = [candidate(3.0, 1.0), candidate(1.0, 99.0), candidate(2.0, 0.0)]
        assert LRUEviction().select_victim(cands).last_access == 1.0

    def test_tie_break_is_deterministic(self):
        a, b = candidate(1.0, 1.0), candidate(1.0, 1.0)
        victim = LRUEviction().select_victim([b, a])
        assert victim.node.node_id == min(a.node.node_id, b.node.node_id)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LRUEviction().select_victim([])


class TestFlopAware:
    def test_alpha_zero_is_lru(self):
        cands = [candidate(3.0, 100.0), candidate(1.0, 999.0), candidate(2.0, 0.0)]
        assert FlopAwareEviction(alpha=0.0).select_victim(cands).last_access == 1.0

    def test_high_alpha_ranks_by_efficiency(self):
        cands = [candidate(1.0, 100.0), candidate(3.0, 1.0), candidate(2.0, 50.0)]
        victim = FlopAwareEviction(alpha=100.0).select_victim(cands)
        assert victim.flop_efficiency == 1.0

    def test_balances_recency_and_efficiency(self):
        # Old but efficient vs fresh but worthless: alpha=1 evicts the
        # worthless one when efficiency gap dominates the recency gap.
        old_valuable = candidate(1.0, 1000.0)
        fresh_worthless = candidate(2.0, 1.0)
        middle = candidate(1.5, 500.0)
        victim = FlopAwareEviction(alpha=2.0).select_victim(
            [old_valuable, fresh_worthless, middle]
        )
        assert victim is fresh_worthless

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            FlopAwareEviction(alpha=-1.0)

    def test_rejects_unknown_normalization(self):
        with pytest.raises(ValueError):
            FlopAwareEviction(alpha=1.0, normalization="bogus")

    def test_minmax_mode_works(self):
        cands = [candidate(1.0, 10.0), candidate(2.0, 20.0)]
        policy = FlopAwareEviction(alpha=0.0, normalization="minmax")
        assert policy.select_victim(cands).last_access == 1.0

    def test_scores_are_bounded(self):
        cands = [candidate(float(i), float(i * 7 % 5)) for i in range(10)]
        policy = FlopAwareEviction(alpha=1.0)
        for score in policy.scores(cands):
            assert 0.0 < score <= 2.0


class TestRankNormalize:
    def test_single_value(self):
        assert _rank_normalize([5.0]) == [1.0]

    def test_distinct_values_uniform(self):
        ranks = _rank_normalize([30.0, 10.0, 20.0])
        assert ranks == [1.0, 1 / 3, 2 / 3]

    def test_ties_get_average_rank(self):
        ranks = _rank_normalize([10.0, 10.0, 20.0])
        assert ranks[0] == ranks[1] == pytest.approx(1.5 / 3)
        assert ranks[2] == 1.0

    def test_scale_free(self):
        a = _rank_normalize([1.0, 2.0, 3.0])
        b = _rank_normalize([1e6, 2e12, 3e18])
        assert a == b


class TestGDSF:
    def test_prefers_low_frequency_low_efficiency(self):
        cheap = candidate(1.0, 1.0)
        valuable = candidate(1.0, 1000.0)
        policy = GDSFEviction()
        assert policy.select_victim([cheap, valuable]) is cheap

    def test_clock_inflates(self):
        policy = GDSFEviction()
        victim = candidate(1.0, 50.0)
        policy.notify_eviction(victim)
        assert policy._clock == pytest.approx(50.0)
        policy.reset()
        assert policy._clock == 0.0


class TestLFU:
    def test_picks_least_hit(self):
        hot, cold = candidate(1.0, 1.0), candidate(2.0, 1.0)
        hot.node.hit_count = 5
        assert LFUEviction().select_victim([hot, cold]) is cold

    def test_frequency_ties_break_by_recency(self):
        older, newer = candidate(1.0, 1.0), candidate(2.0, 1.0)
        older.node.hit_count = newer.node.hit_count = 3
        assert LFUEviction().select_victim([newer, older]) is older


class TestLRUK:
    def test_cold_entries_evicted_before_established_ones(self):
        policy = LRUKEviction(k=2)
        established, cold = candidate(1.0, 1.0), candidate(9.0, 1.0)
        policy.notify_access(established.node, 2.0)
        policy.notify_access(established.node, 3.0)
        # `cold` has no recorded history -> backward K-distance is -inf.
        assert policy.select_victim([established, cold]) is cold

    def test_orders_by_kth_most_recent_access(self):
        policy = LRUKEviction(k=2)
        a, b = candidate(1.0, 1.0), candidate(2.0, 1.0)
        for t in (1.0, 5.0):
            policy.notify_access(a.node, t)
        for t in (2.0, 3.0):
            policy.notify_access(b.node, t)
        # a's 2nd-most-recent access (1.0) predates b's (2.0).
        assert policy.select_victim([a, b]) is a

    def test_history_window_slides(self):
        policy = LRUKEviction(k=2)
        a = candidate(1.0, 1.0)
        for t in (1.0, 2.0, 10.0):
            policy.notify_access(a.node, t)
        assert policy._kth_access(a) == 2.0

    def test_eviction_drops_history(self):
        policy = LRUKEviction(k=2)
        a = candidate(1.0, 1.0)
        policy.notify_access(a.node, 1.0)
        policy.notify_eviction(a)
        assert a.node.node_id not in policy._history
        policy.reset()
        assert not policy._history

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            LRUKEviction(k=0)


class TestGDS:
    def test_prefers_evicting_large_entries(self):
        small = candidate(1.0, 1000.0, freeable=10)
        large = candidate(1.0, 1000.0, freeable=10_000)
        assert GDSEviction().select_victim([small, large]) is large

    def test_blind_to_flop_efficiency(self):
        # Equal sizes: the size proxy cannot tell a 30K-prefix checkpoint
        # from a 16-token one (the paper's section 4.2 critique).
        cheap = candidate(1.0, 1.0, freeable=500)
        valuable = candidate(1.0, 9999.0, freeable=500)
        victim = GDSEviction().select_victim([valuable, cheap])
        assert victim.node.node_id == min(cheap.node.node_id, valuable.node.node_id)

    def test_clock_aging(self):
        policy = GDSEviction()
        victim = candidate(1.0, 1.0, freeable=100)
        policy.notify_eviction(victim)
        assert policy._clock == pytest.approx(1.0 / 100)
        policy.reset()
        assert policy._clock == 0.0


class TestRandom:
    def test_deterministic_with_seed(self):
        cands = [candidate(float(i), 1.0) for i in range(10)]
        picks_a = [RandomEviction(seed=7).select_victim(cands) for _ in range(3)]
        picks_b = [RandomEviction(seed=7).select_victim(cands) for _ in range(3)]
        assert [c.node.node_id for c in picks_a] == [c.node.node_id for c in picks_b]

    def test_reset_replays_the_stream(self):
        cands = [candidate(float(i), 1.0) for i in range(10)]
        policy = RandomEviction(seed=3)
        first = [policy.select_victim(cands).node.node_id for _ in range(5)]
        policy.reset()
        second = [policy.select_victim(cands).node.node_id for _ in range(5)]
        assert first == second


class TestPolicyContract:
    """Invariants every registered policy must satisfy."""

    @pytest.mark.parametrize("name", sorted(_POLICIES))
    def test_victim_is_a_candidate(self, name):
        policy = make_eviction_policy(name, 1.0)
        cands = [candidate(float(i), float((i * 13) % 7), freeable=100 + i) for i in range(8)]
        for i, c in enumerate(cands):
            c.node.hit_count = (i * 5) % 3
        assert policy.select_victim(cands) in cands

    @pytest.mark.parametrize("name", sorted(_POLICIES))
    def test_empty_candidates_raise(self, name):
        with pytest.raises(ValueError):
            make_eviction_policy(name).select_victim([])

    @pytest.mark.parametrize("name", sorted(set(_POLICIES) - {"random"}))
    def test_selection_is_deterministic(self, name):
        cands = [candidate(float(i % 4), float((i * 3) % 5)) for i in range(9)]
        a = make_eviction_policy(name, 1.0).select_victim(cands)
        b = make_eviction_policy(name, 1.0).select_victim(cands)
        assert a is b

    @pytest.mark.parametrize("name", sorted(_POLICIES))
    def test_runs_end_to_end_in_cache(self, name, hybrid, tokens):
        from repro.models.memory import node_state_bytes

        per_seq = node_state_bytes(hybrid, 450, True)
        cache = MarconiCache(hybrid, capacity_bytes=3 * per_seq, eviction=name, alpha=1.0)
        for i in range(6):
            seq = tokens(400, seed=4000 + i)
            r = cache.lookup(seq, float(i))
            cache.admit(
                np.concatenate([seq, tokens(50, seed=5000 + i)]),
                float(i) + 0.5,
                handle=r.handle,
            )
        assert cache.used_bytes <= cache.capacity_bytes
        assert cache.used_bytes == cache.recompute_used_bytes()
        assert cache.stats.evictions > 0


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_eviction_policy("lru"), LRUEviction)
        assert isinstance(make_eviction_policy("flop_aware", 2.0), FlopAwareEviction)
        assert isinstance(make_eviction_policy("gdsf"), GDSFEviction)
        assert isinstance(make_eviction_policy("gds"), GDSEviction)
        assert isinstance(make_eviction_policy("lfu"), LFUEviction)
        assert isinstance(make_eviction_policy("lru_k"), LRUKEviction)
        assert isinstance(make_eviction_policy("random"), RandomEviction)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_eviction_policy("nope")


class TestCacheEviction:
    """Eviction behaviour through the full cache."""

    def _fill(self, cache, tokens, n_sequences=6, length=400):
        handles = []
        for i in range(n_sequences):
            seq = tokens(length, seed=1000 + i)
            r = cache.lookup(seq, float(i))
            cache.admit(np.concatenate([seq, tokens(50, seed=2000 + i)]),
                        float(i) + 0.5, handle=r.handle)
            handles.append(seq)
        return handles

    def test_eviction_frees_to_capacity(self, hybrid, tokens):
        per_seq = node_state_bytes(hybrid, 450, True)
        cache = MarconiCache(hybrid, capacity_bytes=3 * per_seq, alpha=0.0)
        self._fill(cache, tokens)
        assert cache.used_bytes <= cache.capacity_bytes
        assert cache.stats.evictions > 0

    def test_accounting_invariant_after_evictions(self, hybrid, tokens):
        per_seq = node_state_bytes(hybrid, 450, True)
        cache = MarconiCache(hybrid, capacity_bytes=3 * per_seq, alpha=1.0)
        self._fill(cache, tokens, n_sequences=10)
        assert cache.used_bytes == cache.recompute_used_bytes()
        cache.tree.check_integrity()

    def test_lru_evicts_oldest_sequence(self, hybrid, tokens):
        per_seq = node_state_bytes(hybrid, 450, True)
        cache = MarconiCache(hybrid, capacity_bytes=4 * per_seq, alpha=0.0)
        seqs = self._fill(cache, tokens, n_sequences=5)
        # The first-admitted sequence should be gone; the last should hit.
        r_old = cache.lookup(np.concatenate([seqs[0], tokens(5, seed=1)]), 10.0)
        assert r_old.hit_tokens == 0

    def test_multi_child_nodes_protected(self, hybrid, tokens):
        """Shared prefixes (nodes with >= 2 children) are never evicted
        while their subtrees remain."""
        shared = tokens(300, seed=5)
        cache = MarconiCache(hybrid, capacity_bytes=int(2e9), alpha=0.0)
        for i in range(3):
            seq = np.concatenate([shared, tokens(200, seed=600 + i)])
            r = cache.lookup(seq, float(i))
            cache.admit(np.concatenate([seq, tokens(40, seed=700 + i)]),
                        float(i) + 0.5, handle=r.handle)
        branch = cache.tree.match(shared).deepest_node
        assert branch is not None and branch.n_children >= 2
        # Force heavy eviction pressure.
        big = tokens(20000, seed=999)
        r = cache.lookup(big, 100.0)
        cache.admit(np.concatenate([big, tokens(10, seed=998)]), 100.5, handle=r.handle)
        # The branch node may only disappear after ALL children are gone.
        survivors = [n for n in cache.tree.iter_nodes() if n.n_children >= 2]
        for node in survivors:
            assert node.n_children >= 2

    def test_interior_eviction_releases_ssm_keeps_kvs(self, hybrid, tokens):
        """Evicting a single-child node frees exactly the recurrent bytes."""
        cache = MarconiCache(hybrid, capacity_bytes=int(50e9), alpha=0.0)
        seq1 = tokens(200, seed=1)
        r = cache.lookup(seq1, 0.0)
        full1 = np.concatenate([seq1, tokens(50, seed=2)])
        cache.admit(full1, 0.5, handle=r.handle)
        seq2 = np.concatenate([full1, tokens(100, seed=3)])
        r = cache.lookup(seq2, 1.0)
        cache.admit(np.concatenate([seq2, tokens(50, seed=4)]), 1.5, handle=r.handle)
        interior = cache.tree.match(full1).deepest_node
        assert interior.n_children == 1 and interior.has_ssm_state
        used_before = cache.used_bytes
        tokens_before = cache.tree.total_edge_tokens
        victim = next(
            c for c in cache._collect_candidates() if c.node is interior
        )
        cache._apply_eviction(victim)
        assert used_before - cache.used_bytes == model_recurrent_bytes(hybrid)
        assert cache.tree.total_edge_tokens == tokens_before
        assert cache.used_bytes == cache.recompute_used_bytes()

    def test_hit_refreshes_only_accessed_node(self, hybrid, tokens):
        """Section 4.3 detail (2): ancestors' timestamps stay stale."""
        cache = MarconiCache(hybrid, capacity_bytes=int(50e9), alpha=0.0)
        seq1 = tokens(200, seed=11)
        r = cache.lookup(seq1, 0.0)
        full1 = np.concatenate([seq1, tokens(50, seed=12)])
        cache.admit(full1, 0.5, handle=r.handle)
        seq2 = np.concatenate([full1, tokens(80, seed=13)])
        r = cache.lookup(seq2, 1.0)
        full2 = np.concatenate([seq2, tokens(50, seed=14)])
        cache.admit(full2, 1.5, handle=r.handle)
        ancestor = cache.tree.match(full1).deepest_node
        stamp_before = ancestor.last_access
        round3 = np.concatenate([full2, tokens(30, seed=15)])
        r = cache.lookup(round3, 50.0)
        assert r.hit_tokens == len(full2)
        assert ancestor.last_access == stamp_before
        cache.admit(np.concatenate([round3, tokens(10, seed=16)]), 50.5, handle=r.handle)

    def test_oversized_request_rejected_gracefully(self, hybrid, tokens):
        """A sequence larger than the whole cache is served but not cached."""
        cache = MarconiCache(hybrid, capacity_bytes=int(1e8), alpha=0.0)
        huge = tokens(10_000, seed=21)
        r = cache.lookup(huge, 0.0)
        assert r.hit_tokens == 0
        result = cache.admit(np.concatenate([huge, tokens(10, seed=22)]), 0.5, handle=r.handle)
        assert result.rejected
        assert cache.used_bytes <= cache.capacity_bytes
        assert cache.used_bytes == cache.recompute_used_bytes()
