"""Property-based tests for the executable model's core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.models.presets import tiny_test_model
from repro.nn.hybrid import HybridModel
from repro.nn.ssm import SSMLayer

_model_cache: dict[int, HybridModel] = {}


def get_model(seed: int = 0) -> HybridModel:
    if seed not in _model_cache:
        _model_cache[seed] = HybridModel(tiny_test_model(), seed=seed)
    return _model_cache[seed]


class TestSSMChunkingProperty:
    @given(
        length=st.integers(4, 48),
        cuts=st.lists(st.integers(1, 47), max_size=3),
        seed=st.integers(0, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_chunking_matches_full_scan(self, length, cuts, seed):
        layer = SSMLayer(d_model=8, d_state=4, rng=np.random.default_rng(9))
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(length, 8))
        full, full_state = layer.forward(x, layer.init_state())
        boundaries = sorted({c for c in cuts if c < length}) + [length]
        state = layer.init_state()
        parts, lo = [], 0
        for hi in boundaries:
            if hi > lo:
                out, state = layer.forward(x[lo:hi], state)
                parts.append(out)
                lo = hi
        assert np.allclose(full, np.concatenate(parts), rtol=1e-9, atol=1e-12)
        assert np.allclose(full_state.ssm, state.ssm, rtol=1e-9, atol=1e-12)


class TestModelCheckpointProperty:
    @given(
        length=st.integers(8, 40),
        position=st.integers(1, 39),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_checkpoint_resume_equals_full(self, length, position, seed):
        """For any checkpoint position, resume-from-checkpoint reproduces
        the tail of the uninterrupted prefill."""
        if position >= length:
            position = length - 1
        if position < 1:
            return
        model = get_model()
        rng = np.random.default_rng(100 + seed)
        tokens = rng.integers(0, model.config.vocab_size, length).astype(np.int32)
        full = model.prefill(tokens)
        checkpoint = model.prefill(
            tokens, checkpoint_positions=(position,)
        ).checkpoints[position]
        resumed = model.prefill(tokens[position:], checkpoint)
        assert np.allclose(resumed.logits, full.logits[position:], rtol=1e-8, atol=1e-10)

    @given(seed=st.integers(0, 5))
    @settings(max_examples=6, deadline=None)
    def test_prompt_prefix_sensitivity(self, seed):
        """Different prefixes with identical suffixes give different final
        logits — the model genuinely carries state (no trivial caching)."""
        model = get_model()
        rng = np.random.default_rng(200 + seed)
        suffix = rng.integers(0, model.config.vocab_size, 10).astype(np.int32)
        a = np.concatenate([rng.integers(0, model.config.vocab_size, 6).astype(np.int32), suffix])
        b = np.concatenate([rng.integers(0, model.config.vocab_size, 6).astype(np.int32), suffix])
        la = model.prefill(a).logits[-1]
        lb = model.prefill(b).logits[-1]
        assert not np.allclose(la, lb)
