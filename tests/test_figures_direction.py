"""Direction checks: each figure harness reproduces the paper's *shape*.

These run at smoke scale, so they assert orderings and signs rather than
magnitudes (EXPERIMENTS.md records bench-scale magnitudes).
"""

import numpy as np
import pytest

from repro.experiments.figures import (
    fig03_motivation,
    fig05_flop_efficiency,
    fig06_workload_stats,
    fig12_architecture,
    fig14_flop_breakdown,
)
from repro.experiments import tables


class TestFig3:
    def test_3a_kv_reused_far_more_than_ssm(self):
        result = fig03_motivation.run_3a("smoke")
        ratios = result.extra["ratios"]
        # KV reuse dominates SSM reuse at every block size...
        assert all(r > 2 for r in ratios.values())
        # ...and the gap narrows as blocks grow (paper: 65.3x -> 11.1x).
        assert ratios[32] > ratios[64] > ratios[128]

    def test_3b_footprint_anchor(self):
        result = fig03_motivation.run_3b("smoke")
        assert result.extra["anchor_gb"] == pytest.approx(17.4, abs=0.1)


class TestFig5:
    def test_efficiency_ordering(self):
        result = fig05_flop_efficiency.run("smoke")
        series = result.extra["series"]
        # At the longest length: mamba > hybrid > transformer.
        assert series["mamba"][-1] > series["hybrid"][-1] > series["transformer"][-1]
        # SSM-heavy curves grow; the transformer curve stays nearly flat.
        assert series["mamba"][-1] / series["mamba"][0] > 10
        assert series["transformer"][-1] / series["transformer"][0] < 1.5


class TestFig6:
    def test_workload_contrasts(self):
        result = fig06_workload_stats.run("smoke")
        data = result.extra
        # SWEBench has the widest input distribution.
        spread = {
            name: np.percentile(d["inputs"], 95) - np.percentile(d["inputs"], 5)
            for name, d in data.items()
        }
        assert spread["swebench"] > spread["lmsys"] > spread["sharegpt"]
        # LMSys outputs are the longest; SWEBench outputs are short.
        assert np.median(data["lmsys"]["outputs"]) > np.median(data["sharegpt"]["outputs"])
        assert np.median(data["swebench"]["outputs"]) < 500


class TestFig12:
    def test_policies_converge_at_pure_transformer(self):
        """Paper: the three systems perform the same on a pure Transformer.
        Under contention our vLLM+ retains a block-granularity edge, so we
        assert convergence: the radix caches' relative standing improves
        monotonically-in-spirit from the SSM-heavy end (where vLLM+ is
        crushed) to the Transformer end (where the gap closes)."""
        result = fig12_architecture.run_12a("smoke")
        normalized = result.extra["normalized"]
        # SSM-heavy end: vLLM+ far behind the radix policies.
        assert normalized["(32,4)"]["vllm+"] < 0.35
        assert normalized["(32,4)"]["marconi"] == 1.0
        # Transformer end: all three in the same league.
        assert min(normalized["(0,36)"].values()) > 0.5

    def test_marconi_margin_grows_with_ssm_ratio(self):
        result = fig12_architecture.run_12b("smoke")
        ratios = result.extra["ratios"]
        # Marconi's win over vLLM+ grows with the state dimension.
        assert ratios["N=128"]["vllm+"] > ratios["N=16"]["vllm+"]


class TestFig14:
    def test_attention_share_grows(self):
        result = fig14_flop_breakdown.run("smoke")
        shares = result.extra["shares"]
        lengths = sorted(shares)
        attn = [shares[L]["attention"] for L in lengths]
        assert attn == sorted(attn)
        assert attn[0] < 0.2  # small at short lengths despite 4 layers


class TestTable1:
    def test_closed_forms_exact(self):
        result = tables.run("smoke")
        assert result.extra["max_rel_err"] < 1e-12


class TestRendering:
    def test_every_result_renders(self):
        for runner in (fig05_flop_efficiency.run, fig14_flop_breakdown.run, tables.run):
            text = runner("smoke").render()
            assert "paper:" in text and "|" in text
