"""Bench: Fig. 10 — fine-grained analysis of FLOP-aware eviction (SWEBench)."""

import numpy as np
from conftest import run_once

from repro.experiments.figures import fig10_fine_grained


def test_fig10_fine_grained(benchmark, scale):
    result = run_once(benchmark, fig10_fine_grained.run, scale)
    print("\n" + result.render())
    m = result.extra["marconi_rates"]
    s = result.extra["sglang_rates"]
    counts = result.extra["counts"]
    diffs = np.asarray(m) - np.asarray(s)
    valid = counts > 5
    if np.any(valid):
        edges = result.extra["edges"][:-1][valid]
        diffs = diffs[valid]
        # Paper shape: losses (if any) concentrate on short sequences, wins
        # on long ones — the weighted-by-length diff must favor long bins.
        long_mask = edges >= np.median(edges)
        assert np.nanmean(diffs[long_mask]) >= np.nanmean(diffs[~long_mask]) - 1e-9
    results = result.extra["results"]
    assert results["marconi"].token_hit_rate >= results["sglang+"].token_hit_rate - 0.02
