"""Ablation bench: judicious admission in isolation.

Comparing vLLM+ (fine-grained admission, leaf-LRU) against SGLang+
(judicious admission, LRU) isolates the *admission* contribution — both use
recency-only eviction, so the entire gap is what section 4.1 buys.
"""

from conftest import run_once

from repro.experiments.config import DATASET_CONFIGS, default_model, get_scale
from repro.experiments.runner import get_trace, run_policies
from repro.metrics.reporting import ascii_table


def _run(scale_name):
    scale = get_scale(scale_name)
    out = {}
    for dataset, config in DATASET_CONFIGS.items():
        trace = get_trace(config.workload, config.workload_params(scale))
        capacity = scale.cache_bytes(config.cache_grid_gb[1])
        results = run_policies(
            default_model(), trace, ("vllm+", "sglang+"), capacity
        )
        out[dataset] = {
            "vllm+": results["vllm+"].token_hit_rate,
            "sglang+": results["sglang+"].token_hit_rate,
        }
    return out


def test_ablation_judicious_admission(benchmark, scale):
    hits = run_once(benchmark, _run, scale)
    rows = [
        [d, f"{v['vllm+']:.3f}", f"{v['sglang+']:.3f}",
         f"{v['sglang+'] / max(v['vllm+'], 1e-4):.1f}x"]
        for d, v in hits.items()
    ]
    print("\n" + ascii_table(["dataset", "fine-grained", "judicious", "win"], rows))
    for dataset, v in hits.items():
        assert v["sglang+"] > v["vllm+"], dataset
    # Judicious admission is worth multiples everywhere (paper: 4.5-34.4x
    # for the full system); the per-dataset ordering at a single contention
    # point is covered by the fig7 sweep bench.
    win = {d: v["sglang+"] / max(v["vllm+"], 1e-4) for d, v in hits.items()}
    assert all(value > 2.0 for value in win.values())
