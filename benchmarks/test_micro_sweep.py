"""Microbenchmark: parallel sweep wall-clock and streaming memory bounds.

Two claims of the streaming + parallel experiment subsystem, kept honest:

* **Sweep parallelism** — ``run_specs`` over a process pool returns
  result-identical output to the serial path; on a multi-core host the
  4-worker wall-clock beats serial by >= 2x (the speedup assertion is
  gated on ``os.cpu_count() >= 4`` — single-core CI boxes still verify
  equivalence and record both wall-clocks).
* **Streaming memory** — consuming a 100k-session ``TraceStream`` peaks
  *below* the RSS of materializing a 4x smaller ``Trace``: stream memory
  is bounded by the active window, not the trace length.  Measured in
  fresh subprocesses via ``/proc/self/status`` ``VmHWM`` (which resets
  on exec, unlike ``ru_maxrss``, which children inherit from the fat
  pytest parent) so earlier tests' high-water marks cannot mask the
  comparison.

Results are written to ``BENCH_sweep.json`` at the repo root for
cross-PR trajectory tracking.  This file stays in the default fast lane.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import asdict
from pathlib import Path

import pytest

from _bench_io import write_bench
from repro.experiments.parallel import run_specs
from repro.experiments.runner import clear_result_cache, clear_trace_cache
from repro.experiments.sweeps import sweep_specs

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_sweep.json"

SWEEP_POLICIES = ("sglang+", "marconi")
N_WORKERS = 4
STREAM_SESSIONS = 100_000
MATERIALIZE_SESSIONS = 25_000

# The memory probes run in fresh interpreters: a tiny-session shape keeps
# 100k-session generation in benchmark territory (seconds), while the
# stream-vs-materialize RSS comparison is shape-independent.
_MEMORY_PROBE = """
import resource, sys
from repro.workloads.distributions import GeometricCount, LogNormalLength
from repro.workloads.sessions import SessionShape, WorkloadParams, build_trace, stream_trace


def peak_rss_kb():
    # /proc VmHWM resets on exec; getrusage ru_maxrss is *inherited*
    # across fork+exec, so under a fat parent (the pytest process) it
    # floors at the parent's peak and masks the comparison.
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

shape = SessionShape(
    name="bench-micro",
    rounds=GeometricCount(mean=2.0, minimum=1, maximum=4),
    first_turn=LogNormalLength(median=24, sigma=0.5, minimum=4, maximum=128),
    later_turn=LogNormalLength(median=16, sigma=0.5, minimum=4, maximum=64),
    output=LogNormalLength(median=24, sigma=0.5, minimum=8, maximum=96),
    shared_prefix_prob=0.5,
    n_templates=8,
    template_length=LogNormalLength(median=48, sigma=0.3, minimum=16, maximum=128),
)
mode, n = sys.argv[1], int(sys.argv[2])
params = WorkloadParams(n_sessions=n, seed=1, session_rate=50.0, mean_think_s=0.5)
sessions = tokens = 0
if mode == "stream":
    for s in stream_trace(shape, params).iter_sessions():
        sessions += 1
        for r in s.rounds:
            tokens += len(r.new_input_tokens) + len(r.output_tokens)
else:
    trace = build_trace(shape, params)
    sessions = trace.n_sessions
    tokens = int(trace.total_input_tokens)
print(sessions, tokens, peak_rss_kb())
"""


def _probe_memory(mode: str, n_sessions: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-c", _MEMORY_PROBE, mode, str(n_sessions)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=300,
    )
    wall = time.perf_counter() - started
    sessions, tokens, peak_kb = proc.stdout.split()
    return {
        "mode": mode,
        "n_sessions": int(sessions),
        "n_tokens": int(tokens),
        "peak_rss_mb": int(peak_kb) / 1024.0,
        "wall_seconds": wall,
    }


@pytest.fixture(scope="module")
def sweep_measurements():
    specs = sweep_specs("sharegpt", "smoke", policies=SWEEP_POLICIES)
    # Parallel first: pool workers start cold by construction.  Clearing
    # the parent's caches before the serial pass keeps it equally cold
    # (other benchmark modules may have warmed them in-process).
    clear_result_cache()
    clear_trace_cache()
    started = time.perf_counter()
    parallel = run_specs(specs, n_workers=N_WORKERS)
    parallel_wall = time.perf_counter() - started
    clear_result_cache()
    clear_trace_cache()
    started = time.perf_counter()
    serial = run_specs(specs, n_workers=1)
    serial_wall = time.perf_counter() - started
    return {
        "specs": specs,
        "serial": serial,
        "parallel": parallel,
        "serial_wall": serial_wall,
        "parallel_wall": parallel_wall,
    }


@pytest.fixture(scope="module")
def memory_measurements():
    streamed = _probe_memory("stream", STREAM_SESSIONS)
    materialized = _probe_memory("materialize", MATERIALIZE_SESSIONS)
    return {"streamed": streamed, "materialized": materialized}


class TestSweepMicrobench:
    def test_parallel_results_identical_to_serial(self, sweep_measurements):
        serial = sweep_measurements["serial"]
        parallel = sweep_measurements["parallel"]
        assert len(serial) == len(parallel) == len(sweep_measurements["specs"])
        for a, b in zip(serial, parallel):
            assert [asdict(r) for r in a.records] == [asdict(r) for r in b.records]
            assert a.cache_stats == b.cache_stats

    def test_parallel_speedup_on_multicore(self, sweep_measurements):
        """>= 2x on 4 workers — only assertable where 4 cores exist."""
        cores = os.cpu_count() or 1
        speedup = (
            sweep_measurements["serial_wall"] / sweep_measurements["parallel_wall"]
        )
        if cores < 4:
            pytest.skip(
                f"host has {cores} core(s); speedup recorded "
                f"({speedup:.2f}x) but not asserted"
            )
        assert speedup >= 2.0, (
            f"expected >= 2x on {cores} cores, measured {speedup:.2f}x "
            f"(serial {sweep_measurements['serial_wall']:.2f}s, "
            f"parallel {sweep_measurements['parallel_wall']:.2f}s)"
        )

    def test_streaming_memory_stays_bounded(self, memory_measurements):
        """Streaming 100k sessions peaks below materializing 25k."""
        streamed = memory_measurements["streamed"]
        materialized = memory_measurements["materialized"]
        assert streamed["n_sessions"] == STREAM_SESSIONS
        assert materialized["n_sessions"] == MATERIALIZE_SESSIONS
        assert streamed["peak_rss_mb"] < materialized["peak_rss_mb"], (
            f"streaming {STREAM_SESSIONS} sessions peaked at "
            f"{streamed['peak_rss_mb']:.0f} MB, above materializing "
            f"{MATERIALIZE_SESSIONS} at {materialized['peak_rss_mb']:.0f} MB"
        )

    def test_emit_bench_json(self, sweep_measurements, memory_measurements):
        """Persist the perf snapshot for cross-PR trajectory tracking."""
        serial_wall = sweep_measurements["serial_wall"]
        parallel_wall = sweep_measurements["parallel_wall"]
        streamed = memory_measurements["streamed"]
        materialized = memory_measurements["materialized"]
        payload = {
            "sweep": {
                "dataset": "sharegpt",
                "scale": "smoke",
                "policies": list(SWEEP_POLICIES),
                "n_specs": len(sweep_measurements["specs"]),
                "n_workers": N_WORKERS,
                "cpu_count": os.cpu_count() or 1,
                "serial_wall_seconds": serial_wall,
                "parallel_wall_seconds": parallel_wall,
                "speedup": serial_wall / parallel_wall,
            },
            "streaming_memory": {
                "streamed": streamed,
                "materialized": materialized,
                "rss_ratio_streamed_over_materialized": (
                    streamed["peak_rss_mb"] / materialized["peak_rss_mb"]
                ),
            },
        }
        write_bench(BENCH_PATH, "parallel_sweep_and_streaming_memory", payload)
        assert BENCH_PATH.exists()
