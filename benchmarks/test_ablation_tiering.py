"""Ablation bench: the two-tier cache against its single-tier primary.

Thin wrapper over :func:`repro.experiments.extensions.run_tiering`
(regenerate standalone with ``python -m repro.experiments --figure
ext-tiering``).  A contended primary tier is paired with a larger
second-tier store (CachedAttention/Pensieve-style, section 6); the bench
measures how much hit rate the demote/promote hierarchy recovers and
whether sharing Marconi's FLOP-aware philosophy in the second tier beats
plain LRU there.
"""

from conftest import run_once

from repro.experiments.extensions import run_tiering


def test_ablation_tiering(benchmark, scale):
    result = run_once(benchmark, run_tiering, scale)
    print("\n" + result.render())
    out = result.extra["variants"]
    # The hierarchy must actually engage and must not hurt hit rate.
    for tiered in ("tiered-lru", "tiered-flop"):
        assert out[tiered]["hit_rate"] >= out["single-tier"]["hit_rate"]
    if scale != "smoke":
        assert out["tiered-flop"]["promotions"] > 0
        assert out["tiered-flop"]["hit_rate"] > out["single-tier"]["hit_rate"]
