"""Ablation bench: the taxonomy workloads probe the admission trade-off.

Thin wrapper over :func:`repro.experiments.extensions.run_taxonomy_workloads`
(regenerate standalone with ``python -m repro.experiments --figure
ext-taxonomy``).  Three purely-input workloads from the paper's section 4.1
taxonomy, each stressing a different corner of the admission design:

* **docqa** — enormous shared documents.  One fine-grained request floods
  the cache with block states; Marconi's two-states-per-document admission
  banks nearly the whole reuse opportunity.
* **fewshot** — many short shared templates.  Even here block granularity
  floods a hybrid cache (a 1.4K-token template is ~44 blocks, each
  carrying a full recurrent state), so judicious admission still wins —
  the gap just comes from hit *frequency* over many small prefixes rather
  than a few giant ones.
* **selfconsistency** — byte-identical repeated prompts.  The honest
  counterexample: node-granular checkpoints cannot serve identical inputs
  (the final token must always be prefilled and the branch point sits
  exactly at the input boundary), while block-grained vLLM+ reuses all but
  the last partial block — at a per-sample memory cost.
"""

from conftest import run_once

from repro.experiments.extensions import run_taxonomy_workloads

POLICIES = ("vllm+", "sglang+", "marconi")


def test_ablation_taxonomy_workloads(benchmark, scale):
    result = run_once(benchmark, run_taxonomy_workloads, scale)
    print("\n" + result.render())
    out = result.extra["workloads"]
    for workload, row in out.items():
        for policy in POLICIES:
            assert row[policy] <= row["ceiling"] + 1e-9, (workload, policy)
    if scale != "smoke":
        # Huge shared prefixes: judicious admission wins big.
        assert out["docqa"]["marconi"] > 1.2 * out["docqa"]["vllm+"]
        # Identical prompts: the one regime where fine-grained blocks win
        # the hit rate (they pay for it in state bytes).
        assert out["selfconsistency"]["vllm+"] > out["selfconsistency"]["marconi"]
        # Short templates: Marconi keeps a healthy share of the ceiling.
        assert out["fewshot"]["marconi"] >= 0.7 * out["fewshot"]["ceiling"]
