"""Bench: Fig. 6 — workload sequence length distributions."""

import numpy as np
from conftest import run_once

from repro.experiments.figures import fig06_workload_stats


def test_fig6_workload_distributions(benchmark, scale):
    result = run_once(benchmark, fig06_workload_stats.run, scale)
    print("\n" + result.render())
    data = result.extra
    # Paper: LMSys inputs tail to ~30K; ShareGPT stays short; SWEBench is
    # the widest with short outputs.
    assert data["lmsys"]["inputs"].max() > 10_000
    assert data["sharegpt"]["inputs"].max() < 10_000
    assert data["swebench"]["inputs"].max() > 20_000
    assert np.median(data["swebench"]["outputs"]) < 500
    assert np.median(data["lmsys"]["outputs"]) > np.median(data["sharegpt"]["outputs"])
