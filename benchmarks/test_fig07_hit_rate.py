"""Bench: Fig. 7 — token hit rate, Marconi vs vLLM+ over the config sweep."""

from conftest import run_once

from repro.experiments.figures import fig07_hit_rate


def test_fig7_hit_rate(benchmark, scale):
    result = run_once(benchmark, fig07_hit_rate.run, scale)
    print("\n" + result.render())
    ratios = result.extra["mean_ratios"]
    # Paper: average wins of 4.5x (LMSys), 7.3x (ShareGPT), 34.4x (SWEBench).
    # Shape: Marconi beats vLLM+ everywhere; SWEBench shows the largest gap.
    assert all(ratio > 1.5 for ratio in ratios.values())
    assert ratios["swebench"] > ratios["lmsys"]
    assert ratios["swebench"] > ratios["sharegpt"]
