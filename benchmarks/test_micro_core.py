"""Micro-benchmarks: radix-tree and cache operation throughput.

These are genuine repeated-timing benchmarks (unlike the figure benches,
which run deterministic simulations once): they track the cost of the hot
operations a serving engine would sit on.
"""

import numpy as np
import pytest

from repro.core.cache import MarconiCache
from repro.core.radix_tree import RadixTree
from repro.models.presets import hybrid_7b


@pytest.fixture(scope="module")
def populated_tree():
    tree = RadixTree()
    rng = np.random.default_rng(0)
    shared = rng.integers(0, 32000, 2048, dtype=np.int32)
    sequences = []
    for i in range(200):
        cut = int(rng.integers(64, 2048))
        seq = np.concatenate(
            [shared[:cut], rng.integers(0, 32000, 512, dtype=np.int32)]
        )
        sequences.append(seq)
        tree.insert(seq, now=float(i))
    return tree, sequences


def test_micro_radix_match(benchmark, populated_tree):
    tree, sequences = populated_tree
    probe = sequences[137]

    result = benchmark(tree.match, probe)
    assert result.matched_len == len(probe)


def test_micro_radix_insert(benchmark):
    rng = np.random.default_rng(1)
    shared = rng.integers(0, 32000, 1024, dtype=np.int32)

    def insert_batch():
        tree = RadixTree()
        for i in range(50):
            seq = np.concatenate(
                [shared[: 64 + 16 * i], rng.integers(0, 32000, 256, dtype=np.int32)]
            )
            tree.insert(seq, now=float(i))
        return tree

    tree = benchmark(insert_batch)
    assert tree.n_nodes > 0


def test_micro_cache_lookup_admit(benchmark):
    model = hybrid_7b()
    rng = np.random.default_rng(2)
    context = rng.integers(0, 32000, 4096, dtype=np.int32)

    def serve_round():
        cache = MarconiCache(model, int(50e9), alpha=1.0)
        clock = 0.0
        ctx = context[:512]
        for _ in range(8):
            clock += 1.0
            r = cache.lookup(ctx, clock)
            full = np.concatenate([ctx, rng.integers(0, 32000, 128, dtype=np.int32)])
            cache.admit(full, clock + 0.5, handle=r.handle)
            ctx = np.concatenate([full, rng.integers(0, 32000, 64, dtype=np.int32)])
        return cache

    cache = benchmark(serve_round)
    assert cache.stats.hits > 0
