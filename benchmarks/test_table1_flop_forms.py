"""Bench: Table 1 — closed-form FLOP efficiency verification."""

from conftest import run_once

from repro.experiments import tables


def test_table1_closed_forms(benchmark, scale):
    result = run_once(benchmark, tables.run, scale)
    print("\n" + result.render())
    assert result.extra["max_rel_err"] < 1e-12
