"""Bench: Fig. 5 — FLOP efficiency vs sequence length per architecture."""

import pytest
from conftest import run_once

from repro.experiments.figures import fig05_flop_efficiency


def test_fig5_flop_efficiency(benchmark, scale):
    result = run_once(benchmark, fig05_flop_efficiency.run, scale)
    print("\n" + result.render())
    series = result.extra["series"]
    # Paper magnitudes at L=2000: Mamba ~4e5, Hybrid ~1.7e5, Transformer ~3e4.
    assert series["mamba"][-1] == pytest.approx(3.8e5, rel=0.2)
    assert series["hybrid"][-1] == pytest.approx(1.7e5, rel=0.2)
    assert series["transformer"][-1] == pytest.approx(2.7e4, rel=0.2)
    assert series["mamba"][-1] > series["hybrid"][-1] > series["transformer"][-1]
