"""Ablation bench: sensitivity of the hit rate to the alpha weight.

DESIGN.md calls out the recency/efficiency balance as the key design choice
of FLOP-aware eviction; this sweeps fixed alphas and compares against the
online tuner and the offline static-alpha oracle (artifact policy V3).
"""

from conftest import run_once

from repro.baselines.oracle import ReplayRequest, tune_static_alpha
from repro.experiments.config import DATASET_CONFIGS, default_model, get_scale
from repro.experiments.runner import get_trace, run_policy_on_trace
from repro.metrics.reporting import ascii_table

ALPHAS = (0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0)


def _run(scale_name):
    scale = get_scale(scale_name)
    config = DATASET_CONFIGS["swebench"]
    trace = get_trace(config.workload, config.workload_params(scale))
    capacity = scale.cache_bytes(config.cache_grid_gb[1])
    model = default_model()
    fixed = {
        alpha: run_policy_on_trace(
            model, trace, "marconi-fixed", capacity, alpha=alpha
        ).token_hit_rate
        for alpha in ALPHAS
    }
    auto = run_policy_on_trace(model, trace, "marconi", capacity).token_hit_rate
    log = [
        ReplayRequest(now=t, input_tokens=inp, full_tokens=full)
        for t, _, _, inp, full in trace.iter_requests_nominal()
    ]
    oracle = tune_static_alpha(model, capacity, log, alpha_grid=ALPHAS)
    return fixed, auto, oracle


def test_ablation_alpha_sensitivity(benchmark, scale):
    fixed, auto, oracle = run_once(benchmark, _run, scale)
    rows = [[f"{a:g}", f"{rate:.3f}"] for a, rate in fixed.items()]
    rows.append(["auto (tuner)", f"{auto:.3f}"])
    rows.append([f"oracle (a={oracle.best_alpha:g})", f"{oracle.best_hit_rate:.3f}"])
    print("\n" + ascii_table(["alpha", "token_hit_rate"], rows))
    best_fixed = max(fixed.values())
    assert auto >= fixed[0.0] * 0.85
    if scale != "smoke":
        # Some positive alpha beats LRU at bench-scale contention.
        assert best_fixed > fixed[0.0]
    # The oracle's grid covers the fixed grid, so it can't do worse than
    # the best static choice evaluated on its own (nominal-order) replay.
    assert oracle.best_hit_rate >= max(oracle.hit_rates.values()) - 1e-12
