"""Bench: Fig. 14 — FLOP breakdown by layer type."""

from conftest import run_once

from repro.experiments.figures import fig14_flop_breakdown


def test_fig14_flop_breakdown(benchmark, scale):
    result = run_once(benchmark, fig14_flop_breakdown.run, scale)
    print("\n" + result.render())
    shares = result.extra["shares"]
    lengths = sorted(shares)
    attn_shares = [shares[L]["attention"] for L in lengths]
    # Paper: 4 of 56 layers (7.1%) but a growing FLOP share, significant by 30K.
    assert attn_shares == sorted(attn_shares)
    assert attn_shares[0] < 0.15
    # 4 of 56 layers is 7.1%; by 30K tokens their FLOP share far exceeds it.
    assert attn_shares[-1] > 2 * (4 / 56)
