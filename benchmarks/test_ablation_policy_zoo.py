"""Ablation bench: the full eviction-policy zoo plus the clairvoyant bound.

Thin wrapper over :func:`repro.experiments.extensions.run_policy_zoo`
(regenerate standalone with ``python -m repro.experiments --figure ext-zoo``).

All policies replay the trace in nominal (zero-service-latency) order so
the clairvoyant bound applies to exactly the request stream the online
policies saw.  Nominal order flatters recency (each session's rounds
arrive back-to-back), so the FLOP-aware-vs-LRU *engine* win is asserted in
``test_ablation_eviction.py``, which runs the closed-loop simulator; here
the assertions target the relations that are ordering-robust.
"""

from conftest import run_once

from repro.experiments.extensions import run_policy_zoo


def test_ablation_policy_zoo(benchmark, scale):
    result = run_once(benchmark, run_policy_zoo, scale)
    print("\n" + result.render())
    rates = result.extra["rates"]
    # Future knowledge dominates every online policy.
    online_best = max(rate for name, rate in rates.items() if name != "clairvoyant")
    assert rates["clairvoyant"] >= online_best - 1e-9
    # The size-only proxy (GDS) must not beat the FLOP-aware score: equal
    # byte footprints hide wildly different compute savings (section 4.2).
    assert rates["flop_aware"] >= rates["gds"]
    if scale != "smoke":
        # Informed recency must clear the random floor, and the FLOP-aware
        # score must stay competitive with the best online policy.
        assert rates["lru"] > rates["random"]
        assert rates["flop_aware"] >= online_best - 0.05
