"""Bench: Fig. 12a — hit rate vs (SSM, Attention) layer composition."""

from conftest import run_once

from repro.experiments.figures import fig12_architecture


def test_fig12a_layer_composition(benchmark, scale):
    result = run_once(benchmark, fig12_architecture.run_12a, scale)
    print("\n" + result.render())
    normalized = result.extra["normalized"]
    # Paper: Marconi's margin over vLLM+ grows with the SSM ratio and the
    # systems coincide on the pure Transformer.
    assert normalized["(32,4)"]["marconi"] == 1.0
    assert normalized["(32,4)"]["vllm+"] < 0.5
    # vLLM+'s relative standing improves monotonically toward (0,36).
    ordering = ["(32,4)", "(30,5)", "(28,7)", "(24,12)", "(0,36)"]
    vllm_norms = [normalized[k]["vllm+"] for k in ordering]
    assert all(a <= b + 0.05 for a, b in zip(vllm_norms, vllm_norms[1:]))
    assert min(normalized["(0,36)"].values()) > 0.5  # converged league
