"""Bench: Fig. 3b — per-sequence cache footprint vs length."""

import pytest
from conftest import run_once

from repro.experiments.figures import fig03_motivation


def test_fig3b_state_size(benchmark, scale):
    result = run_once(benchmark, fig03_motivation.run_3b, scale)
    print("\n" + result.render())
    # Paper anchor: 17.4 GB at 10K tokens with block size 16.
    assert result.extra["anchor_gb"] == pytest.approx(17.4, abs=0.1)
