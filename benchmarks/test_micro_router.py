"""Microbenchmark: directory routing vs per-request deep probing.

The prefix directory's acceptance bar is asymptotic, not cosmetic: a deep
probe walks every replica's radix tree per arrival (O(replicas x depth)),
while a directory lookup is one walk of the shared union index (O(query
depth)).  This bench warms fleets of 4/16/64 replicas with disjoint
conversation sets, routes the same query mix through
``PrefixAffinityRouter`` in both probe modes, verifies the decisions are
identical, and requires directory routing to be at least 5x cheaper per
decision at 16 replicas.

Fleet-scale extensions ride the same snapshot: 256- and 512-replica
fleets routed through the sharded directory backend (deep probing is
hopeless at that scale — exactly why the backend exists), a flat-cost
floor requiring the sharded *lookup* to cost about the same at 512
replicas as at 64 (gated on >= 2 cores, like the other perf floors), and
a staleness x gossip-budget sweep measuring how much lookup hit rate a
delayed, throttled directory view gives up against the synchronous
oracle.

Results are written to ``BENCH_router.json`` at the repo root for
cross-PR trajectory tracking.  Deliberately fast (seconds); stays in the
default test lane.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from _bench_io import write_bench
from repro.cluster import (
    ManualGossipTransport,
    PrefixAffinityRouter,
    ShardedPrefixDirectory,
)
from repro.core.cache import MarconiCache
from repro.models.memory import node_state_bytes
from repro.models.presets import hybrid_7b

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_router.json"

MODEL = hybrid_7b()
FLEET_SIZES = (4, 16, 64)
CONVERSATIONS_PER_REPLICA = 6
SYSTEM_PROMPT_TOKENS = 1000
TEMPLATE_TOKENS = 400
UNIQUE_TOKENS = 500
N_TEMPLATES = 4
REPEATS = 3
# The directory's edge over deep probing at a 16-replica fleet.  The PR 6
# hot-path campaign (token interning, radix byte fast paths) sped up the
# *deep probe* baseline as much as the directory walk, compressing the
# small-fleet ratio from ~5x to ~2.5x; the structural claim — the deep
# probe pays per replica, the directory does not — is carried by the
# gap-widens-with-fleet-size assertion, so the fixed-size floor only
# guards against the directory losing its advantage outright.
SPEEDUP_FLOOR_AT_16 = 2.0

# Fleet-scale (sharded backend) settings: fewer conversations per replica
# and a capped query sample keep the bench in seconds at 512 replicas.
SHARDED_FLEET_SIZES = (64, 256, 512)
BIG_FLEET_CONVERSATIONS = 2
BIG_FLEET_QUERY_CAP = 192
N_SHARDS = 8
REGION_TOKENS = 32
# The flat-cost floor: one sharded lookup at 512 replicas may cost at
# most this multiple of the 64-replica cost.  The walk is O(query depth)
# plus per-node replica maps; 8x more replicas adds map entries, not
# depth, so anything near-linear in fleet size is a regression.
LOOKUP_FLAT_RATIO_64_TO_512 = 3.0

# Staleness sweep: 8 replicas under a hand-cranked gossip transport.
# Queries revisit conversations at ages 1..4 time units, so each delay
# value wipes out a different share of the lookups (a graded curve, not
# an all-or-nothing cliff).
STALENESS_DELAYS = (0.0, 1.5, 3.0)
STALENESS_BUDGETS = (None, 4)
STALENESS_REPLICAS = 8
STALENESS_QUERY_AGES = 4


def _toks(rng, n):
    return rng.integers(0, 32000, size=n, dtype=np.int32)


def _build_fleet(n_replicas: int, conversations: int = CONVERSATIONS_PER_REPLICA,
                 query_cap: int | None = None):
    """A fleet in the steady state prefix caching creates: every replica's
    tree shares the deployment's system prompt and few-shot templates
    (so a deep probe must walk that shared spine in *each* tree), and each
    replica additionally holds its own conversations underneath.  Queries
    extend the conversations, plus a sprinkle of cold requests."""
    rng = np.random.default_rng(1000 + n_replicas)
    capacity = 4 * conversations * node_state_bytes(MODEL, 2600, True)
    caches = [MarconiCache(MODEL, capacity, alpha=1.0) for _ in range(n_replicas)]
    prompt = _toks(rng, SYSTEM_PROMPT_TOKENS)
    templates = [
        np.concatenate([prompt, _toks(rng, TEMPLATE_TOKENS)])
        for _ in range(N_TEMPLATES)
    ]
    queries = []
    now = 0.0
    for cache in caches:
        for conv in range(conversations):
            template = templates[conv % N_TEMPLATES]
            seq = np.concatenate([template, _toks(rng, UNIQUE_TOKENS)])
            with cache.begin(seq, now) as session:
                full = np.concatenate([seq, _toks(rng, 40)])
                session.commit(full, now + 0.5)
            queries.append(np.concatenate([full, _toks(rng, 30)]))
            now += 1.0
    for _ in range(max(4, n_replicas // 4)):
        # Cold requests still share the system prompt (every real request
        # does) — the deep probe pays the full spine walk for these too.
        queries.append(np.concatenate([prompt, _toks(rng, UNIQUE_TOKENS)]))
    order = rng.permutation(len(queries))
    if query_cap is not None:
        order = order[:query_cap]
    queries = [queries[i] for i in order]
    loads = [int(load) for load in rng.integers(0, 3, size=n_replicas)]
    return caches, queries, loads


def _route_all(router, caches, queries, loads):
    decisions = []
    for index, query in enumerate(queries):
        decisions.append(router.route(query, index, caches, loads, 0.0))
    return decisions


def _time_router(make_router, caches, queries, loads):
    """Best-of-REPEATS wall time for routing the full query mix; the
    router (and its directory, in directory mode) is built untimed."""
    walls, decisions = [], None
    for _ in range(REPEATS):
        router = make_router()
        router.prepare(MODEL, caches, None)  # directory build is one-time
        start = time.perf_counter()
        decisions = _route_all(router, caches, queries, loads)
        walls.append(time.perf_counter() - start)
    return min(walls), decisions


@pytest.fixture(scope="module")
def measurements():
    out = {}
    for n_replicas in FLEET_SIZES:
        caches, queries, loads = _build_fleet(n_replicas)
        deep_wall, deep_decisions = _time_router(
            lambda: PrefixAffinityRouter(probe="deep"), caches, queries, loads
        )
        dir_wall, dir_decisions = _time_router(
            lambda: PrefixAffinityRouter(probe="directory"), caches, queries, loads
        )
        assert deep_decisions == dir_decisions, (
            f"probe modes disagreed at {n_replicas} replicas"
        )
        out[n_replicas] = {
            "n_replicas": n_replicas,
            "n_queries": len(queries),
            "deep_us_per_route": 1e6 * deep_wall / len(queries),
            "directory_us_per_route": 1e6 * dir_wall / len(queries),
            "speedup": deep_wall / dir_wall,
        }
    return out


def _sharded_backend():
    return ShardedPrefixDirectory(n_shards=N_SHARDS, region_tokens=REGION_TOKENS)


@pytest.fixture(scope="module")
def sharded_measurements():
    """Per-decision and per-lookup cost of the sharded backend at fleet
    scale.  The directory build (attach + resync of every replica) is
    untimed — it is a run-start cost, not a per-arrival one."""
    out = {}
    for n_replicas in SHARDED_FLEET_SIZES:
        caches, queries, loads = _build_fleet(
            n_replicas,
            conversations=BIG_FLEET_CONVERSATIONS,
            query_cap=BIG_FLEET_QUERY_CAP,
        )
        route_wall, _ = _time_router(
            lambda: PrefixAffinityRouter(directory_factory=_sharded_backend),
            caches,
            queries,
            loads,
        )
        # Isolate the directory walk itself: per-route cost includes the
        # O(fleet) select scan, which would mask lookup-cost regressions.
        router = PrefixAffinityRouter(directory_factory=_sharded_backend)
        router.prepare(MODEL, caches, None)
        directory = router.directory
        lookup_walls = []
        for _ in range(REPEATS):
            start = time.perf_counter()
            for query in queries:
                directory.lookup(query, limit=len(query) - 1)
            lookup_walls.append(time.perf_counter() - start)
        lookup_wall = min(lookup_walls)
        router.release()
        out[n_replicas] = {
            "n_replicas": n_replicas,
            "n_queries": len(queries),
            "n_shards": N_SHARDS,
            "region_tokens": REGION_TOKENS,
            "sharded_us_per_route": 1e6 * route_wall / len(queries),
            "sharded_us_per_lookup": 1e6 * lookup_wall / len(queries),
        }
    return out


def _staleness_trial(delay: float, budget: int | None):
    """One sweep point: serve conversations while the clock runs, query
    each conversation's continuation shortly after serving it, and count
    how often the sharded view already knows about the prefix.  The
    synchronous point (delay 0, no budget) is the oracle-equivalent
    baseline the retention column normalizes against."""
    rng = np.random.default_rng(4242)
    caches = [
        MarconiCache(MODEL, int(1e12), alpha=0.0) for _ in range(STALENESS_REPLICAS)
    ]
    if delay == 0.0 and budget is None:
        directory = ShardedPrefixDirectory(
            n_shards=N_SHARDS, region_tokens=REGION_TOKENS
        )
        transport = None
    else:
        directory = ShardedPrefixDirectory(
            n_shards=N_SHARDS,
            region_tokens=REGION_TOKENS,
            propagation_delay=delay,
            gossip_budget=budget,
            gossip_interval=0.25,
        )
        transport = ManualGossipTransport()
        directory.connect_transport(transport)
    for index, cache in enumerate(caches):
        directory.attach(index, cache)
    served: list[tuple[int, np.ndarray]] = []
    hits = total = 0
    now = 0.0
    for step in range(48):
        replica = step % STALENESS_REPLICAS
        seq = _toks(rng, 600)
        with caches[replica].begin(seq, now) as session:
            full = np.concatenate([seq, _toks(rng, 40)])
            session.commit(full, now + 0.1)
        served.append((replica, full))
        now += 1.0
        if transport is not None:
            transport.run_until(now)
        else:
            directory.advance_to(now)
        # Revisit the conversation served 1..STALENESS_QUERY_AGES steps
        # ago: the older the target, the more gossip has landed.
        target = len(served) - 1 - (step % STALENESS_QUERY_AGES)
        if target < 0:
            continue
        target_replica, target_full = served[target]
        query = np.concatenate([target_full, _toks(rng, 30)])
        lookup = directory.lookup(query, limit=len(query) - 1)
        total += 1
        if lookup.ckpt_depth.get(target_replica, 0) >= len(target_full):
            hits += 1
    snapshot = directory.staleness()
    directory.close()
    return {
        "propagation_delay": delay,
        "gossip_budget": budget,
        "lookup_hit_rate": hits / total,
        "lookup_age_p95": snapshot["lookup_age_p95"],
        "updates_applied": snapshot["updates_applied"],
        "updates_pending": snapshot["updates_pending"],
    }


@pytest.fixture(scope="module")
def staleness_sweep():
    points = [
        _staleness_trial(delay, budget)
        for delay in STALENESS_DELAYS
        for budget in STALENESS_BUDGETS
    ]
    baseline = max(p["lookup_hit_rate"] for p in points)
    for point in points:
        point["hit_retention"] = (
            point["lookup_hit_rate"] / baseline if baseline else 0.0
        )
    return points


class TestRouterMicrobench:
    def test_decision_cost_scales_with_query_not_fleet(self, measurements):
        """Acceptance bar: clearly cheaper than deep probing at 16
        replicas, and the gap must widen with fleet size (the deep probe
        pays per replica, the directory does not)."""
        assert measurements[16]["speedup"] >= SPEEDUP_FLOOR_AT_16, (
            f"directory speedup at 16 replicas only "
            f"{measurements[16]['speedup']:.1f}x"
        )
        assert measurements[64]["speedup"] > measurements[4]["speedup"]

    def test_directory_cost_nearly_flat_in_fleet_size(self, measurements):
        """16x more replicas must not cost anywhere near 16x per decision:
        the directory walk is O(query depth) plus small per-node maps."""
        per_route_4 = measurements[4]["directory_us_per_route"]
        per_route_64 = measurements[64]["directory_us_per_route"]
        assert per_route_64 < 4.0 * per_route_4, (
            f"directory per-route cost grew {per_route_64 / per_route_4:.1f}x "
            f"from 4 to 64 replicas"
        )

    def test_sharded_decisions_match_oracle_directory(self):
        """At fleet scale the sharded backend must route exactly like the
        single-process oracle directory (the differential suite's promise,
        re-checked on the bench workload)."""
        caches, queries, loads = _build_fleet(
            256, conversations=BIG_FLEET_CONVERSATIONS, query_cap=64
        )
        oracle = PrefixAffinityRouter(probe="directory")
        sharded = PrefixAffinityRouter(directory_factory=_sharded_backend)
        for router in (oracle, sharded):
            router.prepare(MODEL, caches, None)
        want = _route_all(oracle, caches, queries, loads)
        got = _route_all(sharded, caches, queries, loads)
        assert got == want, "sharded backend diverged from the oracle at 256 replicas"
        for router in (oracle, sharded):
            router.release()

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2,
        reason="perf floor gated on >= 2 cores (matches the CI perf lane)",
    )
    def test_sharded_lookup_cost_flat_64_to_512(self, sharded_measurements):
        """The fleet-scale floor: a sharded lookup at 512 replicas costs
        about what it costs at 64 — the walk scales with query depth, not
        fleet size."""
        per_lookup_64 = sharded_measurements[64]["sharded_us_per_lookup"]
        per_lookup_512 = sharded_measurements[512]["sharded_us_per_lookup"]
        assert per_lookup_512 < LOOKUP_FLAT_RATIO_64_TO_512 * per_lookup_64, (
            f"sharded per-lookup cost grew {per_lookup_512 / per_lookup_64:.1f}x "
            f"from 64 to 512 replicas"
        )

    def test_staleness_trades_hit_rate_monotonically(self, staleness_sweep):
        """The sweep's sanity contract: the synchronous point retains the
        full hit rate, and adding delay never gains hits."""
        by_budget: dict = {}
        for point in staleness_sweep:
            by_budget.setdefault(point["gossip_budget"], []).append(point)
        sync = next(
            p
            for p in staleness_sweep
            if p["propagation_delay"] == 0.0 and p["gossip_budget"] is None
        )
        assert sync["hit_retention"] == pytest.approx(1.0)
        for points in by_budget.values():
            points.sort(key=lambda p: p["propagation_delay"])
            for earlier, later in zip(points, points[1:]):
                assert later["lookup_hit_rate"] <= earlier["lookup_hit_rate"] + 1e-9

    def test_emit_bench_json(self, measurements, sharded_measurements, staleness_sweep):
        """Persist the perf snapshot for cross-PR trajectory tracking."""
        payload = {
            "workload": {
                "conversations_per_replica": CONVERSATIONS_PER_REPLICA,
                "system_prompt_tokens": SYSTEM_PROMPT_TOKENS,
                "template_tokens": TEMPLATE_TOKENS,
                "unique_tokens": UNIQUE_TOKENS,
                "model": "hybrid_7b",
            },
            "fleets": {str(n): stats for n, stats in measurements.items()},
            "sharded_fleets": {
                str(n): stats for n, stats in sharded_measurements.items()
            },
            "staleness_sweep": staleness_sweep,
            "speedup_floor_at_16": SPEEDUP_FLOOR_AT_16,
            "lookup_flat_ratio_64_to_512": LOOKUP_FLAT_RATIO_64_TO_512,
        }
        write_bench(BENCH_PATH, "router_decision_cost_directory_vs_deep_probe", payload)
        assert BENCH_PATH.exists()
