"""Microbenchmark: directory routing vs per-request deep probing.

The prefix directory's acceptance bar is asymptotic, not cosmetic: a deep
probe walks every replica's radix tree per arrival (O(replicas x depth)),
while a directory lookup is one walk of the shared union index (O(query
depth)).  This bench warms fleets of 4/16/64 replicas with disjoint
conversation sets, routes the same query mix through
``PrefixAffinityRouter`` in both probe modes, verifies the decisions are
identical, and requires directory routing to be at least 5x cheaper per
decision at 16 replicas.

Results are written to ``BENCH_router.json`` at the repo root for
cross-PR trajectory tracking.  Deliberately fast (seconds); stays in the
default test lane.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest

from _bench_io import write_bench
from repro.cluster import PrefixAffinityRouter
from repro.core.cache import MarconiCache
from repro.models.memory import node_state_bytes
from repro.models.presets import hybrid_7b

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_router.json"

MODEL = hybrid_7b()
FLEET_SIZES = (4, 16, 64)
CONVERSATIONS_PER_REPLICA = 6
SYSTEM_PROMPT_TOKENS = 1000
TEMPLATE_TOKENS = 400
UNIQUE_TOKENS = 500
N_TEMPLATES = 4
REPEATS = 3
# The directory's edge over deep probing at a 16-replica fleet.  The PR 6
# hot-path campaign (token interning, radix byte fast paths) sped up the
# *deep probe* baseline as much as the directory walk, compressing the
# small-fleet ratio from ~5x to ~2.5x; the structural claim — the deep
# probe pays per replica, the directory does not — is carried by the
# gap-widens-with-fleet-size assertion, so the fixed-size floor only
# guards against the directory losing its advantage outright.
SPEEDUP_FLOOR_AT_16 = 2.0


def _toks(rng, n):
    return rng.integers(0, 32000, size=n, dtype=np.int32)


def _build_fleet(n_replicas: int):
    """A fleet in the steady state prefix caching creates: every replica's
    tree shares the deployment's system prompt and few-shot templates
    (so a deep probe must walk that shared spine in *each* tree), and each
    replica additionally holds its own conversations underneath.  Queries
    extend the conversations, plus a sprinkle of cold requests."""
    rng = np.random.default_rng(1000 + n_replicas)
    capacity = 4 * CONVERSATIONS_PER_REPLICA * node_state_bytes(MODEL, 2600, True)
    caches = [MarconiCache(MODEL, capacity, alpha=1.0) for _ in range(n_replicas)]
    prompt = _toks(rng, SYSTEM_PROMPT_TOKENS)
    templates = [
        np.concatenate([prompt, _toks(rng, TEMPLATE_TOKENS)])
        for _ in range(N_TEMPLATES)
    ]
    queries = []
    now = 0.0
    for cache in caches:
        for conv in range(CONVERSATIONS_PER_REPLICA):
            template = templates[conv % N_TEMPLATES]
            seq = np.concatenate([template, _toks(rng, UNIQUE_TOKENS)])
            with cache.begin(seq, now) as session:
                full = np.concatenate([seq, _toks(rng, 40)])
                session.commit(full, now + 0.5)
            queries.append(np.concatenate([full, _toks(rng, 30)]))
            now += 1.0
    for _ in range(max(4, n_replicas // 4)):
        # Cold requests still share the system prompt (every real request
        # does) — the deep probe pays the full spine walk for these too.
        queries.append(np.concatenate([prompt, _toks(rng, UNIQUE_TOKENS)]))
    order = rng.permutation(len(queries))
    queries = [queries[i] for i in order]
    loads = [int(load) for load in rng.integers(0, 3, size=n_replicas)]
    return caches, queries, loads


def _route_all(router, caches, queries, loads):
    decisions = []
    for index, query in enumerate(queries):
        decisions.append(router.route(query, index, caches, loads, 0.0))
    return decisions


def _time_router(make_router, caches, queries, loads):
    """Best-of-REPEATS wall time for routing the full query mix; the
    router (and its directory, in directory mode) is built untimed."""
    walls, decisions = [], None
    for _ in range(REPEATS):
        router = make_router()
        router.prepare(MODEL, caches, None)  # directory build is one-time
        start = time.perf_counter()
        decisions = _route_all(router, caches, queries, loads)
        walls.append(time.perf_counter() - start)
    return min(walls), decisions


@pytest.fixture(scope="module")
def measurements():
    out = {}
    for n_replicas in FLEET_SIZES:
        caches, queries, loads = _build_fleet(n_replicas)
        deep_wall, deep_decisions = _time_router(
            lambda: PrefixAffinityRouter(probe="deep"), caches, queries, loads
        )
        dir_wall, dir_decisions = _time_router(
            lambda: PrefixAffinityRouter(probe="directory"), caches, queries, loads
        )
        assert deep_decisions == dir_decisions, (
            f"probe modes disagreed at {n_replicas} replicas"
        )
        out[n_replicas] = {
            "n_replicas": n_replicas,
            "n_queries": len(queries),
            "deep_us_per_route": 1e6 * deep_wall / len(queries),
            "directory_us_per_route": 1e6 * dir_wall / len(queries),
            "speedup": deep_wall / dir_wall,
        }
    return out


class TestRouterMicrobench:
    def test_decision_cost_scales_with_query_not_fleet(self, measurements):
        """Acceptance bar: clearly cheaper than deep probing at 16
        replicas, and the gap must widen with fleet size (the deep probe
        pays per replica, the directory does not)."""
        assert measurements[16]["speedup"] >= SPEEDUP_FLOOR_AT_16, (
            f"directory speedup at 16 replicas only "
            f"{measurements[16]['speedup']:.1f}x"
        )
        assert measurements[64]["speedup"] > measurements[4]["speedup"]

    def test_directory_cost_nearly_flat_in_fleet_size(self, measurements):
        """16x more replicas must not cost anywhere near 16x per decision:
        the directory walk is O(query depth) plus small per-node maps."""
        per_route_4 = measurements[4]["directory_us_per_route"]
        per_route_64 = measurements[64]["directory_us_per_route"]
        assert per_route_64 < 4.0 * per_route_4, (
            f"directory per-route cost grew {per_route_64 / per_route_4:.1f}x "
            f"from 4 to 64 replicas"
        )

    def test_emit_bench_json(self, measurements):
        """Persist the perf snapshot for cross-PR trajectory tracking."""
        payload = {
            "workload": {
                "conversations_per_replica": CONVERSATIONS_PER_REPLICA,
                "system_prompt_tokens": SYSTEM_PROMPT_TOKENS,
                "template_tokens": TEMPLATE_TOKENS,
                "unique_tokens": UNIQUE_TOKENS,
                "model": "hybrid_7b",
            },
            "fleets": {str(n): stats for n, stats in measurements.items()},
            "speedup_floor_at_16": SPEEDUP_FLOOR_AT_16,
        }
        write_bench(BENCH_PATH, "router_decision_cost_directory_vs_deep_probe", payload)
        assert BENCH_PATH.exists()
