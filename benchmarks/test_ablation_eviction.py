"""Ablation bench: eviction policy families on one contended SWEBench config.

Beyond the paper's LRU comparison, this adds GDSF (the classic size-aware
scheme section 4.2 argues is mis-signaled for hybrid states) and both
FLOP-efficiency numerator conventions from DESIGN.md.
"""

from conftest import run_once

from repro.core.cache import MarconiCache
from repro.engine.server import simulate_trace
from repro.experiments.config import DATASET_CONFIGS, default_model, get_scale
from repro.experiments.runner import get_trace
from repro.metrics.reporting import ascii_table


def _run_all(scale_name):
    scale = get_scale(scale_name)
    config = DATASET_CONFIGS["swebench"]
    trace = get_trace(config.workload, config.workload_params(scale))
    capacity = scale.cache_bytes(config.cache_grid_gb[1])
    model = default_model()
    variants = {
        "lru": dict(eviction="lru"),
        "gdsf": dict(eviction="gdsf"),
        "flop_aware(a=1)": dict(eviction="flop_aware", alpha=1.0),
        "flop_aware(auto)": dict(eviction="flop_aware", alpha=None),
        "edge_delta(a=1)": dict(
            eviction="flop_aware", alpha=1.0, efficiency_mode="edge_delta"
        ),
    }
    out = {}
    for name, kwargs in variants.items():
        cache = MarconiCache(model, capacity, **kwargs)
        out[name] = simulate_trace(model, cache, trace, policy_name=name).token_hit_rate
    return out


def test_ablation_eviction_policies(benchmark, scale):
    hits = run_once(benchmark, _run_all, scale)
    print("\n" + ascii_table(
        ["eviction", "token_hit_rate"],
        [[name, f"{rate:.3f}"] for name, rate in sorted(hits.items())],
    ))
    # The flop-aware family must beat plain LRU on the wide-distribution
    # workload, and the prefix-numerator must beat the edge-delta variant
    # (the DESIGN.md calibration finding).
    # The auto-tuned cache should land within reach of the fixed-alpha one.
    assert hits["flop_aware(auto)"] >= hits["lru"] * 0.9
    if scale != "smoke":
        assert hits["flop_aware(a=1)"] > hits["lru"]
        assert hits["flop_aware(a=1)"] >= hits["edge_delta(a=1)"] - 0.02
