"""Bench: Fig. 12b — hit rate vs SSM state dimension."""

from conftest import run_once

from repro.experiments.figures import fig12_architecture


def test_fig12b_state_dim(benchmark, scale):
    result = run_once(benchmark, fig12_architecture.run_12b, scale)
    print("\n" + result.render())
    ratios = result.extra["ratios"]
    # Paper: Marconi's win over vLLM+ grows with N (5.7x at N=16 to 35.4x at
    # N=128); over SGLang+ it stays a modest constant factor.
    assert ratios["N=128"]["vllm+"] > ratios["N=64"]["vllm+"]
    assert ratios["N=64"]["vllm+"] > ratios["N=16"]["vllm+"]
    assert ratios["N=128"]["vllm+"] > 2.0
    for dim in ("N=128", "N=64", "N=32", "N=16"):
        assert ratios[dim]["sglang+"] >= 0.9  # never loses to LRU
