"""Bench: Fig. 9 — P95 TTFT relative to vanilla inference."""

import numpy as np
from conftest import run_once

from repro.experiments.figures import fig09_ttft


def test_fig9_ttft(benchmark, scale):
    result = run_once(benchmark, fig09_ttft.run, scale)
    print("\n" + result.render())
    ratios = result.extra["ratios"]
    for dataset, by_policy in ratios.items():
        marconi_best = float(np.min(by_policy["marconi"]))
        vllm_median = float(np.median(by_policy["vllm+"]))
        marconi_median = float(np.median(by_policy["marconi"]))
        # Caching must reduce tail TTFT vs vanilla (ratio < 1) and Marconi
        # must beat vLLM+ (paper: 36.1-71.1% larger reductions).
        assert marconi_best < 0.95, dataset
        assert marconi_median <= vllm_median + 1e-9, dataset
