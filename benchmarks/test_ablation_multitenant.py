"""Ablation bench: multi-tenant mixture — chat bursts vs agentic prefixes.

Thin wrapper over :func:`repro.experiments.extensions.run_multitenant`
(regenerate standalone with ``python -m repro.experiments --figure
ext-multitenant``).  A ShareGPT-like chat tenant shares one cache with a
SWEBench-like agent tenant; recency-only eviction lets the chat burst wash
the agent's checkpoints out between its slow rounds, the FLOP-aware score
holds them — the paper's section 5.3 trade at tenant granularity.
"""

from conftest import run_once

from repro.experiments.extensions import run_multitenant


def test_ablation_multitenant(benchmark, scale):
    result = run_once(benchmark, run_multitenant, scale)
    print("\n" + result.render())
    out = result.extra["policies"]
    # FLOP-aware eviction must protect the agent tenant's long prefixes
    # and must not lose total compute savings relative to LRU.
    assert out["flop_aware"]["agent"] >= out["lru"]["agent"]
    if scale != "smoke":
        assert out["flop_aware"]["flops_saved"] >= 0.95 * out["lru"]["flops_saved"]
