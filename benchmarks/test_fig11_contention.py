"""Bench: Fig. 11 — FLOP-aware eviction's benefit vs cache contention."""

import numpy as np
from conftest import run_once

from repro.experiments.figures import fig11_contention


def test_fig11_contention(benchmark, scale):
    result = run_once(benchmark, fig11_contention.run, scale)
    print("\n" + result.render())
    wins = np.asarray(result.extra["wins"])
    # Paper: wins peak at moderate contention (24.3/51.5/68.3/30.0/10.0%
    # across the sweep).  Shape: an interior point beats both extremes'
    # average, and Marconi never loses badly.
    assert wins.min() > -15.0
    assert wins[-1] <= wins.max() + 1e-9  # lowest contention never peaks
    if scale != "smoke":
        assert wins.max() > 0.0
        interior_best = wins[1:-1].max()
        assert interior_best >= (wins[0] + wins[-1]) / 2 - 1e-9
