"""Bench: Fig. 8 — Marconi's hit-rate win over SGLang+ (eviction ablation)."""

import numpy as np
from conftest import run_once

from repro.experiments.figures import fig08_sglang_win


def test_fig8_sglang_win(benchmark, scale):
    result = run_once(benchmark, fig08_sglang_win.run, scale)
    print("\n" + result.render())
    wins = result.extra["wins"]
    # Paper: P95 wins 219.7% (SWEBench) >> 45.6% (LMSys) / 19.0% (ShareGPT).
    # Shape: SWEBench (widest length spread) benefits most from FLOP-aware
    # eviction; the tuner never loses badly anywhere (min win bounded).
    p95 = {d: float(np.percentile(w, 95)) for d, w in wins.items()}
    for dataset, values in wins.items():
        assert float(np.min(values)) > -15.0, f"{dataset} regressed badly"
    if scale != "smoke":
        assert p95["swebench"] >= p95["sharegpt"]
        assert p95["swebench"] > 5.0  # a real win, in percent
