"""Ablation bench: routing policy x cluster caching (Preble-style serving).

Thin wrapper over :func:`repro.experiments.extensions.run_cluster`
(regenerate standalone with ``python -m repro.experiments --figure
ext-cluster``).  Content-blind balancing scatters conversations — hybrid
hits are all-or-nothing, so a mis-route loses the entire hit — while
prefix-affinity routing recovers most of the locality at a small fairness
cost.
"""

from conftest import run_once

from repro.experiments.extensions import run_cluster


def test_ablation_cluster_routing(benchmark, scale):
    result = run_once(benchmark, run_cluster, scale)
    print("\n" + result.render())
    out = result.extra["routers"]
    # Locality-aware routing must beat content-blind balancing on hit rate,
    # and prefix affinity must beat plain session stickiness (it also wins
    # cross-session shared prefixes).
    assert out["prefix_affinity"]["hit_rate"] > out["round_robin"]["hit_rate"]
    assert out["session_affinity"]["hit_rate"] > out["round_robin"]["hit_rate"]
    if scale != "smoke":
        assert out["prefix_affinity"]["hit_rate"] >= out["session_affinity"]["hit_rate"]
        # Round-robin stays the fairness ceiling.
        assert out["round_robin"]["fairness"] >= 0.9
