"""Bench: Fig. 3a — KV vs SSM block reuse rates under fine-grained caching."""

from conftest import run_once

from repro.experiments.figures import fig03_motivation


def test_fig3a_block_reuse(benchmark, scale):
    result = run_once(benchmark, fig03_motivation.run_3a, scale)
    print("\n" + result.render())
    ratios = result.extra["ratios"]
    # Paper: 65.3x / 27.9x / 11.1x — KV reuse dwarfs SSM reuse and the gap
    # narrows as blocks grow.
    assert ratios[32] > ratios[64] > ratios[128] > 1.0
    assert ratios[32] / ratios[128] > 2.0
