"""Microbenchmark: unified-kernel event throughput vs the legacy loop.

The simulation kernel replaced the hand-rolled single-engine loop in
``repro/engine/server.py``; the acceptance bar is that driving the same
trace through the kernel-backed engine costs at most ~5% more wall time
per simulated event than the frozen legacy loop (``tests/_legacy_engines``)
— the kernel adds a scheduler indirection and change-point telemetry, and
this bench keeps that overhead honest.

It also demonstrates what the kernel newly enables: on a bursty trace,
``max_running=4`` continuous batching occupies the extra executor slots
(time-weighted mean busy executors well above the single-slot ceiling of
1.0) and burns the backlog down faster than the serial configuration.

Results are written to ``BENCH_kernel.json`` at the repo root for
cross-PR trajectory tracking.  This file is deliberately fast (seconds)
and stays in the default test lane.
"""

from __future__ import annotations

import importlib.util
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from _bench_io import write_bench
from repro.core.cache import MarconiCache
from repro.engine.kernel import KernelConfig, SimulationKernel
from repro.models.memory import node_state_bytes
from repro.models.presets import hybrid_7b
from repro.workloads.lmsys import generate_lmsys_trace
from repro.workloads.trace import Trace, TraceRound, TraceSession

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_kernel.json"

N_SESSIONS = 120
REPEATS = 3  # best-of to shave scheduler noise
MODEL = hybrid_7b()

#: Hard floor on kernel event throughput, enforced by
#: ``test_events_per_second_floor`` (and by the CI perf lane reading
#: ``BENCH_kernel.json``).  Chosen from the PR 6 speed campaign: the
#: reference host measures ~40k events/s (2.5x the pre-campaign ~16k/s
#: baseline, re-measured side by side on the same host); the floor sits
#: ~25% below the slowest observed measurement so scheduler noise cannot
#: trip it, while any real regression toward the old baseline fails
#: loudly.  Regenerate via docs/architecture.md "Performance & profiling".
FLOOR_EVENTS_PER_SECOND = 30_000.0


def _load_legacy_engines():
    """Load the frozen pre-kernel reference loops by file path (they live
    in tests/, which is not importable from the benchmarks rootdir)."""
    path = REPO_ROOT / "tests" / "_legacy_engines.py"
    spec = importlib.util.spec_from_file_location("_legacy_engines_bench", path)
    module = importlib.util.module_from_spec(spec)
    # Dataclass processing resolves the defining module through sys.modules,
    # so the module must be registered before execution.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


LEGACY = _load_legacy_engines()


@pytest.fixture(scope="module")
def trace() -> Trace:
    return generate_lmsys_trace(
        n_sessions=N_SESSIONS, session_rate=3.0, mean_think_s=2.0, seed=37
    )


def _fresh_cache() -> MarconiCache:
    return MarconiCache(
        MODEL, 24 * node_state_bytes(MODEL, 2000, True), alpha=1.0
    )


def _run_kernel(trace: Trace) -> tuple[float, int]:
    cache = _fresh_cache()
    kernel = SimulationKernel(
        MODEL, [cache], config=KernelConfig(max_running=1), policy_names=["kernel"]
    )
    start = time.perf_counter()
    run = kernel.run(trace)
    wall = time.perf_counter() - start
    return wall, run.n_events


def _run_legacy(trace: Trace) -> tuple[float, int]:
    cache = _fresh_cache()
    engine = LEGACY.LegacyServingSimulator(MODEL, cache, policy_name="legacy")
    start = time.perf_counter()
    result = engine.run(trace)
    wall = time.perf_counter() - start
    # The legacy loop processes exactly three events per served request.
    return wall, 3 * len(result.records)


@pytest.fixture(scope="module")
def measurements(trace):
    # Untimed warmup so neither path pays one-time import costs in-window.
    _run_kernel(trace)
    _run_legacy(trace)
    kernel_walls, legacy_walls = [], []
    kernel_events = legacy_events = 0
    for _ in range(REPEATS):
        wall, kernel_events = _run_kernel(trace)
        kernel_walls.append(wall)
        wall, legacy_events = _run_legacy(trace)
        legacy_walls.append(wall)
    return {
        "kernel_wall": min(kernel_walls),
        "legacy_wall": min(legacy_walls),
        "kernel_events": kernel_events,
        "legacy_events": legacy_events,
    }


def _bursty_trace() -> Trace:
    """Synchronized waves of long-prefill sessions: a queue-depth stressor."""
    rng = np.random.default_rng(11)
    sessions = []
    sid = 0
    for wave_start in (0.0, 0.5, 1.0, 1.5):
        for _ in range(8):
            rounds = [
                TraceRound(
                    rng.integers(0, 2000, 1500).astype(np.int32),
                    rng.integers(0, 2000, 40).astype(np.int32),
                )
            ]
            sessions.append(
                TraceSession(
                    session_id=sid,
                    arrival_time=wave_start,
                    rounds=rounds,
                    think_times=[0.0],
                )
            )
            sid += 1
    return Trace(name="bursty-bench", seed=11, sessions=sessions)


@pytest.fixture(scope="module")
def burst_results():
    from repro.engine.server import simulate_trace

    trace = _bursty_trace()
    serial = simulate_trace(MODEL, _fresh_cache(), trace, n_executors=1)
    batched = simulate_trace(MODEL, _fresh_cache(), trace, n_executors=4)
    return serial, batched


class TestKernelMicrobench:
    def test_event_throughput_within_5_percent(self, measurements):
        """Acceptance bar: kernel event processing regresses <= ~5% vs the
        legacy loop.  A tiny absolute per-event delta also passes, so
        scheduler noise on loaded CI runners cannot flip the ratio on a
        sub-millisecond measurement."""
        assert measurements["kernel_events"] == measurements["legacy_events"]
        kernel = measurements["kernel_wall"]
        legacy = measurements["legacy_wall"]
        overhead = kernel / legacy - 1.0
        delta_us = 1e6 * (kernel - legacy) / measurements["kernel_events"]
        assert overhead < 0.05 or delta_us < 15.0, (
            f"kernel {1e3 * kernel:.1f} ms vs legacy {1e3 * legacy:.1f} ms "
            f"({100 * overhead:+.1f}%, {delta_us:+.2f} us/event overhead)"
        )

    def test_events_per_second_floor(self, measurements):
        """CI-gated perf floor: kernel event throughput must not regress
        below the committed floor.  Gated on >= 2 CPU cores — a starved
        single-core runner measures the scheduler, not the simulator."""
        if (os.cpu_count() or 1) < 2:
            pytest.skip("perf floor requires >= 2 CPU cores for honest timing")
        events_per_second = measurements["kernel_events"] / measurements["kernel_wall"]
        assert events_per_second >= FLOOR_EVENTS_PER_SECOND, (
            f"kernel throughput {events_per_second:,.0f} events/s fell below "
            f"the committed floor of {FLOOR_EVENTS_PER_SECOND:,.0f} events/s "
            f"({1e3 * measurements['kernel_wall']:.1f} ms for "
            f"{measurements['kernel_events']} events)"
        )

    def test_continuous_batching_raises_executor_occupancy(self, burst_results):
        """max_running=4 on a bursty trace keeps >1 executor busy on
        average (the extra slots are genuinely used) and drains the
        backlog faster than the serial configuration."""
        serial, batched = burst_results
        assert serial.mean_running() <= 1.0 + 1e-9
        assert batched.mean_running() > 1.5 * serial.mean_running()
        assert batched.mean_queue_depth() < serial.mean_queue_depth()
        assert batched.ttft_percentile(95) < serial.ttft_percentile(95)

    def test_emit_bench_json(self, measurements, burst_results):
        """Persist the perf snapshot for cross-PR trajectory tracking."""
        serial, batched = burst_results
        kernel = measurements["kernel_wall"]
        legacy = measurements["legacy_wall"]
        n_events = measurements["kernel_events"]
        payload = {
            "trace": {"kind": "lmsys", "n_sessions": N_SESSIONS, "seed": 37},
            "n_events": n_events,
            "kernel_wall_seconds": kernel,
            "legacy_wall_seconds": legacy,
            "kernel_events_per_second": n_events / kernel,
            "legacy_events_per_second": n_events / legacy,
            "events_per_second_floor": FLOOR_EVENTS_PER_SECOND,
            "overhead_fraction": kernel / legacy - 1.0,
            "burst_demo": {
                "trace": "bursty-bench (4 waves 0.5s apart x 8 sessions, "
                "1500-token prefills)",
                "mean_busy_executors_max_running_1": serial.mean_running(),
                "mean_busy_executors_max_running_4": batched.mean_running(),
                "executor_utilization_max_running_1": serial.executor_utilization(),
                "executor_utilization_max_running_4": batched.executor_utilization(),
                "mean_queue_depth_max_running_1": serial.mean_queue_depth(),
                "mean_queue_depth_max_running_4": batched.mean_queue_depth(),
                "p95_ttft_s_max_running_1": serial.ttft_percentile(95),
                "p95_ttft_s_max_running_4": batched.ttft_percentile(95),
            },
        }
        write_bench(BENCH_PATH, "kernel_event_throughput_vs_legacy_loop", payload)
        assert BENCH_PATH.exists()
