"""Microbenchmark: incremental eviction index vs the seed full-tree rescan.

Runs a sustained-pressure LMSys-style trace (the Figs. 7-11 regime) through
the same cache configuration twice — once with the maintained eviction
index, once in legacy full-rescan mode — and measures:

* node visits per eviction (the seed's per-victim ``iter_nodes()`` DFS vs
  the index's incremental candidacy evaluations),
* wall-clock and evictions/sec,
* decision identity (byte-identical :class:`CacheStats`).

Results are written to ``BENCH_eviction.json`` at the repo root so future
PRs have a perf trajectory to compare against.  This file is deliberately
fast (seconds, not minutes) and stays in the default test lane as the
regression guard for the ≥5× node-visit reduction.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from _bench_io import write_bench
from repro.core.cache import MarconiCache
from repro.engine.server import simulate_trace
from repro.models.presets import hybrid_7b
from repro.workloads.lmsys import generate_lmsys_trace
from repro.workloads.sessions import WorkloadParams

CAPACITY_BYTES = int(2e9)
POLICIES = ("flop_aware", "lru")

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_eviction.json"


def _make_trace(n_sessions: int):
    return generate_lmsys_trace(
        WorkloadParams(
            n_sessions=n_sessions, session_rate=2.0, mean_think_s=3.0, seed=17
        )
    )


def _run(policy: str, use_index: bool, trace):
    cache = MarconiCache(
        hybrid_7b(),
        CAPACITY_BYTES,
        eviction=policy,
        alpha=1.0,
        use_eviction_index=use_index,
    )
    start = time.perf_counter()
    result = simulate_trace(hybrid_7b(), cache, trace, policy_name=policy)
    wall = time.perf_counter() - start
    evictions = cache.stats.evictions
    return {
        "policy": policy,
        "mode": "index" if use_index else "full_rescan",
        "wall_seconds": wall,
        "evictions": evictions,
        "evictions_per_sec": evictions / wall if wall > 0 else float("inf"),
        "node_visits": cache.eviction_node_visits,
        "visits_per_eviction": cache.eviction_node_visits / max(1, evictions),
        "token_hit_rate": result.token_hit_rate,
        "final_tree_nodes": cache.tree.n_nodes,
        "stats": cache.stats.snapshot(),
    }


@pytest.fixture(scope="module")
def measurements():
    """All (policy, mode, scale) runs, computed once per test session."""
    runs = {}
    for n_sessions in (60, 150):
        trace = _make_trace(n_sessions)
        for policy in POLICIES:
            for use_index in (True, False):
                runs[(policy, use_index, n_sessions)] = _run(policy, use_index, trace)
    return runs


class TestEvictionIndexMicrobench:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_decisions_identical_to_seed_scan(self, measurements, policy):
        """Index mode must reproduce the seed's victims exactly: same hit
        rates, byte-identical cache stats."""
        for n_sessions in (60, 150):
            indexed = measurements[(policy, True, n_sessions)]
            legacy = measurements[(policy, False, n_sessions)]
            assert indexed["stats"] == legacy["stats"]
            assert indexed["token_hit_rate"] == legacy["token_hit_rate"]

    @pytest.mark.parametrize("policy", POLICIES)
    def test_node_visit_reduction_at_least_5x(self, measurements, policy):
        """The acceptance bar: ≥5× fewer node visits than the full-rescan
        seed implementation on a sustained-pressure trace."""
        for n_sessions in (60, 150):
            indexed = measurements[(policy, True, n_sessions)]
            legacy = measurements[(policy, False, n_sessions)]
            assert indexed["evictions"] > 100, "trace must sustain pressure"
            ratio = legacy["node_visits"] / max(1, indexed["node_visits"])
            assert ratio >= 5.0, (
                f"{policy} @ {n_sessions} sessions: only {ratio:.1f}x fewer visits"
            )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_amortized_visits_sublinear_in_tree_size(self, measurements, policy):
        """Legacy visits/eviction scale with the tree; the index's stay
        near-flat as the workload (and thus the tree) grows."""
        small_idx = measurements[(policy, True, 60)]
        large_idx = measurements[(policy, True, 150)]
        small_legacy = measurements[(policy, False, 60)]
        large_legacy = measurements[(policy, False, 150)]
        legacy_growth = (
            large_legacy["visits_per_eviction"] / small_legacy["visits_per_eviction"]
        )
        index_growth = (
            large_idx["visits_per_eviction"] / small_idx["visits_per_eviction"]
        )
        assert index_growth < legacy_growth
        # And in absolute terms the index never approaches full-scan cost.
        assert (
            large_idx["visits_per_eviction"]
            < large_legacy["visits_per_eviction"] / 5.0
        )

    def test_emit_bench_json(self, measurements):
        """Persist the perf snapshot for cross-PR trajectory tracking."""
        large = {
            (policy, use_index): measurements[(policy, use_index, 150)]
            for policy in POLICIES
            for use_index in (True, False)
        }
        payload = {
            "capacity_bytes": CAPACITY_BYTES,
            "trace": {"kind": "lmsys", "n_sessions": 150, "seed": 17},
            "runs": [
                {k: v for k, v in run.items() if k != "stats"}
                for run in measurements.values()
            ],
            "summary": {
                policy: {
                    "node_visit_reduction_x": (
                        large[(policy, False)]["node_visits"]
                        / max(1, large[(policy, True)]["node_visits"])
                    ),
                    "visits_per_eviction_index": large[(policy, True)][
                        "visits_per_eviction"
                    ],
                    "visits_per_eviction_full_rescan": large[(policy, False)][
                        "visits_per_eviction"
                    ],
                    "wall_seconds_index": large[(policy, True)]["wall_seconds"],
                    "wall_seconds_full_rescan": large[(policy, False)]["wall_seconds"],
                    "decisions_identical": (
                        large[(policy, True)]["stats"]
                        == large[(policy, False)]["stats"]
                    ),
                }
                for policy in POLICIES
            },
        }
        write_bench(BENCH_PATH, "eviction_index_vs_full_rescan", payload)
        assert BENCH_PATH.exists()
        print(f"\nwrote {BENCH_PATH}")
        for policy, summary in payload["summary"].items():
            print(
                f"  {policy}: {summary['node_visit_reduction_x']:.1f}x fewer node "
                f"visits ({summary['visits_per_eviction_index']:.1f} vs "
                f"{summary['visits_per_eviction_full_rescan']:.1f} per eviction)"
            )
