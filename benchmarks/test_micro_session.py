"""Microbenchmark: session-API overhead vs the legacy lookup/admit path.

The request-session redesign routes every request through a
:class:`~repro.core.interfaces.RequestSession` object (state machine, open-
session registry, GC safety net).  This bench replays the same trace through
the same cache twice — once driving ``begin``/``commit`` directly, once
through the deprecated ``lookup``/``admit`` shims — and measures the
per-request cost of the transactional surface.

Acceptance bar: session overhead < 5% per request.  Results are written to
``BENCH_session.json`` at the repo root for cross-PR trajectory tracking.
This file is deliberately fast (seconds) and stays in the default test lane.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from _bench_io import write_bench
from repro.core.cache import MarconiCache
from repro.models.presets import hybrid_7b
from repro.workloads.lmsys import generate_lmsys_trace
from repro.workloads.sessions import WorkloadParams

CAPACITY_BYTES = int(2e9)
N_SESSIONS = 100
REPEATS = 3  # best-of to shave scheduler noise

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_session.json"


@pytest.fixture(scope="module")
def requests():
    trace = generate_lmsys_trace(
        WorkloadParams(n_sessions=N_SESSIONS, session_rate=2.0, mean_think_s=3.0, seed=23)
    )
    return list(trace.iter_requests_nominal())


def _fresh_cache() -> MarconiCache:
    return MarconiCache(hybrid_7b(), CAPACITY_BYTES, eviction="flop_aware", alpha=1.0)


def _run_session_api(requests):
    cache = _fresh_cache()
    start = time.perf_counter()
    for now, _, _, inp, full in requests:
        session = cache.begin(inp, now)
        session.commit(full, now)
    wall = time.perf_counter() - start
    return wall, cache


def _run_legacy_api(requests):
    cache = _fresh_cache()
    start = time.perf_counter()
    for now, _, _, inp, full in requests:
        result = cache.lookup(inp, now)
        cache.admit(full, now, handle=result.handle)
    wall = time.perf_counter() - start
    return wall, cache


@pytest.fixture(scope="module")
def measurements(requests):
    # Untimed warmup of both paths so neither pays one-time import/JIT-warm
    # costs inside its measured window.
    _run_session_api(requests)
    _run_legacy_api(requests)
    session_walls, legacy_walls = [], []
    session_cache = legacy_cache = None
    for _ in range(REPEATS):
        wall, session_cache = _run_session_api(requests)
        session_walls.append(wall)
        wall, legacy_cache = _run_legacy_api(requests)
        legacy_walls.append(wall)
    return {
        "n_requests": len(requests),
        "session_wall": min(session_walls),
        "legacy_wall": min(legacy_walls),
        "session_stats": session_cache.stats.snapshot(),
        "legacy_stats": legacy_cache.stats.snapshot(),
        "session_open": session_cache.open_sessions,
        "legacy_open": legacy_cache.open_sessions,
    }


class TestSessionMicrobench:
    def test_paths_byte_identical(self, measurements):
        """Both surfaces must produce the same CacheStats on replay."""
        assert measurements["session_stats"] == measurements["legacy_stats"]
        assert measurements["session_open"] == 0
        assert measurements["legacy_open"] == 0

    def test_session_overhead_under_5_percent(self, measurements):
        """The acceptance bar: the transactional surface costs < 5% per
        request over the legacy two-phase shims (which share the same
        underlying session machinery, so this guards against the session
        layer growing hidden per-request work).  A tiny absolute delta per
        request also passes, so scheduler noise on loaded CI runners cannot
        flip the ratio on a sub-millisecond measurement."""
        n = measurements["n_requests"]
        session = measurements["session_wall"]
        legacy = measurements["legacy_wall"]
        overhead = session / legacy - 1.0
        delta_us = 1e6 * (session - legacy) / n
        assert overhead < 0.05 or delta_us < 25.0, (
            f"session API {1e3 * session:.1f} ms vs legacy {1e3 * legacy:.1f} ms "
            f"({100 * overhead:+.1f}%, {delta_us:+.1f} us/request overhead)"
        )

    def test_emit_bench_json(self, measurements):
        """Persist the perf snapshot for cross-PR trajectory tracking."""
        n = measurements["n_requests"]
        payload = {
            "capacity_bytes": CAPACITY_BYTES,
            "trace": {"kind": "lmsys", "n_sessions": N_SESSIONS, "seed": 23},
            "n_requests": n,
            "session_wall_seconds": measurements["session_wall"],
            "legacy_wall_seconds": measurements["legacy_wall"],
            "session_us_per_request": 1e6 * measurements["session_wall"] / n,
            "legacy_us_per_request": 1e6 * measurements["legacy_wall"] / n,
            "overhead_fraction": measurements["session_wall"]
            / measurements["legacy_wall"]
            - 1.0,
            "stats_identical": measurements["session_stats"]
            == measurements["legacy_stats"],
        }
        write_bench(BENCH_PATH, "session_api_vs_legacy_shims", payload)
        assert BENCH_PATH.exists()
