"""Microbenchmark: live gateway throughput and TTFT under concurrency.

Replays an LMSYS-style multi-round trace through the asyncio
:class:`~repro.serving.gateway.Gateway` as fast as backpressure allows
(``speed=None``), with a :class:`~repro.serving.replay.CacheOnlyServer`
backend so the measurement isolates the serving stack — admission,
tier queues, worker scheduling, per-token event-loop yields, and prefix
cache transactions — from NumPy model compute.

Metrics: sustained requests per second over the whole replay, and the
p95 time-to-first-token across served requests.  Results are written to
``BENCH_gateway.json`` at the repo root for cross-PR trajectory
tracking.  This file is deliberately fast (seconds) and stays in the
default test lane; the throughput floor is skipped on single-core
runners where the asyncio loop and pytest share one CPU.
"""

from __future__ import annotations

import asyncio
import os
import time
from pathlib import Path

import pytest

from _bench_io import write_bench
from repro.core.cache import MarconiCache
from repro.metrics import percentile
from repro.models.presets import hybrid_7b
from repro.serving import CacheOnlyServer, Gateway, GatewayConfig, TraceReplayer
from repro.workloads.lmsys import generate_lmsys_trace
from repro.workloads.sessions import WorkloadParams

CAPACITY_BYTES = int(2e9)
N_SESSIONS = 60
N_WORKERS = 4
REPEATS = 3  # best-of to shave scheduler noise

# Floor set ~30% below the container measurement (~0.9k req/s with
# per-token event-loop yields); generous enough for loaded CI runners,
# tight enough to catch a hot-path regression that serializes the pool.
FLOOR_REQUESTS_PER_S = 300.0

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_gateway.json"


def _trace():
    return generate_lmsys_trace(
        WorkloadParams(n_sessions=N_SESSIONS, session_rate=2.0, mean_think_s=3.0, seed=31)
    )


async def _replay_once(trace):
    cache = MarconiCache(hybrid_7b(), CAPACITY_BYTES, eviction="flop_aware", alpha=1.0)
    gateway = Gateway(
        CacheOnlyServer(cache),
        GatewayConfig(n_workers=N_WORKERS, max_queue_depth=10_000),
    )
    start = time.perf_counter()
    report = await TraceReplayer(gateway, speed=None).run(trace)
    wall = time.perf_counter() - start
    await gateway.close()
    assert cache.open_sessions == 0
    assert all(n.pin_count == 0 for n in cache.tree.iter_nodes())
    return wall, report


@pytest.fixture(scope="module")
def measurements():
    trace = _trace()
    asyncio.run(_replay_once(trace))  # untimed warmup
    best_wall, best_report = None, None
    for _ in range(REPEATS):
        wall, report = asyncio.run(_replay_once(trace))
        if best_wall is None or wall < best_wall:
            best_wall, best_report = wall, report
    ttfts = [r.ttft_seconds for r in best_report.records if r.status == "served"]
    return {
        "n_requests": trace.n_requests,
        "n_sessions": trace.n_sessions,
        "wall_seconds": best_wall,
        "requests_per_second": trace.n_requests / best_wall,
        "ttft_p50_seconds": percentile(ttfts, 50),
        "ttft_p95_seconds": percentile(ttfts, 95),
        "report": best_report,
    }


class TestGatewayMicrobench:
    def test_replay_accounting_closes(self, measurements):
        """Every trace round is served — nothing shed, aborted, or lost —
        and gateway counters agree with the replay report."""
        report = measurements["report"]
        assert report.served == measurements["n_requests"]
        assert report.shed == 0 and report.abandoned_rounds == 0
        stats = report.gateway_stats
        assert stats["completed"] == report.served
        assert stats["failed"] == 0 and stats["aborted"] == 0

    def test_throughput_floor(self, measurements):
        """The perf gate: sustained gateway throughput stays above the
        floor.  Skipped on single-core runners, where the event loop and
        the test harness contend for one CPU and the number measures the
        machine rather than the code."""
        if (os.cpu_count() or 1) < 2:
            pytest.skip("needs >= 2 cores for a meaningful throughput floor")
        rps = measurements["requests_per_second"]
        assert rps >= FLOOR_REQUESTS_PER_S, (
            f"gateway throughput {rps:.0f} req/s below floor "
            f"{FLOOR_REQUESTS_PER_S:.0f} req/s "
            f"(wall {measurements['wall_seconds']:.2f}s for "
            f"{measurements['n_requests']} requests)"
        )

    def test_emit_bench_json(self, measurements):
        """Persist the perf snapshot for cross-PR trajectory tracking."""
        payload = {
            "capacity_bytes": CAPACITY_BYTES,
            "trace": {"kind": "lmsys", "n_sessions": N_SESSIONS, "seed": 31},
            "n_workers": N_WORKERS,
            "n_requests": measurements["n_requests"],
            "wall_seconds": measurements["wall_seconds"],
            "requests_per_second": measurements["requests_per_second"],
            "ttft_p50_seconds": measurements["ttft_p50_seconds"],
            "ttft_p95_seconds": measurements["ttft_p95_seconds"],
            "floor_requests_per_second": FLOOR_REQUESTS_PER_S,
            "token_hit_rate": measurements["report"].token_hit_rate,
        }
        write_bench(BENCH_PATH, "gateway_replay_throughput", payload)
        assert BENCH_PATH.exists()
