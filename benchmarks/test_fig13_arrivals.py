"""Bench: Fig. 13 — impact of arrival patterns (session rate, think time)."""

from conftest import run_once

from repro.experiments.figures import fig13_arrivals


def test_fig13a_session_rate(benchmark, scale):
    result = run_once(benchmark, fig13_arrivals.run_13a, scale)
    print("\n" + result.render())
    ratios = result.extra["ratios"]
    # Paper: the relative win over SGLang+ grows with arrival rate
    # (1.4x -> 1.6x) as contention rises.
    assert ratios[-1] >= ratios[0] - 0.05
    if scale != "smoke":
        assert max(ratios) > 1.0


def test_fig13b_think_time(benchmark, scale):
    result = run_once(benchmark, fig13_arrivals.run_13b, scale)
    print("\n" + result.render())
    ratios = result.extra["ratios"]
    assert max(ratios) >= 1.0
    assert min(ratios) > 0.85  # tuner keeps Marconi from losing badly
