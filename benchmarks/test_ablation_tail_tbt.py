"""Ablation bench: footnote 2 — prefix caching lowers tail time-per-token.

Thin wrapper over :func:`repro.experiments.extensions.run_tail_tbt`
(regenerate standalone with ``python -m repro.experiments --figure
ext-tbt``).  The iteration-level engine (Orca/Sarathi-style chunked
prefill + continuous batching) makes the paper's section 2.2 footnote
measurable: every prefill chunk occupies an iteration that all concurrent
decode streams wait through, so skipped prefill directly shortens other
requests' inter-token gaps.

The workload is deliberately *open-loop* (doc-QA: single-round sessions,
huge shared inputs, short outputs).  On closed-loop multi-round traces the
effect inverts: cache hits complete sessions sooner, the saved time is
reinvested as higher sustained concurrency, and tail TBT can *rise* while
throughput improves — the correct reading of footnote 2 is "at fixed
offered load", which single-round sessions pin down.
"""

from conftest import run_once

from repro.experiments.extensions import run_tail_tbt


def test_ablation_tail_tbt(benchmark, scale):
    result = run_once(benchmark, run_tail_tbt, scale)
    print("\n" + result.render())
    out = result.extra["policies"]
    # The prefill tokens a policy skips are iterations concurrent decodes
    # don't wait through: Marconi's hit rate must translate into a strictly
    # lower TBT tail than no caching, and vLLM+'s thrashed cache must not.
    assert out["marconi"]["hit_rate"] > out["vllm+"]["hit_rate"]
    assert out["marconi"]["ttft_p95"] <= out["vanilla"]["ttft_p95"] + 1e-9
    if scale != "smoke":
        assert out["marconi"]["tbt_p95"] < 0.7 * out["vanilla"]["tbt_p95"]
        assert out["marconi"]["iterations"] < out["vanilla"]["iterations"]
