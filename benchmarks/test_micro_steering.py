"""Microbenchmark: split-point steering vs the all-or-nothing endpoints.

Split-point steering's acceptance bar is a *floor*, not a speedup claim:
because the planner only picks an interior split when its cost estimate
strictly beats both endpoints (full recompute, full load), the steered
round's TTFT under ``DirectoryRouter(split=True)`` must be <= the best
endpoint arm at **every** swept inter-replica bandwidth.  This bench runs
:func:`repro.experiments.steering_sweep.steering_bandwidth_sweep` across
regimes from disk-ish 0.3 GB/s to NVLink-ish 50 GB/s and asserts exactly
that, plus the regime shape the cost model predicts: at low bandwidth the
split arm overlaps (transfer is the bottleneck — recompute the tail while
the head ships), at high bandwidth it degenerates to the PR-4 full-load
decision byte-identically.

Results are written to ``BENCH_steering.json`` at the repo root for
cross-PR trajectory tracking.  Deliberately fast (a handful of tiny
two-replica sims); stays in the default test lane.
"""

from __future__ import annotations

from pathlib import Path

from _bench_io import write_bench
from repro.experiments.steering_sweep import (
    ARMS,
    DEFAULT_BANDWIDTHS,
    steering_bandwidth_sweep,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_steering.json"

#: Absolute slack on the TTFT floor comparison (float noise only — the
#: planner never *chooses* a strictly worse split, so no real tolerance
#: is needed).
FLOOR_EPS_S = 1e-9


def test_split_ttft_floor_across_bandwidth_regimes():
    payload = steering_bandwidth_sweep()
    ttfts = payload["ttft_seconds"]
    bandwidths = payload["bandwidths_bytes_per_s"]
    assert list(bandwidths) == [float(b) for b in DEFAULT_BANDWIDTHS]
    assert set(ttfts) == set(ARMS)

    failures = []
    for i, bandwidth in enumerate(bandwidths):
        split = ttfts["split"][i]
        floor = min(ttfts["recompute"][i], ttfts["full"][i])
        if split > floor + FLOOR_EPS_S:
            failures.append(
                f"bw={bandwidth:.3g} B/s: split TTFT {split:.6f}s above the "
                f"endpoint floor {floor:.6f}s"
            )
    assert not failures, "; ".join(failures)
    assert all(payload["floor_holds"]), payload["floor_holds"]

    # Regime shape: somewhere in the sweep the split arm must *strictly*
    # beat both endpoints with overlap savings (otherwise the subsystem
    # is dead weight), and at the highest bandwidth it must degenerate to
    # the all-or-nothing decision (identical TTFT to the 'full' arm).
    strict_wins = [
        i
        for i in range(len(bandwidths))
        if ttfts["split"][i]
        < min(ttfts["recompute"][i], ttfts["full"][i]) - FLOOR_EPS_S
    ]
    assert strict_wins, "split never beat the endpoints in any swept regime"
    assert any(
        payload["split_summaries"][i]["splits_overlapped"] > 0 for i in strict_wins
    )
    assert ttfts["split"][-1] == ttfts["full"][-1], (
        "at the highest bandwidth the planner must degenerate to full load"
    )

    write_bench(
        BENCH_PATH,
        benchmark="steering",
        payload={
            "bandwidth_sweep": payload,
            "floor": {
                "eps_seconds": FLOOR_EPS_S,
                "holds_at_every_bandwidth": True,
                "strict_win_bandwidths": [bandwidths[i] for i in strict_wins],
            },
        },
    )
