"""Shared writer for the repo-root ``BENCH_*.json`` perf snapshots.

Five microbenchmarks (kernel, eviction index, router, session, sweep)
persist a JSON snapshot at the repo root for cross-PR trajectory
tracking.  They historically each rolled their own ``json.dumps`` call
with slightly different conventions (trailing newline or not, sorted
keys or not, no provenance).  This module gives them one writer so the
files stay machine-comparable across PRs:

* ``schema_version`` — bumped when the envelope layout changes, so a
  trajectory scraper can refuse to diff incompatible snapshots.
* ``host`` — interpreter + hardware fingerprint.  Events-per-second
  numbers are only comparable between snapshots taken on similar hosts;
  the fingerprint makes "this regression is just a slower runner"
  checkable after the fact.
* Consistent serialization: sorted keys, two-space indent, trailing
  newline, NaN-free (non-finite floats are serialized as strings).

The benchmark-specific measurements live under their own keys at the
top level, exactly as before — the envelope only adds metadata, so
pre-existing consumers keyed on e.g. ``kernel_events_per_second`` keep
working.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Any

#: Version of the snapshot envelope (top-level metadata layout).
SCHEMA_VERSION = 2

REPO_ROOT = Path(__file__).resolve().parents[1]


def host_fingerprint() -> dict[str, Any]:
    """Interpreter + hardware identity of the measuring host."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _sanitize(value: Any) -> Any:
    """Make ``value`` strictly-JSON safe (no NaN/Infinity literals)."""
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return repr(value)
        return value
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


def write_bench(path: Path, benchmark: str, payload: dict[str, Any]) -> dict[str, Any]:
    """Write one snapshot to ``path`` and return the full document.

    ``payload`` carries the benchmark-specific measurements; the writer
    wraps it in the common envelope (schema version, benchmark name,
    host fingerprint).  Payload keys win over envelope keys so a bench
    can override e.g. ``benchmark`` with a more specific slug.
    """
    doc: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "host": host_fingerprint(),
    }
    doc.update(payload)
    doc = _sanitize(doc)
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )
    return doc


def read_bench(path: Path) -> dict[str, Any]:
    """Load a snapshot previously written by :func:`write_bench`."""
    return json.loads(path.read_text())
