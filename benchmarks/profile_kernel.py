"""Profiling harness for the simulation kernel's hot paths.

Replays the exact ``BENCH_kernel.json`` trace (lmsys, 120 sessions,
seed 37, ``max_running=1``) through :class:`SimulationKernel` under two
complementary profilers, entirely from the standard library:

* **cProfile** — exact call counts and per-function cumulative times,
  printed as a top-N table and optionally dumped to a ``.prof`` file for
  ``pstats``/``snakeviz``-style consumers.  Remember that cProfile's
  tracing overhead is proportional to call count (2-4x on this
  call-dense workload), so use it for *ranking*, not absolute walls.
* **a stack sampler** — a background thread walks the benchmark
  thread's frame stack via ``sys._current_frames()`` on a ~1 ms tick
  and folds the samples into a flamegraph SVG (self-contained, zoomable
  by browser text search, hover for exact sample counts).  Sampling
  adds negligible bias, so widths reflect real wall time.

Usage (CI runs exactly this)::

    PYTHONPATH=src python benchmarks/profile_kernel.py \
        --repeats 30 --svg flamegraph.svg --cprofile kernel.prof

The run also prints the measured events/s so a human can eyeball the
number against the committed ``FLOOR_EVENTS_PER_SECOND`` in
``benchmarks/test_micro_kernel.py``.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import threading
import time
from collections import Counter
from html import escape
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.cache import MarconiCache  # noqa: E402
from repro.engine.kernel import KernelConfig, SimulationKernel  # noqa: E402
from repro.models.memory import node_state_bytes  # noqa: E402
from repro.models.presets import hybrid_7b  # noqa: E402
from repro.workloads.lmsys import generate_lmsys_trace  # noqa: E402

N_SESSIONS = 120
MODEL = hybrid_7b()


def _fresh_kernel() -> SimulationKernel:
    cache = MarconiCache(MODEL, 24 * node_state_bytes(MODEL, 2000, True), alpha=1.0)
    return SimulationKernel(
        MODEL, [cache], config=KernelConfig(max_running=1), policy_names=["kernel"]
    )


# ----------------------------------------------------------------------
# Stack sampler -> folded stacks
# ----------------------------------------------------------------------
class StackSampler(threading.Thread):
    """Samples one thread's Python stack on a fixed tick."""

    def __init__(self, target_thread_id: int, interval_s: float = 0.001) -> None:
        super().__init__(daemon=True)
        self._target = target_thread_id
        self._interval = interval_s
        self._halt = threading.Event()
        self.samples: Counter[tuple[str, ...]] = Counter()

    def run(self) -> None:
        while not self._halt.is_set():
            frame = sys._current_frames().get(self._target)
            if frame is not None:
                stack = []
                while frame is not None:
                    code = frame.f_code
                    stack.append(
                        f"{code.co_name} ({Path(code.co_filename).name}"
                        f":{code.co_firstlineno})"
                    )
                    frame = frame.f_back
                self.samples[tuple(reversed(stack))] += 1
            time.sleep(self._interval)

    def stop(self) -> None:
        self._halt.set()
        self.join()


# ----------------------------------------------------------------------
# Folded stacks -> flamegraph SVG
# ----------------------------------------------------------------------
_PALETTE = ["#e4593b", "#e8743d", "#ec8f40", "#f0a942", "#f4c445", "#d8553a"]
_ROW_H = 17
_WIDTH = 1200
_MIN_W = 0.4  # px: drop slivers below this


def _build_tree(samples: Counter) -> dict:
    root: dict = {"name": "all", "count": 0, "children": {}}
    for stack, count in samples.items():
        root["count"] += count
        node = root
        for frame in stack:
            child = node["children"].get(frame)
            if child is None:
                child = node["children"][frame] = {
                    "name": frame,
                    "count": 0,
                    "children": {},
                }
            child["count"] += count
            node = child
    return root


def _render(node: dict, x: float, depth: int, total: int, out: list[str]) -> int:
    width = _WIDTH * node["count"] / total
    max_depth = depth
    if width >= _MIN_W:
        color = _PALETTE[hash(node["name"]) % len(_PALETTE)]
        y = depth * _ROW_H
        pct = 100.0 * node["count"] / total
        label = escape(node["name"])
        out.append(
            f'<g><title>{label} — {node["count"]} samples ({pct:.1f}%)</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{width:.2f}" height="{_ROW_H - 1}"'
            f' fill="{color}" rx="1"/>'
        )
        if width > 40:
            text = escape(node["name"][: max(3, int(width / 6.5))])
            out.append(
                f'<text x="{x + 2:.2f}" y="{y + 12}" font-size="10"'
                f' font-family="monospace" fill="#1a1a1a">{text}</text>'
            )
        out.append("</g>")
        child_x = x
        for child in sorted(
            node["children"].values(), key=lambda c: -c["count"]
        ):
            max_depth = max(
                max_depth, _render(child, child_x, depth + 1, total, out)
            )
            child_x += _WIDTH * child["count"] / total
    return max_depth


def write_flamegraph(samples: Counter, path: Path) -> None:
    if not samples:
        path.write_text(
            '<svg xmlns="http://www.w3.org/2000/svg" width="600" height="40">'
            '<text x="10" y="25">no samples collected (run too short — '
            "raise --repeats)</text></svg>"
        )
        return
    root = _build_tree(samples)
    body: list[str] = []
    max_depth = _render(root, 0.0, 0, root["count"], body)
    height = (max_depth + 2) * _ROW_H
    svg = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{height}" font-family="sans-serif">',
        f'<rect width="{_WIDTH}" height="{height}" fill="#fdf6ec"/>',
        *body,
        "</svg>",
    ]
    path.write_text("\n".join(svg))


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats",
        type=int,
        default=30,
        help="kernel runs inside the sampled window (default 30; one run "
        "is ~35 ms, so 30 gives ~1000 flamegraph samples)",
    )
    parser.add_argument(
        "--svg",
        type=Path,
        default=REPO_ROOT / "flamegraph.svg",
        help="flamegraph output path (default repo-root flamegraph.svg)",
    )
    parser.add_argument(
        "--cprofile",
        type=Path,
        default=None,
        help="optional path to dump raw cProfile stats (.prof)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        help="rows in the printed cProfile table (default 25)",
    )
    args = parser.parse_args(argv)

    trace = generate_lmsys_trace(
        n_sessions=N_SESSIONS, session_rate=3.0, mean_think_s=2.0, seed=37
    )
    # Warmup: imports, numpy init, trace interning.
    run = _fresh_kernel().run(trace)

    # --- timed + sampled window ---------------------------------------
    sampler = StackSampler(threading.get_ident())
    sampler.start()
    walls = []
    for _ in range(args.repeats):
        kernel = _fresh_kernel()
        t0 = time.perf_counter()
        kernel.run(trace)
        walls.append(time.perf_counter() - t0)
    sampler.stop()
    best = min(walls)
    print(
        f"{run.n_events} events: best {1e3 * best:.2f} ms over "
        f"{args.repeats} runs -> {run.n_events / best:,.0f} events/s"
    )

    write_flamegraph(sampler.samples, args.svg)
    n_samples = sum(sampler.samples.values())
    print(f"flamegraph: {args.svg} ({n_samples} stack samples)")

    # --- cProfile pass (separate window: tracing skews walls) ---------
    kernel = _fresh_kernel()
    profiler = cProfile.Profile()
    profiler.enable()
    kernel.run(trace)
    profiler.disable()
    if args.cprofile is not None:
        profiler.dump_stats(args.cprofile)
        print(f"cProfile dump: {args.cprofile}")
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf).sort_stats("tottime")
    stats.print_stats(args.top)
    print(buf.getvalue())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
