"""Shared configuration for the benchmark harness.

Every paper table/figure has one benchmark module here.  Each bench runs its
figure harness once (``benchmark.pedantic`` with a single round — the
workloads are deterministic, so repetition only measures noise), prints the
regenerated series next to the paper's expectation, and asserts the
qualitative shape.

Scale defaults to ``bench``; set ``REPRO_BENCH_SCALE=smoke`` for a fast
pass or ``full`` for tighter statistics.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

# Benchmark modules fast enough (a few seconds) to stay in the default
# `pytest -x -q` lane; everything else here is marked `slow` and runs in the
# dedicated CI benchmark lane (`pytest -m slow`).
_FAST_MODULES = {
    "test_micro_core.py",
    "test_micro_eviction_index.py",
    "test_micro_gateway.py",
    "test_micro_kernel.py",
    "test_micro_router.py",
    "test_micro_session.py",
    "test_micro_steering.py",
    "test_micro_sweep.py",
}
_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    for item in items:
        path = Path(str(item.fspath))
        if path.parent == _BENCH_DIR and path.name not in _FAST_MODULES:
            item.add_marker(pytest.mark.slow)


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "bench")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


def run_once(benchmark, fn, *args):
    """Run ``fn`` exactly once under the benchmark timer and return it."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
