"""Shared configuration for the benchmark harness.

Every paper table/figure has one benchmark module here.  Each bench runs its
figure harness once (``benchmark.pedantic`` with a single round — the
workloads are deterministic, so repetition only measures noise), prints the
regenerated series next to the paper's expectation, and asserts the
qualitative shape.

Scale defaults to ``bench``; set ``REPRO_BENCH_SCALE=smoke`` for a fast
pass or ``full`` for tighter statistics.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "bench")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


def run_once(benchmark, fn, *args):
    """Run ``fn`` exactly once under the benchmark timer and return it."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
