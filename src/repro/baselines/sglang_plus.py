"""SGLang+ — Marconi's admission with plain LRU eviction (artifact policy V1).

The paper enhances SGLang with the same judicious admission policy as
Marconi (otherwise its fine-grained admission would collapse like vLLM+'s),
so the only difference from Marconi is the eviction policy: LRU instead of
FLOP-aware scoring.  Comparing the two isolates the contribution of
FLOP-aware eviction (Figs. 8, 10, 11, 13).
"""

from __future__ import annotations

from repro.core.cache import MarconiCache
from repro.models.config import ModelConfig


class SGLangPlusCache(MarconiCache):
    """Radix-tree cache with judicious admission and LRU eviction."""

    def __init__(
        self,
        model: ModelConfig,
        capacity_bytes: int,
        *,
        store_states: bool = False,
    ) -> None:
        super().__init__(
            model,
            capacity_bytes,
            eviction="lru",
            alpha=None,
            store_states=store_states,
        )
