"""Shared surface for baseline caches.

All caches implement :class:`repro.core.interfaces.PrefixCache`; this module
re-exports it under a baseline-local name so the baseline implementations
and their tests read naturally, and defines the runtime-checkable protocol
the engine validates against.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.core.interfaces import AdmitResult, LookupResult, PrefixCache

__all__ = ["PrefixCache", "CacheProtocol", "LookupResult", "AdmitResult"]


@runtime_checkable
class CacheProtocol(Protocol):
    """Structural type the serving engine requires of any cache."""

    def lookup(self, tokens: np.ndarray, now: float) -> LookupResult: ...

    def admit(
        self,
        tokens: np.ndarray,
        now: float,
        handle: Any = None,
        state_payload: Any = None,
    ) -> AdmitResult: ...

    @property
    def capacity_bytes(self) -> int: ...

    @property
    def used_bytes(self) -> int: ...
