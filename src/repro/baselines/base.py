"""Shared surface for baseline caches.

All caches implement :class:`repro.core.interfaces.PrefixCache`; this module
re-exports it — together with the runtime-checkable
:class:`~repro.core.interfaces.CacheProtocol` the engines validate against —
under a baseline-local name so the baseline implementations and their tests
read naturally.  The protocol itself is defined once, in
:mod:`repro.core.interfaces`.
"""

from __future__ import annotations

from repro.core.interfaces import (
    AdmitResult,
    CacheProtocol,
    LookupResult,
    PrefixCache,
    RequestSession,
)

__all__ = [
    "PrefixCache",
    "CacheProtocol",
    "LookupResult",
    "AdmitResult",
    "RequestSession",
]
