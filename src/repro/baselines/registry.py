"""Factory for the caching policies evaluated in the paper."""

from __future__ import annotations

from typing import Any

from repro.baselines.sglang_plus import SGLangPlusCache
from repro.baselines.vanilla import VanillaCache
from repro.baselines.vllm_plus import VLLMPlusCache
from repro.core.cache import MarconiCache
from repro.core.interfaces import PrefixCache
from repro.models.config import ModelConfig

POLICY_NAMES: tuple[str, ...] = (
    "vanilla",
    "vllm+",
    "sglang+",
    "marconi",
    "marconi-fixed",
    "gdsf",
)


def make_cache(
    policy: str,
    model: ModelConfig,
    capacity_bytes: int,
    *,
    block_size: int = 32,
    alpha: float | None = None,
    **kwargs: Any,
) -> PrefixCache:
    """Build a cache by policy name.

    ``marconi`` uses the online bootstrap alpha tuner; ``marconi-fixed``
    pins ``alpha`` (defaults to 1.0); ``gdsf`` is the ablation comparator
    from section 4.2's discussion of size-aware eviction.
    """
    if policy == "vanilla":
        return VanillaCache(model)
    if policy == "vllm+":
        return VLLMPlusCache(model, capacity_bytes, block_size=block_size, **kwargs)
    if policy == "sglang+":
        return SGLangPlusCache(model, capacity_bytes, **kwargs)
    if policy == "marconi":
        return MarconiCache(
            model, capacity_bytes, eviction="flop_aware", alpha=None, **kwargs
        )
    if policy == "marconi-fixed":
        return MarconiCache(
            model,
            capacity_bytes,
            eviction="flop_aware",
            alpha=1.0 if alpha is None else alpha,
            **kwargs,
        )
    if policy == "gdsf":
        return MarconiCache(model, capacity_bytes, eviction="gdsf", **kwargs)
    raise KeyError(f"unknown policy {policy!r}; known: {POLICY_NAMES}")
