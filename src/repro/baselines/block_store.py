"""Hash-chained token-block store: the substrate of the vLLM+ baseline.

vLLM's prefix cache keys each fixed-size token block by the hash chain of
its content plus its parent block, so a block's KVs are only reusable when
every ancestor block is also cached.  Eviction removes least-recently-used
*leaf* blocks (blocks no cached block builds on), mirroring vLLM's
hash-based prefix caching.

The store tracks token mechanics, recency, and reuse counters; byte
accounting lives in :class:`repro.baselines.vllm_plus.VLLMPlusCache` so the
same store can serve hybrid and pure-Transformer configurations.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

_ROOT_ID = 0


@dataclass
class Block:
    """One cached token block.

    ``depth`` is the 1-based index of the block within its sequence; the
    block's recurrent checkpoint (in hybrid mode) represents all
    ``depth * block_size`` tokens up to its boundary.
    """

    block_id: int
    key: tuple[int, bytes]
    parent_id: int
    depth: int
    last_access: float
    n_children: int = 0
    kv_reused: bool = False
    ssm_reused: bool = False

    @property
    def is_leaf(self) -> bool:
        return self.n_children == 0


@dataclass
class BlockReuseStats:
    """Counters behind the paper's Fig. 3a (block reuse rates)."""

    blocks_created: int = 0
    blocks_kv_reused: int = 0
    blocks_ssm_reused: int = 0

    @property
    def kv_reuse_rate(self) -> float:
        if self.blocks_created == 0:
            return 0.0
        return self.blocks_kv_reused / self.blocks_created

    @property
    def ssm_reuse_rate(self) -> float:
        if self.blocks_created == 0:
            return 0.0
        return self.blocks_ssm_reused / self.blocks_created


class BlockStore:
    """Token blocks keyed by (parent block, block content) hash chains."""

    def __init__(self, block_size: int) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.block_size = block_size
        self._by_key: dict[tuple[int, bytes], Block] = {}
        self._by_id: dict[int, Block] = {}
        self._ids = itertools.count(1)
        self._heap: list[tuple[float, int, int]] = []  # (last_access, seq, id)
        self._heap_seq = itertools.count()
        self.reuse_stats = BlockReuseStats()

    # ------------------------------------------------------------------
    # Token mechanics
    # ------------------------------------------------------------------
    def _block_key(self, parent_id: int, tokens: np.ndarray) -> tuple[int, bytes]:
        return (parent_id, np.ascontiguousarray(tokens, dtype=np.int32).tobytes())

    def _full_blocks(self, tokens: np.ndarray) -> Iterator[np.ndarray]:
        for start in range(0, (len(tokens) // self.block_size) * self.block_size, self.block_size):
            yield tokens[start : start + self.block_size]

    def match_chain(self, tokens: np.ndarray, max_blocks: Optional[int] = None) -> list[Block]:
        """Longest chain of cached blocks matching a prefix of ``tokens``."""
        matched: list[Block] = []
        parent = _ROOT_ID
        for i, chunk in enumerate(self._full_blocks(tokens)):
            if max_blocks is not None and i >= max_blocks:
                break
            block = self._by_key.get(self._block_key(parent, chunk))
            if block is None:
                break
            matched.append(block)
            parent = block.block_id
        return matched

    def touch(self, block: Block, now: float) -> None:
        """Refresh a block's recency (lazy-heap entry per touch)."""
        block.last_access = now
        heapq.heappush(self._heap, (now, next(self._heap_seq), block.block_id))

    def mark_reused(self, chain: list[Block], hybrid: bool) -> None:
        """Update reuse counters after a hit on ``chain``.

        A hit reuses the KVs of every matched block but the recurrent state
        of only the *last* matched block (section 3's sparsely-hit entries).
        """
        for block in chain:
            if not block.kv_reused:
                block.kv_reused = True
                self.reuse_stats.blocks_kv_reused += 1
        if hybrid and chain:
            last = chain[-1]
            if not last.ssm_reused:
                last.ssm_reused = True
                self.reuse_stats.blocks_ssm_reused += 1

    def insert_block(self, parent_id: int, tokens: np.ndarray, now: float) -> Block:
        """Insert one (full) block; the caller has already charged its bytes."""
        if len(tokens) != self.block_size:
            raise ValueError(
                f"can only insert full blocks of {self.block_size} tokens, got {len(tokens)}"
            )
        key = self._block_key(parent_id, tokens)
        if key in self._by_key:
            raise ValueError("block already cached")
        parent = self._by_id.get(parent_id)
        if parent_id != _ROOT_ID and parent is None:
            raise ValueError(f"parent block {parent_id} is not cached")
        depth = 1 if parent is None else parent.depth + 1
        block = Block(
            block_id=next(self._ids),
            key=key,
            parent_id=parent_id,
            depth=depth,
            last_access=now,
        )
        self._by_key[key] = block
        self._by_id[block.block_id] = block
        if parent is not None:
            parent.n_children += 1
        self.reuse_stats.blocks_created += 1
        heapq.heappush(self._heap, (now, next(self._heap_seq), block.block_id))
        return block

    def get(self, parent_id: int, tokens: np.ndarray) -> Optional[Block]:
        return self._by_key.get(self._block_key(parent_id, tokens))

    def has_block(self, block_id: int) -> bool:
        return block_id == _ROOT_ID or block_id in self._by_id

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def pop_lru_leaf(self) -> Optional[Block]:
        """Remove and return the least-recently-used leaf block.

        Uses a lazy heap: stale entries (deleted blocks or superseded
        timestamps) are dropped; entries for blocks that are currently
        internal are set aside and re-pushed, since they become evictable
        once their descendants are gone.
        """
        deferred: list[tuple[float, int, int]] = []
        victim: Optional[Block] = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            ts, _, block_id = entry
            block = self._by_id.get(block_id)
            if block is None or block.last_access != ts:
                continue  # stale
            if not block.is_leaf:
                deferred.append(entry)
                continue
            victim = block
            break
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        if victim is None:
            return None
        self._remove(victim)
        return victim

    def _remove(self, block: Block) -> None:
        if block.n_children:
            raise ValueError(f"block {block.block_id} still has children")
        del self._by_key[block.key]
        del self._by_id[block.block_id]
        parent = self._by_id.get(block.parent_id)
        if parent is not None:
            parent.n_children -= 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return len(self._by_id)

    def iter_blocks(self) -> Iterator[Block]:
        return iter(self._by_id.values())

    def check_integrity(self) -> None:
        """Raise ``AssertionError`` on inconsistent parent/child counters."""
        child_counts: dict[int, int] = {}
        for block in self._by_id.values():
            child_counts[block.parent_id] = child_counts.get(block.parent_id, 0) + 1
        for block in self._by_id.values():
            assert block.n_children == child_counts.get(block.block_id, 0)
            if block.parent_id != _ROOT_ID:
                assert block.parent_id in self._by_id, "orphaned block"
