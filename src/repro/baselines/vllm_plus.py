"""vLLM+ — fine-grained token-block checkpointing extended to hybrid models.

This is the paper's strongest-effort extension of vLLM's prefix caching to
hybrid LLMs (section 5.1): every full token block of every finished sequence
is admitted, and in hybrid mode each block carries both the KVs of its
tokens and a full-model recurrent checkpoint at its boundary.  Eviction is
vLLM's leaf-LRU over blocks.  The per-block recurrent state is what makes
this baseline collapse under hybrid models — exactly the motivation of
section 3.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.baselines.block_store import BlockStore, BlockReuseStats, _ROOT_ID
from repro.core.interfaces import (
    AdmitResult,
    LookupResult,
    PrefixCache,
    RequestSession,
    as_token_array,
)
from repro.core.stats import CacheStats
from repro.models.config import ModelConfig
from repro.models.flops import model_prefill_flops
from repro.models.memory import kv_bytes, model_recurrent_bytes


class VLLMPlusCache(PrefixCache):
    """Block-granular prefix cache with per-block recurrent checkpoints.

    Parameters
    ----------
    model:
        Architecture being served.  For pure Transformers the per-block
        recurrent term is zero and this degenerates to vLLM's KV block cache.
    capacity_bytes:
        Cache budget.
    block_size:
        Tokens per block.  The paper uses 32, the largest size vLLM
        supports, which *favours* this baseline by minimizing the number of
        recurrent states admitted.
    """

    def __init__(
        self, model: ModelConfig, capacity_bytes: int, *, block_size: int = 32
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.model = model
        self.block_size = block_size
        self._capacity = int(capacity_bytes)
        self.store = BlockStore(block_size)
        self._used = 0
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    @property
    def block_bytes(self) -> int:
        """Bytes per cached block: a block of KVs plus one recurrent state."""
        return kv_bytes(self.model, self.block_size) + model_recurrent_bytes(self.model)

    # ------------------------------------------------------------------
    # PrefixCache surface
    # ------------------------------------------------------------------
    def _begin_session(self, tokens: np.ndarray, now: float) -> RequestSession:
        tokens = as_token_array(tokens)
        if len(tokens) == 0:
            raise ValueError("cannot look up an empty token sequence")
        # At least the last input token must be prefilled for first-token
        # logits, so at most (len - 1) tokens' worth of whole blocks can hit.
        max_blocks = (len(tokens) - 1) // self.block_size
        chain = self.store.match_chain(tokens, max_blocks=max_blocks)
        hit_tokens = len(chain) * self.block_size
        reused_bytes = 0
        if chain:
            reused_bytes = kv_bytes(self.model, hit_tokens)
            if self.model.has_recurrent_layers:
                reused_bytes += model_recurrent_bytes(self.model)
            self.store.mark_reused(chain, hybrid=self.model.has_recurrent_layers)
            for block in chain:
                self.store.touch(block, now)
        self._stats.record_lookup(hit_tokens, len(tokens))
        self._stats.flops_saved += model_prefill_flops(self.model, hit_tokens)
        return RequestSession(
            self,
            LookupResult(
                hit_tokens=hit_tokens,
                input_tokens=len(tokens),
                reused_bytes=reused_bytes,
            ),
        )

    def probe(self, tokens: np.ndarray) -> int:
        """Read-only hit estimate for ``tokens`` (used by cluster routers).

        Mirrors :meth:`lookup`'s block-chain walk without touching recency
        or reuse counters.
        """
        tokens = as_token_array(tokens)
        if len(tokens) == 0:
            return 0
        max_blocks = (len(tokens) - 1) // self.block_size
        return len(self.store.match_chain(tokens, max_blocks=max_blocks)) * self.block_size

    def _commit_session(
        self,
        session: Optional[RequestSession],
        tokens: np.ndarray,
        now: float,
        state_payload: Any = None,
    ) -> AdmitResult:
        tokens = as_token_array(tokens)
        if len(tokens) == 0:
            raise ValueError("cannot admit an empty token sequence")

        evicted_before = self._stats.evicted_bytes
        admitted = 0
        parent = _ROOT_ID
        truncated = False
        n_full = len(tokens) // self.block_size
        for i in range(n_full):
            chunk = tokens[i * self.block_size : (i + 1) * self.block_size]
            existing = self.store.get(parent, chunk)
            if existing is not None:
                self.store.touch(existing, now)
                parent = existing.block_id
                continue
            if not self._ensure_free(self.block_bytes):
                truncated = True
                break
            if not self.store.has_block(parent):
                # Our own chain's parent got evicted while making room;
                # caching a child would orphan it, so stop here.
                truncated = True
                break
            block = self.store.insert_block(parent, chunk, now)
            self._used += self.block_bytes
            admitted += self.block_bytes
            parent = block.block_id
        rejected = admitted == 0 and (truncated or n_full > 0)
        self._stats.record_admission(admitted, rejected=rejected)
        return AdmitResult(
            admitted_bytes=admitted,
            evicted_bytes=self._stats.evicted_bytes - evicted_before,
            rejected=rejected,
        )

    def _ensure_free(self, needed: int) -> bool:
        if needed > self._capacity:
            return False
        while self._capacity - self._used < needed:
            victim = self.store.pop_lru_leaf()
            if victim is None:
                return False
            self._used -= self.block_bytes
            self._stats.record_eviction(self.block_bytes)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def stats(self) -> CacheStats:
        return self._stats

    @property
    def reuse_stats(self) -> BlockReuseStats:
        """Block-level KV/SSM reuse counters (drives Fig. 3a)."""
        return self.store.reuse_stats

    def reset(self) -> None:
        self.detach_open_sessions()
        self.store = BlockStore(self.block_size)
        self._used = 0
        self._stats = CacheStats()

    def recompute_used_bytes(self) -> int:
        """Re-derive occupancy from the store (accounting invariant)."""
        return self.store.n_blocks * self.block_bytes
