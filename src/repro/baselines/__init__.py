"""Baseline prefix-caching systems the paper compares against.

* :class:`VanillaCache` — no prefix caching at all.
* :class:`VLLMPlusCache` — "vLLM+": fine-grained token-block checkpointing
  (one KV block + one full recurrent state per block) with leaf-LRU
  eviction, i.e. vLLM's caching policy extended to hybrid models.
* :class:`SGLangPlusCache` — "SGLang+" / artifact policy V1: Marconi's
  radix tree and judicious admission, but plain LRU eviction.
* :mod:`repro.baselines.oracle` — artifact policy V3: the offline-optimal
  static-alpha oracle.
"""

from repro.baselines.base import CacheProtocol
from repro.baselines.block_store import Block, BlockStore
from repro.baselines.oracle import (
    OracleResult,
    ReplayRequest,
    replay_requests,
    trace_to_replay_requests,
    tune_static_alpha,
)
from repro.baselines.registry import POLICY_NAMES, make_cache
from repro.baselines.sglang_plus import SGLangPlusCache
from repro.baselines.vanilla import VanillaCache
from repro.baselines.vllm_plus import VLLMPlusCache

__all__ = [
    "CacheProtocol",
    "Block",
    "BlockStore",
    "VanillaCache",
    "VLLMPlusCache",
    "SGLangPlusCache",
    "OracleResult",
    "ReplayRequest",
    "replay_requests",
    "trace_to_replay_requests",
    "tune_static_alpha",
    "make_cache",
    "POLICY_NAMES",
]
