"""Vanilla inference: every request prefills from scratch (no prefix cache)."""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.interfaces import (
    AdmitResult,
    LookupResult,
    PrefixCache,
    RequestSession,
    as_token_array,
)
from repro.core.stats import CacheStats
from repro.models.config import ModelConfig


class VanillaCache(PrefixCache):
    """The no-caching baseline.

    Sessions always miss and admissions are dropped; the class exists so
    the serving engine can treat "no prefix caching" uniformly with real
    caches.
    """

    def __init__(self, model: ModelConfig, capacity_bytes: int = 0) -> None:
        self.model = model
        self._stats = CacheStats()

    def _begin_session(self, tokens: np.ndarray, now: float) -> RequestSession:
        tokens = as_token_array(tokens)
        if len(tokens) == 0:
            raise ValueError("cannot look up an empty token sequence")
        self._stats.record_lookup(0, len(tokens))
        return RequestSession(
            self, LookupResult(hit_tokens=0, input_tokens=len(tokens))
        )

    def _commit_session(
        self,
        session: Optional[RequestSession],
        tokens: np.ndarray,
        now: float,
        state_payload: Any = None,
    ) -> AdmitResult:
        as_token_array(tokens)
        self._stats.record_admission(0, rejected=True)
        return AdmitResult(rejected=True)

    @property
    def capacity_bytes(self) -> int:
        return 0

    @property
    def used_bytes(self) -> int:
        return 0

    @property
    def stats(self) -> CacheStats:
        return self._stats

    def reset(self) -> None:
        self.detach_open_sessions()
        self._stats = CacheStats()
