"""Artifact policy V3: the offline-optimal, static-alpha oracle.

The paper's artifact includes a third eviction policy that "sweeps over
possible values of alpha and selects the one that maximizes the hit rate" —
an upper bound for what Marconi's online bootstrap tuner can achieve with a
static alpha.  It requires the full request log up front, so it lives here
as an offline procedure rather than an online cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.cache import MarconiCache
from repro.core.interfaces import PrefixCache
from repro.models.config import ModelConfig

DEFAULT_ALPHA_GRID: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


@dataclass(frozen=True)
class ReplayRequest:
    """One request of an offline log: arrival time, input, and full sequence."""

    now: float
    input_tokens: np.ndarray
    full_tokens: np.ndarray


@dataclass
class OracleResult:
    """Outcome of the static-alpha sweep."""

    best_alpha: float
    hit_rates: dict[float, float]

    @property
    def best_hit_rate(self) -> float:
        return self.hit_rates[self.best_alpha]


def replay_requests(cache: PrefixCache, requests: Iterable[ReplayRequest]) -> float:
    """Run a request log through ``cache`` and return its token hit rate."""
    for request in requests:
        with cache.begin(request.input_tokens, request.now) as session:
            session.commit(request.full_tokens, request.now)
    return cache.stats.token_hit_rate


def trace_to_replay_requests(trace) -> list[ReplayRequest]:
    """Flatten a :class:`~repro.workloads.trace.Trace` into a nominal-order log."""
    return [
        ReplayRequest(now=now, input_tokens=inp, full_tokens=full)
        for now, _, _, inp, full in trace.iter_requests_nominal()
    ]


def tune_static_alpha(
    model: ModelConfig,
    capacity_bytes: int,
    requests: Sequence[ReplayRequest],
    alpha_grid: Sequence[float] = DEFAULT_ALPHA_GRID,
) -> OracleResult:
    """Sweep static alphas over the full log; return the hit-rate maximizer.

    Ties break toward the smaller alpha (the more recency-respecting
    configuration), matching the online tuner's convention.
    """
    if not requests:
        raise ValueError("cannot tune on an empty request log")
    if not alpha_grid:
        raise ValueError("alpha_grid must be non-empty")
    hit_rates: dict[float, float] = {}
    for alpha in alpha_grid:
        cache = MarconiCache(
            model, capacity_bytes, eviction="flop_aware", alpha=alpha
        )
        hit_rates[alpha] = replay_requests(cache, requests)
    best = max(hit_rates, key=lambda a: (hit_rates[a], -a))
    return OracleResult(best_alpha=best, hit_rates=hit_rates)
