"""Live asyncio serving gateway: concurrent sessions over one model.

Everything else in the repo replays traces offline through the simulation
kernel; this module is the bridge from "simulator" to "system".  The
gateway multiplexes many in-flight requests over a bounded pool of worker
tasks, each driving :meth:`ExactReuseServer.serve_steps` — the same
begin → prefill → decode → commit flow as the offline server, so the
paper's correctness statement (exact prefix reuse never changes the
output) carries over to live concurrent serving unchanged.

Layers, outermost first:

* **Admission control / backpressure** — ``submit`` either queues the
  request or sheds it immediately with a typed
  :class:`AdmissionRejected` (gateway-wide queue bound, per-tier queue
  bound, closed gateway).  Nothing blocks unboundedly at the front door.
* **SLO tiers** — each request names a :class:`SLOTier`.  Workers always
  pick runnable work from the lowest-priority-value tier first
  (latency-sensitive before batch), and a tier's ``max_concurrency``
  caps how many of its requests may occupy workers at once, so batch
  load cannot starve interactive traffic.
* **Response cache** — a request-level cache above the prefix cache
  (:mod:`repro.serving.response_cache`): deterministic repeats are
  answered from memory without queueing at all.
* **Transactional serving** — each admitted request drives the serve
  generator token by token, yielding to the event loop between decode
  steps.  Cancelling a submitted request (or closing the gateway without
  draining) closes the generator, which aborts the open
  :class:`~repro.core.interfaces.RequestSession` — zero leaked pins, by
  construction.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.interfaces import Clock, as_token_array
from repro.serving.engine import GREEDY, DecodeParams, ServedRequest
from repro.serving.response_cache import ResponseCache


# ----------------------------------------------------------------------
# Typed rejections
# ----------------------------------------------------------------------
class GatewayError(Exception):
    """Base class for gateway-surfaced errors."""


class AdmissionRejected(GatewayError):
    """The gateway refused to queue the request (load shed).

    ``reason`` is machine-readable: ``"queue_full"`` (gateway-wide bound),
    ``"tier_queue_full"`` (per-tier bound), ``"closed"`` (gateway shut
    down), or ``"shutdown"`` (queued, then the gateway closed without
    draining).
    """

    def __init__(self, reason: str, tier: Optional[str] = None, message: str = ""):
        self.reason = reason
        self.tier = tier
        if not message:
            message = f"request rejected ({reason})"
            if tier is not None:
                message += f" [tier={tier}]"
        super().__init__(message)


class GatewayClosed(AdmissionRejected):
    """Submission arrived after the gateway stopped accepting requests."""

    def __init__(self, message: str = "gateway is closed"):
        super().__init__("closed", None, message)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SLOTier:
    """One service tier.

    ``priority`` orders dequeueing (lower value = served first);
    ``max_concurrency`` caps this tier's simultaneously-running requests
    (0 = bounded only by the worker pool); ``max_queue_depth`` bounds this
    tier's queue (0 = bounded only by the gateway-wide queue).
    """

    name: str
    priority: int = 0
    max_concurrency: int = 0
    max_queue_depth: int = 0

    def __post_init__(self) -> None:
        if self.max_concurrency < 0 or self.max_queue_depth < 0:
            raise ValueError("tier bounds must be >= 0 (0 means unbounded)")


#: Default tier layout: latency-sensitive traffic outranks batch.
DEFAULT_TIERS = (
    SLOTier("interactive", priority=0),
    SLOTier("batch", priority=10),
)


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables for one :class:`Gateway`."""

    tiers: tuple[SLOTier, ...] = DEFAULT_TIERS
    n_workers: int = 4
    max_queue_depth: int = 256
    response_cache_entries: int = 1024  # 0 disables the response cache
    response_cache_bytes: int = 32 << 20
    decode_yield_every: int = 1  # yield to the loop every k decode steps

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.decode_yield_every < 1:
            raise ValueError(
                f"decode_yield_every must be >= 1, got {self.decode_yield_every}"
            )
        if not self.tiers:
            raise ValueError("at least one SLO tier is required")
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")


# ----------------------------------------------------------------------
# Results & counters
# ----------------------------------------------------------------------
@dataclass
class GatewayStats:
    """Lifetime counters for one gateway instance."""

    submitted: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    aborted: int = 0
    failed: int = 0
    response_cache_hits: int = 0

    @property
    def in_flight_accounted(self) -> int:
        """Admitted requests whose outcome has not been counted yet."""
        return self.admitted - (self.completed + self.aborted + self.failed)

    def snapshot(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "aborted": self.aborted,
            "failed": self.failed,
            "response_cache_hits": self.response_cache_hits,
        }


@dataclass
class GatewayResult:
    """One request's outcome plus its gateway-side timing."""

    served: ServedRequest
    tier: str
    from_response_cache: bool
    queue_seconds: float
    ttft_seconds: float
    total_seconds: float

    # Convenience passthroughs so callers rarely need ``.served``.
    @property
    def output_tokens(self) -> np.ndarray:
        return self.served.output_tokens

    @property
    def full_sequence(self) -> np.ndarray:
        return self.served.full_sequence

    @property
    def hit_tokens(self) -> int:
        return self.served.hit_tokens

    @property
    def prefilled_tokens(self) -> int:
        return self.served.prefilled_tokens


@dataclass(eq=False)  # identity semantics: items live in sets
class _QueueItem:
    tokens: np.ndarray
    n_output: int
    params: DecodeParams
    tier: SLOTier
    forced_outputs: Optional[np.ndarray]
    submit_time: float
    future: "asyncio.Future[GatewayResult]" = field(repr=False)
    cancelled: bool = False


class _ItemCancelled(Exception):
    """Internal: the submitter cancelled while the request was running."""


# ----------------------------------------------------------------------
# The gateway
# ----------------------------------------------------------------------
class Gateway:
    """Asyncio front door over a serve-steps backend.

    ``server`` is anything exposing the serve-steps protocol — a
    ``serve_steps(tokens, n_output, *, params, forced_outputs)`` generator
    returning a :class:`ServedRequest`, plus a ``cache`` attribute (the
    live :class:`~repro.serving.engine.ExactReuseServer`, or the
    model-less :class:`~repro.serving.replay.CacheOnlyServer` for trace
    replays).

    Use as an async context manager::

        async with Gateway(server) as gw:
            result = await gw.submit(tokens, n_output=8)

    ``__aexit__`` drains in-flight work and shuts the pool down; after a
    clean drain the underlying cache reports zero open sessions and zero
    pinned nodes.
    """

    def __init__(
        self,
        server: Any,
        config: Optional[GatewayConfig] = None,
        *,
        clock: Clock = time.monotonic,
    ) -> None:
        self.server = server
        self.config = config or GatewayConfig()
        self.clock = clock
        self.stats = GatewayStats()
        self.response_cache: Optional[ResponseCache] = (
            ResponseCache(
                self.config.response_cache_entries, self.config.response_cache_bytes
            )
            if self.config.response_cache_entries > 0
            else None
        )
        self._tiers = {t.name: t for t in self.config.tiers}
        # Dequeue order: priority value, then declaration order.
        self._tier_order = sorted(
            self.config.tiers, key=lambda t: (t.priority, self.config.tiers.index(t))
        )
        self._queues: dict[str, deque[_QueueItem]] = {
            t.name: deque() for t in self.config.tiers
        }
        self._queued_total = 0
        self._running: dict[str, int] = {t.name: 0 for t in self.config.tiers}
        self._running_items: set[_QueueItem] = set()
        self._workers: list[asyncio.Task] = []
        self._wake: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "Gateway":
        """Spawn the worker pool (idempotent)."""
        if self._started:
            return self
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"gateway-worker-{i}")
            for i in range(self.config.n_workers)
        ]
        self._started = True
        return self

    async def __aenter__(self) -> "Gateway":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close(drain=exc_type is None)
        return False

    async def drain(self) -> None:
        """Wait until no request is queued or running."""
        if self._idle is not None:
            await self._idle.wait()

    async def close(self, drain: bool = True) -> None:
        """Stop accepting requests, then wind the pool down.

        ``drain=True`` serves everything already admitted before
        returning.  ``drain=False`` sheds the queue (each waiter gets a
        typed ``AdmissionRejected(reason="shutdown")``) and cancels
        running requests at their next decode step, aborting their
        sessions.
        """
        self._closed = True
        if not self._started:
            return
        if drain:
            await self.drain()
        else:
            for queue in self._queues.values():
                while queue:
                    item = queue.popleft()
                    self._queued_total -= 1
                    item.cancelled = True
                    self.stats.aborted += 1  # admitted, never served
                    if not item.future.done():
                        item.future.set_exception(
                            AdmissionRejected(
                                "shutdown",
                                item.tier.name,
                                "gateway shut down before the request was served",
                            )
                        )
            for item in list(self._running_items):
                item.cancelled = True
            self._maybe_idle()
            self._wake.set()
            await self.drain()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        return self._queued_total

    @property
    def running(self) -> int:
        return sum(self._running.values())

    def tier_depths(self) -> dict[str, dict[str, int]]:
        """Per-tier queued/running snapshot (for telemetry)."""
        return {
            name: {"queued": len(self._queues[name]), "running": self._running[name]}
            for name in self._queues
        }

    # ------------------------------------------------------------------
    # The front door
    # ------------------------------------------------------------------
    async def submit(
        self,
        input_tokens: np.ndarray,
        n_output: int,
        *,
        tier: str = "interactive",
        params: DecodeParams = GREEDY,
        forced_outputs: Optional[np.ndarray] = None,
    ) -> GatewayResult:
        """Admit, queue, and serve one request; resolves when it finishes.

        Raises :class:`AdmissionRejected` when the request is shed at the
        door, :class:`GatewayClosed` after shutdown.  Cancelling the
        awaiting task cancels the request itself: if still queued it is
        dropped; if mid-decode the serve generator is closed, aborting the
        session with zero leaked pins.
        """
        if not self._started:
            await self.start()
        self.stats.submitted += 1
        if self._closed:
            self.stats.shed += 1
            raise GatewayClosed()
        tier_obj = self._tiers.get(tier)
        if tier_obj is None:
            raise ValueError(
                f"unknown tier {tier!r}; configured tiers: {sorted(self._tiers)}"
            )
        tokens = as_token_array(input_tokens)
        submit_time = self.clock()

        # Response-cache fast path: deterministic repeats never queue.
        cacheable = (
            self.response_cache is not None
            and params.deterministic
            and forced_outputs is None
        )
        key = None
        if cacheable:
            key = self.response_cache.make_key(tokens, n_output, params)
            cached = self.response_cache.get(key)
            if cached is not None:
                self.stats.response_cache_hits += 1
                elapsed = self.clock() - submit_time
                return GatewayResult(
                    served=cached,
                    tier=tier,
                    from_response_cache=True,
                    queue_seconds=0.0,
                    ttft_seconds=elapsed,
                    total_seconds=elapsed,
                )

        # Admission control: bounded queues, typed load-shedding.
        queue = self._queues[tier]
        if self._queued_total >= self.config.max_queue_depth:
            self.stats.shed += 1
            raise AdmissionRejected("queue_full", tier)
        if tier_obj.max_queue_depth and len(queue) >= tier_obj.max_queue_depth:
            self.stats.shed += 1
            raise AdmissionRejected("tier_queue_full", tier)

        item = _QueueItem(
            tokens=tokens,
            n_output=n_output,
            params=params,
            tier=tier_obj,
            forced_outputs=forced_outputs,
            submit_time=submit_time,
            future=asyncio.get_running_loop().create_future(),
        )
        queue.append(item)
        self._queued_total += 1
        self.stats.admitted += 1
        self._idle.clear()
        self._wake.set()
        try:
            result = await item.future
        except asyncio.CancelledError:
            item.cancelled = True
            self._wake.set()
            raise
        if result.from_response_cache is False and key is not None:
            # Populate the response cache from the cold serve.  Done on
            # the submit side so the worker stays policy-free.
            self.response_cache.put(key, result.served)
        return result

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _next_item(self) -> Optional[_QueueItem]:
        """Pop the highest-priority runnable request, honouring per-tier
        concurrency caps.  Silently drops items cancelled while queued."""
        for tier in self._tier_order:
            if tier.max_concurrency and self._running[tier.name] >= tier.max_concurrency:
                continue
            queue = self._queues[tier.name]
            while queue:
                item = queue.popleft()
                self._queued_total -= 1
                if item.cancelled:
                    self.stats.aborted += 1
                    self._maybe_idle()
                    continue
                return item
        return None

    def _maybe_idle(self) -> None:
        if self._queued_total == 0 and self.running == 0:
            self._idle.set()

    async def _worker_loop(self) -> None:
        while True:
            item = self._next_item()
            if item is None:
                self._maybe_idle()
                self._wake.clear()
                await self._wake.wait()
                continue
            await self._run_item(item)

    async def _run_item(self, item: _QueueItem) -> None:
        tier_name = item.tier.name
        self._running[tier_name] += 1
        self._running_items.add(item)
        start = self.clock()
        try:
            served, first_token_time = await self._drive(item)
        except _ItemCancelled:
            self.stats.aborted += 1
            if not item.future.done():
                item.future.cancel()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.stats.failed += 1
            if not item.future.done():
                item.future.set_exception(exc)
        else:
            self.stats.completed += 1
            end = self.clock()
            result = GatewayResult(
                served=served,
                tier=tier_name,
                from_response_cache=False,
                queue_seconds=start - item.submit_time,
                ttft_seconds=first_token_time - item.submit_time,
                total_seconds=end - item.submit_time,
            )
            if not item.future.done():
                item.future.set_result(result)
        finally:
            self._running[tier_name] -= 1
            self._running_items.discard(item)
            self._wake.set()
            self._maybe_idle()

    async def _drive(self, item: _QueueItem) -> tuple[ServedRequest, float]:
        """Run one request's serve generator, yielding between decode steps."""
        steps = self.server.serve_steps(
            item.tokens,
            item.n_output,
            params=item.params,
            forced_outputs=item.forced_outputs,
        )
        first_token_time: Optional[float] = None
        n_steps = 0
        try:
            while True:
                if item.cancelled:
                    raise _ItemCancelled()
                try:
                    next(steps)  # blocking prefill/decode work
                except StopIteration as stop:
                    served = stop.value
                    break
                if first_token_time is None:
                    first_token_time = self.clock()
                n_steps += 1
                if n_steps % self.config.decode_yield_every == 0:
                    # Hand the loop back so other requests progress and
                    # cancellations land between decode steps.
                    await asyncio.sleep(0)
                    if item.cancelled:
                        raise _ItemCancelled()
        except BaseException:
            # Abort path: closing the generator raises GeneratorExit at
            # its suspended yield, which unwinds the `with cache.begin`
            # block — the session aborts and every pin is released.
            steps.close()
            raise
        if first_token_time is None:
            # n_output == 0: no token ever surfaced; first-result time is
            # completion time.
            first_token_time = self.clock()
        return served, first_token_time
