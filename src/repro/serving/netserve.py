"""Plain-socket line-protocol front-end and asyncio client for the gateway.

One JSON object per line, newline-terminated, over a TCP stream.  Request
fields: ``id`` (client-chosen, echoed back), ``tokens`` (int list),
``n_output``, and optionally ``tier``, ``temperature``, ``seed``.
Response fields: ``id`` plus either the served payload (``output``,
``hit_tokens``, ``prefilled_tokens``, ``from_response_cache``,
``ttft_seconds``) or an ``error`` object (``type``, ``reason``/
``message``).  Requests on one connection are served concurrently and
responses may arrive out of order — the ``id`` is the correlation key,
which is what lets a single connection keep many requests in flight.

This is deliberately a line protocol rather than HTTP: it keeps the
transport dependency-free (pure ``asyncio`` streams) while exercising the
same front-door semantics — admission rejections travel to the client as
typed errors, not dropped connections.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional

import numpy as np

from repro.serving.engine import DecodeParams
from repro.serving.gateway import AdmissionRejected, Gateway, GatewayError


class GatewayServer:
    """Serves a :class:`Gateway` over a TCP line protocol."""

    def __init__(self, gateway: Gateway, host: str = "127.0.0.1", port: int = 0):
        self.gateway = gateway
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)`` (port 0 picks
        a free one)."""
        await self.gateway.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "GatewayServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close()
        return False

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                task = asyncio.create_task(
                    self._dispatch(line, writer, write_lock)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            for task in pending:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _dispatch(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        request_id: Any = None
        try:
            request = json.loads(line)
            request_id = request.get("id")
            tokens = np.asarray(request["tokens"], dtype=np.int32)
            params = DecodeParams(
                temperature=float(request.get("temperature", 0.0)),
                seed=request.get("seed"),
            )
            result = await self.gateway.submit(
                tokens,
                int(request.get("n_output", 0)),
                tier=request.get("tier", "interactive"),
                params=params,
            )
            payload = {
                "id": request_id,
                "output": result.output_tokens.tolist(),
                "hit_tokens": result.hit_tokens,
                "prefilled_tokens": result.prefilled_tokens,
                "from_response_cache": result.from_response_cache,
                "ttft_seconds": result.ttft_seconds,
            }
        except AdmissionRejected as rejection:
            payload = {
                "id": request_id,
                "error": {
                    "type": "admission_rejected",
                    "reason": rejection.reason,
                    "tier": rejection.tier,
                },
            }
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            payload = {
                "id": request_id,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }
        data = (json.dumps(payload) + "\n").encode()
        async with write_lock:
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover - client gone
                pass


class GatewayClientError(GatewayError):
    """Raised when the server answered a request with an error payload."""

    def __init__(self, error: dict):
        self.error = dict(error)
        super().__init__(
            f"{error.get('type', 'error')}: "
            f"{error.get('reason') or error.get('message') or ''}"
        )


class GatewayClient:
    """Asyncio client: multiplexes concurrent requests over one connection."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "GatewayClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close()
        return False

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            pass
        finally:
            closed = ConnectionError("connection closed")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(closed)
            self._pending.clear()

    async def request(
        self,
        tokens: Any,
        n_output: int,
        *,
        tier: str = "interactive",
        temperature: float = 0.0,
        seed: Optional[int] = None,
    ) -> dict:
        """Submit one request; resolves to the decoded response payload.

        Raises :class:`GatewayClientError` on a server-side error reply
        (admission rejections included — ``error["reason"]`` carries the
        typed shed reason).  The returned dict's ``output`` is an int32
        array.
        """
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        payload: dict[str, Any] = {
            "id": request_id,
            "tokens": np.asarray(tokens, dtype=np.int32).tolist(),
            "n_output": int(n_output),
            "tier": tier,
        }
        if temperature:
            payload["temperature"] = temperature
        if seed is not None:
            payload["seed"] = seed
        self._writer.write((json.dumps(payload) + "\n").encode())
        await self._writer.drain()
        response = await future
        if "error" in response:
            raise GatewayClientError(response["error"])
        response["output"] = np.asarray(response["output"], dtype=np.int32)
        return response

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
