"""Serve the executable NumPy hybrid model through a Marconi cache.

This is the end-to-end correctness harness for the paper's premise that
"prefix reusing is exact and does not change the LLM output": requests are
served with real model states stored in (and reused from) the cache, and
integration tests assert the generated tokens match a cache-less server's
bit for bit.

Flow per request (mirroring section 4):

1. ``cache.begin`` — finds the deepest reusable checkpoint, commits the
   input path, and reports any branch-point positions to materialize.
2. Prefill from the reused state with ``checkpoint_positions`` set to the
   branch points; attach the materialized states to the session.
3. Decode (greedy, or seeded temperature sampling via
   :class:`DecodeParams`).
4. ``session.commit`` with the final state as the last-decoded-token
   payload.  The ``with`` block aborts the session — unpinning the path
   and rolling back the speculative insert — if any step fails.

The flow is exposed two ways: :meth:`ExactReuseServer.serve` runs it to
completion synchronously, and :meth:`ExactReuseServer.serve_steps` is the
resumable generator underneath it — it yields after every decoded token,
which is what lets the asyncio gateway interleave many in-flight requests
over one model and cancel any of them mid-decode (closing the generator
raises ``GeneratorExit`` inside the ``with`` block, so the session aborts
and no pins leak).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.core.cache import MarconiCache
from repro.core.interfaces import Clock, as_token_array, monotonic_counter
from repro.models.config import ModelConfig
from repro.nn.hybrid import HybridModel
from repro.nn.sampling import greedy_token, sample_token
from repro.nn.states import ModelState


@dataclass(frozen=True)
class DecodeParams:
    """Token-selection parameters for one request.

    ``temperature <= 0`` means greedy (argmax) decoding — fully
    deterministic, and the only mode the response cache is allowed to
    serve from (mnimi-style request-level reuse is a correctness
    statement only when re-running the request could not produce a
    different answer).  ``temperature > 0`` samples; with a ``seed`` the
    request is reproducible in isolation but still *not* response-
    cacheable, because two sampled calls are supposed to be independent
    draws.
    """

    temperature: float = 0.0
    seed: Optional[int] = None

    @property
    def deterministic(self) -> bool:
        """True when decoding is greedy (response-cacheable)."""
        return self.temperature <= 0.0


GREEDY = DecodeParams()


@dataclass
class ServedRequest:
    """Result of one served request."""

    output_tokens: np.ndarray
    hit_tokens: int
    prefilled_tokens: int
    full_sequence: np.ndarray


ServeSteps = Generator[int, None, ServedRequest]


class ExactReuseServer:
    """A minimal single-worker server: one hybrid model + one Marconi cache.

    ``clock`` injects the time source used to stamp cache accesses and
    admissions.  The default is a private monotone counter (timestamps
    order accesses; offline correctness tests need nothing more), and the
    live gateway passes ``time.monotonic`` so served timestamps are
    meaningful under real concurrency.
    """

    def __init__(
        self,
        config: ModelConfig,
        capacity_bytes: int,
        *,
        seed: int = 0,
        eviction: str = "flop_aware",
        alpha: float | None = 1.0,
        prefill_mode: str = "exact",
        chunk_size: int = 64,
        clock: Clock | None = None,
    ) -> None:
        self.model = HybridModel(config, seed=seed)
        self.cache = MarconiCache(
            config,
            capacity_bytes,
            eviction=eviction,
            alpha=alpha,
            store_states=True,
        )
        self.prefill_mode = prefill_mode
        self.chunk_size = chunk_size
        self.clock: Clock = clock if clock is not None else monotonic_counter()

    def serve(
        self,
        input_tokens: np.ndarray,
        n_output: int,
        *,
        params: DecodeParams = GREEDY,
        forced_outputs: Optional[np.ndarray] = None,
    ) -> ServedRequest:
        """Serve one request to completion: begin, prefill, decode, commit."""
        steps = self.serve_steps(
            input_tokens, n_output, params=params, forced_outputs=forced_outputs
        )
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return stop.value

    def serve_steps(
        self,
        input_tokens: np.ndarray,
        n_output: int,
        *,
        params: DecodeParams = GREEDY,
        forced_outputs: Optional[np.ndarray] = None,
    ) -> ServeSteps:
        """The request flow as a generator: yields each decoded token.

        The caller drives decoding one token at a time (``next``) and
        receives the :class:`ServedRequest` as the generator's return
        value.  Closing the generator early aborts the open session —
        pins released, speculative insert rolled back — which is the
        cancellation path the gateway relies on.

        ``forced_outputs`` replaces token *selection* with a given output
        sequence (teacher forcing) while still running the real decode
        steps, so trace replays keep every committed sequence aligned
        with the trace's next-round inputs.
        """
        input_tokens = as_token_array(input_tokens)
        if len(input_tokens) == 0:
            raise ValueError(
                "cannot serve an empty request: input_tokens must contain "
                "at least one token"
            )
        if forced_outputs is not None:
            forced_outputs = as_token_array(forced_outputs)
            n_output = len(forced_outputs)
        if n_output < 0:
            raise ValueError(f"n_output must be >= 0, got {n_output}")
        rng = (
            np.random.default_rng(params.seed)
            if params.temperature > 0.0
            else None
        )
        with self.cache.begin(input_tokens, self.clock()) as session:
            hit = session.hit_tokens
            payload: ModelState | None = session.state_payload
            if hit > 0 and payload is None:
                # The checkpoint's payload is unavailable (e.g. admitted
                # without states); fall back to a full prefill —
                # correctness first.
                hit = 0
            state = payload.clone() if (hit > 0 and payload is not None) else None

            # Branch points the admission policy asked us to materialize.
            # In chunked mode a checkpoint may land before the requested
            # position; only exact matches are attachable.
            # chunked_rollforward closes the gap (the paper's optional
            # roll-forward kernel) by rolling the snapped state forward to
            # the exact position.
            positions = tuple(p for p in session.checkpoint_positions if p > hit)
            result = self.model.prefill(
                input_tokens[hit:],
                state,
                checkpoint_positions=positions,
                mode=self.prefill_mode,
                chunk_size=self.chunk_size,
            )
            for position, checkpoint in result.checkpoints.items():
                if position in positions:
                    session.attach_branch_state(position, checkpoint)

            logits = result.logits[-1]
            current = result.state
            output: list[int] = []
            for step in range(n_output):
                if forced_outputs is not None:
                    token = int(forced_outputs[step])
                elif rng is not None:
                    token = sample_token(logits, rng, params.temperature)
                else:
                    token = greedy_token(logits)
                output.append(token)
                yield token
                logits, current = self.model.decode_step(token, current)
            if output:
                output_tokens = np.asarray(output, dtype=np.int32)
                full = np.concatenate([input_tokens, output_tokens])
            else:
                # n_output == 0: nothing decoded, no decode loop ran; the
                # committed sequence is exactly the input.
                output_tokens = np.empty(0, dtype=np.int32)
                full = input_tokens
            session.commit(full, self.clock(), state_payload=current.clone())
        return ServedRequest(
            output_tokens=output_tokens,
            hit_tokens=hit,
            prefilled_tokens=len(input_tokens) - hit,
            full_sequence=full,
        )
