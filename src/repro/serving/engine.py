"""Serve the executable NumPy hybrid model through a Marconi cache.

This is the end-to-end correctness harness for the paper's premise that
"prefix reusing is exact and does not change the LLM output": requests are
served with real model states stored in (and reused from) the cache, and
integration tests assert the generated tokens match a cache-less server's
bit for bit.

Flow per request (mirroring section 4):

1. ``cache.begin`` — finds the deepest reusable checkpoint, commits the
   input path, and reports any branch-point positions to materialize.
2. Prefill from the reused state with ``checkpoint_positions`` set to the
   branch points; attach the materialized states to the session.
3. Greedy decode.
4. ``session.commit`` with the final state as the last-decoded-token
   payload.  The ``with`` block aborts the session — unpinning the path
   and rolling back the speculative insert — if any step fails.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import MarconiCache
from repro.core.interfaces import as_token_array
from repro.models.config import ModelConfig
from repro.nn.hybrid import HybridModel
from repro.nn.sampling import greedy_token
from repro.nn.states import ModelState


@dataclass
class ServedRequest:
    """Result of one served request."""

    output_tokens: np.ndarray
    hit_tokens: int
    prefilled_tokens: int
    full_sequence: np.ndarray


class ExactReuseServer:
    """A minimal single-worker server: one hybrid model + one Marconi cache."""

    def __init__(
        self,
        config: ModelConfig,
        capacity_bytes: int,
        *,
        seed: int = 0,
        eviction: str = "flop_aware",
        alpha: float | None = 1.0,
        prefill_mode: str = "exact",
        chunk_size: int = 64,
    ) -> None:
        self.model = HybridModel(config, seed=seed)
        self.cache = MarconiCache(
            config,
            capacity_bytes,
            eviction=eviction,
            alpha=alpha,
            store_states=True,
        )
        self.prefill_mode = prefill_mode
        self.chunk_size = chunk_size
        self._clock = 0.0

    def _now(self) -> float:
        self._clock += 1.0
        return self._clock

    def serve(self, input_tokens: np.ndarray, n_output: int) -> ServedRequest:
        """Serve one request: begin, prefill (with checkpoints), decode, commit."""
        input_tokens = as_token_array(input_tokens)
        with self.cache.begin(input_tokens, self._now()) as session:
            hit = session.hit_tokens
            payload: ModelState | None = session.state_payload
            if hit > 0 and payload is None:
                # The checkpoint's payload is unavailable (e.g. admitted
                # without states); fall back to a full prefill —
                # correctness first.
                hit = 0
            state = payload.clone() if (hit > 0 and payload is not None) else None

            # Branch points the admission policy asked us to materialize.
            # In chunked mode a checkpoint may land before the requested
            # position; only exact matches are attachable.
            # chunked_rollforward closes the gap (the paper's optional
            # roll-forward kernel) by rolling the snapped state forward to
            # the exact position.
            positions = tuple(p for p in session.checkpoint_positions if p > hit)
            result = self.model.prefill(
                input_tokens[hit:],
                state,
                checkpoint_positions=positions,
                mode=self.prefill_mode,
                chunk_size=self.chunk_size,
            )
            for position, checkpoint in result.checkpoints.items():
                if position in positions:
                    session.attach_branch_state(position, checkpoint)

            logits = result.logits[-1]
            current = result.state
            output = []
            for _ in range(n_output):
                token = greedy_token(logits)
                output.append(token)
                logits, current = self.model.decode_step(token, current)
            output_tokens = np.asarray(output, dtype=np.int32)
            full = np.concatenate([input_tokens, output_tokens])
            session.commit(full, self._now(), state_payload=current.clone())
        return ServedRequest(
            output_tokens=output_tokens,
            hit_tokens=hit,
            prefilled_tokens=len(input_tokens) - hit,
            full_sequence=full,
        )
