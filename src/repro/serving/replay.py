"""Wall-clock trace replay through the live gateway.

The offline engines replay a trace in virtual time; this module replays
the same traces against a running :class:`~repro.serving.gateway.Gateway`
in *real* time — at recorded speed (``speed=1``), scaled (``speed=50``
plays a 100-second trace in two), or as fast as the gateway can drain it
(``speed=None``).  Sessions stay closed-loop: round ``k+1`` is submitted
one (scaled) think-time after round ``k``'s response lands, and a session
whose round is shed by admission control is abandoned — exactly what a
real client facing a 429 would experience.

Replays are teacher-forced (``forced_outputs`` carries the trace's output
tokens), so every committed sequence matches the trace's next-round
inputs and the prefix-cache behaviour is comparable, request for request,
with an offline :class:`~repro.engine.server.ServingSimulator` run over
the same trace.  :class:`CacheOnlyServer` makes that comparison cheap: it
speaks the same serve-steps protocol as the real model server but runs
cache transactions only, so a million-round replay exercises the gateway
and prefix cache without NumPy model compute.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.core.interfaces import Clock, as_token_array, monotonic_counter
from repro.serving.engine import GREEDY, DecodeParams, ServedRequest, ServeSteps
from repro.serving.gateway import AdmissionRejected, Gateway
from repro.workloads.trace import Trace, TraceSession, TraceStream


class CacheOnlyServer:
    """Serve-steps backend with no model: pure prefix-cache transactions.

    Drives the same ``begin → (decode steps) → commit`` session lifecycle
    as :class:`~repro.serving.engine.ExactReuseServer`, but the "decode"
    only steps through the forced output tokens (trace replay never
    invents tokens).  Useful wherever the question is about cache/gateway
    behaviour rather than model output: replays, throughput benchmarks,
    overload tests.
    """

    def __init__(self, cache: Any, *, clock: Clock | None = None) -> None:
        self.cache = cache
        self.clock: Clock = clock if clock is not None else monotonic_counter()

    def serve_steps(
        self,
        input_tokens: np.ndarray,
        n_output: int,
        *,
        params: DecodeParams = GREEDY,
        forced_outputs: Optional[np.ndarray] = None,
    ) -> ServeSteps:
        input_tokens = as_token_array(input_tokens)
        if len(input_tokens) == 0:
            raise ValueError(
                "cannot serve an empty request: input_tokens must contain "
                "at least one token"
            )
        if forced_outputs is not None:
            forced_outputs = as_token_array(forced_outputs)
            n_output = len(forced_outputs)
        if n_output < 0:
            raise ValueError(f"n_output must be >= 0, got {n_output}")
        with self.cache.begin(input_tokens, self.clock()) as session:
            hit = session.hit_tokens
            output: list[int] = []
            for step in range(n_output):
                # Without a model there is nothing to sample: a cache-only
                # serve echoes the forced tokens (or zeros, which keeps the
                # byte accounting of synthetic benchmark requests honest).
                token = int(forced_outputs[step]) if forced_outputs is not None else 0
                output.append(token)
                yield token
            if output:
                output_tokens = np.asarray(output, dtype=np.int32)
                full = np.concatenate([input_tokens, output_tokens])
            else:
                output_tokens = np.empty(0, dtype=np.int32)
                full = input_tokens
            session.commit(full, self.clock())
        return ServedRequest(
            output_tokens=output_tokens,
            hit_tokens=hit,
            prefilled_tokens=len(input_tokens) - hit,
            full_sequence=full,
        )


@dataclass
class ReplayRecord:
    """Outcome of one trace round pushed through the gateway."""

    session_id: int
    round_index: int
    status: str  # "served" | "shed"
    hit_tokens: int = 0
    input_len: int = 0
    output_len: int = 0
    ttft_seconds: float = 0.0
    from_response_cache: bool = False
    shed_reason: str = ""


@dataclass
class ReplayReport:
    """Aggregate of one replay run (mirrors the offline summary surface)."""

    records: list[ReplayRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    abandoned_rounds: int = 0  # rounds never submitted (session shed earlier)
    gateway_stats: dict = field(default_factory=dict)

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def served(self) -> int:
        return sum(1 for r in self.records if r.status == "served")

    @property
    def shed(self) -> int:
        return sum(1 for r in self.records if r.status == "shed")

    @property
    def hit_tokens(self) -> int:
        return sum(r.hit_tokens for r in self.records if r.status == "served")

    @property
    def input_tokens(self) -> int:
        return sum(r.input_len for r in self.records if r.status == "served")

    @property
    def token_hit_rate(self) -> float:
        total = self.input_tokens
        if total == 0:
            return 0.0
        return self.hit_tokens / total

    def hit_counts(self) -> list[tuple[int, int, int]]:
        """Order-insensitive per-request view: (session, round, hit_tokens)."""
        return sorted(
            (r.session_id, r.round_index, r.hit_tokens)
            for r in self.records
            if r.status == "served"
        )

    def to_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "served": self.served,
            "shed": self.shed,
            "abandoned_rounds": self.abandoned_rounds,
            "hit_tokens": self.hit_tokens,
            "input_tokens": self.input_tokens,
            "token_hit_rate": self.token_hit_rate,
            "wall_seconds": self.wall_seconds,
            "gateway": dict(self.gateway_stats),
        }


class TraceReplayer:
    """Drives a gateway from any :class:`Trace` / :class:`TraceStream`.

    ``speed`` scales trace time to wall time: ``1.0`` replays in real
    time, ``60.0`` plays a minute of trace per second, ``None`` ignores
    timing entirely and lets backpressure set the pace.  ``tier_for``
    maps each session to an SLO tier name (default: everything
    ``"interactive"``).
    """

    def __init__(
        self,
        gateway: Gateway,
        *,
        speed: Optional[float] = None,
        tier_for: Optional[Callable[[TraceSession], str]] = None,
    ) -> None:
        if speed is not None and speed <= 0:
            raise ValueError(f"speed must be positive (or None), got {speed}")
        self.gateway = gateway
        self.speed = speed
        self.tier_for = tier_for or (lambda session: "interactive")

    async def run(self, trace: Trace | TraceStream) -> ReplayReport:
        """Replay the whole trace; resolves once every session finished."""
        stream = TraceStream.from_trace(trace) if isinstance(trace, Trace) else trace
        await self.gateway.start()
        report = ReplayReport()
        start = self.gateway.clock()
        tasks: list[asyncio.Task] = []
        # Sessions are pulled lazily in arrival order; with a speed set we
        # sleep the (scaled) gap to each arrival before spawning its
        # closed-loop task, so memory tracks *active* sessions only.
        for session in stream.iter_sessions():
            if self.speed is not None:
                due = start + session.arrival_time / self.speed
                delay = due - self.gateway.clock()
                if delay > 0:
                    await asyncio.sleep(delay)
            tasks.append(
                asyncio.create_task(self._play_session(session, report))
            )
        if tasks:
            await asyncio.gather(*tasks)
        report.wall_seconds = self.gateway.clock() - start
        report.gateway_stats = self.gateway.stats.snapshot()
        return report

    async def _play_session(self, session: TraceSession, report: ReplayReport) -> None:
        tier = self.tier_for(session)
        for k in range(session.n_rounds):
            think = session.think_times[k]
            if self.speed is not None and think > 0:
                await asyncio.sleep(think / self.speed)
            outputs = session.rounds[k].output_tokens
            try:
                result = await self.gateway.submit(
                    session.full_input(k),
                    len(outputs),
                    tier=tier,
                    forced_outputs=outputs,
                )
            except AdmissionRejected as rejection:
                report.records.append(
                    ReplayRecord(
                        session_id=session.session_id,
                        round_index=k,
                        status="shed",
                        shed_reason=rejection.reason,
                    )
                )
                # Closed-loop: a shed round means the client never saw a
                # response, so the session's remaining rounds never happen.
                report.abandoned_rounds += session.n_rounds - k - 1
                return
            report.records.append(
                ReplayRecord(
                    session_id=session.session_id,
                    round_index=k,
                    status="served",
                    hit_tokens=result.hit_tokens,
                    input_len=len(session.full_input(k)),
                    output_len=len(outputs),
                    ttft_seconds=result.ttft_seconds,
                    from_response_cache=result.from_response_cache,
                )
            )
