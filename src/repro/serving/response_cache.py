"""Request-level response cache layered above the prefix cache.

Where the prefix cache reuses *model state* (skipping prefill compute but
still decoding every output token), the response cache reuses the *entire
response*: a repeat of an identical request — same canonicalized input
tokens, same output length, same decode parameters — is answered from
memory without touching the model or the prefix cache at all (mnimi-style
request-level LLM caching).

This is only sound under deterministic decoding.  A greedy request is a
pure function of ``(input, n_output)``, so serving the stored response is
byte-identical to recomputing it.  A sampled request (``temperature > 0``)
is supposed to be an independent draw on every call — caching it would
silently correlate what should be independent samples — so those requests
bypass this layer entirely (the gateway enforces it; :meth:`make_key`
refuses to build a key for them as defense in depth).

Eviction is plain LRU over a bounded entry count and byte budget: response
reuse is recency-driven (retries, page refreshes, duplicated fan-out
requests), and unlike prefix states there is no FLOP-weighted value to
trade off — every entry costs one full serve to rebuild.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

import numpy as np

from repro.core.interfaces import as_token_array
from repro.serving.engine import DecodeParams, ServedRequest


@dataclass
class ResponseCacheStats:
    """Running totals for one response cache instance."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected_inserts: int = 0
    stored_bytes: int = 0  # current footprint of all cached responses
    served_bytes: int = 0  # cumulative response bytes answered from cache

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> dict[str, float]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejected_inserts": self.rejected_inserts,
            "stored_bytes": self.stored_bytes,
            "served_bytes": self.served_bytes,
        }


@dataclass
class _Entry:
    output_tokens: np.ndarray
    full_sequence: np.ndarray
    hit_tokens: int
    prefilled_tokens: int
    nbytes: int


class ResponseCache:
    """Bounded LRU map from canonicalized requests to full responses."""

    def __init__(self, max_entries: int = 1024, max_bytes: int = 32 << 20) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = ResponseCacheStats()
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def make_key(
        self, tokens: np.ndarray, n_output: int, params: DecodeParams
    ) -> Hashable:
        """Canonical identity of a request: input bytes + decode contract."""
        if not params.deterministic:
            raise ValueError(
                "sampled requests (temperature > 0) are not response-cacheable: "
                "each call must be an independent draw"
            )
        return (as_token_array(tokens).tobytes(), int(n_output))

    def get(self, key: Hashable) -> Optional[ServedRequest]:
        """Look up a cached response; returns a fresh, safe-to-hold copy."""
        self.stats.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self.stats.served_bytes += entry.nbytes
        # Copies, so callers can never mutate the cached arrays (and the
        # hit is byte-identical to the cold serve it memoized).
        return ServedRequest(
            output_tokens=entry.output_tokens.copy(),
            hit_tokens=entry.hit_tokens,
            prefilled_tokens=entry.prefilled_tokens,
            full_sequence=entry.full_sequence.copy(),
        )

    def put(self, key: Hashable, served: ServedRequest) -> bool:
        """Store a cold serve's response.  Returns False when it cannot fit."""
        nbytes = int(served.output_tokens.nbytes + served.full_sequence.nbytes)
        if nbytes > self.max_bytes:
            self.stats.rejected_inserts += 1
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self.stats.stored_bytes -= old.nbytes
        self._entries[key] = _Entry(
            output_tokens=served.output_tokens.copy(),
            full_sequence=served.full_sequence.copy(),
            hit_tokens=served.hit_tokens,
            prefilled_tokens=served.prefilled_tokens,
            nbytes=nbytes,
        )
        self.stats.stored_bytes += nbytes
        self.stats.insertions += 1
        while (
            len(self._entries) > self.max_entries
            or self.stats.stored_bytes > self.max_bytes
        ):
            _, evicted = self._entries.popitem(last=False)
            self.stats.stored_bytes -= evicted.nbytes
            self.stats.evictions += 1
        return True

    def clear(self) -> None:
        """Drop every entry (counters are kept: they are lifetime totals)."""
        self._entries.clear()
        self.stats.stored_bytes = 0
