"""Live serving: the executable model behind the Marconi cache, online.

``engine`` is the transactional single-request flow (begin → prefill →
decode → commit); ``gateway`` multiplexes it across concurrent asyncio
clients with admission control, SLO tiers, and a request-level response
cache; ``replay`` drives the gateway from recorded traces at wall-clock
speed; ``netserve`` puts a plain-socket line protocol in front.
"""

from repro.serving.engine import (
    GREEDY,
    DecodeParams,
    ExactReuseServer,
    ServedRequest,
)
from repro.serving.gateway import (
    DEFAULT_TIERS,
    AdmissionRejected,
    Gateway,
    GatewayClosed,
    GatewayConfig,
    GatewayError,
    GatewayResult,
    GatewayStats,
    SLOTier,
)
from repro.serving.netserve import GatewayClient, GatewayClientError, GatewayServer
from repro.serving.replay import (
    CacheOnlyServer,
    ReplayRecord,
    ReplayReport,
    TraceReplayer,
)
from repro.serving.response_cache import ResponseCache, ResponseCacheStats

__all__ = [
    "GREEDY",
    "DEFAULT_TIERS",
    "AdmissionRejected",
    "CacheOnlyServer",
    "DecodeParams",
    "ExactReuseServer",
    "Gateway",
    "GatewayClient",
    "GatewayClientError",
    "GatewayClosed",
    "GatewayConfig",
    "GatewayError",
    "GatewayResult",
    "GatewayServer",
    "GatewayStats",
    "ReplayRecord",
    "ReplayReport",
    "ResponseCache",
    "ResponseCacheStats",
    "SLOTier",
    "ServedRequest",
    "TraceReplayer",
]
