"""Exact-reuse serving: the executable model behind the Marconi cache."""

from repro.serving.engine import ExactReuseServer, ServedRequest

__all__ = ["ExactReuseServer", "ServedRequest"]
