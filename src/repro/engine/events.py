"""Shared discrete-event scaffolding for the serving simulators.

Both the single-node engine (:mod:`repro.engine.server`) and the cluster
simulator (:mod:`repro.cluster.simulator`) replay traces over the same
three-event loop; the priority queue's entry type and its tie-break rules
live here so the two stay in lockstep.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


class EventKind(enum.IntEnum):
    """Event types of the serving simulators' discrete-event loops.

    Enum order is the tie-break at equal timestamps: completions and
    prefill-done fire before new arrivals so freshly freed capacity and
    freshly admitted states are visible to same-instant arrivals.
    Cross-replica transfer completions and cluster control events (replica
    fail/drain/join) sort after arrivals — a transfer or topology change
    stamped at time ``t`` takes effect only once every request arriving at
    ``t`` has been routed against the pre-change cluster state.
    """

    PREFILL_DONE = 0
    REQUEST_COMPLETE = 1
    REQUEST_ARRIVAL = 2
    TRANSFER_DONE = 3
    CONTROL = 4


@dataclass(order=True)
class Event:
    """One scheduled simulator event; ordered by (time, kind, seq)."""

    time: float
    kind: int
    seq: int
    payload: Any = field(compare=False)


class EventQueue:
    """A deterministic min-heap of :class:`Event` with monotonic sequencing.

    The per-queue sequence number makes ordering total (and FIFO among
    same-time same-kind events), so simulator runs are reproducible
    regardless of payload contents.

    Each queue owns its counter, starting at zero: tie-break order depends
    only on this queue's push history, never on how many events any other
    queue (or a previous run reusing an engine-held counter) has issued.
    Passing an external ``seq`` iterator is still accepted for callers that
    deliberately share numbering, but sharing one counter across queues
    makes seq values — and thus replay transcripts — depend on unrelated
    simulations running in the same process.
    """

    def __init__(self, seq: Optional[Iterator[int]] = None) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count() if seq is None else seq

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self, time: float, kind: EventKind, payload: Any, seq: Optional[int] = None
    ) -> None:
        """Schedule an event; ``seq`` overrides the queue's own counter.

        Explicit sequence numbers exist for the kernel's streaming
        admission path: session arrivals pulled lazily from a
        :class:`~repro.workloads.trace.TraceStream` carry reserved
        (negative) seqs so that, at equal ``(time, kind)``, they sort
        exactly where the bulk path's up-front pushes would have put them
        — before every event pushed during the run, in stream order.
        """
        heapq.heappush(
            self._heap,
            Event(time, int(kind), next(self._seq) if seq is None else seq, payload),
        )

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """The next event to pop, without removing it (queue must be non-empty)."""
        return self._heap[0]
