"""Shared discrete-event scaffolding for the serving simulators.

Both the single-node engine (:mod:`repro.engine.server`) and the cluster
simulator (:mod:`repro.cluster.simulator`) replay traces over the same
three-event loop; the priority queue's entry type and its tie-break rules
live here so the two stay in lockstep.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Any, Iterator


class EventKind(enum.IntEnum):
    """Event types of the serving simulators' discrete-event loops.

    Enum order is the tie-break at equal timestamps: completions and
    prefill-done fire before new arrivals so freshly freed capacity and
    freshly admitted states are visible to same-instant arrivals.
    """

    PREFILL_DONE = 0
    REQUEST_COMPLETE = 1
    REQUEST_ARRIVAL = 2


@dataclass(order=True)
class Event:
    """One scheduled simulator event; ordered by (time, kind, seq)."""

    time: float
    kind: int
    seq: int
    payload: Any = field(compare=False)


class EventQueue:
    """A deterministic min-heap of :class:`Event` with monotonic sequencing.

    The per-queue sequence number makes ordering total (and FIFO among
    same-time same-kind events), so simulator runs are reproducible
    regardless of payload contents.
    """

    def __init__(self, seq: Iterator[int]) -> None:
        self._heap: list[Event] = []
        self._seq = seq

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, kind: EventKind, payload: Any) -> None:
        heapq.heappush(self._heap, Event(time, int(kind), next(self._seq), payload))

    def pop(self) -> Event:
        return heapq.heappop(self._heap)
