"""Shared discrete-event scaffolding for the serving simulators.

Both the single-node engine (:mod:`repro.engine.server`) and the cluster
simulator (:mod:`repro.cluster.simulator`) replay traces over the same
three-event loop; the priority queue's entry layout and its tie-break rules
live here so the two stay in lockstep.

The queue is tuple-backed: one heap entry is a plain
``(time, kind, seq, serial, payload)`` tuple, so scheduling an event
allocates no per-event object and popping one costs a single ``heappop``.
``serial`` is a per-queue strictly increasing counter appended purely as a
comparison firewall — it guarantees tuple comparison never reaches the
payload (the ``order=True`` dataclass footgun this layout replaced), while
leaving the public ``(time, kind, seq)`` total order untouched for every
queue whose seq numbers are unique (which per-queue counters guarantee).

The previous object-per-event implementation is preserved as
:class:`LegacyEventQueue` and selected by ``REPRO_LEGACY_QUEUE=1`` (checked
at queue construction), so the golden-trace suite can assert the two
produce byte-identical transcripts.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import os
from dataclasses import dataclass
from typing import Any, Iterator, Optional

#: Environment switch: ``REPRO_LEGACY_QUEUE=1`` makes ``EventQueue()``
#: construct the frozen object-per-event implementation instead of the
#: tuple-backed one.  Read per construction, so one process can run both.
LEGACY_QUEUE_ENV = "REPRO_LEGACY_QUEUE"

#: Heap-entry layout of the tuple-backed queue (and of the entry views the
#: legacy queue synthesizes): indices into one entry tuple.
ENTRY_TIME = 0
ENTRY_KIND = 1
ENTRY_SEQ = 2
ENTRY_SERIAL = 3
ENTRY_PAYLOAD = 4


class EventKind(enum.IntEnum):
    """Event types of the serving simulators' discrete-event loops.

    Enum order is the tie-break at equal timestamps: completions and
    prefill-done fire before new arrivals so freshly freed capacity and
    freshly admitted states are visible to same-instant arrivals.
    Cross-replica transfer completions and cluster control events (replica
    fail/drain/join) sort after arrivals — a transfer or topology change
    stamped at time ``t`` takes effect only once every request arriving at
    ``t`` has been routed against the pre-change cluster state.
    ``DIRECTORY_SYNC`` (sharded-directory gossip flushes) sorts last of
    all: directory updates stamped at ``t`` become visible only after
    every same-instant arrival has been routed against the stale view —
    the pessimistic reading of "bounded staleness".
    """

    PREFILL_DONE = 0
    REQUEST_COMPLETE = 1
    REQUEST_ARRIVAL = 2
    TRANSFER_DONE = 3
    CONTROL = 4
    DIRECTORY_SYNC = 5


@dataclass(eq=False)
class Event:
    """One scheduled simulator event; ordered by the explicit key
    ``(time, kind, seq)``.

    Comparison is hand-written rather than ``dataclass(order=True)`` so the
    payload can never participate in ordering — with generated ordering a
    future field reshuffle (or a forgotten ``compare=False``) would silently
    compare payloads and crash the heap on the first genuine key tie.
    """

    time: float
    kind: int
    seq: int
    payload: Any

    def sort_key(self) -> tuple[float, int, int]:
        """The total-order key; payloads are never compared."""
        return (self.time, self.kind, self.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key() == other.sort_key()

    def __lt__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


class EventQueue:
    """A deterministic tuple-backed min-heap ordered by ``(time, kind, seq)``.

    The per-queue sequence number makes ordering total (and FIFO among
    same-time same-kind events), so simulator runs are reproducible
    regardless of payload contents.

    Each queue owns its counter, starting at zero: tie-break order depends
    only on this queue's push history, never on how many events any other
    queue (or a previous run reusing an engine-held counter) has issued.
    Passing an external ``seq`` iterator is still accepted for callers that
    deliberately share numbering, but sharing one counter across queues
    makes seq values — and thus replay transcripts — depend on unrelated
    simulations running in the same process.

    Two pop surfaces exist: :meth:`pop`/:meth:`peek` return :class:`Event`
    objects (the compatibility API), while :meth:`pop_entry` /
    :meth:`peek_entry` expose the raw heap tuples for hot loops that want
    zero per-event allocation (see the ``ENTRY_*`` index constants).
    """

    __slots__ = ("_heap", "_seq", "_serial")

    def __new__(cls, seq: Optional[Iterator[int]] = None) -> "EventQueue":
        if cls is EventQueue and os.environ.get(LEGACY_QUEUE_ENV) == "1":
            return super().__new__(LegacyEventQueue)
        return super().__new__(cls)

    def __init__(self, seq: Optional[Iterator[int]] = None) -> None:
        self._heap: list[tuple[float, int, int, int, Any]] = []
        self._seq = itertools.count() if seq is None else seq
        self._serial = itertools.count()

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self, time: float, kind: EventKind, payload: Any, seq: Optional[int] = None
    ) -> None:
        """Schedule an event; ``seq`` overrides the queue's own counter.

        Explicit sequence numbers exist for the kernel's streaming
        admission path: session arrivals pulled lazily from a
        :class:`~repro.workloads.trace.TraceStream` carry reserved
        (negative) seqs so that, at equal ``(time, kind)``, they sort
        exactly where the bulk path's up-front pushes would have put them
        — before every event pushed during the run, in stream order.
        """
        heapq.heappush(
            self._heap,
            (
                time,
                int(kind),
                next(self._seq) if seq is None else seq,
                next(self._serial),
                payload,
            ),
        )

    def pop(self) -> Event:
        time, kind, seq, _serial, payload = heapq.heappop(self._heap)
        return Event(time, kind, seq, payload)

    def peek(self) -> Event:
        """The next event to pop, without removing it (queue must be non-empty)."""
        time, kind, seq, _serial, payload = self._heap[0]
        return Event(time, kind, seq, payload)

    def pop_entry(self) -> tuple[float, int, int, int, Any]:
        """Pop the raw ``(time, kind, seq, serial, payload)`` heap entry."""
        return heapq.heappop(self._heap)

    def peek_entry(self) -> tuple[float, int, int, int, Any]:
        """The raw head entry, without removing it (queue must be non-empty)."""
        return self._heap[0]


class LegacyEventQueue(EventQueue):
    """The frozen object-per-event queue (one :class:`Event` per heap slot).

    Kept as the byte-identity reference for the tuple-backed queue: the
    golden-trace suite replays every engine with ``REPRO_LEGACY_QUEUE=1``
    and asserts the transcripts match.  Ordering is the same explicit
    ``(time, kind, seq)`` key, with push order breaking exact key ties
    (tracked per entry, mirroring the tuple queue's ``serial`` firewall).
    """

    __slots__ = ()

    def __init__(self, seq: Optional[Iterator[int]] = None) -> None:
        # Heap of (Event, serial) pairs; Event comparison never reaches the
        # payload, and serial settles exact key ties by push order.
        self._heap: list[tuple[Event, int]] = []  # type: ignore[assignment]
        self._seq = itertools.count() if seq is None else seq
        self._serial = itertools.count()

    def push(
        self, time: float, kind: EventKind, payload: Any, seq: Optional[int] = None
    ) -> None:
        event = Event(
            time, int(kind), next(self._seq) if seq is None else seq, payload
        )
        heapq.heappush(self._heap, (event, next(self._serial)))

    def pop(self) -> Event:
        return heapq.heappop(self._heap)[0]

    def peek(self) -> Event:
        return self._heap[0][0]

    def pop_entry(self) -> tuple[float, int, int, int, Any]:
        event, serial = heapq.heappop(self._heap)
        return (event.time, event.kind, event.seq, serial, event.payload)

    def peek_entry(self) -> tuple[float, int, int, int, Any]:
        event, serial = self._heap[0]
        return (event.time, event.kind, event.seq, serial, event.payload)
