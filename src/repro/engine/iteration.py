"""Iteration-level batching engine with chunked prefill (Orca / Sarathi).

The FCFS simulator in :mod:`repro.engine.server` models a dedicated prefill
executor with background decode, which is the right lens for TTFT — but it
cannot show the paper's footnote 2: *"Even though prefix caching is a
prefill-only optimization, a lower prefill latency also reduces the tail
TPT for high-throughput LLM inference engines"*.  That effect lives at the
iteration level: when one GPU serves prefills and decodes together, every
prefill chunk occupies an iteration that all concurrent decode streams
must wait through — so skipping prefill via cache hits directly shortens
other requests' inter-token gaps.

This engine models exactly that execution style:

* time advances in *iterations*; each iteration carries every active
  decode stream (one token each, up to ``max_batch``) plus at most one
  prefill chunk of up to ``token_budget`` tokens from the head-of-line
  prefill (Sarathi-style chunked prefill, referenced in the paper's
  section 6);
* iteration duration = fixed overhead + the chunk's suffix-aware prefill
  FLOPs at the accelerator's effective throughput + one decode step's
  memory-bound cost (shared by the whole batch) + state-fetch time on a
  chunk that begins a cache hit;
* TTFT is the completion of a request's last prefill chunk; every decode
  token records its inter-token gap, yielding the TBT/TPOT distribution.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.baselines.base import CacheProtocol, RequestSession
from repro.engine.latency import LatencyModel
from repro.engine.request import EngineRequest
from repro.engine.results import RequestRecord
from repro.models.config import ModelConfig
from repro.models.flops import model_prefill_flops, model_suffix_prefill_flops
from repro.workloads.trace import Trace, TraceSession


@dataclass(frozen=True)
class IterationConfig:
    """Scheduler knobs of the iteration-level engine."""

    token_budget: int = 512
    max_batch: int = 64
    iteration_overhead_s: float = 0.002

    def __post_init__(self) -> None:
        if self.token_budget < 1:
            raise ValueError(f"token_budget must be >= 1, got {self.token_budget}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.iteration_overhead_s < 0:
            raise ValueError("iteration_overhead_s must be non-negative")


@dataclass
class _PrefillJob:
    request: EngineRequest
    session: Optional[RequestSession] = None
    position: int = 0  # tokens already processed (including the hit)
    started: bool = False
    service_start: float = 0.0
    compute_seconds: float = 0.0

    # The lookup outcome lives on the session (zero until begin runs).
    @property
    def hit_tokens(self) -> int:
        return self.session.hit_tokens if self.session is not None else 0

    @property
    def reused_bytes(self) -> int:
        return self.session.reused_bytes if self.session is not None else 0

    @property
    def reused_secondary_bytes(self) -> int:
        return self.session.reused_secondary_bytes if self.session is not None else 0

    @property
    def remaining(self) -> int:
        return self.request.input_len - self.position


@dataclass
class _DecodeJob:
    request: EngineRequest
    session: RequestSession
    produced: int = 0
    last_token_time: float = 0.0
    gaps: list[float] = field(default_factory=list)

    @property
    def remaining(self) -> int:
        return self.request.output_len - self.produced


@dataclass
class IterationResult:
    """Per-request records plus the engine-wide inter-token gap sample."""

    policy: str
    records: list[RequestRecord] = field(default_factory=list)
    tbt_gaps: list[float] = field(default_factory=list)
    n_iterations: int = 0
    cache_stats: dict = field(default_factory=dict)

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def token_hit_rate(self) -> float:
        total = sum(r.input_len for r in self.records)
        if total == 0:
            return 0.0
        return sum(r.hit_tokens for r in self.records) / total

    def ttft_percentile(self, percentile: float) -> float:
        """Linear-interpolated TTFT percentile in seconds."""
        values = [r.ttft for r in self.records]
        if not values:
            raise ValueError("no records to take a percentile of")
        return float(np.percentile(values, percentile))

    def tbt_percentile(self, percentile: float) -> float:
        """Inter-token-gap percentile across all decoded tokens."""
        if not self.tbt_gaps:
            raise ValueError("no decode gaps recorded")
        return float(np.percentile(self.tbt_gaps, percentile))


class IterationSimulator:
    """Replays one trace through one cache, iteration by iteration."""

    def __init__(
        self,
        model: ModelConfig,
        cache: CacheProtocol,
        latency: Optional[LatencyModel] = None,
        config: Optional[IterationConfig] = None,
        policy_name: str = "unnamed",
    ) -> None:
        self.model = model
        self.cache = cache
        self.latency = latency or LatencyModel()
        self.config = config or IterationConfig()
        self.policy_name = policy_name
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # Iteration costing
    # ------------------------------------------------------------------
    def _chunk_seconds(self, job: _PrefillJob, chunk: int) -> float:
        """Compute time of one prefill chunk (suffix-aware at its position)."""
        flops = model_suffix_prefill_flops(
            self.model, job.position + chunk, job.position
        )
        seconds = flops / self.latency.effective_flops_per_s
        if job.position == job.hit_tokens and job.reused_bytes:
            primary = job.reused_bytes - job.reused_secondary_bytes
            seconds += primary / self.latency.fetch_bandwidth_bytes_per_s
            seconds += (
                job.reused_secondary_bytes
                / self.latency.secondary_fetch_bandwidth_bytes_per_s
            )
        return seconds

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> IterationResult:
        """Simulate the full trace; returns records plus the TBT gap sample."""
        result = IterationResult(policy=self.policy_name)
        arrivals: list[tuple[float, int, EngineRequest]] = []
        for session in trace.sessions:
            heapq.heappush(
                arrivals,
                (
                    session.arrival_time,
                    next(self._seq),
                    self._make_request(session, 0, session.arrival_time),
                ),
            )
        sessions_by_id = {s.session_id: s for s in trace.sessions}

        prefill_queue: list[_PrefillJob] = []
        decodes: list[_DecodeJob] = []
        now = 0.0

        def drain_arrivals(upto: float) -> None:
            while arrivals and arrivals[0][0] <= upto:
                _, _, request = heapq.heappop(arrivals)
                prefill_queue.append(_PrefillJob(request=request))

        while arrivals or prefill_queue or decodes:
            if not prefill_queue and not decodes:
                # Idle: jump to the next arrival.
                now = max(now, arrivals[0][0])
            drain_arrivals(now)
            if not prefill_queue and not decodes:
                continue

            # --- schedule one iteration ---------------------------------
            batch = decodes[: self.config.max_batch]
            chunk = 0
            job: Optional[_PrefillJob] = None
            if prefill_queue:
                job = prefill_queue[0]
                if not job.started:
                    session = self.cache.begin(job.request.input_tokens, now)
                    job.started = True
                    job.service_start = now
                    job.session = session
                    job.position = session.hit_tokens
                chunk = min(self.config.token_budget, job.remaining)

            duration = self.config.iteration_overhead_s
            if chunk and job is not None:
                chunk_seconds = self._chunk_seconds(job, chunk)
                job.compute_seconds += chunk_seconds
                duration += chunk_seconds
            if batch:
                duration += self.latency.decode_seconds_per_token
            now += duration
            result.n_iterations += 1

            # --- decode progress -----------------------------------------
            finished_decodes = []
            for stream in batch:
                if stream.produced > 0:
                    stream.gaps.append(now - stream.last_token_time)
                    result.tbt_gaps.append(now - stream.last_token_time)
                stream.produced += 1
                stream.last_token_time = now
                if stream.remaining == 0:
                    finished_decodes.append(stream)
            for stream in finished_decodes:
                decodes.remove(stream)
                self._complete(stream, now, arrivals, sessions_by_id)

            # --- prefill progress ----------------------------------------
            if chunk and job is not None:
                job.position += chunk
                if job.remaining == 0:
                    prefill_queue.pop(0)
                    result.records.append(
                        RequestRecord(
                            session_id=job.request.session_id,
                            round_index=job.request.round_index,
                            arrival_time=job.request.arrival_time,
                            service_start=job.service_start,
                            prefill_seconds=job.compute_seconds,
                            ttft=now - job.request.arrival_time,
                            input_len=job.request.input_len,
                            hit_tokens=job.hit_tokens,
                            output_len=job.request.output_len,
                            reused_bytes=job.reused_bytes,
                            flops_saved=model_prefill_flops(
                                self.model, job.hit_tokens
                            ),
                        )
                    )
                    # The first output token is produced with the final
                    # prefill chunk; decoding continues next iteration.
                    decodes.append(
                        _DecodeJob(
                            request=job.request,
                            session=job.session,
                            produced=1,
                            last_token_time=now,
                        )
                    )
                    if job.request.output_len == 1:
                        stream = decodes.pop()
                        self._complete(stream, now, arrivals, sessions_by_id)

        if hasattr(self.cache, "stats"):
            result.cache_stats = self.cache.stats.snapshot()
        return result

    def _complete(self, stream: _DecodeJob, now, arrivals, sessions_by_id) -> None:
        stream.session.commit(stream.request.full_tokens, now)
        session = sessions_by_id[stream.request.session_id]
        next_round = stream.request.round_index + 1
        if next_round < session.n_rounds:
            arrival = now + session.think_times[next_round]
            heapq.heappush(
                arrivals,
                (
                    arrival,
                    next(self._seq),
                    self._make_request(session, next_round, arrival),
                ),
            )

    @staticmethod
    def _make_request(
        session: TraceSession, round_index: int, arrival: float
    ) -> EngineRequest:
        return EngineRequest(
            session_id=session.session_id,
            round_index=round_index,
            arrival_time=arrival,
            input_tokens=session.full_input(round_index),
            full_tokens=session.full_sequence(round_index),
        )


def simulate_trace_iteration(
    model: ModelConfig,
    cache: CacheProtocol,
    trace: Trace,
    latency: Optional[LatencyModel] = None,
    config: Optional[IterationConfig] = None,
    policy_name: str = "unnamed",
) -> IterationResult:
    """One-call convenience wrapper around :class:`IterationSimulator`."""
    return IterationSimulator(model, cache, latency, config, policy_name).run(trace)
