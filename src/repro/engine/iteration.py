"""Iteration-level batching engine with chunked prefill (Orca / Sarathi).

The FCFS simulator in :mod:`repro.engine.server` models dedicated prefill
executors with background decode, which is the right lens for TTFT — but it
cannot show the paper's footnote 2: *"Even though prefix caching is a
prefill-only optimization, a lower prefill latency also reduces the tail
TPT for high-throughput LLM inference engines"*.  That effect lives at the
iteration level: when one GPU serves prefills and decodes together, every
prefill chunk occupies an iteration that all concurrent decode streams
must wait through — so skipping prefill via cache hits directly shortens
other requests' inter-token gaps.

This engine is a one-replica configuration of
:class:`repro.engine.kernel.SimulationKernel` with the token-level
:class:`~repro.engine.kernel.TokenBatchingScheduler`:

* time advances in *iterations*; each iteration carries every active
  decode stream (one token each, up to ``max_batch``) plus at most one
  prefill chunk of up to ``token_budget`` tokens from the head-of-line
  prefill (Sarathi-style chunked prefill, referenced in the paper's
  section 6);
* iteration duration = fixed overhead + the chunk's suffix-aware prefill
  FLOPs at the accelerator's effective throughput + one decode step's
  memory-bound cost (shared by the whole batch) + state-fetch time on a
  chunk that begins a cache hit;
* TTFT is the completion of a request's last prefill chunk; every decode
  token records its inter-token gap, yielding the TBT/TPOT distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.interfaces import CacheProtocol
from repro.engine.kernel import (
    KernelConfig,
    SimulationKernel,
    TokenBatchingScheduler,
)
from repro.engine.latency import LatencyModel
from repro.engine.results import EngineResult
from repro.models.config import ModelConfig
from repro.workloads.trace import Trace, TraceStream


@dataclass(frozen=True)
class IterationConfig:
    """Scheduler knobs of the iteration-level engine."""

    token_budget: int = 512
    max_batch: int = 64
    iteration_overhead_s: float = 0.002

    def __post_init__(self) -> None:
        if self.token_budget < 1:
            raise ValueError(f"token_budget must be >= 1, got {self.token_budget}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.iteration_overhead_s < 0:
            raise ValueError("iteration_overhead_s must be non-negative")


@dataclass
class IterationResult(EngineResult):
    """Per-request records plus the engine-wide inter-token gap sample."""

    tbt_gaps: list[float] = field(default_factory=list)
    n_iterations: int = 0

    def tbt_percentile(self, percentile: float) -> float:
        """Inter-token-gap percentile across all decoded tokens."""
        if not self.tbt_gaps:
            raise ValueError("no decode gaps recorded")
        return float(np.percentile(self.tbt_gaps, percentile))


class IterationSimulator:
    """Replays one trace through one cache, iteration by iteration."""

    def __init__(
        self,
        model: ModelConfig,
        cache: CacheProtocol,
        latency: Optional[LatencyModel] = None,
        config: Optional[IterationConfig] = None,
        policy_name: str = "unnamed",
        seed: int = 0,
        record_timeseries: bool = True,
    ) -> None:
        self.model = model
        self.cache = cache
        self.latency = latency or LatencyModel()
        self.config = config or IterationConfig()
        self.policy_name = policy_name
        self.kernel_config = KernelConfig(
            max_running=1, seed=seed, record_timeseries=record_timeseries
        )

    def run(self, trace: Trace | TraceStream) -> IterationResult:
        """Simulate the full trace; returns records plus the TBT gap sample."""
        config = self.config

        def factory(kernel: SimulationKernel, replica: int) -> TokenBatchingScheduler:
            return TokenBatchingScheduler(
                kernel,
                replica,
                token_budget=config.token_budget,
                max_batch=config.max_batch,
                iteration_overhead_s=config.iteration_overhead_s,
            )

        kernel = SimulationKernel(
            self.model,
            [self.cache],
            self.latency,
            config=self.kernel_config,
            scheduler_factory=factory,
            policy_names=[self.policy_name],
        )
        run = kernel.run(trace)
        base = run.replica_results[0]
        scheduler: TokenBatchingScheduler = run.schedulers[0]
        return IterationResult(
            policy=base.policy,
            records=base.records,
            cache_stats=base.cache_stats,
            max_running=base.max_running,
            queue_depth_series=base.queue_depth_series,
            running_series=base.running_series,
            tbt_gaps=scheduler.tbt_gaps,
            n_iterations=scheduler.n_iterations,
        )


def simulate_trace_iteration(
    model: ModelConfig,
    cache: CacheProtocol,
    trace: Trace | TraceStream,
    latency: Optional[LatencyModel] = None,
    config: Optional[IterationConfig] = None,
    policy_name: str = "unnamed",
) -> IterationResult:
    """One-call convenience wrapper around :class:`IterationSimulator`."""
    return IterationSimulator(model, cache, latency, config, policy_name).run(trace)
