"""Analytic latency model calibrated to an A100-class FP16 accelerator.

Prefill is compute-bound, so its latency is skipped-FLOP-aware:
``overhead + suffix_flops / (peak * MFU) + reused_bytes / fetch_bandwidth``.
The fetch term charges for pulling reused states from the (CPU-side) prefix
cache over PCIe.  Decode is memory-bandwidth-bound and modeled as a fixed
per-token time; it never blocks the prefill executor but it does gate the
session's next round.

Defaults: A100 dense FP16 peak 312 TFLOP/s at 50% MFU, 25 GB/s fetch
bandwidth (PCIe 4.0 x16 effective), 4 ms prefill launch overhead, 10 ms per
decoded token — which put a 7B hybrid's full-prefill TTFT for a 10K-token
request near 0.9 s, matching the scale of the paper's TTFT plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.models.config import ModelConfig
from repro.models.flops import model_suffix_prefill_flops


@dataclass(frozen=True)
class LatencyModel:
    """Maps token counts and reuse to seconds."""

    peak_flops_per_s: float = 312e12
    mfu: float = 0.5
    decode_seconds_per_token: float = 0.010
    prefill_overhead_s: float = 0.004
    fetch_bandwidth_bytes_per_s: float = 25e9
    secondary_fetch_bandwidth_bytes_per_s: float = 8e9
    # Cross-replica state transfers (cluster steering): an RDMA-ish
    # inter-node link — per-transfer launch latency plus a bandwidth term.
    transfer_bandwidth_bytes_per_s: float = 12e9
    transfer_latency_s: float = 0.003
    # Stitching a transferred prefix head onto a locally recomputed tail
    # (split-point steering): one KV-layout merge pass, charged once after
    # both halves are ready.
    split_merge_s: float = 0.0005

    def __post_init__(self) -> None:
        if self.peak_flops_per_s <= 0 or not 0 < self.mfu <= 1:
            raise ValueError("need peak_flops_per_s > 0 and 0 < mfu <= 1")
        if self.decode_seconds_per_token < 0 or self.prefill_overhead_s < 0:
            raise ValueError("latencies must be non-negative")
        if self.fetch_bandwidth_bytes_per_s <= 0:
            raise ValueError("fetch_bandwidth_bytes_per_s must be positive")
        if self.secondary_fetch_bandwidth_bytes_per_s <= 0:
            raise ValueError("secondary_fetch_bandwidth_bytes_per_s must be positive")
        if self.transfer_bandwidth_bytes_per_s <= 0:
            raise ValueError("transfer_bandwidth_bytes_per_s must be positive")
        if self.transfer_latency_s < 0:
            raise ValueError("transfer_latency_s must be non-negative")
        if self.split_merge_s < 0:
            raise ValueError("split_merge_s must be non-negative")

    @property
    def effective_flops_per_s(self) -> float:
        return self.peak_flops_per_s * self.mfu

    def prefill_seconds(
        self,
        model: ModelConfig,
        seq_len: int,
        reused_len: int = 0,
        reused_bytes: int = 0,
        secondary_bytes: int = 0,
    ) -> float:
        """Time to prefill ``seq_len`` tokens reusing a ``reused_len`` prefix.

        ``secondary_bytes`` is the portion of ``reused_bytes`` that comes
        from a second-tier store (tiered caches) and is priced at the
        slower secondary bandwidth; the remainder uses the primary fetch
        bandwidth.
        """
        if reused_bytes < 0:
            raise ValueError(
                f"reused_bytes must be non-negative, got {reused_bytes}"
            )
        if not 0 <= secondary_bytes <= reused_bytes:
            raise ValueError(
                f"secondary_bytes must be within [0, reused_bytes], got "
                f"{secondary_bytes} of {reused_bytes}"
            )
        flops = model_suffix_prefill_flops(model, seq_len, reused_len)
        compute = flops / self.effective_flops_per_s
        fetch = (reused_bytes - secondary_bytes) / self.fetch_bandwidth_bytes_per_s
        fetch += secondary_bytes / self.secondary_fetch_bandwidth_bytes_per_s
        return self.prefill_overhead_s + compute + fetch

    def prefill_seconds_batch(
        self,
        model: ModelConfig,
        items: "Sequence[tuple[int, int, int, int]]",
    ) -> list[float]:
        """Vectorized :meth:`prefill_seconds` over a scheduler batch.

        ``items`` holds ``(seq_len, reused_len, reused_bytes,
        secondary_bytes)`` per request.  Invariant terms (effective FLOP/s,
        bandwidths, launch overhead) are hoisted out of the loop; each
        element's arithmetic keeps the scalar method's exact expression
        order, so the two paths are bit-identical float for float — the
        batch API is a per-call-overhead optimization, not a reformulation.
        """
        eff = self.peak_flops_per_s * self.mfu  # == effective_flops_per_s
        fetch_bw = self.fetch_bandwidth_bytes_per_s
        secondary_bw = self.secondary_fetch_bandwidth_bytes_per_s
        overhead = self.prefill_overhead_s
        out = []
        for seq_len, reused_len, reused_bytes, secondary_bytes in items:
            if reused_bytes < 0:
                raise ValueError(
                    f"reused_bytes must be non-negative, got {reused_bytes}"
                )
            if not 0 <= secondary_bytes <= reused_bytes:
                raise ValueError(
                    f"secondary_bytes must be within [0, reused_bytes], got "
                    f"{secondary_bytes} of {reused_bytes}"
                )
            flops = model_suffix_prefill_flops(model, seq_len, reused_len)
            compute = flops / eff
            fetch = (reused_bytes - secondary_bytes) / fetch_bw
            fetch += secondary_bytes / secondary_bw
            out.append(overhead + compute + fetch)
        return out

    def vanilla_prefill_seconds(self, model: ModelConfig, seq_len: int) -> float:
        """Full-prefill time with no cache reuse."""
        return self.prefill_seconds(model, seq_len, 0, 0)

    def decode_seconds(self, n_tokens: int) -> float:
        """Time to decode ``n_tokens`` output tokens."""
        if n_tokens < 0:
            raise ValueError(f"n_tokens must be non-negative, got {n_tokens}")
        return n_tokens * self.decode_seconds_per_token

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to copy ``nbytes`` of cached state between two replicas."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.transfer_latency_s + nbytes / self.transfer_bandwidth_bytes_per_s
