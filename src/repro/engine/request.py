"""In-flight request representation used by the serving simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class EngineRequest:
    """One round of one session, materialized for the engine.

    ``input_tokens`` is the full request input (accumulated context plus the
    round's new segment); ``full_tokens`` additionally includes the round's
    output, which the simulator "generates" during decode and admits into
    the cache on completion.
    """

    session_id: int
    round_index: int
    arrival_time: float
    input_tokens: np.ndarray
    full_tokens: np.ndarray

    def __post_init__(self) -> None:
        if len(self.input_tokens) == 0:
            raise ValueError("request must have at least one input token")
        if len(self.full_tokens) <= len(self.input_tokens):
            raise ValueError("request must produce at least one output token")

    @property
    def input_len(self) -> int:
        return len(self.input_tokens)

    @property
    def output_len(self) -> int:
        return len(self.full_tokens) - len(self.input_tokens)
