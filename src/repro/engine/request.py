"""In-flight request representation used by the serving simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.workloads.trace import TraceSession


@dataclass(slots=True)
class EngineRequest:
    """One round of one session, materialized for the engine.

    ``input_tokens`` is the full request input (accumulated context plus the
    round's new segment); ``full_tokens`` additionally includes the round's
    output, which the simulator "generates" during decode and admits into
    the cache on completion.  Both are interned ``TokenSeq`` handles when
    built via :meth:`from_session` (plain arrays are accepted too).
    """

    session_id: int
    round_index: int
    arrival_time: float
    input_tokens: np.ndarray
    full_tokens: np.ndarray

    def __post_init__(self) -> None:
        if len(self.input_tokens) == 0:
            raise ValueError("request must have at least one input token")
        if len(self.full_tokens) <= len(self.input_tokens):
            raise ValueError("request must produce at least one output token")

    @classmethod
    def from_session(
        cls, session: "TraceSession", round_index: int, arrival: float
    ) -> "EngineRequest":
        """Materialize round ``round_index`` of a trace session at ``arrival``.

        Tokens are interned :class:`~repro.core.tokens.TokenSeq` handles, so
        every downstream consumer (cache begin/commit, router probes, radix
        match/insert) shares one canonical array and its cached bytes.
        """
        input_seq, full_seq = session.interned_round(round_index)
        return cls(
            session_id=session.session_id,
            round_index=round_index,
            arrival_time=arrival,
            input_tokens=input_seq,
            full_tokens=full_seq,
        )

    @property
    def input_len(self) -> int:
        return len(self.input_tokens)

    @property
    def output_len(self) -> int:
        return len(self.full_tokens) - len(self.input_tokens)
