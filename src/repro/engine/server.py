"""The discrete-event serving simulator.

Timeline for each request:

1. It *arrives* (session start, or previous round's decode end plus think
   time) and joins the FCFS prefill queue.
2. When the prefill executor frees up, the request is *served*: the cache
   lookup happens here (states reused must exist at service time, not
   arrival time), the prefill occupies the executor for the latency model's
   suffix-aware duration, and TTFT = prefill end − arrival.
3. Decode proceeds in the background; at its end the full sequence is
   admitted into the cache and the session's next round is scheduled after
   the think-time gap.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.baselines.base import CacheProtocol, RequestSession
from repro.engine.events import EventKind, EventQueue
from repro.engine.latency import LatencyModel
from repro.engine.request import EngineRequest
from repro.engine.results import EngineResult, RequestRecord
from repro.models.config import ModelConfig
from repro.models.flops import model_prefill_flops
from repro.workloads.trace import Trace, TraceSession


@dataclass
class _InFlight:
    request: EngineRequest
    session: RequestSession  # lookup outcome (hit/reused bytes) lives here
    service_start: float
    prefill_seconds: float


class ServingSimulator:
    """Replays one trace through one cache under the latency model.

    ``n_executors > 1`` models data-parallel prefill workers that share the
    single prefix cache (e.g. multiple prefill streams on one node): up to
    that many requests prefill concurrently, each still paying its own
    FLOP-derived duration.
    """

    def __init__(
        self,
        model: ModelConfig,
        cache: CacheProtocol,
        latency: Optional[LatencyModel] = None,
        policy_name: str = "unnamed",
        n_executors: int = 1,
    ) -> None:
        if n_executors < 1:
            raise ValueError(f"n_executors must be >= 1, got {n_executors}")
        self.model = model
        self.cache = cache
        self.latency = latency or LatencyModel()
        self.policy_name = policy_name
        self.n_executors = n_executors
        self._seq = itertools.count()

    def run(self, trace: Trace) -> EngineResult:
        """Simulate the full trace; returns per-request records."""
        events = EventQueue(self._seq)
        push = events.push
        queue: deque[EngineRequest] = deque()
        result = EngineResult(policy=self.policy_name)
        free_executors = self.n_executors

        for session in trace.sessions:
            push(
                session.arrival_time,
                EventKind.REQUEST_ARRIVAL,
                self._make_request(session, 0, session.arrival_time),
            )

        def start_next(now: float) -> None:
            nonlocal free_executors
            n_start = min(free_executors, len(queue))
            if n_start <= 0:
                return
            # All requests admitted this scheduler step begin at the same
            # instant, so their sessions open as one batch (each still pays
            # its own FLOP-derived prefill duration below).
            batch = [queue.popleft() for _ in range(n_start)]
            sessions = self.cache.begin_many(
                [request.input_tokens for request in batch], now
            )
            free_executors -= n_start
            for request, session in zip(batch, sessions):
                prefill_seconds = self.latency.prefill_seconds(
                    self.model,
                    seq_len=request.input_len,
                    reused_len=session.hit_tokens,
                    reused_bytes=session.reused_bytes,
                    secondary_bytes=session.reused_secondary_bytes,
                )
                push(
                    now + prefill_seconds,
                    EventKind.PREFILL_DONE,
                    _InFlight(
                        request=request,
                        session=session,
                        service_start=now,
                        prefill_seconds=prefill_seconds,
                    ),
                )

        sessions_by_id = {s.session_id: s for s in trace.sessions}
        while events:
            event = events.pop()
            now = event.time
            if event.kind == EventKind.REQUEST_ARRIVAL:
                queue.append(event.payload)
                start_next(now)
            elif event.kind == EventKind.PREFILL_DONE:
                flight: _InFlight = event.payload
                request = flight.request
                result.records.append(
                    RequestRecord(
                        session_id=request.session_id,
                        round_index=request.round_index,
                        arrival_time=request.arrival_time,
                        service_start=flight.service_start,
                        prefill_seconds=flight.prefill_seconds,
                        ttft=now - request.arrival_time,
                        input_len=request.input_len,
                        hit_tokens=flight.session.hit_tokens,
                        output_len=request.output_len,
                        reused_bytes=flight.session.reused_bytes,
                        flops_saved=model_prefill_flops(
                            self.model, flight.session.hit_tokens
                        ),
                    )
                )
                free_executors += 1
                push(
                    now + self.latency.decode_seconds(request.output_len),
                    EventKind.REQUEST_COMPLETE,
                    flight,
                )
                start_next(now)
            else:  # REQUEST_COMPLETE
                flight = event.payload
                request = flight.request
                flight.session.commit(request.full_tokens, now)
                session = sessions_by_id[request.session_id]
                next_round = request.round_index + 1
                if next_round < session.n_rounds:
                    arrival = now + session.think_times[next_round]
                    push(
                        arrival,
                        EventKind.REQUEST_ARRIVAL,
                        self._make_request(session, next_round, arrival),
                    )

        if hasattr(self.cache, "stats"):
            result.cache_stats = self.cache.stats.snapshot()
        return result

    @staticmethod
    def _make_request(
        session: TraceSession, round_index: int, arrival: float
    ) -> EngineRequest:
        return EngineRequest(
            session_id=session.session_id,
            round_index=round_index,
            arrival_time=arrival,
            input_tokens=session.full_input(round_index),
            full_tokens=session.full_sequence(round_index),
        )


def simulate_trace(
    model: ModelConfig,
    cache: CacheProtocol,
    trace: Trace,
    latency: Optional[LatencyModel] = None,
    policy_name: str = "unnamed",
    n_executors: int = 1,
) -> EngineResult:
    """One-call convenience wrapper around :class:`ServingSimulator`."""
    return ServingSimulator(model, cache, latency, policy_name, n_executors).run(trace)
