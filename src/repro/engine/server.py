"""The discrete-event serving simulator (kernel-backed).

Timeline for each request:

1. It *arrives* (session start, or previous round's decode end plus think
   time) and joins the FCFS prefill queue.
2. When a prefill executor slot frees up, the request is *served*: the
   cache lookup happens here (states reused must exist at service time,
   not arrival time), the prefill occupies the slot for the latency
   model's suffix-aware duration, and TTFT = prefill end − arrival.
3. Decode proceeds in the background; at its end the full sequence is
   admitted into the cache and the session's next round is scheduled after
   the think-time gap.

This engine is a one-replica configuration of
:class:`repro.engine.kernel.SimulationKernel` with
:class:`~repro.engine.kernel.ContinuousBatchingScheduler` over
``n_executors`` slots; the scheduling loop itself lives in the kernel.
"""

from __future__ import annotations

from typing import Optional

from repro.core.interfaces import CacheProtocol
from repro.engine.kernel import KernelConfig, SimulationKernel
from repro.engine.latency import LatencyModel
from repro.engine.results import EngineResult
from repro.models.config import ModelConfig
from repro.workloads.trace import Trace, TraceStream


class ServingSimulator:
    """Replays one trace through one cache under the latency model.

    ``n_executors > 1`` models data-parallel prefill workers that share the
    single prefix cache (e.g. multiple prefill streams on one node): up to
    that many requests prefill concurrently (continuous batching at
    prefill granularity), each still paying its own FLOP-derived duration.
    """

    def __init__(
        self,
        model: ModelConfig,
        cache: CacheProtocol,
        latency: Optional[LatencyModel] = None,
        policy_name: str = "unnamed",
        n_executors: int = 1,
        seed: int = 0,
        record_timeseries: bool = True,
    ) -> None:
        if n_executors < 1:
            raise ValueError(f"n_executors must be >= 1, got {n_executors}")
        self.model = model
        self.cache = cache
        self.latency = latency or LatencyModel()
        self.policy_name = policy_name
        self.n_executors = n_executors
        self.config = KernelConfig(
            max_running=n_executors, seed=seed, record_timeseries=record_timeseries
        )

    def run(self, trace: Trace | TraceStream) -> EngineResult:
        """Simulate the full trace; returns per-request records."""
        kernel = SimulationKernel(
            self.model,
            [self.cache],
            self.latency,
            config=self.config,
            policy_names=[self.policy_name],
        )
        return kernel.run(trace).replica_results[0]


def simulate_trace(
    model: ModelConfig,
    cache: CacheProtocol,
    trace: Trace | TraceStream,
    latency: Optional[LatencyModel] = None,
    policy_name: str = "unnamed",
    n_executors: int = 1,
) -> EngineResult:
    """One-call convenience wrapper around :class:`ServingSimulator`."""
    return ServingSimulator(model, cache, latency, policy_name, n_executors).run(trace)
