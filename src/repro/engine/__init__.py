"""Discrete-event serving simulator with an analytic latency model.

The simulator replays a trace against one cache policy and produces
per-request records (TTFT, queue delay, hit tokens, FLOPs saved).  Prefills
are served FCFS by 1..N compute-bound executors sharing the cache; decode runs in the
background (batched decode does not block the prefill queue, the standard
approximation for throughput-oriented engines) and gates the arrival of the
session's next round: closed-loop within sessions, open-loop across them.
"""

from repro.engine.events import Event, EventKind, EventQueue
from repro.engine.iteration import (
    IterationConfig,
    IterationResult,
    IterationSimulator,
    simulate_trace_iteration,
)
from repro.engine.latency import LatencyModel
from repro.engine.request import EngineRequest
from repro.engine.results import EngineResult, RequestRecord
from repro.engine.server import ServingSimulator, simulate_trace

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "IterationConfig",
    "IterationResult",
    "IterationSimulator",
    "simulate_trace_iteration",
    "LatencyModel",
    "EngineRequest",
    "EngineResult",
    "RequestRecord",
    "ServingSimulator",
    "simulate_trace",
]
