"""Discrete-event serving simulators with an analytic latency model.

All engines are thin configurations of the unified simulation kernel in
:mod:`repro.engine.kernel` (event queue, virtual clock, per-replica
executor slots, FCFS + continuous-batching and token-level schedulers,
and the transactional cache-session lifecycle):

* :class:`~repro.engine.server.ServingSimulator` — one replica, FCFS over
  ``n_executors`` prefill slots with background decode; per-request
  records (TTFT, queue delay, hit tokens, FLOPs saved).
* :class:`~repro.engine.iteration.IterationSimulator` — one replica,
  iteration-level batching with Sarathi-style chunked prefill; adds the
  TBT/TPOT gap distribution.
* :class:`repro.cluster.simulator.ClusterSimulator` — N replicas behind a
  router, each an independent FCFS executor with its own cache.
"""

from repro.engine.events import Event, EventKind, EventQueue
from repro.engine.iteration import (
    IterationConfig,
    IterationResult,
    IterationSimulator,
    simulate_trace_iteration,
)
from repro.engine.kernel import (
    ContinuousBatchingScheduler,
    KernelConfig,
    KernelRun,
    ReplicaScheduler,
    SimulationKernel,
    TokenBatchingScheduler,
    VirtualClock,
)
from repro.engine.latency import LatencyModel
from repro.engine.request import EngineRequest
from repro.engine.results import EngineResult, RequestRecord, step_time_weighted_mean
from repro.engine.server import ServingSimulator, simulate_trace
from repro.engine.steering import (
    NoRoutableReplicaError,
    RouteDecision,
    ScenarioEvent,
    SplitPlan,
    SplitSpec,
    SteeringTelemetry,
    TransferSpec,
    plan_split,
)

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "IterationConfig",
    "IterationResult",
    "IterationSimulator",
    "simulate_trace_iteration",
    "ContinuousBatchingScheduler",
    "KernelConfig",
    "KernelRun",
    "ReplicaScheduler",
    "SimulationKernel",
    "TokenBatchingScheduler",
    "VirtualClock",
    "LatencyModel",
    "EngineRequest",
    "EngineResult",
    "RequestRecord",
    "step_time_weighted_mean",
    "ServingSimulator",
    "simulate_trace",
    "NoRoutableReplicaError",
    "RouteDecision",
    "TransferSpec",
    "SplitPlan",
    "SplitSpec",
    "plan_split",
    "ScenarioEvent",
    "SteeringTelemetry",
]
