"""The unified discrete-event simulation kernel behind every serving engine.

Marconi's results all flow through trace replays; this module is the one
place that loop lives.  The kernel owns the pieces every engine shares:

* the :class:`~repro.engine.events.EventQueue` and a monotone
  :class:`VirtualClock` (time only moves forward, ties break by
  ``(time, kind, per-queue seq)``);
* per-replica executor state driven by a pluggable
  :class:`ReplicaScheduler` — :class:`ContinuousBatchingScheduler` for
  FCFS prefill-granularity batching over ``max_running`` slots (the
  serving engine and the cluster simulator), and
  :class:`TokenBatchingScheduler` for Sarathi-style iteration-level
  chunked prefill (the iteration engine);
* the transactional cache lifecycle: sessions open via
  ``begin``/``begin_many`` at service start and commit at decode end,
  and the closed-loop scheduling of each trace session's next round;
* request routing (single replica, or an explicit
  :class:`~repro.cluster.router.Router` over N replicas) and per-replica
  telemetry: routed counts, busy seconds, and queue-depth /
  running-executors change-point timeseries in every
  :class:`~repro.engine.results.EngineResult`;
* cluster steering execution: routers return
  :class:`~repro.engine.steering.RouteDecision` verdicts whose optional
  :class:`~repro.engine.steering.TransferSpec` the kernel charges as an
  asynchronous bandwidth/latency ``TRANSFER_DONE`` event (the request is
  parked until the copied state lands in the target's second tier), and
  :class:`~repro.engine.steering.ScenarioEvent` schedules make replicas
  fail (transactional session aborts + orphan re-routing), drain, and
  join mid-run, all accounted into
  :class:`~repro.engine.steering.SteeringTelemetry`.

Determinism protocol: a run's transcript is a pure function of
``(trace, model, latency, caches, router, KernelConfig)``.  Every run
builds a fresh event queue (whose tie-break counter starts at zero), a
fresh clock, and a fresh ``numpy`` generator seeded from
``KernelConfig.seed``; any randomized scheduler or router must draw from
``kernel.rng`` and nowhere else.  Replaying the same inputs therefore
yields byte-identical :class:`~repro.engine.results.RequestRecord`
streams regardless of what else ran in the process.
"""

from __future__ import annotations

import abc
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.core.interfaces import CacheProtocol, RequestSession
from repro.engine.events import EventKind, EventQueue
from repro.engine.latency import LatencyModel
from repro.engine.request import EngineRequest
from repro.engine.results import EngineResult, RequestRecord
from repro.engine.steering import (
    GossipTransport,
    NoRoutableReplicaError,
    RouteDecision,
    ScenarioEvent,
    SplitSpec,
    SteeringTelemetry,
    TransferSpec,
    pick_least_loaded,
)
from repro.models.config import ModelConfig
from repro.models.flops import model_prefill_flops, model_suffix_prefill_flops
from repro.workloads.trace import Trace, TraceSession, TraceStream

#: Load reported for replicas that must not receive new requests (failed
#: or draining): large enough that every load-aware policy avoids them.
DEAD_LOAD = 1 << 30

#: First sequence number of streamed session arrivals.  Reserved (negative)
#: seqs make lazily pulled round-0 arrivals sort — at equal (time, kind) —
#: before every event pushed during the run, in stream order: exactly the
#: tie-break order the bulk path's up-front pushes produce, so a streamed
#: replay is byte-identical to the materialized one.
_STREAM_SEQ_START = -(1 << 62)


class VirtualClock:
    """Monotone simulation clock: ``advance`` refuses to run backwards."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance(self, to: float) -> float:
        if to < self._now:
            raise ValueError(
                f"virtual clock cannot run backwards: {to} < {self._now}"
            )
        self._now = to
        return self._now


@dataclass(frozen=True)
class KernelConfig:
    """Kernel knobs shared by every engine built on it.

    ``max_running`` is the per-replica executor concurrency: how many
    prefills one replica serves at once (continuous batching at prefill
    granularity — a freed slot immediately starts the next queued
    request).  ``seed`` feeds the per-run ``kernel.rng`` generator (the
    only sanctioned randomness source inside a run).
    """

    max_running: int = 1
    seed: int = 0
    record_timeseries: bool = True

    def __post_init__(self) -> None:
        if self.max_running < 1:
            raise ValueError(f"max_running must be >= 1, got {self.max_running}")


@dataclass(slots=True)
class _InFlight:
    """A request occupying an executor slot between service start and prefill end."""

    request: EngineRequest
    replica: int
    session: RequestSession  # lookup outcome (hit/reused bytes) lives here
    service_start: float
    prefill_seconds: float


@dataclass(slots=True)
class _PendingTransfer:
    """One in-flight cross-replica state transfer.

    For a plain :class:`TransferSpec` the request is parked until the
    bytes land (``split=False``).  For a :class:`SplitSpec` executed with
    overlap (``split=True``) the request is enqueued immediately — the
    ``TRANSFER_DONE`` event only lands the head bytes, and the scheduler
    charges the overlapped prefill from ``done`` when service starts.
    """

    request: EngineRequest
    spec: TransferSpec
    started: float
    done: float = 0.0
    split: bool = False


@dataclass(slots=True)
class _PrefillJob:
    """Head-of-line prefill progress of the token-level scheduler."""

    request: EngineRequest
    session: Optional[RequestSession] = None
    position: int = 0  # tokens already processed (including the hit)
    started: bool = False
    service_start: float = 0.0
    compute_seconds: float = 0.0

    @property
    def hit_tokens(self) -> int:
        return self.session.hit_tokens if self.session is not None else 0

    @property
    def reused_bytes(self) -> int:
        return self.session.reused_bytes if self.session is not None else 0

    @property
    def reused_secondary_bytes(self) -> int:
        return self.session.reused_secondary_bytes if self.session is not None else 0

    @property
    def remaining(self) -> int:
        return self.request.input_len - self.position


@dataclass(slots=True)
class _DecodeJob:
    """One active decode stream of the token-level scheduler."""

    request: EngineRequest
    session: RequestSession
    produced: int = 0
    last_token_time: float = 0.0
    gaps: list[float] = field(default_factory=list)

    @property
    def remaining(self) -> int:
        return self.request.output_len - self.produced


@dataclass(slots=True)
class _IterationEnd:
    """Payload of one token-level scheduler step (an iteration boundary)."""

    replica: int
    batch: list[_DecodeJob]
    job: Optional[_PrefillJob]
    chunk: int


class ReplicaScheduler(abc.ABC):
    """Per-replica scheduling policy plugged into the kernel.

    The kernel routes arrivals to :meth:`enqueue` and step-completion
    events (``EventKind.PREFILL_DONE`` payloads the scheduler pushed) to
    :meth:`on_step_done`; the scheduler decides what runs when, pushes
    its own future events through ``kernel.push``, and reports
    ``queue_depth`` / ``n_running`` for routing loads and telemetry.
    """

    def __init__(self, kernel: "SimulationKernel", replica: int) -> None:
        self.kernel = kernel
        self.replica = replica

    @abc.abstractmethod
    def enqueue(self, request: EngineRequest, now: float) -> None:
        """Accept a routed arrival (and start work if capacity is free)."""

    @abc.abstractmethod
    def on_step_done(self, payload: Any, now: float) -> None:
        """Handle completion of a step this scheduler previously pushed."""

    @property
    @abc.abstractmethod
    def queue_depth(self) -> int:
        """Requests waiting for service (excluding those running)."""

    @property
    @abc.abstractmethod
    def n_running(self) -> int:
        """Occupied executor slots (work units currently executing)."""


class ContinuousBatchingScheduler(ReplicaScheduler):
    """FCFS over ``max_running`` executor slots, batched at prefill granularity.

    All requests admitted in one scheduler step begin their cache sessions
    as one batch (each still pays its own FLOP-derived prefill duration);
    the moment a prefill finishes its slot is rescheduled, so the executor
    never idles while the queue is non-empty — continuous batching at the
    granularity of whole prefills.  Decode runs in the background and only
    gates the session's next round.
    """

    def __init__(
        self, kernel: "SimulationKernel", replica: int, max_running: int
    ) -> None:
        super().__init__(kernel, replica)
        self.max_running = max_running
        self.queue: deque[EngineRequest] = deque()
        self.free_slots = max_running
        # Hot-path bindings (schedulers are per-run, like the event queue).
        self._push = kernel.events.push
        self._records = kernel.results[replica].records
        self._track_active = kernel._track_active

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def n_running(self) -> int:
        return self.max_running - self.free_slots

    def enqueue(self, request: EngineRequest, now: float) -> None:
        self.queue.append(request)
        self._start_next(now)

    def _start_next(self, now: float) -> None:
        kernel = self.kernel
        n_start = min(self.free_slots, len(self.queue))
        if n_start <= 0:
            return
        batch = [self.queue.popleft() for _ in range(n_start)]
        sessions = kernel.caches[self.replica].begin_many(
            [request.input_tokens for request in batch], now
        )
        self.free_slots -= n_start
        prefill_times = kernel.latency.prefill_seconds_batch(
            kernel.model,
            [
                (
                    request.input_len,
                    session.hit_tokens,
                    session.reused_bytes,
                    session.reused_secondary_bytes,
                )
                for request, session in zip(batch, sessions)
            ],
        )
        for request, session, prefill_seconds in zip(batch, sessions, prefill_times):
            if kernel._pending_splits:
                pending = kernel._pending_splits.pop(id(request), None)
                if pending is not None:
                    prefill_seconds = kernel._split_prefill_seconds(
                        pending, session, now, prefill_seconds
                    )
            if self._track_active:  # scenario runs: failover needs the registry
                # [replica, request, session, prefill_done]
                kernel._active_sessions[id(session)] = [
                    self.replica,
                    request,
                    session,
                    False,
                ]
            self._push(
                now + prefill_seconds,
                EventKind.PREFILL_DONE,
                _InFlight(
                    request=request,
                    replica=self.replica,
                    session=session,
                    service_start=now,
                    prefill_seconds=prefill_seconds,
                ),
            )

    def on_step_done(self, flight: _InFlight, now: float) -> None:
        if self._track_active and not flight.session.is_open:
            # The replica failed mid-prefill: the session was aborted and
            # the request re-routed; this completion is a ghost.
            return
        kernel = self.kernel
        request = flight.request
        self._records.append(
            RequestRecord(
                session_id=request.session_id,
                round_index=request.round_index,
                arrival_time=request.arrival_time,
                service_start=flight.service_start,
                prefill_seconds=flight.prefill_seconds,
                ttft=now - request.arrival_time,
                input_len=request.input_len,
                hit_tokens=flight.session.hit_tokens,
                output_len=request.output_len,
                reused_bytes=flight.session.reused_bytes,
                flops_saved=model_prefill_flops(
                    kernel.model, flight.session.hit_tokens
                ),
            )
        )
        kernel.busy_seconds[self.replica] += flight.prefill_seconds
        self.free_slots += 1
        if self._track_active:
            entry = kernel._active_sessions.get(id(flight.session))
            if entry is not None:
                entry[3] = True  # record emitted; the request is decoding now
        self._push(
            now + kernel.latency.decode_seconds(request.output_len),
            EventKind.REQUEST_COMPLETE,
            flight,
        )
        self._start_next(now)


class TokenBatchingScheduler(ReplicaScheduler):
    """Iteration-level batching with chunked prefill (Orca / Sarathi).

    Time advances one iteration at a time: every iteration carries each
    active decode stream (one token, up to ``max_batch``) plus at most one
    chunk of up to ``token_budget`` tokens from the head-of-line prefill.
    TTFT is the completion of a request's final chunk; each further decode
    token records its inter-token gap into ``tbt_gaps``.  Single-replica
    only (one GPU serving prefills and decodes together).
    """

    def __init__(
        self,
        kernel: "SimulationKernel",
        replica: int,
        token_budget: int,
        max_batch: int,
        iteration_overhead_s: float,
    ) -> None:
        super().__init__(kernel, replica)
        self.token_budget = token_budget
        self.max_batch = max_batch
        self.iteration_overhead_s = iteration_overhead_s
        self.prefill_queue: list[_PrefillJob] = []
        self.decodes: list[_DecodeJob] = []
        self.active = False
        self.n_iterations = 0
        self.tbt_gaps: list[float] = []

    @property
    def queue_depth(self) -> int:
        return len(self.prefill_queue)

    @property
    def n_running(self) -> int:
        return 1 if self.active else 0

    def enqueue(self, request: EngineRequest, now: float) -> None:
        self.prefill_queue.append(_PrefillJob(request=request))
        if not self.active:
            self._start_iteration(now)

    # ------------------------------------------------------------------
    # Iteration costing
    # ------------------------------------------------------------------
    def _chunk_seconds(self, job: _PrefillJob, chunk: int) -> float:
        """Compute time of one prefill chunk (suffix-aware at its position)."""
        latency = self.kernel.latency
        flops = model_suffix_prefill_flops(
            self.kernel.model, job.position + chunk, job.position
        )
        seconds = flops / latency.effective_flops_per_s
        if job.position == job.hit_tokens and job.reused_bytes:
            primary = job.reused_bytes - job.reused_secondary_bytes
            seconds += primary / latency.fetch_bandwidth_bytes_per_s
            seconds += (
                job.reused_secondary_bytes
                / latency.secondary_fetch_bandwidth_bytes_per_s
            )
        return seconds

    def _start_iteration(self, now: float) -> None:
        batch = self.decodes[: self.max_batch]
        chunk = 0
        job: Optional[_PrefillJob] = None
        if self.prefill_queue:
            job = self.prefill_queue[0]
            if not job.started:
                session = self.kernel.caches[self.replica].begin(
                    job.request.input_tokens, now
                )
                job.started = True
                job.service_start = now
                job.session = session
                job.position = session.hit_tokens
            chunk = min(self.token_budget, job.remaining)

        duration = self.iteration_overhead_s
        if chunk and job is not None:
            chunk_seconds = self._chunk_seconds(job, chunk)
            job.compute_seconds += chunk_seconds
            duration += chunk_seconds
        if batch:
            duration += self.kernel.latency.decode_seconds_per_token
        self.active = True
        self.kernel.push(
            now + duration,
            EventKind.PREFILL_DONE,
            _IterationEnd(replica=self.replica, batch=batch, job=job, chunk=chunk),
        )

    def on_step_done(self, payload: _IterationEnd, now: float) -> None:
        kernel = self.kernel
        self.n_iterations += 1

        # --- decode progress -----------------------------------------
        finished_decodes = []
        for stream in payload.batch:
            if stream.produced > 0:
                gap = now - stream.last_token_time
                stream.gaps.append(gap)
                self.tbt_gaps.append(gap)
            stream.produced += 1
            stream.last_token_time = now
            if stream.remaining == 0:
                finished_decodes.append(stream)
        for stream in finished_decodes:
            self.decodes.remove(stream)
            kernel.finish_request(stream.request, stream.session, now)

        # --- prefill progress ----------------------------------------
        job, chunk = payload.job, payload.chunk
        if chunk and job is not None:
            job.position += chunk
            if job.remaining == 0:
                self.prefill_queue.pop(0)
                kernel.emit_record(
                    self.replica,
                    RequestRecord(
                        session_id=job.request.session_id,
                        round_index=job.request.round_index,
                        arrival_time=job.request.arrival_time,
                        service_start=job.service_start,
                        prefill_seconds=job.compute_seconds,
                        ttft=now - job.request.arrival_time,
                        input_len=job.request.input_len,
                        hit_tokens=job.hit_tokens,
                        output_len=job.request.output_len,
                        reused_bytes=job.reused_bytes,
                        flops_saved=model_prefill_flops(
                            kernel.model, job.hit_tokens
                        ),
                    ),
                )
                # The first output token is produced with the final
                # prefill chunk; decoding continues next iteration.
                self.decodes.append(
                    _DecodeJob(
                        request=job.request,
                        session=job.session,
                        produced=1,
                        last_token_time=now,
                    )
                )
                if job.request.output_len == 1:
                    stream = self.decodes.pop()
                    kernel.finish_request(stream.request, stream.session, now)

        # Arrivals landing exactly at this iteration boundary (including
        # zero-think next rounds pushed just above) must join the queue
        # before the next iteration is scheduled; ``active`` stays set so
        # their enqueue cannot start a second concurrent iteration.
        kernel.drain_arrivals_upto(now)
        self.active = False
        if self.prefill_queue or self.decodes:
            self._start_iteration(now)


class _KernelGossipTransport(GossipTransport):
    """Directory gossip over the kernel: flushes are ``DIRECTORY_SYNC``
    events charged on the virtual clock, so propagation delay and gossip
    cadence are simulated time like everything else."""

    __slots__ = ("_kernel",)

    def __init__(self, kernel: "SimulationKernel") -> None:
        self._kernel = kernel

    def now(self) -> float:
        return self._kernel.clock.now

    def schedule(self, time: float, callback: Callable[[float], None]) -> None:
        kernel = self._kernel
        kernel.events.push(max(time, kernel.clock.now), EventKind.DIRECTORY_SYNC, callback)


SchedulerFactory = Callable[["SimulationKernel", int], ReplicaScheduler]


@dataclass
class KernelRun:
    """Everything one kernel run produced, before engine-specific shaping."""

    replica_results: list[EngineResult]
    routed_counts: list[int]
    busy_seconds: list[float]
    schedulers: list[ReplicaScheduler]
    n_events: int
    end_time: float
    steering: Optional[SteeringTelemetry] = None


class SimulationKernel:
    """One continuous-batching trace replay over N cache-owning replicas.

    The serving engine, the iteration engine, and the cluster simulator
    are thin configurations of this class: 1 replica with ``max_running``
    slots, 1 replica with a :class:`TokenBatchingScheduler`, and N
    replicas behind a router, respectively.
    """

    def __init__(
        self,
        model: ModelConfig,
        caches: Sequence[CacheProtocol],
        latency: Optional[LatencyModel] = None,
        router: Optional[Any] = None,
        config: Optional[KernelConfig] = None,
        scheduler_factory: Optional[SchedulerFactory] = None,
        policy_names: Optional[Sequence[str]] = None,
        scenario: Optional[Sequence[ScenarioEvent]] = None,
    ) -> None:
        if not caches:
            raise ValueError("need at least one replica cache")
        if router is None and len(caches) > 1:
            raise ValueError("multi-replica kernels need a router")
        if scenario and router is None:
            raise ValueError("scenario schedules need a router to re-route around")
        self.model = model
        self.caches = list(caches)
        self.latency = latency or LatencyModel()
        self.router = router
        self.config = config or KernelConfig()
        self._record_timeseries = self.config.record_timeseries
        self.scenario = sorted(scenario, key=lambda ev: ev.time) if scenario else []
        self._scheduler_factory = scheduler_factory or (
            lambda kernel, replica: ContinuousBatchingScheduler(
                kernel, replica, kernel.config.max_running
            )
        )
        if policy_names is None:
            policy_names = [f"replica{i}" for i in range(len(self.caches))]
        if len(policy_names) != len(self.caches):
            raise ValueError("need one policy name per replica cache")
        self.policy_names = list(policy_names)
        # Joins grow the replica lists mid-run; remember the configured
        # fleet so repeated run() calls start from the same topology.
        self._initial_caches = tuple(self.caches)
        self._initial_policy_names = tuple(self.policy_names)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, trace: Union[Trace, TraceStream]) -> KernelRun:
        """Replay the full trace; per-run state is rebuilt from scratch.

        A materialized :class:`Trace` is pushed into the event queue up
        front (any session order).  A :class:`TraceStream` is *pulled*:
        exactly one not-yet-arrived session is held at a time, and
        ``_sessions_by_id`` drops sessions as their last round completes,
        so memory scales with the number of concurrently active sessions
        rather than the trace length.  The two admission paths produce
        byte-identical transcripts (see :data:`_STREAM_SEQ_START`).
        """
        self.caches = list(self._initial_caches)
        self.policy_names = list(self._initial_policy_names)
        n = len(self.caches)
        self.clock = VirtualClock()
        self.events = EventQueue()
        self.rng = np.random.default_rng(self.config.seed)
        self.results = [
            EngineResult(
                policy=self.policy_names[i], max_running=self.config.max_running
            )
            for i in range(n)
        ]
        # Steering state (zero-overhead unless a scenario is scheduled: the
        # in-flight registry and ghost-event checks are only active for
        # failover runs; set before the factories so schedulers can bind it).
        self.alive = [True] * n
        self.draining = [False] * n
        self._track_active = bool(self.scenario)
        self._active_sessions: dict[int, list] = {}
        self._interrupted_requests: set[int] = set()
        self._override_rotation = 0
        # Transfer-link pricing: each source's outbound link serializes its
        # transfers (concurrent copies queue, they don't multiply bandwidth).
        self._link_free_at: dict[int, float] = {}
        # Split transfers whose request runs ahead of the landing bytes,
        # keyed by id(request); popped when service starts (or on failover).
        self._pending_splits: dict[int, _PendingTransfer] = {}
        # Results must exist before the factories run: schedulers may bind
        # their replica's record list for the hot path.
        self.schedulers = [self._scheduler_factory(self, i) for i in range(n)]
        self.routed_counts = [0] * n
        self.busy_seconds = [0.0] * n
        self._streaming = isinstance(trace, TraceStream)
        self._sessions_by_id: dict[int, TraceSession] = {}
        self._stream_sessions: Optional[Iterator[TraceSession]] = None
        self._n_events = 0
        # Hot-loop telemetry state: last sampled (depth, running) per replica,
        # so change-point detection is two int compares per event.
        self._last_depth = [-1] * n
        self._last_running = [-1] * n
        self.steering = SteeringTelemetry()
        for _ in range(n):
            self.steering.add_replica()
        if self.router is not None:
            prepare = getattr(self.router, "prepare", None)
            if prepare is not None:
                prepare(self.model, self.caches, self.latency)
            # A sharded directory propagates through the event queue: hand
            # it this run's transport (replacing any prior run's, whose
            # queue is gone) so gossip flushes ride the virtual clock.
            directory = getattr(self.router, "directory", None)
            connect = getattr(directory, "connect_transport", None)
            if connect is not None:
                connect(_KernelGossipTransport(self))
        for control in self.scenario:
            self.events.push(control.time, EventKind.CONTROL, control)

        if self._streaming:
            self._stream_sessions = trace.iter_sessions()
            self._stream_seq = itertools.count(_STREAM_SEQ_START)
            self._push_next_session()
        else:
            self._sessions_by_id = {s.session_id: s for s in trace.sessions}
            for session in trace.sessions:
                self.events.push(
                    session.arrival_time,
                    EventKind.REQUEST_ARRIVAL,
                    EngineRequest.from_session(session, 0, session.arrival_time),
                )

        # The event loop is the simulator's hot path: dispatch is inlined
        # and bound to locals (one run processes 3+ events per request),
        # consuming raw (time, kind, seq, serial, payload) heap entries so
        # no Event object is built per dispatch.  Joins append to
        # self.schedulers in place, so the local alias stays valid across
        # topology changes.
        events = self.events
        pop_entry = events.pop_entry
        clock = self.clock
        schedulers = self.schedulers
        track_active = self._track_active
        streaming = self._streaming
        arrival_kind = int(EventKind.REQUEST_ARRIVAL)
        prefill_kind = int(EventKind.PREFILL_DONE)
        complete_kind = int(EventKind.REQUEST_COMPLETE)
        transfer_kind = int(EventKind.TRANSFER_DONE)
        control_kind = int(EventKind.CONTROL)
        n_events = 0
        while events:
            time, kind, _seq, _serial, payload = pop_entry()
            now = clock.advance(time)
            n_events += 1
            if kind == prefill_kind:
                replica = payload.replica
                schedulers[replica].on_step_done(payload, now)
                self._sample(replica, now)
            elif kind == arrival_kind:
                if streaming and payload.round_index == 0:
                    # A streamed session just arrived: pull the next one
                    # (its arrival is >= this one, so time stays monotone).
                    self._push_next_session()
                self._admit(payload, now)
            elif kind == complete_kind:  # background decode finished
                if not track_active:
                    self.finish_request(payload.request, payload.session, now)
                elif payload.session.is_open:
                    self._active_sessions.pop(id(payload.session), None)
                    self.finish_request(payload.request, payload.session, now)
                elif id(payload.request) in self._interrupted_requests:
                    # Ghost completion of a decode the failure interrupted:
                    # its record stands; only the closed loop continues.
                    self._interrupted_requests.discard(id(payload.request))
                    self._schedule_next_round(payload.request, now)
            elif kind == transfer_kind:
                self._finish_transfer(payload, now)
            elif kind == control_kind:  # scenario topology change
                self._apply_scenario(payload, now)
            else:  # DIRECTORY_SYNC: a sharded-directory gossip flush
                payload(now)
        self._n_events += n_events

        if self._link_free_at:
            # Any transfer activity: audit the link ledger (catches a
            # reintroduction of parallel full-bandwidth pricing at run end,
            # where it costs one O(replicas) pass instead of per-event work).
            self.steering.check_conservation(
                self.latency.transfer_bandwidth_bytes_per_s
            )
        for index, cache in enumerate(self.caches):
            if hasattr(cache, "stats"):
                self.results[index].cache_stats = cache.stats.snapshot()
            self._sample(index, self.clock.now, force=True)
        return KernelRun(
            replica_results=self.results,
            routed_counts=self.routed_counts,
            busy_seconds=self.busy_seconds,
            schedulers=self.schedulers,
            n_events=self._n_events,
            end_time=self.clock.now,
            steering=self.steering,
        )

    def _push_next_session(self) -> None:
        """Pull the next streamed session and schedule its first arrival.

        Round-0 arrivals carry reserved stream seqs (see
        :data:`_STREAM_SEQ_START`); only streamed sessions with rounds
        still outstanding live in ``_sessions_by_id``.
        """
        session = next(self._stream_sessions, None)
        if session is None:
            return
        self._sessions_by_id[session.session_id] = session
        self.events.push(
            session.arrival_time,
            EventKind.REQUEST_ARRIVAL,
            EngineRequest.from_session(session, 0, session.arrival_time),
            seq=next(self._stream_seq),
        )

    def _admit(self, request: EngineRequest, now: float) -> None:
        replica = 0
        transfer: Optional[TransferSpec] = None
        if self.router is not None:
            decide = getattr(self.router, "decide", None)
            if decide is not None:
                decision: RouteDecision = decide(
                    request.input_tokens,
                    request.session_id,
                    self.caches,
                    self.loads(),
                    now,
                )
                replica, transfer = decision.replica, decision.transfer
            else:
                replica = self.router.route(
                    request.input_tokens,
                    request.session_id,
                    self.caches,
                    self.loads(),
                    now,
                )
            if not 0 <= replica < len(self.caches):
                raise ValueError(
                    f"router {self.router.name!r} returned invalid replica {replica}"
                )
            if not self._routable(replica):
                replica = self._fallback_alive()
                transfer = None  # the plan targeted the unroutable replica
                self.steering.bump("overrides")
        if transfer is not None and self._transfer_feasible(transfer, replica):
            if self._source_holds_state(transfer):
                self.steering.bump("transfers_planned")
                done = self._charge_transfer(transfer, now)
                split = isinstance(transfer, SplitSpec) and isinstance(
                    self.schedulers[replica], ContinuousBatchingScheduler
                )
                pending = _PendingTransfer(
                    request=request,
                    spec=transfer,
                    started=now,
                    done=done,
                    split=split,
                )
                self.events.push(done, EventKind.TRANSFER_DONE, pending)
                if split:
                    # Split-point overlap: the request starts its tail
                    # recompute immediately while the head transfer is in
                    # flight; the scheduler prices the overlap at service
                    # start and the TRANSFER_DONE event just lands bytes.
                    # (A SplitSpec landing on a scheduler without overlap
                    # support degrades to the parked all-or-nothing path.)
                    self.steering.bump("transfers_split")
                    self._pending_splits[id(request)] = pending
                    self._enqueue(request, replica, now)
                return
            # The plan came from a stale directory view: the source no
            # longer checkpoints the prefix, so recompute locally instead.
            self.steering.bump("transfers_stale_source")
        self._enqueue(request, replica, now)

    def _charge_transfer(self, spec: TransferSpec, now: float) -> float:
        """Completion time of ``spec`` under serialized source-link pricing.

        Each source replica owns one outbound transfer link: a new copy
        starts when the link frees up, never sooner, so N concurrent
        transfers from one source share the link back-to-back instead of
        each enjoying the full ``transfer_bandwidth_bytes_per_s`` (the
        N× aggregate-bandwidth bug).  :meth:`SteeringTelemetry.record_link`
        keeps the busy/wait ledger the conservation check audits.
        """
        free_at = self._link_free_at.get(spec.source, 0.0)
        start = free_at if free_at > now else now
        duration = self.latency.transfer_seconds(spec.nbytes)
        done = start + duration
        self._link_free_at[spec.source] = done
        self.steering.record_link(spec.source, duration, start - now)
        return done

    def _enqueue(self, request: EngineRequest, replica: int, now: float) -> None:
        self.routed_counts[replica] += 1
        self.schedulers[replica].enqueue(request, now)
        self._sample(replica, now)

    # ------------------------------------------------------------------
    # Steering: transfers and scenario control
    # ------------------------------------------------------------------
    def _routable(self, replica: int) -> bool:
        return self.alive[replica] and not self.draining[replica]

    def _fallback_alive(self) -> int:
        """Least-loaded routable replica (the router policy's own
        selection rule; unroutable replicas read as DEAD_LOAD)."""
        loads = [
            (s.queue_depth + s.n_running) if self._routable(i) else DEAD_LOAD
            for i, s in enumerate(self.schedulers)
        ]
        if not loads or min(loads) >= DEAD_LOAD:
            n_failed = self.alive.count(False)
            n_draining = sum(
                1 for i, d in enumerate(self.draining) if d and self.alive[i]
            )
            raise NoRoutableReplicaError(
                f"no routable replicas remain in the cluster: of "
                f"{len(self.caches)} replicas, {n_failed} failed and "
                f"{n_draining} draining — add capacity (a 'join' scenario "
                f"event) or stop failing/draining the last replica"
            )
        choice = pick_least_loaded(loads, self._override_rotation)
        self._override_rotation += 1
        return choice

    def _source_holds_state(self, spec: TransferSpec) -> bool:
        """Does the source replica still checkpoint ``spec.tokens``?

        A synchronous directory plans from live state, so this always
        holds; a sharded view may claim coverage the source has since
        evicted (or lost to a failure wipe) — validate before shipping
        bytes instead of transferring garbage.  Trees are the only state
        we can inspect; tree-less sources are trusted (legacy behaviour).
        """
        tree = getattr(self.caches[spec.source], "tree", None)
        if tree is None:
            return True
        match = tree.match(spec.tokens)
        if match.matched_len < len(spec.tokens):
            return False
        node = match.deepest_ssm_node(max_seq_len=len(spec.tokens))
        return node is not None and node.seq_len == len(spec.tokens)

    def _transfer_feasible(self, spec: TransferSpec, replica: int) -> bool:
        return (
            spec.target == replica
            and spec.source != replica
            and 0 <= spec.source < len(self.caches)
            and self.alive[spec.source]
            and hasattr(self.caches[replica], "receive_state_transfer")
        )

    def _split_prefill_seconds(
        self,
        pending: _PendingTransfer,
        session: Any,
        now: float,
        base: float,
    ) -> float:
        """Overlapped prefill charge of a split-steered request.

        Called by the scheduler when the request's service starts.  The
        two halves run concurrently — the head transfer (whatever of it
        is still in flight, plus the secondary fetch once it lands) and
        the tail recompute — so completion is priced as::

            overhead + max(transfer_remaining + head_fetch, tail_compute)
            + split_merge

        ``base`` is what the request would pay serving purely from local
        state; the cheaper of the two is charged (the plan was made from
        a pre-queue estimate, so local state may meanwhile have grown past
        the shipped head, or the overlap may simply not pay off at actual
        service time).  The session's recorded ``hit_tokens``/
        ``reused_bytes`` keep reporting local-cache truth — the split's
        benefit shows up in TTFT and in the overlap telemetry, not as a
        synthetic cache hit.
        """
        spec = pending.spec
        steering = self.steering
        if now >= pending.done:
            # The head landed while the request was still queued: begin()
            # already promoted the shipped state through the tiering path
            # and ``base`` priced its secondary fetch — the transfer hid
            # entirely behind queue wait.
            steering.bump("splits_hidden")
            return base
        if session.hit_tokens >= spec.split_depth:
            # Local state grew at least as deep as the shipped head while
            # the request queued: the transfer buys nothing extra.
            steering.bump("splits_ignored")
            return base
        latency = self.latency
        load_arm = (pending.done - now) + spec.nbytes / (
            latency.secondary_fetch_bandwidth_bytes_per_s
        )
        tail_arm = spec.tail_flops / latency.effective_flops_per_s
        overlapped = (
            latency.prefill_overhead_s + max(load_arm, tail_arm)
            + latency.split_merge_s
        )
        if overlapped >= base:
            steering.bump("splits_ignored")
            return base
        steering.bump("splits_overlapped")
        steering.overlap_seconds_saved += base - overlapped
        return overlapped

    def _finish_transfer(self, pending: _PendingTransfer, now: float) -> None:
        spec = pending.spec
        target = spec.target
        if pending.split:
            # The request was never parked: it is already queued (or being
            # served) on the target, so this event only lands the head
            # bytes.  A *draining* target still finishes its queue and
            # must receive them; only a dead target drops the copy.
            if not self.alive[target]:
                self.steering.bump("transfers_dropped")
                return
            accepted = self.caches[target].receive_state_transfer(
                spec.tokens, spec.nbytes, now
            )
            if accepted:
                self.steering.record_transfer(
                    spec.source, target, spec.nbytes, now - pending.started
                )
                if spec.migrate and self.alive[spec.source]:
                    secondary = getattr(self.caches[spec.source], "secondary", None)
                    if (
                        secondary is not None
                        and secondary.remove(spec.tokens) is not None
                    ):
                        self.steering.bump("migrations")
            else:
                self.steering.bump("transfers_rejected")
            return
        if not self._routable(target):
            # The target died or drained while the bytes were in flight:
            # drop the copy and route the parked request afresh.
            self.steering.bump("transfers_dropped")
            self._admit(pending.request, now)
            return
        accepted = self.caches[target].receive_state_transfer(
            spec.tokens, spec.nbytes, now
        )
        if accepted:
            self.steering.record_transfer(
                spec.source, target, spec.nbytes, now - pending.started
            )
            if spec.migrate and self.alive[spec.source]:
                secondary = getattr(self.caches[spec.source], "secondary", None)
                if secondary is not None and secondary.remove(spec.tokens) is not None:
                    self.steering.bump("migrations")
        else:
            self.steering.bump("transfers_rejected")
        self._enqueue(pending.request, target, now)

    def _apply_scenario(self, control: ScenarioEvent, now: float) -> None:
        if control.action == "join":
            self._join_replica(control, now)
            return
        if not 0 <= control.replica < len(self.caches):
            raise ValueError(
                f"scenario {control.action!r} at t={control.time} names replica "
                f"{control.replica}, but the cluster has {len(self.caches)}"
            )
        if control.action == "fail":
            self._fail_replica(control.replica, now)
        elif self.alive[control.replica] and not self.draining[control.replica]:
            self.draining[control.replica] = True
            self.steering.bump("drains")

    def _fail_replica(self, replica: int, now: float) -> None:
        if not self.alive[replica]:
            return
        self.alive[replica] = False
        self.steering.bump("failures")
        scheduler = self.schedulers[replica]
        orphans: list[EngineRequest] = []
        # Queued requests never opened sessions; just re-route them.
        queue = getattr(scheduler, "queue", None)
        if queue is not None:
            orphans.extend(queue)
            queue.clear()
        # Release the occupied slots: the ghost completions of aborted
        # flights return early and would otherwise leave the corpse's
        # running-executor telemetry frozen at its at-failure value.
        if isinstance(scheduler, ContinuousBatchingScheduler):
            scheduler.free_slots = scheduler.max_running
        # In-flight requests (prefilling or decoding) abort their sessions
        # through the transactional path, releasing every pin they hold.
        # Mid-prefill requests were never served: they re-route and get
        # their (single) record elsewhere.  Mid-decode requests already
        # emitted their record; re-serving them would double-count the
        # round, so instead their session simply continues — the next
        # round is scheduled as if the decode had just finished (the
        # cache admission of the interrupted round is lost with the
        # replica).
        interrupted: list[EngineRequest] = []
        for key, (owner, request, session, prefill_done) in list(
            self._active_sessions.items()
        ):
            if owner == replica:
                session.abort()
                del self._active_sessions[key]
                self.steering.bump("aborted_sessions")
                if prefill_done:
                    interrupted.append(request)
                else:
                    orphans.append(request)
        # The replica's memory is gone: wipe its cache (detaching anything
        # the abort pass could not reach) and invalidate the directory.
        cache = self.caches[replica]
        if hasattr(cache, "reset"):
            cache.reset()
        if self.router is not None:
            on_left = getattr(self.router, "on_replica_left", None)
            if on_left is not None:
                on_left(replica)
        # Orphans keep their original arrival times, so the TTFT of a
        # re-routed request includes everything the failure cost it.
        for request in sorted(orphans, key=lambda r: r.arrival_time):
            # A queued split request loses its in-flight head with the
            # replica: forget the overlap plan before re-admitting (the
            # stale TRANSFER_DONE event finds its target dead and drops).
            self._pending_splits.pop(id(request), None)
            self.steering.bump("reroutes")
            self._admit(request, now)
        for request in interrupted:
            self.steering.bump("interrupted_decodes")
            # The session's next round fires off the ghost REQUEST_COMPLETE
            # already in the queue — the decode's true completion time —
            # not off the failure instant, which would let the client
            # "respond" to an answer it never finished receiving.
            self._interrupted_requests.add(id(request))
        self._sample(replica, now)

    def _join_replica(self, control: ScenarioEvent, now: float) -> None:
        cache = control.cache_factory()
        index = len(self.caches)
        self.caches.append(cache)
        name = control.name or f"{self.policy_names[0].rsplit('/', 1)[0]}/replica{index}"
        self.policy_names.append(name)
        self.results.append(
            EngineResult(policy=name, max_running=self.config.max_running)
        )
        # The result must exist before the factory runs (hot-path binding).
        self.schedulers.append(self._scheduler_factory(self, index))
        self.routed_counts.append(0)
        self.busy_seconds.append(0.0)
        self._last_depth.append(-1)
        self._last_running.append(-1)
        self.alive.append(True)
        self.draining.append(False)
        self.steering.add_replica()
        self.steering.bump("joins")
        if self.router is not None:
            on_joined = getattr(self.router, "on_replica_joined", None)
            if on_joined is not None:
                on_joined(index, cache)
        self._sample(index, now)

    # ------------------------------------------------------------------
    # Services for schedulers
    # ------------------------------------------------------------------
    def push(self, time: float, kind: EventKind, payload: Any) -> None:
        """Schedule a future event (schedulers' only way to advance work)."""
        self.events.push(time, kind, payload)

    def loads(self) -> list[int]:
        """Per-replica in-flight request counts (queued + running).

        Failed and draining replicas report :data:`DEAD_LOAD` so every
        load-aware policy steers around them without knowing about
        topology; content-blind picks are corrected by the kernel's
        routable-fallback (counted as ``overrides``).
        """
        if not self._track_active:
            return [s.queue_depth + s.n_running for s in self.schedulers]
        return [
            (s.queue_depth + s.n_running) if self._routable(i) else DEAD_LOAD
            for i, s in enumerate(self.schedulers)
        ]

    def emit_record(self, replica: int, record: RequestRecord) -> None:
        self.results[replica].records.append(record)

    def finish_request(
        self, request: EngineRequest, session: RequestSession, now: float
    ) -> None:
        """Commit the finished sequence and schedule the session's next
        round after its think-time gap (closed-loop within sessions)."""
        session.commit(request.full_tokens, now)
        self._schedule_next_round(request, now)

    def _schedule_next_round(self, request: EngineRequest, now: float) -> None:
        trace_session = self._sessions_by_id[request.session_id]
        next_round = request.round_index + 1
        if next_round < trace_session.n_rounds:
            arrival = now + trace_session.think_times[next_round]
            self.events.push(
                arrival,
                EventKind.REQUEST_ARRIVAL,
                EngineRequest.from_session(trace_session, next_round, arrival),
            )
        elif self._streaming:
            # The session's last round is done: release its tokens so a
            # streamed run holds only concurrently active sessions.
            del self._sessions_by_id[request.session_id]

    def drain_arrivals_upto(self, now: float) -> None:
        """Admit every queued arrival event with time <= ``now`` immediately.

        Used by schedulers that make batching decisions at step boundaries
        (the token-level scheduler): arrivals tying with the step-end event
        sort after it (``REQUEST_ARRIVAL`` has the highest kind) but must
        be visible to the very next scheduling decision.
        """
        events = self.events
        arrival_kind = int(EventKind.REQUEST_ARRIVAL)
        while events:
            head = events.peek_entry()
            if head[1] != arrival_kind or head[0] > now:
                break
            payload = events.pop_entry()[4]
            self._n_events += 1
            if self._streaming and payload.round_index == 0:
                # The freshly pulled session may itself arrive <= now; the
                # loop keeps draining until the head moves past ``now``.
                self._push_next_session()
            self._admit(payload, now)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _sample(self, replica: int, now: float, force: bool = False) -> None:
        """Record queue-depth / running change points for one replica."""
        if not self._record_timeseries:
            return
        scheduler = self.schedulers[replica]
        depth = scheduler.queue_depth
        running = scheduler.n_running
        if force or depth != self._last_depth[replica]:
            self._last_depth[replica] = depth
            self.results[replica].queue_depth_series.append((now, depth))
        if force or running != self._last_running[replica]:
            self._last_running[replica] = running
            self.results[replica].running_series.append((now, running))
