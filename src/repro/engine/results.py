"""Per-request records and aggregate views of one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(slots=True)
class RequestRecord:
    """Everything measured about one served request."""

    session_id: int
    round_index: int
    arrival_time: float
    service_start: float
    prefill_seconds: float
    ttft: float
    input_len: int
    hit_tokens: int
    output_len: int
    reused_bytes: int
    flops_saved: float

    @property
    def queue_delay(self) -> float:
        return self.service_start - self.arrival_time

    @property
    def hit_rate(self) -> float:
        return self.hit_tokens / self.input_len if self.input_len else 0.0


def step_time_weighted_mean(series: list[tuple[float, float]]) -> float:
    """Time-weighted mean of a right-continuous step function.

    ``series`` is ``[(time, value), ...]`` with non-decreasing times; each
    value holds until the next sample.  Fewer than two samples (or a
    zero-length span) means there is no interval to average over: 0.0.
    """
    if len(series) < 2:
        return 0.0
    area = 0.0
    for (t0, v0), (t1, _) in zip(series, series[1:]):
        area += v0 * (t1 - t0)
    span = series[-1][0] - series[0][0]
    if span <= 0.0:
        return 0.0
    return area / span


@dataclass
class EngineResult:
    """All records of one (trace, policy) simulation plus cache counters.

    The kernel additionally attaches scheduling telemetry: ``max_running``
    (executor slots of the replica that produced this result) and two
    change-point timeseries sampled by the simulation kernel —
    ``queue_depth_series`` (requests waiting, excluding running) and
    ``running_series`` (occupied executor slots), each as ``(time, value)``
    step functions closed by a final sample at drain time.
    """

    policy: str
    records: list[RequestRecord] = field(default_factory=list)
    cache_stats: dict = field(default_factory=dict)
    max_running: int = 1
    queue_depth_series: list[tuple[float, int]] = field(default_factory=list)
    running_series: list[tuple[float, int]] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def token_hit_rate(self) -> float:
        """Tokens that skipped prefill over total input tokens (the paper's metric)."""
        total_input = sum(r.input_len for r in self.records)
        if total_input == 0:
            return 0.0
        return sum(r.hit_tokens for r in self.records) / total_input

    @property
    def total_flops_saved(self) -> float:
        return sum(r.flops_saved for r in self.records)

    def ttfts(self) -> np.ndarray:
        return np.asarray([r.ttft for r in self.records], dtype=np.float64)

    def per_request_hit_rates(self) -> np.ndarray:
        return np.asarray([r.hit_rate for r in self.records], dtype=np.float64)

    def input_lengths(self) -> np.ndarray:
        return np.asarray([r.input_len for r in self.records], dtype=np.int64)

    def ttft_percentile(self, percentile: float) -> float:
        """Linear-interpolated TTFT percentile in seconds (e.g. 95 for P95)."""
        values = self.ttfts()
        if len(values) == 0:
            raise ValueError("no records to take a percentile of")
        return float(np.percentile(values, percentile))

    def mean_queue_delay(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.queue_delay for r in self.records]))

    # ------------------------------------------------------------------
    # Scheduling telemetry (populated by the simulation kernel)
    # ------------------------------------------------------------------
    def mean_queue_depth(self) -> float:
        """Time-weighted mean number of requests waiting (not running)."""
        return step_time_weighted_mean(self.queue_depth_series)

    def peak_queue_depth(self) -> int:
        """Deepest instantaneous FCFS backlog observed."""
        if not self.queue_depth_series:
            return 0
        return max(depth for _, depth in self.queue_depth_series)

    def mean_running(self) -> float:
        """Time-weighted mean number of occupied executor slots."""
        return step_time_weighted_mean(self.running_series)

    def executor_utilization(self) -> float:
        """Time-weighted fraction of executor slots busy (0..1)."""
        if self.max_running <= 0:
            return 0.0
        return self.mean_running() / self.max_running

    def summary(self) -> dict[str, float]:
        """Compact scalar summary for tables and logs."""
        return {
            "policy": self.policy,
            "n_requests": self.n_requests,
            "token_hit_rate": self.token_hit_rate,
            "flops_saved": self.total_flops_saved,
            "p5_ttft_s": self.ttft_percentile(5),
            "p50_ttft_s": self.ttft_percentile(50),
            "p95_ttft_s": self.ttft_percentile(95),
            "mean_queue_delay_s": self.mean_queue_delay(),
        }
