"""Cluster steering primitives shared by the kernel and the cluster layer.

These types sit below :mod:`repro.cluster` so the simulation kernel can
execute steering decisions without importing the router package (which
imports the kernel): a router *plans* (``RouteDecision`` with an optional
``TransferSpec``), the kernel *executes* (charges the transfer as an
asynchronous bandwidth/latency event, applies scenario control events,
and accounts everything into :class:`SteeringTelemetry`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.models.config import ModelConfig
from repro.models.flops import model_suffix_prefill_flops
from repro.models.memory import transfer_state_bytes

_SCENARIO_ACTIONS = ("fail", "drain", "join")


class NoRoutableReplicaError(RuntimeError):
    """Every replica is failed or drained: no destination can accept work.

    Raised by :func:`pick_least_loaded` (empty candidate set) and by the
    kernel's failover fallback instead of a bare ``min()`` ``ValueError``
    or an anonymous ``RuntimeError``, so callers can catch the condition
    specifically; the message says how the fleet got here (how many
    replicas exist and why none is routable) so an operator can act on it.
    """


def pick_least_loaded(loads: Sequence[int], rotation: int) -> int:
    """Index of the lowest load, ties broken by rotating round-robin.

    The one least-loaded selection rule, shared by
    :class:`repro.cluster.router.LeastLoadedRouter` (and the routers that
    spill through it) and the kernel's failover fallback, so the two can
    never silently diverge.  ``rotation`` is the caller-held tie-break
    counter (increment it after each pick).
    """
    if not loads:
        raise NoRoutableReplicaError(
            "cannot pick a replica from an empty candidate set: every "
            "replica has failed, drained, or was never attached"
        )
    floor = min(loads)
    tied = [index for index, load in enumerate(loads) if load == floor]
    return tied[rotation % len(tied)]


class GossipTransport:
    """The clock/scheduling surface a sharded directory gossips through.

    A transport supplies the virtual time updates are stamped with
    (:meth:`now`) and executes deferred flush callbacks at a requested
    time (:meth:`schedule`).  The kernel implements it over its event
    queue (``EventKind.DIRECTORY_SYNC`` events charged on the virtual
    clock); :class:`~repro.cluster.sharded_directory.ManualGossipTransport`
    implements it over a hand-cranked queue for standalone tests.  Like
    :class:`TransferSpec`, it lives below :mod:`repro.cluster` so the
    kernel can drive directory propagation without importing the router
    package.
    """

    def now(self) -> float:
        raise NotImplementedError

    def schedule(self, time: float, callback: Callable[[float], None]) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class TransferSpec:
    """One planned cross-replica state transfer.

    ``tokens`` is the prefix whose self-contained state (recurrent
    checkpoint plus the prefix's KVs, ``nbytes`` total) is copied from
    ``source``'s cache into ``target``'s second-tier store; the request
    that triggered the plan is parked until the transfer event completes.
    ``migrate=True`` additionally removes the span from the source's
    second-tier store once the copy lands (primary-tree state is always
    replicated, never torn out of the source tree).
    """

    source: int
    target: int
    tokens: np.ndarray
    nbytes: int
    migrate: bool = False

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError("transfer source and target must differ")
        if self.nbytes <= 0:
            raise ValueError(f"transfer nbytes must be positive, got {self.nbytes}")
        if len(self.tokens) == 0:
            raise ValueError("cannot transfer an empty prefix")


@dataclass(frozen=True)
class SplitSpec(TransferSpec):
    """A split-point transfer: ship the prefix head, recompute the tail.

    ``tokens`` (and ``nbytes``) describe the *head* — the ``split_depth``
    deepest checkpointed prefix worth shipping — while the request's
    remaining ``total_len - split_depth`` tokens are recomputed on the
    target concurrently with the transfer.  Unlike a plain
    :class:`TransferSpec`, the request is *not* parked: the kernel
    enqueues it immediately and charges its prefill as
    ``overhead + max(transfer_remaining + head_fetch, tail_compute) +
    merge``.  ``tail_flops``/``head_flops`` carry the planner's FLOP
    breakdown so the kernel never re-derives the model math.
    """

    split_depth: int = 0
    total_len: int = 0
    tail_flops: float = 0.0
    head_flops: float = 0.0

    def __post_init__(self) -> None:
        TransferSpec.__post_init__(self)
        if self.split_depth != len(self.tokens):
            raise ValueError(
                f"split_depth must equal len(tokens), got {self.split_depth} "
                f"for {len(self.tokens)} head tokens"
            )
        if not 0 < self.split_depth < self.total_len:
            raise ValueError(
                f"split_depth must lie strictly inside the request "
                f"({self.split_depth} of {self.total_len})"
            )
        if self.tail_flops < 0 or self.head_flops < 0:
            raise ValueError("split FLOP terms must be non-negative")


@dataclass(frozen=True)
class RouteDecision:
    """A router's full verdict for one arrival: replica plus optional transfer."""

    replica: int
    transfer: Optional[TransferSpec] = None


@dataclass(frozen=True)
class SplitPlan:
    """Outcome of the split-point cost model for one steering opportunity.

    ``mode`` is one of ``"recompute"`` (no transfer — prefill everything
    past the local hit), ``"load"`` (PR-4 all-or-nothing: ship the deepest
    checkpoint, park the request) or ``"split"`` (ship ``depth`` tokens of
    head state while the tail recomputes in parallel).  The ``est_*``
    fields are the model's TTFT-proxy estimates (seconds past the shared
    prefill overhead) for each arm; ``est_split`` is ``None`` when no
    interior candidate existed.
    """

    mode: str
    depth: int
    nbytes: int
    tail_flops: float
    head_flops: float
    est_recompute: float
    est_load: float
    est_split: Optional[float] = None


def plan_split(
    model: ModelConfig,
    latency: Any,
    total_len: int,
    local_hit: int,
    ckpt_depths: Sequence[int],
    *,
    min_tokens: int = 1,
    allow_split: bool = True,
) -> Optional[SplitPlan]:
    """Pick compute, load, or a split point for one steering opportunity.

    ``ckpt_depths`` holds the source replica's checkpointed prefix depths
    of the query (from a directory lookup).  The endpoint comparison —
    full recompute versus shipping the deepest checkpoint — reproduces the
    PR-4 all-or-nothing rule expression-for-expression, so with
    ``allow_split=False`` (or when no interior checkpoint exists) the
    returned plan is byte-identical to the legacy decision.  Interior
    candidates are priced as the two halves overlapped::

        est_split(d) = max(transfer(d) + secondary_fetch(d), tail_flops(d))
                       + split_merge

    and an interior depth is chosen only when strictly cheaper than the
    winning endpoint.  Returns ``None`` when no usable candidate depth
    survives the ``min_tokens`` gate (nothing worth planning).
    """
    limit = total_len - 1  # the final input token must always be prefilled
    usable = sorted(d for d in ckpt_depths if local_hit < d <= limit)
    if not usable or usable[-1] - local_hit < min_tokens:
        return None
    depth = usable[-1]
    eff = latency.effective_flops_per_s
    secondary_bw = latency.secondary_fetch_bandwidth_bytes_per_s

    # -- endpoint arms: the PR-4 all-or-nothing comparison, verbatim ----
    nbytes = transfer_state_bytes(model, depth)
    load_seconds = (
        latency.transfer_seconds(nbytes) + nbytes / secondary_bw
    )
    saved_flops = model_suffix_prefill_flops(
        model, total_len, local_hit
    ) - model_suffix_prefill_flops(model, total_len, depth)
    recompute_seconds = saved_flops / eff
    load_wins = load_seconds < recompute_seconds

    tail_at_depth = model_suffix_prefill_flops(model, total_len, depth) / eff
    est_recompute = recompute_seconds + tail_at_depth  # == tail(local_hit)
    est_load = load_seconds + tail_at_depth

    # -- interior arms: head transfer overlapped with tail recompute ----
    best: Optional[tuple[float, int, int, float]] = None  # est, d, nb, tail
    if allow_split:
        for d in usable[:-1]:
            if d - local_hit < min_tokens:
                continue
            nb = transfer_state_bytes(model, d)
            load_arm = latency.transfer_seconds(nb) + nb / secondary_bw
            tail_flops = model_suffix_prefill_flops(model, total_len, d)
            tail_arm = tail_flops / eff
            est = max(load_arm, tail_arm) + latency.split_merge_s
            # Deepest among equal-cost candidates: ship more state when the
            # estimate ties (monotone in bandwidth; fewer FLOPs recomputed).
            if best is None or est <= best[0]:
                best = (est, d, nb, tail_flops)

    endpoint_est = est_load if load_wins else est_recompute
    if best is not None and best[0] < endpoint_est:
        est, d, nb, tail_flops = best
        return SplitPlan(
            mode="split",
            depth=d,
            nbytes=nb,
            tail_flops=tail_flops,
            head_flops=model_suffix_prefill_flops(model, d, local_hit),
            est_recompute=est_recompute,
            est_load=est_load,
            est_split=est,
        )
    return SplitPlan(
        mode="load" if load_wins else "recompute",
        depth=depth if load_wins else local_hit,
        nbytes=nbytes if load_wins else 0,
        tail_flops=model_suffix_prefill_flops(model, total_len, depth)
        if load_wins
        else saved_flops + model_suffix_prefill_flops(model, total_len, depth),
        head_flops=0.0,
        est_recompute=est_recompute,
        est_load=est_load,
        est_split=None if best is None else best[0],
    )


@dataclass(frozen=True)
class ScenarioEvent:
    """One entry of a cluster scenario schedule.

    Actions
    -------
    ``fail``
        Replica ``replica`` dies at ``time``: its in-flight sessions are
        aborted (the transactional abort path), its cache is reset, the
        routing directory is invalidated for it, and every orphaned
        request is re-routed to a surviving replica.
    ``drain``
        Replica ``replica`` stops receiving new requests but finishes its
        queued and running work; its cache stays warm (it can still serve
        as a transfer source).
    ``join``
        A fresh replica built by ``cache_factory()`` comes up at ``time``
        and immediately becomes routable.
    """

    time: float
    action: str
    replica: Optional[int] = None
    cache_factory: Optional[Callable[[], Any]] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in _SCENARIO_ACTIONS:
            raise ValueError(
                f"unknown scenario action {self.action!r}; known: {_SCENARIO_ACTIONS}"
            )
        if self.time < 0:
            raise ValueError(f"scenario time must be non-negative, got {self.time}")
        if self.action in ("fail", "drain"):
            if self.replica is None:
                raise ValueError(f"{self.action!r} scenario events need a replica index")
            if self.replica < 0:
                raise ValueError(
                    f"scenario replica index must be non-negative, got {self.replica}"
                )
        if self.action == "join" and self.cache_factory is None:
            raise ValueError("'join' scenario events need a cache_factory")

    def to_dict(self) -> dict:
        """JSON-friendly view (the factory is reduced to its name)."""
        out: dict = {"time": self.time, "action": self.action}
        if self.replica is not None:
            out["replica"] = self.replica
        if self.name is not None:
            out["name"] = self.name
        if self.cache_factory is not None:
            out["cache_factory"] = getattr(
                self.cache_factory, "__name__", repr(self.cache_factory)
            )
        return out


def elastic_scenario_for_spikes(
    spike_times: Sequence[float],
    spike_duration_s: float,
    cache_factory: Callable[[], Any],
    *,
    lead_s: float = 5.0,
    name_prefix: str = "surge",
) -> list[ScenarioEvent]:
    """Join events tracking a flash-crowd arrival envelope.

    For each spike the cluster scales out ``lead_s`` seconds before the
    crowd lands: a fresh replica built by ``cache_factory`` joins and
    immediately becomes routable.  Pair with
    :func:`drain_events_for_joins` (which needs the initial fleet size to
    compute joined-replica indices) to return the fleet to baseline
    ``linger_s`` seconds after each spike passes.

    Use with :class:`repro.workloads.arrivals.FlashCrowdProcess`: feed the
    same ``spike_times``/``spike_duration_s`` to both so the topology
    schedule and the arrival envelope stay aligned.
    """
    negative = [t for t in spike_times if t < 0]
    if negative:
        raise ValueError(f"spike times must be non-negative, got {negative}")
    if spike_duration_s <= 0:
        raise ValueError("spike_duration_s must be positive")
    if lead_s < 0:
        raise ValueError("lead_s must be non-negative")
    return [
        ScenarioEvent(
            time=max(0.0, start - lead_s),
            action="join",
            cache_factory=cache_factory,
            name=f"{name_prefix}{index}",
        )
        for index, start in enumerate(sorted(spike_times))
    ]


def drain_events_for_joins(
    scenario: Sequence[ScenarioEvent],
    base_replicas: int,
    spike_duration_s: float,
    *,
    linger_s: float = 30.0,
) -> list[ScenarioEvent]:
    """Drain events for every ``join`` of ``scenario``, in join order.

    Joined replicas receive indices ``base_replicas, base_replicas + 1,
    ...`` in event-time order; each is drained ``spike_duration_s +
    linger_s`` after its join fired, returning the fleet to its baseline
    once the surge passes.  Combine with
    :func:`elastic_scenario_for_spikes` and sort the concatenation by
    time before handing it to the kernel.
    """
    if base_replicas <= 0:
        raise ValueError(f"base_replicas must be positive, got {base_replicas}")
    joins = sorted(
        (event for event in scenario if event.action == "join"),
        key=lambda event: event.time,
    )
    return [
        ScenarioEvent(
            time=join.time + spike_duration_s + linger_s,
            action="drain",
            replica=base_replicas + index,
            name=join.name,
        )
        for index, join in enumerate(joins)
    ]


@dataclass
class SteeringTelemetry:
    """Everything the kernel measured about steering during one run.

    Per-replica lists are indexed like the kernel's replica lists and grow
    when replicas join mid-run.  ``counters`` holds scalar decision and
    scenario counters; see :meth:`to_dict` for the exported shape.
    """

    transfer_bytes_in: list[int] = field(default_factory=list)
    transfer_bytes_out: list[int] = field(default_factory=list)
    transfer_seconds_in: list[float] = field(default_factory=list)
    transfers_in: list[int] = field(default_factory=list)
    transfers_out: list[int] = field(default_factory=list)
    #: Seconds each replica's outbound link spent occupied by transfers
    #: (serialized per-source pricing: concurrent transfers queue behind
    #: one another instead of each getting the full link bandwidth).
    link_busy_seconds: list[float] = field(default_factory=list)
    #: Total seconds transfers spent queued waiting for a busy source link.
    link_wait_seconds: float = 0.0
    #: TTFT seconds split-point overlap shaved off versus the serialized
    #: (local-recompute) prefill each split request would otherwise pay.
    overlap_seconds_saved: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)

    def add_replica(self) -> None:
        self.transfer_bytes_in.append(0)
        self.transfer_bytes_out.append(0)
        self.transfer_seconds_in.append(0.0)
        self.transfers_in.append(0)
        self.transfers_out.append(0)
        self.link_busy_seconds.append(0.0)

    def bump(self, key: str, by: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + by

    def record_transfer(
        self, source: int, target: int, nbytes: int, seconds: float
    ) -> None:
        self.transfer_bytes_out[source] += nbytes
        self.transfer_bytes_in[target] += nbytes
        self.transfer_seconds_in[target] += seconds
        self.transfers_out[source] += 1
        self.transfers_in[target] += 1
        self.bump("transfers_completed")

    def record_link(self, source: int, busy_seconds: float, wait_seconds: float) -> None:
        """Account one charged transfer on ``source``'s outbound link."""
        self.link_busy_seconds[source] += busy_seconds
        self.link_wait_seconds += wait_seconds

    @property
    def total_transfer_bytes(self) -> int:
        return sum(self.transfer_bytes_in)

    def check_conservation(self, transfer_bandwidth_bytes_per_s: float) -> None:
        """Assert transfer bytes/seconds conservation (link pricing sanity).

        With serialized per-source-link pricing, a source link can never
        move bytes faster than its bandwidth: the seconds it spent busy
        must cover at least ``bytes_out / bandwidth`` (strictly more when
        per-transfer launch latency is non-zero).  A violation means some
        transfers were priced in parallel on one link — the N-transfers ×
        full-bandwidth bug this check exists to catch.  Completed-transfer
        bytes must also balance across the fleet: every byte that arrived
        somewhere left somewhere.
        """
        if sum(self.transfer_bytes_in) != sum(self.transfer_bytes_out):
            raise AssertionError(
                f"transfer byte imbalance: {sum(self.transfer_bytes_in)} in "
                f"vs {sum(self.transfer_bytes_out)} out"
            )
        for source, busy in enumerate(self.link_busy_seconds):
            need = self.transfer_bytes_out[source] / transfer_bandwidth_bytes_per_s
            if busy + 1e-9 < need:
                raise AssertionError(
                    f"source link {source} moved {self.transfer_bytes_out[source]} "
                    f"bytes in {busy:.6f}s busy time but needs >= {need:.6f}s "
                    f"at {transfer_bandwidth_bytes_per_s:.3g} B/s — concurrent "
                    f"transfers were priced at more than aggregate bandwidth"
                )

    def to_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "link_wait_seconds": self.link_wait_seconds,
            "overlap_seconds_saved": self.overlap_seconds_saved,
            "per_replica": {
                "transfer_bytes_in": list(self.transfer_bytes_in),
                "transfer_bytes_out": list(self.transfer_bytes_out),
                "transfer_seconds_in": list(self.transfer_seconds_in),
                "transfers_in": list(self.transfers_in),
                "transfers_out": list(self.transfers_out),
                "link_busy_seconds": list(self.link_busy_seconds),
            },
        }
