"""Cluster steering primitives shared by the kernel and the cluster layer.

These types sit below :mod:`repro.cluster` so the simulation kernel can
execute steering decisions without importing the router package (which
imports the kernel): a router *plans* (``RouteDecision`` with an optional
``TransferSpec``), the kernel *executes* (charges the transfer as an
asynchronous bandwidth/latency event, applies scenario control events,
and accounts everything into :class:`SteeringTelemetry`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

_SCENARIO_ACTIONS = ("fail", "drain", "join")


def pick_least_loaded(loads: Sequence[int], rotation: int) -> int:
    """Index of the lowest load, ties broken by rotating round-robin.

    The one least-loaded selection rule, shared by
    :class:`repro.cluster.router.LeastLoadedRouter` (and the routers that
    spill through it) and the kernel's failover fallback, so the two can
    never silently diverge.  ``rotation`` is the caller-held tie-break
    counter (increment it after each pick).
    """
    floor = min(loads)
    tied = [index for index, load in enumerate(loads) if load == floor]
    return tied[rotation % len(tied)]


class GossipTransport:
    """The clock/scheduling surface a sharded directory gossips through.

    A transport supplies the virtual time updates are stamped with
    (:meth:`now`) and executes deferred flush callbacks at a requested
    time (:meth:`schedule`).  The kernel implements it over its event
    queue (``EventKind.DIRECTORY_SYNC`` events charged on the virtual
    clock); :class:`~repro.cluster.sharded_directory.ManualGossipTransport`
    implements it over a hand-cranked queue for standalone tests.  Like
    :class:`TransferSpec`, it lives below :mod:`repro.cluster` so the
    kernel can drive directory propagation without importing the router
    package.
    """

    def now(self) -> float:
        raise NotImplementedError

    def schedule(self, time: float, callback: Callable[[float], None]) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class TransferSpec:
    """One planned cross-replica state transfer.

    ``tokens`` is the prefix whose self-contained state (recurrent
    checkpoint plus the prefix's KVs, ``nbytes`` total) is copied from
    ``source``'s cache into ``target``'s second-tier store; the request
    that triggered the plan is parked until the transfer event completes.
    ``migrate=True`` additionally removes the span from the source's
    second-tier store once the copy lands (primary-tree state is always
    replicated, never torn out of the source tree).
    """

    source: int
    target: int
    tokens: np.ndarray
    nbytes: int
    migrate: bool = False

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError("transfer source and target must differ")
        if self.nbytes <= 0:
            raise ValueError(f"transfer nbytes must be positive, got {self.nbytes}")
        if len(self.tokens) == 0:
            raise ValueError("cannot transfer an empty prefix")


@dataclass(frozen=True)
class RouteDecision:
    """A router's full verdict for one arrival: replica plus optional transfer."""

    replica: int
    transfer: Optional[TransferSpec] = None


@dataclass(frozen=True)
class ScenarioEvent:
    """One entry of a cluster scenario schedule.

    Actions
    -------
    ``fail``
        Replica ``replica`` dies at ``time``: its in-flight sessions are
        aborted (the transactional abort path), its cache is reset, the
        routing directory is invalidated for it, and every orphaned
        request is re-routed to a surviving replica.
    ``drain``
        Replica ``replica`` stops receiving new requests but finishes its
        queued and running work; its cache stays warm (it can still serve
        as a transfer source).
    ``join``
        A fresh replica built by ``cache_factory()`` comes up at ``time``
        and immediately becomes routable.
    """

    time: float
    action: str
    replica: Optional[int] = None
    cache_factory: Optional[Callable[[], Any]] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in _SCENARIO_ACTIONS:
            raise ValueError(
                f"unknown scenario action {self.action!r}; known: {_SCENARIO_ACTIONS}"
            )
        if self.time < 0:
            raise ValueError(f"scenario time must be non-negative, got {self.time}")
        if self.action in ("fail", "drain"):
            if self.replica is None:
                raise ValueError(f"{self.action!r} scenario events need a replica index")
            if self.replica < 0:
                raise ValueError(
                    f"scenario replica index must be non-negative, got {self.replica}"
                )
        if self.action == "join" and self.cache_factory is None:
            raise ValueError("'join' scenario events need a cache_factory")

    def to_dict(self) -> dict:
        """JSON-friendly view (the factory is reduced to its name)."""
        out: dict = {"time": self.time, "action": self.action}
        if self.replica is not None:
            out["replica"] = self.replica
        if self.name is not None:
            out["name"] = self.name
        if self.cache_factory is not None:
            out["cache_factory"] = getattr(
                self.cache_factory, "__name__", repr(self.cache_factory)
            )
        return out


def elastic_scenario_for_spikes(
    spike_times: Sequence[float],
    spike_duration_s: float,
    cache_factory: Callable[[], Any],
    *,
    lead_s: float = 5.0,
    name_prefix: str = "surge",
) -> list[ScenarioEvent]:
    """Join events tracking a flash-crowd arrival envelope.

    For each spike the cluster scales out ``lead_s`` seconds before the
    crowd lands: a fresh replica built by ``cache_factory`` joins and
    immediately becomes routable.  Pair with
    :func:`drain_events_for_joins` (which needs the initial fleet size to
    compute joined-replica indices) to return the fleet to baseline
    ``linger_s`` seconds after each spike passes.

    Use with :class:`repro.workloads.arrivals.FlashCrowdProcess`: feed the
    same ``spike_times``/``spike_duration_s`` to both so the topology
    schedule and the arrival envelope stay aligned.
    """
    negative = [t for t in spike_times if t < 0]
    if negative:
        raise ValueError(f"spike times must be non-negative, got {negative}")
    if spike_duration_s <= 0:
        raise ValueError("spike_duration_s must be positive")
    if lead_s < 0:
        raise ValueError("lead_s must be non-negative")
    return [
        ScenarioEvent(
            time=max(0.0, start - lead_s),
            action="join",
            cache_factory=cache_factory,
            name=f"{name_prefix}{index}",
        )
        for index, start in enumerate(sorted(spike_times))
    ]


def drain_events_for_joins(
    scenario: Sequence[ScenarioEvent],
    base_replicas: int,
    spike_duration_s: float,
    *,
    linger_s: float = 30.0,
) -> list[ScenarioEvent]:
    """Drain events for every ``join`` of ``scenario``, in join order.

    Joined replicas receive indices ``base_replicas, base_replicas + 1,
    ...`` in event-time order; each is drained ``spike_duration_s +
    linger_s`` after its join fired, returning the fleet to its baseline
    once the surge passes.  Combine with
    :func:`elastic_scenario_for_spikes` and sort the concatenation by
    time before handing it to the kernel.
    """
    if base_replicas <= 0:
        raise ValueError(f"base_replicas must be positive, got {base_replicas}")
    joins = sorted(
        (event for event in scenario if event.action == "join"),
        key=lambda event: event.time,
    )
    return [
        ScenarioEvent(
            time=join.time + spike_duration_s + linger_s,
            action="drain",
            replica=base_replicas + index,
            name=join.name,
        )
        for index, join in enumerate(joins)
    ]


@dataclass
class SteeringTelemetry:
    """Everything the kernel measured about steering during one run.

    Per-replica lists are indexed like the kernel's replica lists and grow
    when replicas join mid-run.  ``counters`` holds scalar decision and
    scenario counters; see :meth:`to_dict` for the exported shape.
    """

    transfer_bytes_in: list[int] = field(default_factory=list)
    transfer_bytes_out: list[int] = field(default_factory=list)
    transfer_seconds_in: list[float] = field(default_factory=list)
    transfers_in: list[int] = field(default_factory=list)
    transfers_out: list[int] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    def add_replica(self) -> None:
        self.transfer_bytes_in.append(0)
        self.transfer_bytes_out.append(0)
        self.transfer_seconds_in.append(0.0)
        self.transfers_in.append(0)
        self.transfers_out.append(0)

    def bump(self, key: str, by: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + by

    def record_transfer(
        self, source: int, target: int, nbytes: int, seconds: float
    ) -> None:
        self.transfer_bytes_out[source] += nbytes
        self.transfer_bytes_in[target] += nbytes
        self.transfer_seconds_in[target] += seconds
        self.transfers_out[source] += 1
        self.transfers_in[target] += 1
        self.bump("transfers_completed")

    @property
    def total_transfer_bytes(self) -> int:
        return sum(self.transfer_bytes_in)

    def to_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "per_replica": {
                "transfer_bytes_in": list(self.transfer_bytes_in),
                "transfer_bytes_out": list(self.transfer_bytes_out),
                "transfer_seconds_in": list(self.transfer_seconds_in),
                "transfers_in": list(self.transfers_in),
                "transfers_out": list(self.transfers_out),
            },
        }
