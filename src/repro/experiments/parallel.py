"""Process-pool execution of simulation runs: pickle-safe specs, keyed caches.

Marconi-style studies sweep the cartesian product of cache sizes, arrival
patterns, and policies; every point is an independent deterministic
simulation, which makes the sweep embarrassingly parallel.  This module is
the one place that fan-out lives:

* :class:`RunSpec` — a frozen, pickle-safe description of one simulation
  (workload params by value, never a live trace or cache object), so
  specs can cross process boundaries and key caches;
* :func:`derive_point_seed` — deterministic per-point seed derivation
  (stable hashing, not Python's per-process ``hash``), so a sweep's
  points draw independent-but-reproducible randomness from one base seed;
* :func:`run_specs` — the sweep engine: serial in-process when
  ``n_workers <= 1`` (sharing the process's trace/result caches), a
  ``ProcessPoolExecutor`` otherwise.  Workers rebuild everything from the
  spec and use only their own process-local caches (see
  :class:`repro.experiments.runner.ResultCache`), aggregate their chunk's
  results, and ship them back in order.

Specs are grouped by trace identity before dispatch so chunk-mates share
generated traces inside each worker's ``lru_cache``; results are returned
in the caller's original spec order regardless.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import multiprocessing

from repro.engine.latency import LatencyModel
from repro.engine.results import EngineResult
from repro.models.config import ModelConfig
from repro.workloads.sessions import WorkloadParams


def derive_point_seed(base_seed: int, *components: object) -> int:
    """A deterministic seed for one sweep point.

    Stable across processes and Python invocations (unlike ``hash()``,
    which is salted): the base seed and the point's identifying components
    are folded through SHA-256.  Distinct component tuples get independent
    seeds; the same tuple always gets the same seed.
    """
    payload = json.dumps(
        [int(base_seed), *[str(c) for c in components]], separators=(",", ":")
    ).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF


@dataclass(frozen=True)
class RunSpec:
    """One simulation point, described entirely by value.

    Everything needed to execute the run in a fresh process: the trace is
    named by ``(workload, params)`` and regenerated (or fetched from the
    worker's trace cache), never shipped.  ``model``/``latency`` default
    to the experiment harness defaults when ``None``.  ``tag`` is an
    opaque caller-side correlation handle (e.g. ``"cache=4GB"``) carried
    through untouched.
    """

    workload: str
    params: WorkloadParams
    policy: str
    capacity_bytes: int
    model: Optional[ModelConfig] = None
    latency: Optional[LatencyModel] = None
    block_size: int = 32
    alpha: Optional[float] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive, got {self.capacity_bytes}"
            )

    def with_derived_seed(self, base_seed: int) -> "RunSpec":
        """This spec with its trace seed derived from ``base_seed``.

        The derivation folds in every trace-shaping field (but not the
        policy or capacity, so all policies of one sweep point replay the
        *same* trace — the paired comparison the paper's box plots need).
        """
        seed = derive_point_seed(
            base_seed,
            self.workload,
            self.params.n_sessions,
            self.params.session_rate,
            self.params.mean_think_s,
            self.params.arrival_process,
            self.tag,
        )
        return replace(self, params=replace(self.params, seed=seed))

    def trace_key(self) -> tuple:
        """Identity of the trace this spec replays (grouping key)."""
        return (self.workload, self.params)


def execute_spec(spec: RunSpec, *, use_cache: bool = True) -> EngineResult:
    """Run one spec in the current process (worker and serial entry point).

    Imports are deferred so forked workers pay them once; all caching is
    process-local and keyed by value, so concurrent workers can never
    observe each other's (or the parent's pre-fork) stale entries.
    """
    from repro.experiments.config import default_latency, default_model
    from repro.experiments.runner import get_trace, run_policy_on_trace

    model = spec.model if spec.model is not None else default_model()
    latency = spec.latency if spec.latency is not None else default_latency()
    trace = get_trace(spec.workload, spec.params)
    return run_policy_on_trace(
        model,
        trace,
        spec.policy,
        spec.capacity_bytes,
        latency=latency,
        block_size=spec.block_size,
        alpha=spec.alpha,
        use_cache=use_cache,
    )


def _run_chunk(specs: Sequence[RunSpec]) -> list[EngineResult]:
    """Worker-side aggregation: run a whole chunk, return results in order.

    One IPC round-trip per chunk instead of per spec, and chunk-mates
    share the worker's trace cache (chunks are built trace-contiguous).
    """
    return [execute_spec(spec) for spec in specs]


def _chunk_by_trace(
    specs: Sequence[RunSpec], n_chunks: int
) -> list[list[tuple[int, RunSpec]]]:
    """Split specs into at most ``n_chunks`` trace-contiguous chunks.

    Specs are stably grouped by trace identity so a worker regenerates
    each trace once, then dealt round-robin by *group* to balance load;
    original indices ride along so results can be re-ordered.
    """
    indexed = list(enumerate(specs))
    groups: dict[tuple, list[tuple[int, RunSpec]]] = {}
    for index, spec in indexed:
        groups.setdefault(spec.trace_key(), []).append((index, spec))
    chunks: list[list[tuple[int, RunSpec]]] = [[] for _ in range(n_chunks)]
    for position, group in enumerate(groups.values()):
        chunks[position % n_chunks].extend(group)
    return [chunk for chunk in chunks if chunk]


def default_workers() -> int:
    """Worker count when the caller does not choose: one per CPU, min 1."""
    return max(1, os.cpu_count() or 1)


def run_specs(
    specs: Sequence[RunSpec],
    n_workers: Optional[int] = None,
    *,
    mp_context: Optional[str] = None,
) -> list[EngineResult]:
    """Execute every spec and return results in spec order.

    ``n_workers <= 1`` (or a single spec) runs serially in-process,
    sharing the process's memoized traces and results.  Otherwise a
    ``ProcessPoolExecutor`` fans trace-contiguous chunks out to workers;
    each worker aggregates its chunk locally and the parent reassembles
    results into the caller's order.  Simulations are deterministic, so
    the parallel path returns exactly what the serial path would.
    """
    specs = list(specs)
    if not specs:
        return []
    if n_workers is None:
        n_workers = default_workers()
    if n_workers <= 1 or len(specs) == 1:
        return [execute_spec(spec) for spec in specs]

    method = mp_context or (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else multiprocessing.get_start_method()
    )
    context = multiprocessing.get_context(method)
    chunks = _chunk_by_trace(specs, n_chunks=max(n_workers * 2, 1))
    results: list[Optional[EngineResult]] = [None] * len(specs)
    with ProcessPoolExecutor(
        max_workers=min(n_workers, len(chunks)), mp_context=context
    ) as pool:
        payloads = [[spec for _, spec in chunk] for chunk in chunks]
        for chunk, chunk_results in zip(chunks, pool.map(_run_chunk, payloads)):
            for (index, _), result in zip(chunk, chunk_results):
                results[index] = result
    return results  # type: ignore[return-value]
