"""Table 1 — per-layer FLOP and state-size closed forms, verified numerically.

The table's last two rows (FLOPs saved per byte) are derived quantities;
this harness recomputes them from the raw FLOP and byte formulas and checks
they match the closed forms, including the 7B instantiation
(``L + 8192`` for Attention, ``~200 L`` for SSM at ``D=4096, N=128``).
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.figures.base import FigureResult, fmt
from repro.models.efficiency import (
    flops_saved_per_byte_attention,
    flops_saved_per_byte_ssm,
)
from repro.models.flops import (
    attention_prefill_flops,
    mlp_prefill_flops,
    ssm_prefill_flops,
)
from repro.models.memory import kv_bytes, recurrent_state_bytes, ssm_state_bytes
from repro.models.presets import hybrid_7b

CHECK_LENGTHS = (64, 512, 4096, 16384)


def run(scale: str | Scale = "bench") -> FigureResult:
    model = hybrid_7b()
    dim, state = model.d_model, model.d_state
    rows = []
    max_rel_err = 0.0
    for length in CHECK_LENGTHS:
        # Attention: (8LD^2 + 4L^2D) / (4LD) == L + 2D
        attn_measured = attention_prefill_flops(length, dim) / kv_bytes(model, length) * model.n_attention
        attn_closed = flops_saved_per_byte_attention(length, dim)
        # SSM: (12LD^2 + 16LDN + 10L) / (2DN) == L(6D/N + 8 + 5/DN)
        ssm_measured = ssm_prefill_flops(length, dim, state) / ssm_state_bytes(model)
        ssm_closed = flops_saved_per_byte_ssm(length, dim, state)
        rel_err = max(
            abs(attn_measured - attn_closed) / attn_closed,
            abs(ssm_measured - ssm_closed) / ssm_closed,
        )
        max_rel_err = max(max_rel_err, rel_err)
        rows.append(
            [
                length,
                f"{attn_measured:.4g}",
                f"{attn_closed:.4g}",
                f"{ssm_measured:.4g}",
                f"{ssm_closed:.4g}",
                f"{ssm_measured / length:.1f}",
            ]
        )
    notes = [
        f"MLP FLOPs at L=512: {mlp_prefill_flops(512, dim):.4g} (16 L D^2, stateless)",
        f"SSM state/layer: {ssm_state_bytes(model):,} B recurrent + "
        f"{recurrent_state_bytes(model) - ssm_state_bytes(model):,} B conv",
        f"per-token KV across Attention layers: {kv_bytes(model, 1):,} B",
        f"max relative error closed-form vs recomputed: {max_rel_err:.2e}",
    ]
    return FigureResult(
        figure_id="table1",
        title="Table 1 closed forms: FLOPs saved per byte (7B hybrid, D=4096, N=128)",
        headers=[
            "L",
            "attn_measured",
            "attn=L+2D",
            "ssm_measured",
            "ssm_closed",
            "ssm/L",
        ],
        rows=rows,
        paper_expectation=(
            "Attention: L + 8192 FLOPs/byte; SSM: ~200 L FLOPs/byte for the "
            "7B hybrid — SSM efficiency scales two orders of magnitude faster"
        ),
        notes=notes,
        extra={"max_rel_err": max_rel_err},
    )
