"""Bandwidth-regime sweep for split-point steering (compute-or-load v2).

One controlled steering opportunity, measured under three planner arms at
each swept inter-replica bandwidth:

``recompute``
    ``DirectoryRouter(transfer=False)`` — the steered request recomputes
    its whole missing span locally (no transfer planned).
``full``
    ``DirectoryRouter(split=False)`` — the PR-4 all-or-nothing rule:
    either recompute everything or park the request behind a transfer of
    the deepest checkpoint.
``split``
    ``DirectoryRouter(split=True)`` — compute-or-load-or-both: interior
    checkpoint depths are candidate split points, the head transfer
    overlaps the tail recompute.

The scenario is deterministic and queue-free so the steered round's TTFT
isolates the planner decision: one chat session lays interior checkpoints
on replica 0 round by round, replica 0 then drains, and the session's
final (long-think) round is forced onto cold replica 1 — the one steering
opportunity.  Because an interior split is only planned when its estimate
strictly beats both endpoints, split TTFT <= min(full, recompute) must
hold at every bandwidth; the benchmark lane asserts exactly that floor.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cluster import DirectoryRouter, ScenarioEvent, simulate_cluster
from repro.engine.latency import LatencyModel
from repro.metrics.export import steering_split_summary
from repro.models.config import ModelConfig
from repro.models.presets import hybrid_7b
from repro.tiering import TieredMarconiCache
from repro.workloads.trace import Trace, TraceRound, TraceSession

#: Swept inter-replica link bandwidths (bytes/s): disk-ish 0.3 GB/s up to
#: NVLink-ish 50 GB/s, bracketing the regime crossover where the planner
#: flips from recompute through split to full load.
DEFAULT_BANDWIDTHS: tuple[float, ...] = (3e8, 1e9, 3e9, 12e9, 5e10)

#: The three planner arms, in reporting order.
ARMS: tuple[str, ...] = ("recompute", "full", "split")

#: Event time at which the warm replica drains (all context rounds have
#: completed long before; the final round arrives ~30s in).
_DRAIN_TIME_S = 10.0


def split_probe_trace(
    n_ctx_rounds: int = 4,
    tokens_per_round: int = 400,
    tail_tokens: int = 600,
    seed: int = 0,
) -> Trace:
    """One chat session engineered to create a single steering opportunity.

    ``n_ctx_rounds`` quick rounds grow the prefix on whichever replica
    affinity picks (laying one recurrent checkpoint per round boundary —
    the interior split candidates), then a final round appends
    ``tail_tokens`` after a think gap long enough to land *after* the
    drain event.
    """
    rng = np.random.default_rng(seed)

    def toks(n: int) -> np.ndarray:
        return rng.integers(0, 50_000, size=n, dtype=np.int32)

    rounds = [
        TraceRound(toks(tokens_per_round), toks(8)) for _ in range(n_ctx_rounds)
    ]
    rounds.append(TraceRound(toks(tail_tokens), toks(8)))
    think_times = [0.0] + [0.5] * (n_ctx_rounds - 1) + [30.0]
    return Trace(
        name="steering-split-probe",
        seed=seed,
        sessions=[TraceSession(0, 0.0, rounds, think_times)],
    )


def _fresh_caches(model: ModelConfig, n_replicas: int = 2) -> list:
    return [
        TieredMarconiCache(model, int(1e12), int(1e12)) for _ in range(n_replicas)
    ]


def _router_for_arm(arm: str, transfer_min_tokens: int) -> DirectoryRouter:
    if arm == "recompute":
        return DirectoryRouter(transfer=False)
    if arm == "full":
        return DirectoryRouter(split=False, transfer_min_tokens=transfer_min_tokens)
    if arm == "split":
        return DirectoryRouter(split=True, transfer_min_tokens=transfer_min_tokens)
    raise ValueError(f"unknown sweep arm {arm!r}; known: {ARMS}")


def steered_round_ttft(
    model: ModelConfig,
    trace: Trace,
    arm: str,
    latency: LatencyModel,
    *,
    transfer_min_tokens: int = 16,
) -> tuple[float, dict]:
    """TTFT of the post-drain steered round under one planner arm.

    Returns ``(ttft_seconds, steering_split_summary)`` of the run.
    """
    scenario = [ScenarioEvent(time=_DRAIN_TIME_S, action="drain", replica=0)]
    result = simulate_cluster(
        model,
        _fresh_caches(model),
        _router_for_arm(arm, transfer_min_tokens),
        trace,
        scenario=scenario,
        latency=latency,
    )
    records = [r for rr in result.replica_results for r in rr.records]
    last = max(records, key=lambda r: (r.session_id, r.round_index))
    return float(last.ttft), steering_split_summary(result)


def steering_bandwidth_sweep(
    bandwidths: Optional[Sequence[float]] = None,
    *,
    model: Optional[ModelConfig] = None,
    n_ctx_rounds: int = 4,
    tokens_per_round: int = 400,
    tail_tokens: int = 600,
    transfer_min_tokens: int = 16,
) -> dict:
    """Run the three-arm sweep; returns the ``BENCH_steering.json`` payload.

    The returned dict carries per-bandwidth TTFTs per arm plus each split
    run's decision/overlap summary, and a ``floor_holds`` flag per point:
    split TTFT <= min(full, recompute) + epsilon.
    """
    if bandwidths is None:
        bandwidths = DEFAULT_BANDWIDTHS
    if model is None:
        model = hybrid_7b()
    trace = split_probe_trace(
        n_ctx_rounds=n_ctx_rounds,
        tokens_per_round=tokens_per_round,
        tail_tokens=tail_tokens,
    )
    ttfts: dict[str, list[float]] = {arm: [] for arm in ARMS}
    split_summaries: list[dict] = []
    floor_holds: list[bool] = []
    for bandwidth in bandwidths:
        latency = LatencyModel(transfer_bandwidth_bytes_per_s=float(bandwidth))
        for arm in ARMS:
            ttft, summary = steered_round_ttft(
                model,
                trace,
                arm,
                latency,
                transfer_min_tokens=transfer_min_tokens,
            )
            ttfts[arm].append(ttft)
            if arm == "split":
                split_summaries.append(summary)
        endpoint_floor = min(ttfts["recompute"][-1], ttfts["full"][-1])
        floor_holds.append(ttfts["split"][-1] <= endpoint_floor + 1e-9)
    return {
        "bandwidths_bytes_per_s": [float(b) for b in bandwidths],
        "arms": list(ARMS),
        "ttft_seconds": ttfts,
        "split_summaries": split_summaries,
        "floor_holds": floor_holds,
        "scenario": {
            "n_ctx_rounds": n_ctx_rounds,
            "tokens_per_round": tokens_per_round,
            "tail_tokens": tail_tokens,
            "transfer_min_tokens": transfer_min_tokens,
            "drain_time_s": _DRAIN_TIME_S,
        },
    }
