"""Experiment harness: one entry point per paper figure/table.

Every evaluation artifact in the paper maps to a module in
:mod:`repro.experiments.figures` exposing ``run(scale) -> FigureResult``.
``python -m repro.experiments --figure fig7`` regenerates a figure's data as
an ASCII table; ``--all`` regenerates everything and is what populated
``EXPERIMENTS.md``.
"""

from repro.experiments.config import (
    DATASET_CONFIGS,
    DatasetConfig,
    Scale,
    SCALES,
    get_scale,
)
from repro.experiments.figures.base import FigureResult
from repro.experiments.parallel import (
    RunSpec,
    derive_point_seed,
    execute_spec,
    run_specs,
)
from repro.experiments.registry import FIGURES, run_figure
from repro.experiments.runner import (
    ResultCache,
    run_policies,
    run_policy_on_trace,
)
from repro.experiments.steering_sweep import (
    steered_round_ttft,
    steering_bandwidth_sweep,
    split_probe_trace,
)
from repro.experiments.sweeps import SweepPoint, standard_sweep, sweep_specs

__all__ = [
    "Scale",
    "SCALES",
    "get_scale",
    "DatasetConfig",
    "DATASET_CONFIGS",
    "FigureResult",
    "FIGURES",
    "run_figure",
    "run_policy_on_trace",
    "run_policies",
    "ResultCache",
    "RunSpec",
    "derive_point_seed",
    "execute_spec",
    "run_specs",
    "SweepPoint",
    "standard_sweep",
    "sweep_specs",
    "split_probe_trace",
    "steered_round_ttft",
    "steering_bandwidth_sweep",
]
