"""CLI: regenerate the paper's figures/tables and inspect workloads.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments --figure fig7
    python -m repro.experiments --figure fig11 --scale smoke
    python -m repro.experiments --all --scale bench
    python -m repro.experiments --taxonomy swebench --sessions 40
    python -m repro.experiments --gen-trace lmsys --out lmsys.jsonl --sessions 80
    python -m repro.experiments --gen-trace lmsys --stream --sessions 100000
    python -m repro.experiments --sweep sharegpt --workers 4 --scale smoke
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import FIGURES, run_figure


def _run_taxonomy(workload: str, sessions: int, seed: int) -> None:
    from repro.analysis import classify_trace
    from repro.workloads import generate_trace

    trace = generate_trace(workload, n_sessions=sessions, seed=seed)
    report = classify_trace(trace)
    print(f"workload={workload} sessions={sessions} requests={trace.n_requests}")
    print(report.summary_table())
    print(f"reuse opportunity ceiling: {100 * report.reusable_token_share:.1f}%")
    print(f"speculative-insertion splits: {report.branch_splits}")


def _gen_trace(
    workload: str,
    out: str,
    sessions: int,
    seed: int,
    arrival_process: str,
    stream: bool,
) -> None:
    from repro.workloads import WorkloadParams, generate_trace, generate_trace_stream

    params = WorkloadParams(
        n_sessions=sessions, seed=seed, arrival_process=arrival_process
    )
    if stream:
        # Constant-memory path: sessions are generated and written one at
        # a time, so session counts far beyond RAM are fine.
        written = generate_trace_stream(workload, params).to_jsonl(out)
        print(f"streamed {written} sessions to {out}")
        return
    trace = generate_trace(workload, params)
    trace.to_jsonl(out)
    print(
        f"wrote {trace.n_requests} requests "
        f"({trace.total_input_tokens} input tokens) to {out}"
    )


def _run_sweep(dataset: str, scale: str, workers: int, out: str | None) -> None:
    from repro.experiments.config import DEFAULT_POLICIES
    from repro.experiments.sweeps import standard_sweep

    started = time.perf_counter()
    points = standard_sweep(dataset, scale, n_workers=workers)
    elapsed = time.perf_counter() - started
    header = f"{'point':<34}" + "".join(f"{p:>10}" for p in DEFAULT_POLICIES)
    print(header)
    for point in points:
        row = f"{point.describe():<34}" + "".join(
            f"{100 * point.hit_rate(policy):>9.1f}%" for policy in DEFAULT_POLICIES
        )
        print(row)
    print(f"[{len(points)} points in {elapsed:.1f}s with {workers} worker(s)]")
    if out:
        import json

        from repro.metrics.export import summary_dict

        payload = [
            {
                "dataset": point.dataset,
                "cache_gb": point.cache_gb,
                "mean_think_s": point.mean_think_s,
                "policies": {
                    policy: summary_dict(result)
                    for policy, result in point.results.items()
                },
            }
            for point in points
        ]
        with open(out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote sweep summaries to {out}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="marconi-repro",
        description="Reproduce figures/tables from 'Marconi: Prefix Caching "
        "for the Era of Hybrid LLMs' (MLSys 2025).",
    )
    parser.add_argument("--figure", action="append", default=None,
                        help="figure id (repeatable), e.g. fig7, fig12b, table1")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--scale", default="bench",
                        choices=("smoke", "bench", "full"),
                        help="experiment scale (default: bench)")
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--taxonomy", metavar="WORKLOAD", default=None,
                        help="print the reuse-taxonomy report of a workload")
    parser.add_argument("--gen-trace", metavar="WORKLOAD", default=None,
                        help="generate a workload trace and write it as JSONL")
    parser.add_argument("--stream", action="store_true",
                        help="with --gen-trace: stream sessions to disk "
                        "(constant memory, any session count)")
    parser.add_argument("--arrival", default="poisson",
                        choices=("poisson", "bursty", "diurnal", "flashcrowd"),
                        help="arrival process for --gen-trace (default: poisson)")
    parser.add_argument("--sweep", metavar="DATASET", default=None,
                        help="run the standard cache x think-time sweep of a "
                        "dataset (lmsys, sharegpt, swebench)")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size for --sweep (default: 1, serial)")
    parser.add_argument("--out", default=None,
                        help="output path for --gen-trace (default: trace.jsonl) "
                        "or --sweep summaries (default: not written)")
    parser.add_argument("--sessions", type=int, default=50,
                        help="session count for --taxonomy/--gen-trace (default: 50)")
    parser.add_argument("--seed", type=int, default=0,
                        help="trace seed for --taxonomy/--gen-trace (default: 0)")
    args = parser.parse_args(argv)

    if args.list:
        for figure_id in sorted(FIGURES):
            print(figure_id)
        return 0
    if args.taxonomy:
        _run_taxonomy(args.taxonomy, args.sessions, args.seed)
        return 0
    if args.gen_trace:
        _gen_trace(
            args.gen_trace,
            args.out or "trace.jsonl",
            args.sessions,
            args.seed,
            args.arrival,
            args.stream,
        )
        return 0
    if args.sweep:
        _run_sweep(args.sweep, args.scale, args.workers, args.out)
        return 0

    targets = sorted(FIGURES) if args.all else (args.figure or [])
    if not targets:
        parser.error(
            "pass --figure <id>, --all, --list, --taxonomy, --gen-trace, or --sweep"
        )
    for figure_id in targets:
        started = time.perf_counter()
        result = run_figure(figure_id, args.scale)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{figure_id} done in {elapsed:.1f}s at scale={args.scale}]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
