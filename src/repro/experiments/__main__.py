"""CLI: regenerate the paper's figures/tables and inspect workloads.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments --figure fig7
    python -m repro.experiments --figure fig11 --scale smoke
    python -m repro.experiments --all --scale bench
    python -m repro.experiments --taxonomy swebench --sessions 40
    python -m repro.experiments --gen-trace lmsys --out lmsys.jsonl --sessions 80
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import FIGURES, run_figure


def _run_taxonomy(workload: str, sessions: int, seed: int) -> None:
    from repro.analysis import classify_trace
    from repro.workloads import generate_trace

    trace = generate_trace(workload, n_sessions=sessions, seed=seed)
    report = classify_trace(trace)
    print(f"workload={workload} sessions={sessions} requests={trace.n_requests}")
    print(report.summary_table())
    print(f"reuse opportunity ceiling: {100 * report.reusable_token_share:.1f}%")
    print(f"speculative-insertion splits: {report.branch_splits}")


def _gen_trace(workload: str, out: str, sessions: int, seed: int) -> None:
    from repro.workloads import generate_trace

    trace = generate_trace(workload, n_sessions=sessions, seed=seed)
    trace.to_jsonl(out)
    print(
        f"wrote {trace.n_requests} requests "
        f"({trace.total_input_tokens} input tokens) to {out}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="marconi-repro",
        description="Reproduce figures/tables from 'Marconi: Prefix Caching "
        "for the Era of Hybrid LLMs' (MLSys 2025).",
    )
    parser.add_argument("--figure", action="append", default=None,
                        help="figure id (repeatable), e.g. fig7, fig12b, table1")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--scale", default="bench",
                        choices=("smoke", "bench", "full"),
                        help="experiment scale (default: bench)")
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--taxonomy", metavar="WORKLOAD", default=None,
                        help="print the reuse-taxonomy report of a workload")
    parser.add_argument("--gen-trace", metavar="WORKLOAD", default=None,
                        help="generate a workload trace and write it as JSONL")
    parser.add_argument("--out", default="trace.jsonl",
                        help="output path for --gen-trace (default: trace.jsonl)")
    parser.add_argument("--sessions", type=int, default=50,
                        help="session count for --taxonomy/--gen-trace (default: 50)")
    parser.add_argument("--seed", type=int, default=0,
                        help="trace seed for --taxonomy/--gen-trace (default: 0)")
    args = parser.parse_args(argv)

    if args.list:
        for figure_id in sorted(FIGURES):
            print(figure_id)
        return 0
    if args.taxonomy:
        _run_taxonomy(args.taxonomy, args.sessions, args.seed)
        return 0
    if args.gen_trace:
        _gen_trace(args.gen_trace, args.out, args.sessions, args.seed)
        return 0

    targets = sorted(FIGURES) if args.all else (args.figure or [])
    if not targets:
        parser.error("pass --figure <id>, --all, --list, --taxonomy, or --gen-trace")
    for figure_id in targets:
        started = time.perf_counter()
        result = run_figure(figure_id, args.scale)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{figure_id} done in {elapsed:.1f}s at scale={args.scale}]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
