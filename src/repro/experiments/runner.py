"""Run (trace, policy) pairs through the serving simulator, with trace caching."""

from __future__ import annotations

from functools import lru_cache

from repro.baselines.registry import make_cache
from repro.engine.latency import LatencyModel
from repro.engine.results import EngineResult
from repro.engine.server import simulate_trace
from repro.models.config import ModelConfig
from repro.workloads.registry import generate_trace
from repro.workloads.sessions import WorkloadParams
from repro.workloads.trace import Trace


@lru_cache(maxsize=32)
def _cached_trace(
    workload: str,
    n_sessions: int,
    session_rate: float,
    mean_think_s: float,
    seed: int,
    vocab_size: int,
) -> Trace:
    return generate_trace(
        workload,
        WorkloadParams(
            n_sessions=n_sessions,
            session_rate=session_rate,
            mean_think_s=mean_think_s,
            seed=seed,
            vocab_size=vocab_size,
        ),
    )


def get_trace(workload: str, params: WorkloadParams) -> Trace:
    """Generate (or fetch from the in-process cache) a deterministic trace."""
    return _cached_trace(
        workload,
        params.n_sessions,
        params.session_rate,
        params.mean_think_s,
        params.seed,
        params.vocab_size,
    )


# Simulations are deterministic, so identical (trace, model, policy, config)
# runs can be shared across figure harnesses.  Keyed by object identity of
# the trace (traces themselves are cached above) plus scalar config.
_result_cache: dict[tuple, EngineResult] = {}


def clear_result_cache() -> None:
    """Drop memoized simulation results (tests and long-lived processes)."""
    _result_cache.clear()


def run_policy_on_trace(
    model: ModelConfig,
    trace: Trace,
    policy: str,
    capacity_bytes: int,
    *,
    latency: LatencyModel | None = None,
    block_size: int = 32,
    alpha: float | None = None,
    use_cache: bool = True,
) -> EngineResult:
    """Simulate one policy over one trace (memoized; runs are deterministic)."""
    key = (id(trace), model, policy, capacity_bytes, latency, block_size, alpha)
    if use_cache and key in _result_cache:
        return _result_cache[key]
    cache = make_cache(
        policy, model, capacity_bytes, block_size=block_size, alpha=alpha
    )
    result = simulate_trace(model, cache, trace, latency, policy_name=policy)
    if hasattr(cache, "alpha"):
        result.cache_stats["alpha"] = cache.alpha
    if use_cache:
        _result_cache[key] = result
    return result


def run_policies(
    model: ModelConfig,
    trace: Trace,
    policies: tuple[str, ...],
    capacity_bytes: int,
    *,
    latency: LatencyModel | None = None,
    block_size: int = 32,
) -> dict[str, EngineResult]:
    """Simulate several policies over the same trace (fresh cache each)."""
    return {
        policy: run_policy_on_trace(
            model,
            trace,
            policy,
            capacity_bytes,
            latency=latency,
            block_size=block_size,
        )
        for policy in policies
    }
