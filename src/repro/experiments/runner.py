"""Run (trace, policy) pairs through the serving simulator, with caching.

Both caches here are keyed by *values*, never by object identity or
module-global mutable state, so they stay correct when the experiment
harness fans out across process-pool workers (each worker process holds
its own instances; forked copies cannot alias results of different specs
the way ``id(trace)``-keyed entries could after garbage collection).
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from typing import Hashable, Optional, Union

from repro.baselines.registry import make_cache
from repro.engine.latency import LatencyModel
from repro.engine.results import EngineResult
from repro.engine.server import simulate_trace
from repro.models.config import ModelConfig
from repro.workloads.registry import generate_trace
from repro.workloads.sessions import WorkloadParams
from repro.workloads.trace import Trace, TraceStream


@lru_cache(maxsize=32)
def _cached_trace(workload: str, params: WorkloadParams) -> Trace:
    # WorkloadParams is frozen (hashable); keying by the whole object keeps
    # every generation knob — including arrival_process, which the old
    # field-by-field key silently dropped — part of the cache identity.
    return generate_trace(workload, params)


def get_trace(workload: str, params: WorkloadParams) -> Trace:
    """Generate (or fetch from the in-process cache) a deterministic trace."""
    return _cached_trace(workload, params)


def clear_trace_cache() -> None:
    """Drop memoized traces (tests and memory-conscious long runs)."""
    _cached_trace.cache_clear()


class ResultCache:
    """A bounded, explicitly keyed memo of deterministic simulation results.

    Keys are full run specifications (trace identity by value via
    :meth:`Trace.cache_key`, plus model/policy/config scalars), so two
    different runs can never collide — unlike the previous module-global
    dict keyed by ``id(trace)``, which could alias after garbage
    collection and leaked across forked workers.  Instances are cheap;
    parallel workers each build their own.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, EngineResult] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[EngineResult]:
        result = self._entries.get(key)
        if result is not None:
            self._entries.move_to_end(key)
        return result

    def put(self, key: Hashable, result: EngineResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


#: Process-local default cache used when callers do not pass their own.
_default_result_cache = ResultCache()


def default_result_cache() -> ResultCache:
    """The process-local result cache behind :func:`run_policy_on_trace`."""
    return _default_result_cache


def clear_result_cache() -> None:
    """Drop memoized simulation results (tests and long-lived processes)."""
    _default_result_cache.clear()


def result_key(
    model: ModelConfig,
    trace: Union[Trace, TraceStream],
    policy: str,
    capacity_bytes: int,
    latency: Optional[LatencyModel],
    block_size: int,
    alpha: Optional[float],
) -> tuple:
    """The full-spec cache key of one deterministic simulation run.

    Traces key by value — header plus content fingerprint, so two traces
    share a key only when their sessions match byte for byte.  Streams
    key by their recipe identity when they have one; anonymous streams
    (``cache_key()`` is ``None``) fall back to object identity, trading
    cross-process reuse for guaranteed non-aliasing.
    """
    trace_key = getattr(trace, "cache_key", None)
    identity = trace_key() if trace_key is not None else None
    if identity is None:
        identity = ("object", id(trace))
    return (identity, model, policy, capacity_bytes, latency, block_size, alpha)


def run_policy_on_trace(
    model: ModelConfig,
    trace: Union[Trace, TraceStream],
    policy: str,
    capacity_bytes: int,
    *,
    latency: Optional[LatencyModel] = None,
    block_size: int = 32,
    alpha: Optional[float] = None,
    use_cache: bool = True,
    result_cache: Optional[ResultCache] = None,
) -> EngineResult:
    """Simulate one policy over one trace (memoized; runs are deterministic)."""
    memo = result_cache if result_cache is not None else _default_result_cache
    key = result_key(model, trace, policy, capacity_bytes, latency, block_size, alpha)
    if use_cache:
        cached = memo.get(key)
        if cached is not None:
            return cached
    cache = make_cache(
        policy, model, capacity_bytes, block_size=block_size, alpha=alpha
    )
    result = simulate_trace(model, cache, trace, latency, policy_name=policy)
    if hasattr(cache, "alpha"):
        result.cache_stats["alpha"] = cache.alpha
    if use_cache:
        memo.put(key, result)
    return result


def run_policies(
    model: ModelConfig,
    trace: Union[Trace, TraceStream],
    policies: tuple[str, ...],
    capacity_bytes: int,
    *,
    latency: Optional[LatencyModel] = None,
    block_size: int = 32,
    result_cache: Optional[ResultCache] = None,
) -> dict[str, EngineResult]:
    """Simulate several policies over the same trace (fresh cache each)."""
    return {
        policy: run_policy_on_trace(
            model,
            trace,
            policy,
            capacity_bytes,
            latency=latency,
            block_size=block_size,
            result_cache=result_cache,
        )
        for policy in policies
    }
