"""Fig. 3 — why fine-grained checkpointing fails for hybrid models.

* **Fig. 3a**: under vLLM+-style per-block checkpointing, what fraction of
  token blocks ever have their KVs reused vs their SSM states reused?  The
  paper reports 25.0% vs 0.4% (a 65.3x gap) at block size 32, shrinking to
  11.1x at block size 128.  Measured here by running vLLM+ with an
  effectively infinite cache (so admission, not eviction, drives the
  numbers) over a chat trace.
* **Fig. 3b**: total cache footprint of a *single* sequence as length grows,
  for block sizes 8/16/32 — the paper's 7B hybrid hits 17.4 GB at 10K
  tokens with block size 16.
"""

from __future__ import annotations

from repro.baselines.vllm_plus import VLLMPlusCache
from repro.engine.server import simulate_trace
from repro.experiments.config import DATASET_CONFIGS, Scale, get_scale
from repro.experiments.figures.base import FigureResult, fmt
from repro.experiments.runner import get_trace
from repro.models.memory import sequence_cache_footprint
from repro.models.presets import hybrid_7b

BLOCK_SIZES_3A = (32, 64, 128)
BLOCK_SIZES_3B = (8, 16, 32)
SEQ_LENS_3B = (1000, 2500, 5000, 10000, 15000)
_HUGE_CACHE = int(4e12)  # bytes; large enough that nothing is ever evicted


def run_3a(scale: str | Scale = "bench") -> FigureResult:
    """Block reuse rates (KV vs SSM) per block size."""
    scale = get_scale(scale)
    model = hybrid_7b()
    config = DATASET_CONFIGS["lmsys"]
    trace = get_trace(config.workload, config.workload_params(scale))
    rows = []
    ratios = {}
    for block_size in BLOCK_SIZES_3A:
        cache = VLLMPlusCache(model, _HUGE_CACHE, block_size=block_size)
        simulate_trace(model, cache, trace, policy_name=f"vllm+b{block_size}")
        stats = cache.reuse_stats
        ratio = stats.kv_reuse_rate / max(stats.ssm_reuse_rate, 1e-9)
        ratios[block_size] = ratio
        rows.append(
            [
                block_size,
                fmt(100 * stats.kv_reuse_rate, 1),
                fmt(100 * stats.ssm_reuse_rate, 2),
                fmt(ratio, 1) + "x",
                stats.blocks_created,
            ]
        )
    return FigureResult(
        figure_id="fig3a",
        title="Token block reuse rate: KVs vs SSM states (vLLM+-style admission)",
        headers=["block_size", "kv_reused_%", "ssm_reused_%", "kv/ssm_ratio", "blocks"],
        rows=rows,
        paper_expectation=(
            "KV reuse ~25% vs SSM reuse ~0.4% at block 32 (65.3x); the gap "
            "narrows with block size (27.9x at 64, 11.1x at 128)"
        ),
        extra={"ratios": ratios},
    )


def run_3b(scale: str | Scale = "bench") -> FigureResult:
    """Single-sequence cache footprint vs length (analytic)."""
    model = hybrid_7b()
    rows = []
    for seq_len in SEQ_LENS_3B:
        row = [seq_len]
        for block_size in BLOCK_SIZES_3B:
            row.append(fmt(sequence_cache_footprint(model, seq_len, block_size) / 1e9, 2))
        rows.append(row)
    anchor = sequence_cache_footprint(model, 10000, 16) / 1e9
    return FigureResult(
        figure_id="fig3b",
        title="Per-sequence cache footprint (GB) under fine-grained checkpointing",
        headers=["seq_len"] + [f"block={b} (GB)" for b in BLOCK_SIZES_3B],
        rows=rows,
        paper_expectation="17.4 GB at 10K tokens with block size 16 for the 7B hybrid",
        notes=[f"measured anchor: {anchor:.1f} GB at 10K tokens, block 16"],
        extra={"anchor_gb": anchor},
    )


def run(scale: str | Scale = "bench") -> FigureResult:
    """Composite result (3a measured + 3b analytic); 3a is the headline."""
    result_a = run_3a(scale)
    result_b = run_3b(scale)
    result_a.notes.append("see also fig3b (run_3b) for the footprint curve")
    result_a.extra["fig3b"] = result_b
    return result_a
