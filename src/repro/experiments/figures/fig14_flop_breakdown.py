"""Fig. 14 — FLOP breakdown by layer type for the 7B hybrid (analytic).

Attention layers are only 7.1% of the model's layers, yet their quadratic
term dominates total FLOPs at long sequence lengths.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.figures.base import FigureResult
from repro.models.config import LayerType
from repro.models.flops import flop_breakdown
from repro.models.presets import hybrid_7b

SEQ_LENS = (1000, 5000, 10000, 20000, 30000)


def run(scale: str | Scale = "bench") -> FigureResult:
    model = hybrid_7b()
    rows = []
    shares: dict[int, dict[str, float]] = {}
    for seq_len in SEQ_LENS:
        breakdown = flop_breakdown(model, seq_len)
        total = sum(breakdown.values())
        shares[seq_len] = {
            layer.value: breakdown[layer] / total for layer in LayerType
        }
        rows.append(
            [
                seq_len,
                f"{breakdown[LayerType.SSM]:.3g}",
                f"{breakdown[LayerType.ATTENTION]:.3g}",
                f"{breakdown[LayerType.MLP]:.3g}",
                f"{100 * shares[seq_len]['attention']:.1f}%",
            ]
        )
    return FigureResult(
        figure_id="fig14",
        title="Prefill FLOP breakdown by layer type, 7B hybrid (24 SSM / 4 Attn / 28 MLP)",
        headers=["seq_len", "ssm_flops", "attention_flops", "mlp_flops", "attn_share"],
        rows=rows,
        paper_expectation=(
            "Attention's share grows quadratically with length despite being "
            "7.1% of layers, becoming a significant portion by ~30K tokens"
        ),
        extra={"shares": shares},
    )
