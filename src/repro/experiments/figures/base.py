"""Shared result container for figure reproductions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.metrics.reporting import ascii_table


@dataclass
class FigureResult:
    """The data behind one regenerated figure/table.

    ``rows``/``headers`` carry the same series the paper plots;
    ``paper_expectation`` states what the paper reports so a reader (and
    ``EXPERIMENTS.md``) can compare shape; ``extra`` holds raw arrays for
    tests and plotting.
    """

    figure_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    paper_expectation: str = ""
    notes: list[str] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"== {self.figure_id}: {self.title} =="]
        if self.paper_expectation:
            lines.append(f"paper: {self.paper_expectation}")
        lines.append(ascii_table(self.headers, self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def fmt(value: float, digits: int = 3) -> str:
    """Uniform float formatting for table cells."""
    return f"{value:.{digits}f}"
