"""Fig. 13 — impact of request arrival patterns.

* **Fig. 13a**: session arrival rate in {0.5, 1, 2}/s.  Faster arrivals ->
  more sessions share the cache -> lower absolute hit rates but *larger*
  relative Marconi-over-SGLang+ wins (1.4x -> 1.6x in the paper).
* **Fig. 13b**: mean think time in {5, 7.5, 10} s.  Longer gaps between a
  session's requests -> staler states at reuse time -> same trend.
"""

from __future__ import annotations

from repro.experiments.config import DATASET_CONFIGS, Scale, get_scale
from repro.experiments.config import default_latency, default_model
from repro.experiments.figures.base import FigureResult, fmt
from repro.experiments.runner import get_trace, run_policies
from repro.metrics.hit_rate import improvement_ratio

POLICIES = ("sglang+", "marconi")
SESSION_RATES = (0.5, 1.0, 2.0)
THINK_TIMES = (5.0, 7.5, 10.0)
DATASET = "swebench"


def _run_point(scale: Scale, cache_gb: float, **workload_overrides):
    config = DATASET_CONFIGS[DATASET]
    trace = get_trace(
        config.workload, config.workload_params(scale, **workload_overrides)
    )
    results = run_policies(
        default_model(),
        trace,
        POLICIES,
        scale.cache_bytes(cache_gb),
        latency=default_latency(),
    )
    ratio = improvement_ratio(
        results["marconi"].token_hit_rate, results["sglang+"].token_hit_rate
    )
    return results, ratio


def run_13a(scale: str | Scale = "bench") -> FigureResult:
    scale = get_scale(scale)
    cache_gb = DATASET_CONFIGS[DATASET].cache_grid_gb[1]
    rows = []
    ratios = []
    for rate in SESSION_RATES:
        results, ratio = _run_point(scale, cache_gb, session_rate=rate)
        ratios.append(ratio)
        rows.append(
            [
                fmt(rate, 1),
                fmt(results["sglang+"].token_hit_rate),
                fmt(results["marconi"].token_hit_rate),
                fmt(ratio, 2) + "x",
            ]
        )
    return FigureResult(
        figure_id="fig13a",
        title="Hit rate vs session arrival rate (SWEBench)",
        headers=["sessions_per_s", "sglang+_hit", "marconi_hit", "marconi/sglang+"],
        rows=rows,
        paper_expectation=(
            "absolute hit rate decreases with arrival rate (48.7% -> 43.0%) "
            "while the relative win grows (1.4x -> 1.6x)"
        ),
        extra={"ratios": ratios, "rates": SESSION_RATES},
    )


def run_13b(scale: str | Scale = "bench") -> FigureResult:
    scale = get_scale(scale)
    cache_gb = DATASET_CONFIGS[DATASET].cache_grid_gb[1]
    rows = []
    ratios = []
    for think in THINK_TIMES:
        results, ratio = _run_point(scale, cache_gb, mean_think_s=think)
        ratios.append(ratio)
        rows.append(
            [
                fmt(think, 1),
                fmt(results["sglang+"].token_hit_rate),
                fmt(results["marconi"].token_hit_rate),
                fmt(ratio, 2) + "x",
            ]
        )
    return FigureResult(
        figure_id="fig13b",
        title="Hit rate vs mean response (think) time (SWEBench)",
        headers=["mean_think_s", "sglang+_hit", "marconi_hit", "marconi/sglang+"],
        rows=rows,
        paper_expectation=(
            "absolute hit rate decreases with response time (25.9% -> 24.1%) "
            "while the relative win grows (1.4x -> 1.6x)"
        ),
        extra={"ratios": ratios, "think_times": THINK_TIMES},
    )


def run(scale: str | Scale = "bench") -> FigureResult:
    result_a = run_13a(scale)
    result_b = run_13b(scale)
    result_a.extra["fig13b"] = result_b
    result_a.notes.append("see also fig13b (run_13b) for the think-time sweep")
    return result_a
