"""Fig. 10 — fine-grained analysis of FLOP-aware eviction on one SWEBench trace.

* **Fig. 10a**: per-request hit rate difference (Marconi - SGLang+) binned
  by input length.  The paper sees Marconi *lose* up to 3% on short
  sequences and *win* up to 25.5% beyond ~7K tokens — the deliberate
  trade of short-sequence hits for long-sequence hits.
* **Fig. 10b**: the TTFT distribution consequences: P5 slightly worse
  (+2.1 ms), P50/P95 better by 13.4%/22.0%.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import DATASET_CONFIGS, Scale, get_scale
from repro.experiments.figures.base import FigureResult, fmt
from repro.experiments.runner import get_trace, run_policies
from repro.experiments.config import default_latency, default_model
from repro.metrics.hit_rate import mean_hit_rate_by_length_bin

POLICIES = ("vanilla", "sglang+", "marconi")
BIN_WIDTH = 5000


def run(scale: str | Scale = "bench") -> FigureResult:
    scale = get_scale(scale)
    config = DATASET_CONFIGS["swebench"]
    model = default_model()
    trace = get_trace(config.workload, config.workload_params(scale))
    # Middle of the cache grid: the moderate-contention point where
    # eviction decisions matter most.
    cache_gb = config.cache_grid_gb[len(config.cache_grid_gb) // 2]
    results = run_policies(
        model, trace, POLICIES, scale.cache_bytes(cache_gb), latency=default_latency()
    )
    marconi, sglang = results["marconi"], results["sglang+"]

    max_len = int(trace.input_lengths().max())
    edges = np.arange(0, max_len + BIN_WIDTH, BIN_WIDTH)
    m_rates, counts = mean_hit_rate_by_length_bin(marconi.records, edges)
    s_rates, _ = mean_hit_rate_by_length_bin(sglang.records, edges)

    rows = []
    for i in range(len(edges) - 1):
        if counts[i] == 0:
            continue
        diff = (m_rates[i] - s_rates[i]) * 100.0
        rows.append(
            [f"{edges[i] // 1000}-{edges[i + 1] // 1000}K", int(counts[i]), fmt(diff, 1)]
        )
    ttft_rows = []
    for name, result in results.items():
        ttft_rows.append(
            f"{name}: P5={result.ttft_percentile(5) * 1000:.1f}ms "
            f"P50={result.ttft_percentile(50) * 1000:.1f}ms "
            f"P95={result.ttft_percentile(95) * 1000:.1f}ms "
            f"hit={result.token_hit_rate:.3f}"
        )
    return FigureResult(
        figure_id="fig10",
        title="Hit-rate diff (Marconi - SGLang+, %) by input length bin, SWEBench",
        headers=["input_len_bin", "n_requests", "hit_rate_diff_%"],
        rows=rows,
        paper_expectation=(
            "negative diff for short sequences (to -3%), positive for long "
            "(to +25.5%); overall hit 32.7% vs 16.4% (+99.4%); P50/P95 TTFT "
            "better by 13.4%/22.0% at a slightly worse P5"
        ),
        notes=ttft_rows,
        extra={
            "edges": edges,
            "marconi_rates": m_rates,
            "sglang_rates": s_rates,
            "counts": counts,
            "results": results,
        },
    )
