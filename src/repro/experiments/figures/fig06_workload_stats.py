"""Fig. 6 — input/output sequence length distributions per workload.

The paper plots histograms; we report the percentile skeleton of the same
distributions from the synthetic generators.  The qualitative targets:
LMSys inputs tail to ~30K with long outputs; ShareGPT stays short on both
axes; SWEBench has the widest input distribution with uniformly short
outputs.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import DATASET_CONFIGS, Scale, get_scale
from repro.experiments.figures.base import FigureResult
from repro.experiments.runner import get_trace

PERCENTILES = (5, 50, 95, 99)


def run(scale: str | Scale = "bench") -> FigureResult:
    scale = get_scale(scale)
    rows = []
    extra: dict[str, dict[str, np.ndarray]] = {}
    for dataset, config in DATASET_CONFIGS.items():
        trace = get_trace(config.workload, config.workload_params(scale))
        inputs = trace.input_lengths()
        outputs = trace.output_lengths()
        extra[dataset] = {"inputs": inputs, "outputs": outputs}
        in_pcts = np.percentile(inputs, PERCENTILES).astype(int)
        out_pcts = np.percentile(outputs, PERCENTILES).astype(int)
        rows.append(
            [dataset, "input", trace.n_requests]
            + list(in_pcts)
            + [int(inputs.max())]
        )
        rows.append(
            [dataset, "output", trace.n_requests]
            + list(out_pcts)
            + [int(outputs.max())]
        )
    return FigureResult(
        figure_id="fig6",
        title="Input/output sequence length distributions per workload (tokens)",
        headers=["dataset", "kind", "n_req"]
        + [f"p{p}" for p in PERCENTILES]
        + ["max"],
        rows=rows,
        paper_expectation=(
            "LMSys inputs tail to ~30K with outputs often >1K; ShareGPT mostly "
            "<2K inputs and tens-to-hundreds outputs; SWEBench inputs span "
            "hundreds to ~30K+ with short outputs"
        ),
        extra=extra,
    )
