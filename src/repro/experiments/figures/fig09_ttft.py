"""Fig. 9 — P95 TTFT relative to vanilla (no prefix caching).

For every sweep config, each policy's P95 TTFT is normalized by the vanilla
run's; the paper plots the per-dataset CDF of those ratios.  Marconi's P95
TTFT reductions reach 36.9% / 73.2% / 46.8% vs vanilla on LMSys / ShareGPT
/ SWEBench.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import DATASET_CONFIGS, Scale
from repro.experiments.figures.base import FigureResult, fmt
from repro.experiments.sweeps import standard_sweep
from repro.metrics.ttft import relative_ttft_percentile

POLICIES = ("vanilla", "vllm+", "sglang+", "marconi")


def run(scale: str | Scale = "bench") -> FigureResult:
    rows = []
    ratios_by_dataset: dict[str, dict[str, np.ndarray]] = {}
    for dataset in DATASET_CONFIGS:
        points = standard_sweep(dataset, scale, policies=POLICIES)
        ratios: dict[str, list[float]] = {p: [] for p in POLICIES if p != "vanilla"}
        for point in points:
            vanilla = point.results["vanilla"]
            for policy in ratios:
                ratios[policy].append(
                    relative_ttft_percentile(point.results[policy], vanilla, 95)
                )
        ratios_by_dataset[dataset] = {
            p: np.asarray(v) for p, v in ratios.items()
        }
        for policy, values in ratios.items():
            arr = np.asarray(values)
            rows.append(
                [
                    dataset,
                    policy,
                    fmt(float(arr.min())),
                    fmt(float(np.median(arr))),
                    fmt(float(arr.max())),
                    fmt(100.0 * (1.0 - float(arr.min())), 1) + "%",
                ]
            )
    return FigureResult(
        figure_id="fig9",
        title="P95 TTFT relative to vanilla inference (lower is better)",
        headers=["dataset", "policy", "best", "median", "worst", "best_reduction"],
        rows=rows,
        paper_expectation=(
            "Marconi cuts P95 TTFT by up to 36.9% (LMSys), 73.2% (ShareGPT), "
            "46.8% (SWEBench) vs vanilla, and dominates vLLM+ everywhere"
        ),
        extra={"ratios": ratios_by_dataset},
    )
