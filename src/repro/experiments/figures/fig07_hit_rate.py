"""Fig. 7 — token hit rate: Marconi vs vLLM+ across the config sweep.

The paper shows per-dataset box plots over dataset/arrival/cache-size
combinations, with Marconi improving average hit rate by 4.5x (LMSys),
7.3x (ShareGPT), and 34.4x (SWEBench) over vLLM+'s fine-grained
checkpointing.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import DATASET_CONFIGS, Scale
from repro.experiments.figures.base import FigureResult, fmt
from repro.experiments.sweeps import standard_sweep
from repro.metrics.hit_rate import improvement_ratio
from repro.metrics.percentiles import BoxSummary

POLICIES = ("vllm+", "marconi")


def run(scale: str | Scale = "bench") -> FigureResult:
    rows = []
    ratios: dict[str, float] = {}
    sweeps = {}
    for dataset in DATASET_CONFIGS:
        points = standard_sweep(dataset, scale, policies=POLICIES)
        sweeps[dataset] = points
        per_config_ratios = [
            improvement_ratio(p.hit_rate("marconi"), p.hit_rate("vllm+"))
            for p in points
        ]
        ratios[dataset] = float(np.mean(per_config_ratios))
        for policy in POLICIES:
            box = BoxSummary.from_values([p.hit_rate(policy) for p in points])
            rows.append(
                [
                    dataset,
                    policy,
                    fmt(box.p5),
                    fmt(box.q1),
                    fmt(box.median),
                    fmt(box.q3),
                    fmt(box.p95),
                ]
            )
        rows.append([dataset, "avg win", "", "", fmt(ratios[dataset], 1) + "x", "", ""])
    return FigureResult(
        figure_id="fig7",
        title="Token hit rate over the config sweep: Marconi vs vLLM+",
        headers=["dataset", "policy", "p5", "q1", "median", "q3", "p95"],
        rows=rows,
        paper_expectation=(
            "Marconi improves average hit rate by 4.5x (LMSys), 7.3x "
            "(ShareGPT), 34.4x (SWEBench); SWEBench shows the largest gap"
        ),
        extra={"mean_ratios": ratios, "sweeps": sweeps},
    )
