"""Fig. 12 — impact of model architecture on Marconi's benefit.

* **Fig. 12a**: layer composition sweep (SSM, Attn) in {(32,4), (30,5),
  (28,7), (24,12), (0,36)}.  More SSM layers -> larger per-checkpoint
  states -> judicious admission matters more; at the pure-Transformer end
  all three systems coincide.
* **Fig. 12b**: SSM state dimension sweep N in {128, 64, 32, 16}.  Marconi's
  win over vLLM+ grows from 5.7x (N=16) to 35.4x (N=128) in the paper as
  states dominate the footprint.
"""

from __future__ import annotations

from repro.experiments.config import DATASET_CONFIGS, Scale, get_scale
from repro.experiments.config import default_latency
from repro.experiments.figures.base import FigureResult, fmt
from repro.experiments.runner import get_trace, run_policies
from repro.metrics.hit_rate import improvement_ratio
from repro.models.config import ModelConfig
from repro.models.memory import kv_bytes_per_token, model_recurrent_bytes
from repro.models.presets import hybrid_with_composition, hybrid_with_state_dim

POLICIES = ("vllm+", "sglang+", "marconi")
COMPOSITIONS = ((32, 4), (30, 5), (28, 7), (24, 12), (0, 36))
STATE_DIMS = (128, 64, 32, 16)

# Fixed *token* budget for the architecture sweeps: varying the layer mix
# changes per-token state bytes by ~10x, so a fixed byte budget would sweep
# contention instead of architecture.  The budget is converted to bytes per
# model (KVs per token plus a recurrent checkpoint amortized over
# CHECKPOINT_AMORTIZATION tokens), keeping the contention regime comparable
# and isolating the policy effect the paper's Fig. 12 is after.
TOKEN_BUDGET = 110_000
CHECKPOINT_AMORTIZATION = 512


def _token_budget_bytes(model: ModelConfig, scale: Scale) -> int:
    per_token = kv_bytes_per_token(model) + (
        model_recurrent_bytes(model) // CHECKPOINT_AMORTIZATION
    )
    return max(1, int(TOKEN_BUDGET * scale.cache_factor * per_token))


def _sweep(models, scale: Scale, dataset: str = "lmsys"):
    config = DATASET_CONFIGS[dataset]
    trace = get_trace(config.workload, config.workload_params(scale))
    out = []
    for label, model in models:
        results = run_policies(
            model,
            trace,
            POLICIES,
            _token_budget_bytes(model, scale),
            latency=default_latency(),
        )
        out.append((label, {p: results[p].token_hit_rate for p in POLICIES}))
    return out


def run_12a(scale: str | Scale = "bench") -> FigureResult:
    scale = get_scale(scale)
    models = [
        (f"({ssm},{attn})", hybrid_with_composition(ssm, attn))
        for ssm, attn in COMPOSITIONS
    ]
    rows = []
    normalized: dict[str, dict[str, float]] = {}
    for label, hits in _sweep(models, scale):
        best = max(hits.values()) or 1.0
        normalized[label] = {p: hits[p] / best for p in POLICIES}
        rows.append(
            [label]
            + [fmt(hits[p]) for p in POLICIES]
            + [fmt(normalized[label][p], 2) for p in POLICIES]
        )
    return FigureResult(
        figure_id="fig12a",
        title="Hit rate vs layer composition (SSM, Attn), LMSys workload",
        headers=["(ssm,attn)"]
        + [f"{p}_hit" for p in POLICIES]
        + [f"{p}_norm" for p in POLICIES],
        rows=rows,
        paper_expectation=(
            "Marconi's margin over vLLM+/SGLang+ grows with the SSM ratio "
            "(13.5%/5.8% at 1:2 to 2.6x/59.7% at 1:8); identical for the pure "
            "Transformer (0,36)"
        ),
        extra={"normalized": normalized},
    )


def run_12b(scale: str | Scale = "bench") -> FigureResult:
    scale = get_scale(scale)
    models = [(f"N={dim}", hybrid_with_state_dim(dim)) for dim in STATE_DIMS]
    # One fixed byte budget for the whole N sweep (the paper's point is that
    # growing states make vLLM+'s per-block checkpoints ruinous at the SAME
    # cache size); sized from the base model's token budget.
    capacity = _token_budget_bytes(hybrid_with_state_dim(128), scale)
    config = DATASET_CONFIGS["lmsys"]
    trace = get_trace(config.workload, config.workload_params(scale))
    rows = []
    ratios: dict[str, dict[str, float]] = {}
    sweep_out = []
    for label, model in models:
        results = run_policies(
            model, trace, POLICIES, capacity, latency=default_latency()
        )
        sweep_out.append((label, {p: results[p].token_hit_rate for p in POLICIES}))
    for label, hits in sweep_out:
        vllm_ratio = improvement_ratio(hits["marconi"], hits["vllm+"])
        sglang_ratio = improvement_ratio(hits["marconi"], hits["sglang+"])
        ratios[label] = {"vllm+": vllm_ratio, "sglang+": sglang_ratio}
        rows.append(
            [
                label,
                fmt(hits["vllm+"]),
                fmt(hits["sglang+"]),
                fmt(hits["marconi"]),
                fmt(vllm_ratio, 1) + "x",
                fmt(sglang_ratio, 2) + "x",
            ]
        )
    return FigureResult(
        figure_id="fig12b",
        title="Hit rate vs SSM state dimension N, LMSys workload",
        headers=["state_dim", "vllm+_hit", "sglang+_hit", "marconi_hit",
                 "win_vs_vllm+", "win_vs_sglang+"],
        rows=rows,
        paper_expectation=(
            "win over vLLM+ grows with N: 5.7x (N=16) -> 35.4x (N=128); win "
            "over SGLang+ stays ~1.6-1.9x"
        ),
        extra={"ratios": ratios},
    )


def run(scale: str | Scale = "bench") -> FigureResult:
    result_a = run_12a(scale)
    result_b = run_12b(scale)
    result_a.extra["fig12b"] = result_b
    result_a.notes.append("see also fig12b (run_12b) for the state-dimension sweep")
    return result_a
