"""Fig. 11 — impact of cache contention on FLOP-aware eviction's benefit.

Sweeping cache size from high to low contention, the paper finds the
largest Marconi-over-SGLang+ wins at *moderate* contention (their 60-140 GB
sweep peaks mid-range at +68.3%): with a tiny cache nothing useful survives
under any policy, and with a huge cache eviction decisions stop mattering.
"""

from __future__ import annotations

from repro.experiments.config import DATASET_CONFIGS, Scale, get_scale
from repro.experiments.config import default_latency, default_model
from repro.experiments.figures.base import FigureResult, fmt
from repro.experiments.runner import get_trace, run_policies
from repro.metrics.hit_rate import improvement_ratio

POLICIES = ("sglang+", "marconi")
CACHE_GRID_GB = (20.0, 30.0, 40.0, 50.0, 60.0)


def run(scale: str | Scale = "bench") -> FigureResult:
    scale = get_scale(scale)
    config = DATASET_CONFIGS["swebench"]
    model = default_model()
    trace = get_trace(config.workload, config.workload_params(scale))
    rows = []
    wins = []
    for cache_gb in CACHE_GRID_GB:
        results = run_policies(
            model,
            trace,
            POLICIES,
            scale.cache_bytes(cache_gb),
            latency=default_latency(),
        )
        win = 100.0 * (
            improvement_ratio(
                results["marconi"].token_hit_rate, results["sglang+"].token_hit_rate
            )
            - 1.0
        )
        wins.append(win)
        rows.append(
            [
                fmt(cache_gb, 0),
                fmt(results["sglang+"].token_hit_rate),
                fmt(results["marconi"].token_hit_rate),
                fmt(win, 1),
                fmt(results["marconi"].cache_stats.get("alpha", 0.0), 2),
            ]
        )
    return FigureResult(
        figure_id="fig11",
        title="Hit rate vs cache size (SWEBench): Marconi vs SGLang+",
        headers=["cache_GB", "sglang+_hit", "marconi_hit", "win_%", "tuned_alpha"],
        rows=rows,
        paper_expectation=(
            "wins of 24.3/51.5/68.3/30.0/10.0% across 60-140 GB, peaking at "
            "moderate contention"
        ),
        notes=["cache_GB values are pre-scaling; actual bytes = value * scale factor"],
        extra={"wins": wins, "cache_grid": CACHE_GRID_GB},
    )
