"""Fig. 8 — Marconi's hit-rate win over SGLang+ (FLOP-aware vs LRU eviction).

The paper reports the distribution of relative wins across configs, with
P95 wins of 45.6% (LMSys), 19.0% (ShareGPT), and 219.7% (SWEBench) —
FLOP-aware eviction matters most on the workload with the widest sequence
length distribution.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import DATASET_CONFIGS, Scale
from repro.experiments.figures.base import FigureResult, fmt
from repro.experiments.sweeps import standard_sweep
from repro.metrics.hit_rate import improvement_ratio

POLICIES = ("sglang+", "marconi")


def run(scale: str | Scale = "bench") -> FigureResult:
    rows = []
    wins_by_dataset: dict[str, np.ndarray] = {}
    for dataset in DATASET_CONFIGS:
        points = standard_sweep(dataset, scale, policies=POLICIES)
        wins = np.asarray(
            [
                100.0
                * (improvement_ratio(p.hit_rate("marconi"), p.hit_rate("sglang+")) - 1.0)
                for p in points
            ]
        )
        wins_by_dataset[dataset] = wins
        rows.append(
            [
                dataset,
                fmt(float(wins.min()), 1),
                fmt(float(np.median(wins)), 1),
                fmt(float(np.percentile(wins, 95)), 1),
                fmt(float(wins.max()), 1),
            ]
        )
    return FigureResult(
        figure_id="fig8",
        title="Token hit rate win of Marconi over SGLang+ (%), across configs",
        headers=["dataset", "min_%", "median_%", "p95_%", "max_%"],
        rows=rows,
        paper_expectation=(
            "P95 wins: SWEBench 219.7% >> LMSys 45.6% > ShareGPT 19.0%; "
            "wins grow with sequence-length spread"
        ),
        extra={"wins": wins_by_dataset},
    )
