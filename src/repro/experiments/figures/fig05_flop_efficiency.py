"""Fig. 5 — FLOP efficiency of model states vs sequence length.

Analytic: for 7B Transformer / Hybrid / Mamba configurations, the FLOPs a
full-sequence cache entry saves per byte it occupies.  The paper's point:
the more SSM layers, the steeper the growth — Mamba's efficiency at 2K
tokens is ~4e5 FLOPs/byte while the Transformer's stays near 3e4.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.figures.base import FigureResult
from repro.models.efficiency import flop_efficiency
from repro.models.presets import hybrid_7b, mamba_7b, transformer_7b

SEQ_LENS = (100, 250, 500, 1000, 1500, 2000)


def run(scale: str | Scale = "bench") -> FigureResult:
    models = {
        "mamba": mamba_7b(),
        "hybrid": hybrid_7b(),
        "transformer": transformer_7b(),
    }
    rows = []
    series: dict[str, list[float]] = {name: [] for name in models}
    for seq_len in SEQ_LENS:
        row: list[object] = [seq_len]
        for name, model in models.items():
            value = flop_efficiency(model, seq_len)
            series[name].append(value)
            row.append(f"{value:.3g}")
        rows.append(row)
    return FigureResult(
        figure_id="fig5",
        title="FLOP efficiency (FLOPs saved per byte) vs sequence length, 7B models",
        headers=["seq_len"] + [f"{m} (FLOP/B)" for m in models],
        rows=rows,
        paper_expectation=(
            "steeper growth with more SSM layers: at L=2000, Mamba ~4e5 > "
            "Hybrid ~1.7e5 >> Transformer ~3e4"
        ),
        extra={"series": series, "seq_lens": SEQ_LENS},
    )
