"""One module per paper figure; each exposes ``run(scale) -> FigureResult``."""

from repro.experiments.figures.base import FigureResult

__all__ = ["FigureResult"]
