"""The standard config sweep behind Figs. 7, 8, and 9.

The paper's artifact runs every policy over the cartesian product of cache
sizes and arrival patterns per dataset ("the sweep of all experiments ...
dataset/arrival rate/cache size combination"), then presents the resulting
*distributions* (box plots, CDFs).  ``standard_sweep`` reproduces that:
cache grid x think-time grid, all policies, one trace per arrival setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.results import EngineResult
from repro.experiments.config import (
    DATASET_CONFIGS,
    DEFAULT_POLICIES,
    Scale,
    default_latency,
    default_model,
    get_scale,
)
from repro.experiments.runner import get_trace, run_policies


@dataclass
class SweepPoint:
    """One (cache size, arrival pattern) configuration's results."""

    dataset: str
    cache_gb: float
    mean_think_s: float
    results: dict[str, EngineResult] = field(default_factory=dict)

    def hit_rate(self, policy: str) -> float:
        return self.results[policy].token_hit_rate

    def describe(self) -> str:
        return f"{self.dataset} cache={self.cache_gb:g}GB think={self.mean_think_s:g}s"


def standard_sweep(
    dataset: str,
    scale: str | Scale = "bench",
    policies: tuple[str, ...] = DEFAULT_POLICIES,
) -> list[SweepPoint]:
    """Run the full cache-size x think-time grid for one dataset."""
    scale = get_scale(scale)
    config = DATASET_CONFIGS[dataset]
    model = default_model()
    latency = default_latency()
    points: list[SweepPoint] = []
    for think in config.think_grid_s:
        trace = get_trace(
            config.workload, config.workload_params(scale, mean_think_s=think)
        )
        for cache_gb in config.cache_grid_gb:
            results = run_policies(
                model,
                trace,
                policies,
                scale.cache_bytes(cache_gb),
                latency=latency,
            )
            points.append(
                SweepPoint(
                    dataset=dataset,
                    cache_gb=cache_gb,
                    mean_think_s=think,
                    results=results,
                )
            )
    return points
