"""The standard config sweep behind Figs. 7, 8, and 9.

The paper's artifact runs every policy over the cartesian product of cache
sizes and arrival patterns per dataset ("the sweep of all experiments ...
dataset/arrival rate/cache size combination"), then presents the resulting
*distributions* (box plots, CDFs).  ``standard_sweep`` reproduces that:
cache grid x think-time grid, all policies, one trace per arrival setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.results import EngineResult
from repro.experiments.config import (
    DATASET_CONFIGS,
    DEFAULT_POLICIES,
    Scale,
    get_scale,
)
from repro.experiments.parallel import RunSpec, run_specs


@dataclass
class SweepPoint:
    """One (cache size, arrival pattern) configuration's results."""

    dataset: str
    cache_gb: float
    mean_think_s: float
    results: dict[str, EngineResult] = field(default_factory=dict)

    def hit_rate(self, policy: str) -> float:
        return self.results[policy].token_hit_rate

    def describe(self) -> str:
        return f"{self.dataset} cache={self.cache_gb:g}GB think={self.mean_think_s:g}s"


def sweep_specs(
    dataset: str,
    scale: str | Scale = "bench",
    policies: tuple[str, ...] = DEFAULT_POLICIES,
) -> list[RunSpec]:
    """The full cache-size x think-time x policy grid as pickle-safe specs.

    Specs are emitted grid-major (think, then cache size, then policy) and
    tagged ``"think=<t>/cache=<gb>"`` so :func:`points_from_results` can
    fold results back into :class:`SweepPoint` rows.
    """
    scale = get_scale(scale)
    config = DATASET_CONFIGS[dataset]
    specs: list[RunSpec] = []
    for think in config.think_grid_s:
        params = config.workload_params(scale, mean_think_s=think)
        for cache_gb in config.cache_grid_gb:
            for policy in policies:
                specs.append(
                    RunSpec(
                        workload=config.workload,
                        params=params,
                        policy=policy,
                        capacity_bytes=scale.cache_bytes(cache_gb),
                        tag=f"think={think:g}/cache={cache_gb:g}",
                    )
                )
    return specs


def points_from_results(
    dataset: str,
    scale: str | Scale,
    policies: tuple[str, ...],
    results: list[EngineResult],
) -> list[SweepPoint]:
    """Fold grid-major results (from :func:`sweep_specs` order) into points."""
    scale = get_scale(scale)
    config = DATASET_CONFIGS[dataset]
    points: list[SweepPoint] = []
    cursor = iter(results)
    for think in config.think_grid_s:
        for cache_gb in config.cache_grid_gb:
            points.append(
                SweepPoint(
                    dataset=dataset,
                    cache_gb=cache_gb,
                    mean_think_s=think,
                    results={policy: next(cursor) for policy in policies},
                )
            )
    return points


def standard_sweep(
    dataset: str,
    scale: str | Scale = "bench",
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    n_workers: Optional[int] = None,
) -> list[SweepPoint]:
    """Run the full cache-size x think-time grid for one dataset.

    ``n_workers=None`` (the default) runs serially in-process, reusing the
    process's trace/result caches; ``n_workers > 1`` fans the grid out
    over a process pool (deterministic runs make the two paths
    result-identical — the parallel engine's equivalence tests hold the
    harness to that).
    """
    specs = sweep_specs(dataset, scale, policies)
    results = run_specs(specs, n_workers=1 if n_workers is None else n_workers)
    return points_from_results(dataset, scale, policies, results)
