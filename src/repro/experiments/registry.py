"""Figure-name registry and the `run_figure` dispatcher."""

from __future__ import annotations

from typing import Callable

from repro.experiments import extensions, tables
from repro.experiments.config import Scale
from repro.experiments.figures import (
    fig03_motivation,
    fig05_flop_efficiency,
    fig06_workload_stats,
    fig07_hit_rate,
    fig08_sglang_win,
    fig09_ttft,
    fig10_fine_grained,
    fig11_contention,
    fig12_architecture,
    fig13_arrivals,
    fig14_flop_breakdown,
)
from repro.experiments.figures.base import FigureResult

FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig3a": fig03_motivation.run_3a,
    "fig3b": fig03_motivation.run_3b,
    "fig5": fig05_flop_efficiency.run,
    "fig6": fig06_workload_stats.run,
    "fig7": fig07_hit_rate.run,
    "fig8": fig08_sglang_win.run,
    "fig9": fig09_ttft.run,
    "fig10": fig10_fine_grained.run,
    "fig11": fig11_contention.run,
    "fig12a": fig12_architecture.run_12a,
    "fig12b": fig12_architecture.run_12b,
    "fig13a": fig13_arrivals.run_13a,
    "fig13b": fig13_arrivals.run_13b,
    "fig14": fig14_flop_breakdown.run,
    "table1": tables.run,
    "ext-zoo": extensions.run_policy_zoo,
    "ext-tiering": extensions.run_tiering,
    "ext-cluster": extensions.run_cluster,
    "ext-taxonomy": extensions.run_taxonomy_workloads,
    "ext-multitenant": extensions.run_multitenant,
    "ext-tbt": extensions.run_tail_tbt,
}


def run_figure(figure_id: str, scale: str | Scale = "bench") -> FigureResult:
    """Regenerate one figure's data by id (e.g. ``"fig7"``)."""
    try:
        runner = FIGURES[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure_id!r}; known: {sorted(FIGURES)}"
        ) from None
    return runner(scale)
